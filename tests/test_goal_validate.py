"""Tests for GOAL schedule validation."""
import pytest

from repro.goal import GoalBuilder, GoalValidationError, validate_schedule
from repro.goal.ops import Op
from repro.goal.schedule import GoalSchedule


def _valid_pair() -> GoalSchedule:
    b = GoalBuilder(2)
    b.rank(0).send(10, dst=1, tag=1)
    b.rank(1).recv(10, src=0, tag=1)
    return b.build()


class TestValid:
    def test_valid_schedule_passes(self):
        validate_schedule(_valid_pair())

    def test_multiple_messages_same_channel(self):
        b = GoalBuilder(2)
        for _ in range(3):
            b.rank(0).send(10, dst=1, tag=1)
            b.rank(1).recv(10, src=0, tag=1)
        validate_schedule(b.build())

    def test_calc_only_schedule(self):
        b = GoalBuilder(1)
        b.rank(0).calc(5)
        validate_schedule(b.build())


class TestInvalid:
    def test_peer_out_of_range(self):
        sched = GoalSchedule(2)
        sched.ranks[0].add_op(Op.send(10, dst=5))
        with pytest.raises(GoalValidationError):
            validate_schedule(sched, check_matching=False)

    def test_self_message_rejected(self):
        sched = GoalSchedule(2)
        sched.ranks[0].add_op(Op.send(10, dst=0))
        with pytest.raises(GoalValidationError):
            validate_schedule(sched, check_matching=False)

    def test_missing_recv_detected(self):
        b = GoalBuilder(2)
        b.rank(0).send(10, dst=1, tag=1)
        with pytest.raises(GoalValidationError) as exc:
            validate_schedule(b.build())
        assert "sends" in str(exc.value)

    def test_missing_send_detected(self):
        b = GoalBuilder(2)
        b.rank(1).recv(10, src=0, tag=1)
        with pytest.raises(GoalValidationError):
            validate_schedule(b.build())

    def test_size_mismatch_detected(self):
        b = GoalBuilder(2)
        b.rank(0).send(10, dst=1, tag=1)
        b.rank(1).recv(20, src=0, tag=1)
        with pytest.raises(GoalValidationError) as exc:
            validate_schedule(b.build())
        assert "sizes" in str(exc.value)

    def test_tag_mismatch_detected(self):
        b = GoalBuilder(2)
        b.rank(0).send(10, dst=1, tag=1)
        b.rank(1).recv(10, src=0, tag=2)
        with pytest.raises(GoalValidationError):
            validate_schedule(b.build())

    def test_matching_can_be_skipped(self):
        b = GoalBuilder(2)
        b.rank(0).send(10, dst=1, tag=1)
        validate_schedule(b.build(), check_matching=False)

    def test_error_list_collected(self):
        b = GoalBuilder(3)
        b.rank(0).send(10, dst=1, tag=1)
        b.rank(0).send(10, dst=2, tag=1)
        with pytest.raises(GoalValidationError) as exc:
            validate_schedule(b.build())
        assert len(exc.value.errors) == 2

    def test_max_errors_cap(self):
        b = GoalBuilder(2)
        for tag in range(30):
            b.rank(0).send(10, dst=1, tag=tag)
        with pytest.raises(GoalValidationError) as exc:
            validate_schedule(b.build(), max_errors=5)
        assert len(exc.value.errors) <= 5

    def test_forward_dependency_detected(self):
        sched = GoalSchedule(1)
        sched.ranks[0].add_op(Op.calc(1))
        sched.ranks[0].add_op(Op.calc(1))
        # bypass the safe API to create a forward edge
        sched.ranks[0].preds[0] = [1]
        with pytest.raises(GoalValidationError):
            validate_schedule(sched, check_matching=False)

"""Tests for job placement, the measurement harness, and the AstraSim baseline."""
import pytest

from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.baselines.astrasim import AstraSimBaseline, AstraSimUnsupportedError, nsys_to_chakra
from repro.baselines.astrasim.chakra import COMM_COLL_NODE, COMP_NODE, ChakraTrace
from repro.goal import GoalBuilder, encode_goal, validate_schedule
from repro.measurement import (
    measure_reference_runtime,
    non_overlapped_compute_fraction,
    prediction_error,
)
from repro.network import SimulationConfig
from repro.placement import JobRequest, place_jobs
from repro.schedgen import incast
from repro.scheduler import simulate


def _job(n=4, size=1 << 16, name="job"):
    b = GoalBuilder(n, name=name)
    for r in range(n):
        dst = (r + 1) % n
        b.rank(r).send(size, dst=dst, tag=r)
        b.rank(r).recv(size, src=(r - 1) % n, tag=(r - 1) % n)
    return b.build()


class TestPlacement:
    def test_packed_is_contiguous(self):
        jobs = [JobRequest(_job(4, name="a")), JobRequest(_job(4, name="b"))]
        placement = place_jobs(jobs, 16, strategy="packed")
        assert placement.nodes_of_job(0) == [0, 1, 2, 3]
        assert placement.nodes_of_job(1) == [4, 5, 6, 7]

    def test_random_uses_seed_and_disjoint_nodes(self):
        jobs = [JobRequest(_job(4)), JobRequest(_job(4))]
        p1 = place_jobs(jobs, 16, strategy="random", seed=1)
        p2 = place_jobs(jobs, 16, strategy="random", seed=1)
        assert p1.mappings == p2.mappings
        all_nodes = p1.nodes_of_job(0) + p1.nodes_of_job(1)
        assert len(set(all_nodes)) == 8

    def test_round_robin_spreads_across_tors(self):
        jobs = [JobRequest(_job(4))]
        placement = place_jobs(jobs, 16, strategy="round_robin", nodes_per_tor=4)
        tors = {node // 4 for node in placement.nodes_of_job(0)}
        assert len(tors) == 4

    def test_strided(self):
        jobs = [JobRequest(_job(4))]
        placement = place_jobs(jobs, 16, strategy="strided", stride=2)
        assert placement.nodes_of_job(0) == [0, 2, 4, 6]

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            place_jobs([JobRequest(_job(8))], 4)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            place_jobs([JobRequest(_job(2))], 4, strategy="tetris")

    def test_merged_schedule_simulates(self):
        jobs = [JobRequest(_job(4, name="a")), JobRequest(_job(4, name="b"))]
        placement = place_jobs(jobs, 8, strategy="packed")
        merged = placement.merged_schedule(jobs)
        validate_schedule(merged)
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4)
        res = simulate(merged, backend="htsim", config=cfg)
        assert res.ops_completed == merged.num_ops()

    def test_locality_packs_whole_groups_on_torus(self):
        from repro.network.topology import TorusTopology

        topo = TorusTopology(16, dims=(2, 2), hosts_per_node=4)
        # two 4-node jobs: each should land on exactly one torus router
        jobs = [JobRequest(_job(4, name="a")), JobRequest(_job(4, name="b"))]
        placement = place_jobs(jobs, 16, strategy="locality", topology=topo)
        for i in range(2):
            routers = {topo.node_of(n) for n in placement.nodes_of_job(i)}
            assert len(routers) == 1
        assert set(placement.nodes_of_job(0)).isdisjoint(placement.nodes_of_job(1))

    def test_locality_prefers_single_group_over_spill(self):
        from repro.network.topology import TorusTopology

        topo = TorusTopology(16, dims=(2, 2), hosts_per_node=4)
        # a 3-node job first, then a 4-node job: the 4-node job must skip the
        # partially filled router and land whole on the next one
        jobs = [JobRequest(_job(3, name="small")), JobRequest(_job(4, name="big"))]
        placement = place_jobs(jobs, 16, strategy="locality", topology=topo)
        big_routers = {topo.node_of(n) for n in placement.nodes_of_job(1)}
        assert len(big_routers) == 1

    def test_locality_spills_over_consecutive_groups(self):
        jobs = [JobRequest(_job(6, name="wide"))]
        placement = place_jobs(jobs, 16, strategy="locality", group_size=4)
        assert placement.nodes_of_job(0) == [0, 1, 2, 3, 4, 5]

    def test_locality_spill_uses_fewest_groups(self):
        # a 3-node job leaves group 0 with one free slot; the following
        # 8-node job must skip it and take two whole groups, not fragment
        # itself across three switches
        jobs = [JobRequest(_job(3, name="small")), JobRequest(_job(8, name="big"))]
        placement = place_jobs(jobs, 16, strategy="locality", group_size=4)
        big_groups = {n // 4 for n in placement.nodes_of_job(1)}
        assert big_groups == {1, 2}

    def test_locality_on_slimfly(self):
        from repro.network.topology import SlimFlyTopology

        topo = SlimFlyTopology(20, q=5, hosts_per_router=2)
        jobs = [JobRequest(_job(2, name="a")), JobRequest(_job(2, name="b"))]
        placement = place_jobs(jobs, 20, strategy="locality", topology=topo)
        for i in range(2):
            routers = {topo.router_of(n) for n in placement.nodes_of_job(i)}
            assert len(routers) == 1

    def test_locality_topology_size_mismatch_rejected(self):
        from repro.network.topology import TorusTopology

        topo = TorusTopology(8, dims=(2, 2), hosts_per_node=2)
        with pytest.raises(ValueError):
            place_jobs([JobRequest(_job(2))], 16, strategy="locality", topology=topo)

    def test_random_placement_not_slower_check(self):
        # random placement on an oversubscribed fabric must not be faster than packed
        jobs = [JobRequest(_job(8, size=1 << 19, name="a")), JobRequest(_job(8, size=1 << 19, name="b"))]
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4, oversubscription=4.0)
        packed = place_jobs(jobs, 16, strategy="packed")
        random_p = place_jobs(jobs, 16, strategy="random", seed=2)
        t_packed = simulate(packed.merged_schedule(jobs), backend="htsim", config=cfg).finish_time_ns
        t_random = simulate(random_p.merged_schedule(jobs), backend="htsim", config=cfg).finish_time_ns
        assert t_random >= t_packed * 0.95


class TestMeasurement:
    def test_compute_fraction_bounds(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1000)
        sched = b.build()
        assert non_overlapped_compute_fraction(sched, 2000) == pytest.approx(0.5)
        assert non_overlapped_compute_fraction(sched, 0) == 0.0

    def test_prediction_error_signs(self):
        assert prediction_error(110, 100) == pytest.approx(0.10)
        assert prediction_error(90, 100) == pytest.approx(-0.10)
        with pytest.raises(ValueError):
            prediction_error(1, 0)

    def test_reference_measurement_is_deterministic(self):
        sched = incast(4, 1 << 17)
        cfg = SimulationConfig(topology="single_switch")
        a = measure_reference_runtime(sched, base_config=cfg, trials=2, seed=9)
        b = measure_reference_runtime(sched, base_config=cfg, trials=2, seed=9)
        assert a.runtime_ns == b.runtime_ns
        assert len(a.trial_runtimes_ns) == 2

    def test_lgs_prediction_close_to_reference_for_simple_workload(self):
        sched = incast(4, 1 << 18)
        cfg = SimulationConfig(topology="single_switch")
        measured = measure_reference_runtime(sched, base_config=cfg, trials=2)
        predicted = simulate(sched, backend="lgs").finish_time_ns
        assert abs(prediction_error(predicted, measured.runtime_ns)) < 0.25


class TestAstraSimBaseline:
    def _report(self, pp=1):
        par = ParallelismConfig(tp=1, pp=pp, dp=4 // max(1, pp) if pp > 1 else 4, microbatches=2, global_batch=16)
        return LlmTrainer(llama_7b().scaled(0.05), par, iterations=1).trace()

    def test_chakra_conversion_structure(self):
        chakra = nsys_to_chakra(self._report())
        assert chakra.num_gpus == 4
        types = {n.node_type for g in chakra.graphs for n in g}
        assert COMP_NODE in types and COMM_COLL_NODE in types

    def test_chakra_roundtrip(self):
        chakra = nsys_to_chakra(self._report())
        back = ChakraTrace.from_json(chakra.to_json())
        assert back.num_nodes() == chakra.num_nodes()

    def test_chakra_larger_than_goal(self):
        from repro.schedgen import nccl_trace_to_goal

        report = self._report()
        chakra = nsys_to_chakra(report)
        goal = nccl_trace_to_goal(report, gpus_per_node=1)
        assert chakra.size_bytes() > len(encode_goal(goal))

    def test_dp_trace_simulates(self):
        chakra = nsys_to_chakra(self._report())
        result = AstraSimBaseline().simulate(chakra)
        assert result.finish_time_ns > 0
        assert result.nodes_executed == chakra.num_nodes()

    def test_pp_trace_rejected_with_paper_error(self):
        chakra = nsys_to_chakra(self._report(pp=2))
        with pytest.raises(AstraSimUnsupportedError) as exc:
            AstraSimBaseline().simulate(chakra)
        assert "same address" in str(exc.value)

    def test_collective_duration_scales_with_size(self):
        from repro.baselines.astrasim.chakra import ChakraNode
        from repro.baselines.astrasim.simulator import AstraSimBaseline as B

        sim = B()
        small = ChakraNode(0, "ar", COMM_COLL_NODE, comm_size=1 << 16, comm_type="ALL_REDUCE")
        large = ChakraNode(1, "ar", COMM_COLL_NODE, comm_size=1 << 22, comm_type="ALL_REDUCE")
        assert sim._collective_duration(large, 8) > sim._collective_duration(small, 8)

"""Tests for the Atlahs facade and the command-line interface."""
import json

import pytest

from repro.apps.ai import ParallelismConfig, llama_7b
from repro.apps.hpc import HpcRunConfig
from repro.cli import build_parser, main
from repro.core import Atlahs
from repro.network import SimulationConfig
from repro.schedgen.storage import DirectDriveConfig
from repro.tracers.storage import FinancialWorkloadGenerator


class TestAtlahsFacade:
    def test_run_hpc_pipeline(self):
        out = Atlahs().run_hpc("lammps", HpcRunConfig(num_ranks=4, iterations=2, cells_per_rank=4000))
        assert out.result is not None
        assert out.result.ops_completed == out.schedule.num_ops()
        assert out.trace_bytes > 0 and out.goal_bytes > 0

    def test_unknown_hpc_app(self):
        with pytest.raises(ValueError):
            Atlahs().run_hpc("gromacs", HpcRunConfig(num_ranks=4))

    def test_run_ai_pipeline(self):
        out = Atlahs().run_ai_training(
            llama_7b().scaled(0.04),
            ParallelismConfig(dp=4, microbatches=2, global_batch=16),
            iterations=1,
            gpus_per_node=2,
        )
        assert out.schedule.num_ranks == 2
        assert out.result.finish_time_ns > 0

    def test_run_storage_pipeline(self):
        trace = FinancialWorkloadGenerator(seed=1).generate(30)
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=8)
        out = Atlahs(cfg).run_storage(trace, DirectDriveConfig())
        assert out.result.stats.messages_delivered > 0

    def test_run_multi_job(self):
        a = Atlahs()
        j1 = a.run_hpc("lammps", HpcRunConfig(num_ranks=4, iterations=1, cells_per_rank=2000), simulate_schedule=False)
        j2 = a.run_hpc("icon", HpcRunConfig(num_ranks=4, iterations=1, cells_per_rank=2000), simulate_schedule=False)
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4)
        out = a.run_multi_job([j1.schedule, j2.schedule], cluster_nodes=8, strategy="packed", config=cfg)
        assert out.schedule.num_ranks == 8
        assert out.result.ops_completed == out.schedule.num_ops()

    def test_simulate_schedule_flag(self):
        out = Atlahs().run_hpc(
            "lammps", HpcRunConfig(num_ranks=4, iterations=1, cells_per_rank=2000), simulate_schedule=False
        )
        assert out.result is None

    def test_compare_with_astrasim_dp(self):
        a = Atlahs()
        out = a.run_ai_training(
            llama_7b().scaled(0.04),
            ParallelismConfig(dp=4, microbatches=2, global_batch=16),
            iterations=1,
            simulate_schedule=False,
        )
        cmp = a.compare_with_astrasim(out.extras["report"])
        assert cmp["chakra_bytes"] > 0
        assert "finish_time_ns" in cmp

    def test_compare_with_astrasim_pp_reports_failure(self):
        a = Atlahs()
        out = a.run_ai_training(
            llama_7b().scaled(0.04),
            ParallelismConfig(pp=2, dp=2, microbatches=2, global_batch=16),
            iterations=1,
            simulate_schedule=False,
        )
        cmp = a.compare_with_astrasim(out.extras["report"])
        assert "error" in cmp


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for cmd in ("simulate", "hpc", "ai", "storage", "synthetic"):
            assert cmd in parser.format_help()

    def test_synthetic_command(self, capsys):
        rc = main(["synthetic", "incast", "--ranks", "4", "--message-size", "65536"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 3

    def test_hpc_command(self, capsys):
        rc = main(["hpc", "lammps", "--ranks", "4", "--iterations", "1", "--cells-per-rank", "2000"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ops_completed"] > 0

    def test_simulate_command_roundtrip(self, tmp_path, capsys):
        from repro.goal import GoalBuilder, write_goal_file

        b = GoalBuilder(2, name="cli")
        b.rank(0).send(1024, dst=1, tag=1)
        b.rank(1).recv(1024, src=0, tag=1)
        path = str(tmp_path / "sched.goal")
        write_goal_file(b.build(), path)
        rc = main(["simulate", path, "--backend", "lgs"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 1

    def test_ai_command(self, capsys):
        rc = main([
            "ai", "llama-7b", "--scale", "0.03", "--dp", "2", "--microbatches", "1",
            "--batch", "4", "--gpus-per-node", "2",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gpus"] == 2

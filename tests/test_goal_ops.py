"""Unit tests for the GOAL op (vertex) type."""
import pytest

from repro.goal import Op, OpType


class TestConstruction:
    def test_send_constructor(self):
        op = Op.send(1024, dst=3, tag=7, cpu=1, label="s")
        assert op.kind == OpType.SEND
        assert op.size == 1024
        assert op.peer == 3
        assert op.tag == 7
        assert op.cpu == 1
        assert op.label == "s"

    def test_recv_constructor(self):
        op = Op.recv(64, src=0)
        assert op.kind == OpType.RECV
        assert op.peer == 0
        assert op.tag == 0

    def test_calc_constructor(self):
        op = Op.calc(500)
        assert op.kind == OpType.CALC
        assert op.peer is None

    def test_dummy_is_zero_cost_calc(self):
        op = Op.dummy()
        assert op.is_calc and op.is_dummy and op.size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Op.calc(-1)

    def test_send_requires_peer(self):
        with pytest.raises(ValueError):
            Op(OpType.SEND, 10)

    def test_negative_peer_rejected(self):
        with pytest.raises(ValueError):
            Op.send(10, dst=-1)

    def test_calc_must_not_have_peer(self):
        with pytest.raises(ValueError):
            Op(OpType.CALC, 10, peer=1)

    def test_negative_tag_rejected(self):
        with pytest.raises(ValueError):
            Op.send(10, dst=1, tag=-1)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            Op.calc(10, cpu=-2)


class TestPredicates:
    def test_comm_predicates(self):
        assert Op.send(1, dst=0).is_comm
        assert Op.recv(1, src=0).is_comm
        assert not Op.calc(1).is_comm

    def test_is_send_recv_calc(self):
        assert Op.send(1, dst=0).is_send
        assert Op.recv(1, src=0).is_recv
        assert Op.calc(1).is_calc

    def test_nonzero_calc_is_not_dummy(self):
        assert not Op.calc(5).is_dummy

    def test_short_names(self):
        assert OpType.SEND.short() == "send"
        assert OpType.RECV.short() == "recv"
        assert OpType.CALC.short() == "calc"


class TestEqualityAndCopy:
    def test_equality_ignores_label(self):
        assert Op.send(8, dst=1, tag=2, label="a") == Op.send(8, dst=1, tag=2, label="b")

    def test_inequality_on_size(self):
        assert Op.calc(1) != Op.calc(2)

    def test_hash_consistent_with_eq(self):
        a, b = Op.recv(8, src=2), Op.recv(8, src=2)
        assert hash(a) == hash(b)

    def test_copy_is_independent(self):
        op = Op.send(10, dst=1, tag=3, cpu=2, label="x")
        cp = op.copy()
        assert cp == op and cp is not op
        cp.peer = 5
        assert op.peer == 1

    def test_repr_mentions_kind(self):
        assert "send" in repr(Op.send(10, dst=1))
        assert "calc" in repr(Op.calc(10))
        assert "recv" in repr(Op.recv(10, src=1))

    def test_eq_other_type_not_implemented(self):
        assert Op.calc(1) != "calc"

"""Determinism of the performance engines.

The hot-path optimizations — cached route tables with vectorized UGAL
costs (``route_caching``), the arithmetic burst link engine
(``packet_batching``) and the batched/vectorized LogGOPS eager path
(``loggops_batching``) — are required to be *exact*: for a fixed seed,
the optimized and legacy code paths must produce bit-identical simulated
results (finish times, per-rank finish times, message records, drop/trim/
ECN counts).  These tests run both settings across backends, routing
strategies and congestion regimes (including drops, ECN marking and NDP
trimming) and compare everything.

The parallel sweep engine gets the same treatment: worker processes must
return entries identical to the serial engine.
"""
from __future__ import annotations

import pytest

from repro.network.config import LogGOPSParams, SimulationConfig
from repro.scheduler import simulate
from repro.schedgen import all_to_all, incast, permutation, ring_allreduce_microbenchmark


def _run(schedule, backend, config):
    result = simulate(schedule, backend=backend, config=config, validate=False)
    stats = result.stats
    return {
        "finish": result.finish_time_ns,
        "rank_finish": tuple(result.rank_finish_times_ns),
        "records": tuple(result.message_records),
        "messages": stats.messages_delivered,
        "bytes": stats.bytes_delivered,
        "drops": stats.packets_dropped,
        "trims": stats.packets_trimmed,
        "ecn": stats.packets_ecn_marked,
        "retransmissions": stats.retransmissions,
        "max_queue": stats.max_queue_bytes,
    }


def _assert_exact(schedule, backend, config):
    legacy = _run(
        schedule,
        backend,
        config.replace(route_caching=False, packet_batching=False, loggops_batching=False),
    )
    optimized = _run(
        schedule,
        backend,
        config.replace(route_caching=True, packet_batching=True, loggops_batching=True),
    )
    assert legacy == optimized


class TestPacketBackendExactness:
    @pytest.mark.parametrize("routing", ["minimal", "valiant", "adaptive"])
    def test_alltoall_all_routings(self, routing):
        _assert_exact(
            all_to_all(8, 1 << 14),
            "htsim",
            SimulationConfig(nodes_per_tor=4, routing=routing, seed=3),
        )

    @pytest.mark.parametrize("cc", ["mprdma", "dctcp", "swift", "fixed"])
    def test_contended_incast_with_drops_and_ecn(self, cc):
        # small buffers force drops and ECN marks; all must match exactly
        config = SimulationConfig(nodes_per_tor=4, buffer_size=1 << 16, cc_algorithm=cc)
        results = _run(incast(12, 1 << 19), "htsim", config)
        assert results["drops"] > 0 or results["ecn"] > 0  # regime sanity
        _assert_exact(incast(12, 1 << 19), "htsim", config)

    def test_ndp_trimming_and_pull_pacing(self):
        config = SimulationConfig(nodes_per_tor=4, buffer_size=1 << 16, cc_algorithm="ndp")
        results = _run(incast(12, 1 << 19), "htsim", config)
        assert results["trims"] > 0  # trimming regime actually exercised
        _assert_exact(incast(12, 1 << 19), "htsim", config)

    @pytest.mark.parametrize(
        "topology,extra",
        [
            ("torus", {"torus_dims": (4, 4), "torus_hosts_per_node": 1}),
            ("slimfly", {"slimfly_q": 5, "slimfly_hosts_per_router": 1}),
        ],
    )
    def test_adaptive_on_path_diverse_topologies(self, topology, extra):
        _assert_exact(
            permutation(16, 1 << 16, seed=5),
            "htsim",
            SimulationConfig(topology=topology, routing="adaptive", **extra),
        )

    def test_same_seed_same_results_repeated(self):
        config = SimulationConfig(nodes_per_tor=4, routing="adaptive", seed=11)
        a = _run(all_to_all(8, 1 << 15), "htsim", config)
        b = _run(all_to_all(8, 1 << 15), "htsim", config)
        assert a == b


class TestLogGOPSExactness:
    def test_eager_flat_latency(self):
        _assert_exact(all_to_all(16, 1 << 16), "lgs", SimulationConfig())

    def test_rendezvous_protocol(self):
        _assert_exact(
            all_to_all(16, 1 << 16),
            "lgs",
            SimulationConfig(loggops=LogGOPSParams.hpc_cluster()),
        )

    def test_coupled_batches_incast(self):
        # every batch member shares the destination: the vector path must
        # bail out to the scalar chain and still match exactly
        _assert_exact(incast(16, 1 << 18), "lgs", SimulationConfig())

    @pytest.mark.parametrize("routing", ["minimal", "valiant", "adaptive"])
    def test_topology_aware_latency(self, routing):
        _assert_exact(
            all_to_all(8, 1 << 14),
            "lgs",
            SimulationConfig(
                topology="torus", torus_dims=(2, 2), torus_hosts_per_node=2, routing=routing
            ),
        )

    def test_ring_allreduce(self):
        _assert_exact(ring_allreduce_microbenchmark(8, 1 << 20), "lgs", SimulationConfig())

    def test_vectorized_batch_path_actually_engages(self):
        # guards against the A/B test passing vacuously because the batch
        # loop never groups anything (e.g. a broken callback identity
        # check).  Chained permutation rounds unlock one send per rank at
        # the same completion instant, producing 16-wide consecutive runs
        # (first-round fronts do not batch: their send events interleave
        # with same-time recv posts, which share CPU streams and therefore
        # may not be reordered past).
        from repro.network.loggops.backend import LogGOPSBackend
        from repro.scheduler import GoalScheduler

        backend = LogGOPSBackend()
        scheduler = GoalScheduler(
            permutation(16, 1 << 12, seed=1, messages_per_rank=3),
            backend=backend,
            config=SimulationConfig(),
        )
        calls = []
        original = backend._eager_batch_vectorized
        backend._eager_batch_vectorized = lambda time, payloads: (
            calls.append(len(payloads)),
            original(time, payloads),
        )[1]
        scheduler.run()
        assert calls, "no send batch ever took the vectorized path"
        assert max(calls) >= 8


def _sweep_key(entry):
    """Every SweepEntry field except host wall-clock (which is not simulated)."""
    d = dict(entry.__dict__)
    d.pop("wall_clock_s")
    return d


class TestParallelSweep:
    def test_parallel_equals_serial(self):
        from repro.sweep import default_topology_configs, topology_routing_sweep

        schedule = all_to_all(8, 1 << 13)
        configs = default_topology_configs(8)
        serial = topology_routing_sweep(
            schedule, configs, routings=("minimal", "adaptive"), backend="htsim"
        )
        parallel = topology_routing_sweep(
            schedule, configs, routings=("minimal", "adaptive"), backend="htsim", parallel=2
        )
        assert [_sweep_key(e) for e in serial] == [_sweep_key(e) for e in parallel]

    def test_parallel_lgs_sweep(self):
        from repro.sweep import default_topology_configs, topology_routing_sweep

        schedule = all_to_all(8, 1 << 13)
        configs = default_topology_configs(8)
        serial = topology_routing_sweep(schedule, configs, routings=("minimal",), backend="lgs")
        parallel = topology_routing_sweep(
            schedule, configs, routings=("minimal",), backend="lgs", parallel=3
        )
        assert [_sweep_key(e) for e in serial] == [_sweep_key(e) for e in parallel]


class TestPullPacing:
    """The cumulative byte-time pull pacer (sub-ns precision satellite)."""

    def _emission_times(self, bandwidth, pulls=50):
        """Drive a packet backend's pull pacer directly and record emissions."""
        from repro.network.packet.backend import PacketBackend

        backend = PacketBackend()
        backend.setup(
            4,
            SimulationConfig(
                nodes_per_tor=4, cc_algorithm="ndp", link_bandwidth=bandwidth
            ),
        )
        times = []
        backend._send_control = lambda flow, kind, seq, route, now: times.append(now)

        class _FakeFlow:
            dst = 0
            ack_route = (0,)

        for _ in range(pulls):
            backend._request_pull(_FakeFlow(), 0)
        backend.events.run()
        return times

    def test_long_run_rate_is_exact(self):
        # mtu=4096 at 25 B/ns: exact spacing is 163.84 ns; the legacy
        # per-gap formula emitted every 164 ns, drifting 8 ns over 50 pulls
        times = self._emission_times(bandwidth=25.0)
        assert times[0] == 0
        assert times[-1] == round(49 * 4096 / 25.0)  # == 8028, not 49*164 == 8036

    def test_sub_ns_gaps_not_clamped(self):
        # at 8192 B/ns an MTU takes 0.5 ns; the legacy formula clamped the
        # gap to 1 ns and halved the pull rate
        times = self._emission_times(bandwidth=8192.0)
        assert times[-1] == round(49 * 4096 / 8192.0)  # 24.5 -> 24 (half-even)
        # several pulls share a nanosecond instead of being spread out
        assert len(set(times)) < len(times)

    def test_monotone_emissions(self):
        times = self._emission_times(bandwidth=25.0)
        assert all(b >= a for a, b in zip(times, times[1:]))

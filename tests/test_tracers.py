"""Tests for the MPI, NCCL and storage trace formats and tracers."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.tracers.mpi import MpiEvent, MpiTrace, MpiTracer
from repro.tracers.nccl import GpuKernel, NcclTracer, NsysReport
from repro.tracers.storage import (
    FinancialWorkloadGenerator,
    SpcRecord,
    SpcTrace,
    uniform_workload,
)


class TestMpiTrace:
    def test_tracer_records_in_order(self):
        t = MpiTracer(2, name="x")
        t.compute(0, 500)
        e = t.record(0, "MPI_Send", size=100, peer=1, tag=3)
        assert e.start_ns == 500
        t.compute(0, 100)
        e2 = t.record(0, "MPI_Allreduce", size=8)
        assert e2.start_ns == e.end_ns + 100

    def test_collective_sequence_numbers(self):
        t = MpiTracer(2)
        a = t.record(0, "MPI_Allreduce", size=8)
        b = t.record(0, "MPI_Allreduce", size=8)
        c = t.record(1, "MPI_Allreduce", size=8)
        assert (a.seq, b.seq, c.seq) == (0, 1, 0)

    def test_unknown_call_rejected(self):
        with pytest.raises(ValueError):
            MpiEvent(call="MPI_Bogus", start_ns=0, end_ns=1)

    def test_out_of_order_event_rejected(self):
        trace = MpiTrace(1)
        trace.add(0, MpiEvent(call="MPI_Barrier", start_ns=100, end_ns=200))
        with pytest.raises(ValueError):
            trace.add(0, MpiEvent(call="MPI_Barrier", start_ns=50, end_ns=60))

    def test_text_roundtrip(self):
        t = MpiTracer(2, name="rt")
        t.define_communicator(1, [0, 1])
        t.compute(0, 100)
        t.record(0, "MPI_Sendrecv", size=64, peer=1, recv_peer=1, recv_size=64, tag=2)
        t.record(1, "MPI_Sendrecv", size=64, peer=0, recv_peer=0, recv_size=64, tag=2)
        t.record(0, "MPI_Allreduce", size=8, comm=1)
        t.record(1, "MPI_Allreduce", size=8, comm=1)
        trace = t.finish()
        back = MpiTrace.from_text(trace.to_text())
        assert back.num_ranks == 2
        assert back.num_events() == trace.num_events()
        assert back.communicators[1] == [0, 1]
        assert back.events[0][0].recv_peer == 1

    def test_makespan_and_sizes(self):
        t = MpiTracer(2)
        t.compute(1, 1000)
        t.record(1, "MPI_Barrier")
        trace = t.finish()
        assert trace.makespan_ns() >= 1000
        assert trace.size_bytes() == len(trace.to_text().encode())

    def test_file_roundtrip(self, tmp_path):
        t = MpiTracer(1)
        t.record(0, "MPI_Barrier")
        path = str(tmp_path / "trace.txt")
        n = t.finish().to_file(path)
        assert n > 0
        assert MpiTrace.from_file(path).num_events() == 1


class TestNcclTrace:
    def test_tracer_clocks_per_stream(self):
        t = NcclTracer(2)
        t.compute(0, 0, 1000)
        t.nccl(0, 0, "AllReduce", 4096)
        t.compute(0, 1, 50)
        report = t.finish()
        k = report.streams[0][0].kernels
        assert k[1].start_ns == 1000
        assert report.streams[0][1].kernels[0].end_ns == 50

    def test_collective_sequence_per_communicator(self):
        t = NcclTracer(2)
        t.define_communicator(5, [0, 1])
        a = t.nccl(0, 0, "AllReduce", 128, comm=5)
        b = t.nccl(0, 0, "AllReduce", 128, comm=5)
        c = t.nccl(1, 0, "AllReduce", 128, comm=5)
        assert (a.seq, b.seq, c.seq) == (0, 1, 0)

    def test_p2p_requires_known_op(self):
        t = NcclTracer(2)
        with pytest.raises(ValueError):
            t.nccl(0, 0, "Gather", 128)

    def test_advance_to_creates_gap(self):
        t = NcclTracer(1)
        t.advance_to(0, 1, 5000)
        k = t.nccl(0, 1, "AllReduce", 64)
        assert k.start_ns == 5000

    def test_json_roundtrip(self):
        t = NcclTracer(2, gpus_per_node=2, name="rt")
        t.define_communicator(1, [0, 1])
        t.compute(0, 0, 10)
        t.nccl(0, 0, "AllReduce", 2048, comm=1)
        t.nccl(1, 0, "AllReduce", 2048, comm=1)
        t.nccl(0, 0, "Send", 128, peer=1)
        t.nccl(1, 0, "Recv", 128, peer=0)
        report = t.finish()
        back = NsysReport.from_json(report.to_json())
        assert back.num_gpus == 2
        assert back.gpus_per_node == 2
        assert back.num_kernels() == report.num_kernels()
        assert back.communicators[1] == [0, 1]

    def test_kernel_ordering_enforced(self):
        report = NsysReport(num_gpus=1)
        report.stream(0, 0).add(GpuKernel(kind="compute", name="a", start_ns=100, end_ns=200))
        with pytest.raises(ValueError):
            report.stream(0, 0).add(GpuKernel(kind="compute", name="b", start_ns=50, end_ns=80))

    def test_nccl_kernels_listing(self):
        t = NcclTracer(1)
        t.compute(0, 0, 10)
        t.nccl(0, 0, "AllReduce", 64)
        t.nccl(0, 1, "AllReduce", 64)
        listing = t.finish().nccl_kernels(0)
        assert len(listing) == 2

    def test_num_nodes(self):
        assert NsysReport(num_gpus=8, gpus_per_node=4).num_nodes == 2
        assert NsysReport(num_gpus=9, gpus_per_node=4).num_nodes == 3


class TestStorageTraces:
    def test_spc_record_validation(self):
        with pytest.raises(ValueError):
            SpcRecord(asu=0, lba=0, size=0, opcode="r", timestamp=0.0)
        with pytest.raises(ValueError):
            SpcRecord(asu=0, lba=0, size=512, opcode="x", timestamp=0.0)

    def test_spc_text_roundtrip(self):
        trace = SpcTrace(
            [
                SpcRecord(0, 100, 4096, "r", 0.001),
                SpcRecord(1, 200, 8192, "w", 0.002),
            ]
        )
        back = SpcTrace.from_text(trace.to_text())
        assert len(back) == 2
        assert back.records[1].opcode == "w"
        assert back.total_bytes() == 4096 + 8192

    def test_records_must_be_time_ordered(self):
        trace = SpcTrace()
        trace.add(SpcRecord(0, 0, 512, "r", 1.0))
        with pytest.raises(ValueError):
            trace.add(SpcRecord(0, 0, 512, "r", 0.5))

    def test_financial_generator_basic_properties(self):
        trace = FinancialWorkloadGenerator(seed=3).generate(500)
        assert len(trace) == 500
        ts = [r.timestamp for r in trace]
        assert ts == sorted(ts)
        sizes = [r.size for r in trace]
        assert all(512 <= s <= 256 * 1024 and s % 512 == 0 for s in sizes)

    def test_financial_generator_write_fraction(self):
        trace = FinancialWorkloadGenerator(write_fraction=0.75, seed=1).generate(2000)
        frac = len(trace.writes()) / len(trace)
        assert 0.68 <= frac <= 0.82

    def test_financial_generator_deterministic(self):
        a = FinancialWorkloadGenerator(seed=5).generate(100)
        b = FinancialWorkloadGenerator(seed=5).generate(100)
        assert a.to_text() == b.to_text()

    def test_uniform_workload(self):
        trace = uniform_workload(100, size_bytes=8192, seed=2)
        assert len(trace) == 100
        assert all(r.size == 8192 for r in trace)

    def test_file_roundtrip(self, tmp_path):
        trace = FinancialWorkloadGenerator(seed=1).generate(50)
        path = str(tmp_path / "spc.txt")
        trace.to_file(path)
        assert len(SpcTrace.from_file(path)) == 50

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
    def test_generator_property_sizes_and_order(self, n, seed):
        trace = FinancialWorkloadGenerator(seed=seed).generate(n)
        assert len(trace) == n
        prev = -1.0
        for r in trace:
            assert r.timestamp >= prev
            assert r.size % 512 == 0
            prev = r.timestamp

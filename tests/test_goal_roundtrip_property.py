"""Randomized round-trip property tests for the GOAL codecs.

A seeded RNG generates random schedules — random op mixes, sizes, tags,
compute streams, labels and backward dependency edges — and asserts the
parse/write and encode/decode *fixpoints*:

* text:   ``parse(write(s))`` is structurally equal to ``s``, and
  ``write(parse(write(s)))`` is byte-identical to ``write(s)``,
* binary: ``decode(encode(s))`` is structurally equal to ``s``, and
  ``encode(decode(encode(s)))`` is byte-identical to ``encode(s)``,
* cross:  text and binary round trips agree with each other.

Labels are a debugging aid of the textual format (binary drops them; the
writer regenerates them), so structural equality compares op fields
(kind/size/peer/tag/cpu — exactly ``Op.__eq__``) and dependency lists, not
labels.  Deliberate edge cases ride along: label-heavy ranks, dense
dependency chains, comment/whitespace injection, and empty ranks.
"""
import random

import pytest

from repro.goal import (
    GoalSchedule,
    Op,
    decode_goal,
    encode_goal,
    parse_goal,
    write_goal,
)

NUM_RANDOM_SCHEDULES = 30


def _random_schedule(rng: random.Random, with_labels: bool = True) -> GoalSchedule:
    """One random GOAL schedule (not necessarily send/recv matched)."""
    num_ranks = rng.randint(1, 5)
    sched = GoalSchedule(num_ranks, name=f"prop-{rng.randrange(1 << 16)}")
    for rank in sched.ranks:
        for idx in range(rng.randint(0, 12)):
            kind = rng.choice(("send", "recv", "calc"))
            cpu = rng.choice((0, 0, 0, 1, 2, 7))
            label = None
            if with_labels and rng.random() < 0.5:
                # exercise the label alphabet: letters, digits, _ . -
                label = rng.choice(("l", "op_", "a.b-", "x")) + str(idx)
            if kind == "calc":
                op = Op.calc(rng.randrange(0, 1 << 20), cpu=cpu, label=label)
            else:
                peer = rng.randrange(num_ranks)
                size = rng.randrange(1, 1 << 22)
                tag = rng.choice((0, 0, rng.randrange(1, 1 << 16)))
                if kind == "send":
                    op = Op.send(size, dst=peer, tag=tag, cpu=cpu, label=label)
                else:
                    op = Op.recv(size, src=peer, tag=tag, cpu=cpu, label=label)
            # random backward dependencies (0..3 distinct earlier vertices)
            deps = rng.sample(range(idx), k=min(idx, rng.randint(0, 3)))
            rank.add_op(op, deps)
    return sched


def _assert_structurally_equal(a: GoalSchedule, b: GoalSchedule) -> None:
    assert a.num_ranks == b.num_ranks
    for rank_a, rank_b in zip(a.ranks, b.ranks):
        assert rank_a.ops == rank_b.ops  # Op.__eq__ ignores labels
        assert rank_a.preds == rank_b.preds


@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCHEDULES))
def test_text_roundtrip_fixpoint(seed):
    sched = _random_schedule(random.Random(seed))
    text = write_goal(sched)
    parsed = parse_goal(text)
    _assert_structurally_equal(sched, parsed)
    # write is a fixpoint of parse∘write
    assert write_goal(parsed) == text


@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCHEDULES))
def test_binary_roundtrip_fixpoint(seed):
    sched = _random_schedule(random.Random(1000 + seed))
    blob = encode_goal(sched)
    decoded = decode_goal(blob)
    _assert_structurally_equal(sched, decoded)
    assert encode_goal(decoded) == blob


@pytest.mark.parametrize("seed", range(10))
def test_text_and_binary_roundtrips_agree(seed):
    sched = _random_schedule(random.Random(2000 + seed))
    via_text = parse_goal(write_goal(sched))
    via_binary = decode_goal(encode_goal(sched))
    _assert_structurally_equal(via_text, via_binary)


@pytest.mark.parametrize("seed", range(10))
def test_comment_and_whitespace_injection(seed):
    """Random comments and blank lines never change what parses."""
    rng = random.Random(3000 + seed)
    sched = _random_schedule(rng)
    clean = write_goal(sched)
    noisy_lines = []
    for line in clean.splitlines():
        if rng.random() < 0.3:
            noisy_lines.append(rng.choice(("# noise", "// noise", "", "   ")))
        # trailing comments on op/dependency lines (not on brace lines,
        # which the writer emits bare anyway)
        if line.strip() and rng.random() < 0.3:
            line = line + rng.choice(("  # tail", "  // tail"))
        noisy_lines.append(line)
    parsed = parse_goal("\n".join(noisy_lines))
    _assert_structurally_equal(sched, parsed)


@pytest.mark.parametrize("seed", range(10))
def test_dependency_edges_survive_roundtrip(seed):
    """Dense random dependency chains survive both codecs exactly."""
    rng = random.Random(4000 + seed)
    sched = GoalSchedule(1, name="chains")
    rank = sched.ranks[0]
    n = rng.randint(5, 40)
    for idx in range(n):
        k = min(idx, rng.randint(0, idx))
        rank.add_op(Op.calc(idx), rng.sample(range(idx), k=k))
    _assert_structurally_equal(sched, parse_goal(write_goal(sched)))
    _assert_structurally_equal(sched, decode_goal(encode_goal(sched)))


def test_labels_preserved_when_unique():
    sched = GoalSchedule(1, name="labelled")
    sched.ranks[0].add_op(Op.calc(5, label="first"))
    sched.ranks[0].add_op(Op.calc(7, label="second"), [0])
    parsed = parse_goal(write_goal(sched))
    assert parsed.ranks[0].vertex_by_label("first") == 0
    assert parsed.ranks[0].vertex_by_label("second") == 1


def test_empty_ranks_roundtrip():
    """Ranks with no ops (idle nodes of a placement) survive both codecs."""
    sched = GoalSchedule(4, name="sparse")
    sched.ranks[2].add_op(Op.calc(9))
    _assert_structurally_equal(sched, decode_goal(encode_goal(sched)))
    parsed = parse_goal(write_goal(sched))
    assert parsed.num_ranks == 4
    _assert_structurally_equal(sched, parsed)

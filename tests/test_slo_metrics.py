"""Exact unit tests for the serving percentile/SLO estimator.

Nearest-rank semantics are pinned against hand-computed values (rank
``ceil(p/100 * n)``, 1-indexed, every output an actual observation), the
empty/single-sample edge cases are fixed, and the goodput accounting is
shown to exclude deadline-missed requests while throughput keeps counting
them.  The simulation side is faked with hand-built plans and results so
every expected number is computable on paper.
"""
import pytest

from repro.apps.inference import (
    DecodeStep,
    InferencePlan,
    Request,
    ServingClusterConfig,
)
from repro.goal.schedule import GoalSchedule
from repro.measurement.serving import (
    SloSpec,
    compute_serving_metrics,
    percentile_nearest_rank,
)


class TestPercentileNearestRank:
    def test_hand_computed_small_sample(self):
        samples = [15, 20, 35, 40, 50]
        # ranks: p30 -> ceil(1.5)=2nd, p40 -> 2nd, p50 -> ceil(2.5)=3rd
        assert percentile_nearest_rank(samples, 30) == 20
        assert percentile_nearest_rank(samples, 40) == 20
        assert percentile_nearest_rank(samples, 50) == 35
        assert percentile_nearest_rank(samples, 100) == 50

    def test_p99_and_p999_on_hundred_samples(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile_nearest_rank(samples, 50) == 50
        assert percentile_nearest_rank(samples, 99) == 99
        # ceil(99.9) = 100 -> the maximum
        assert percentile_nearest_rank(samples, 99.9) == 100

    def test_unsorted_input_is_sorted_internally(self):
        assert percentile_nearest_rank([9, 1, 5], 50) == 5

    def test_single_sample_is_every_percentile(self):
        for pct in (0.1, 50, 99, 99.9, 100):
            assert percentile_nearest_rank([42], pct) == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero samples"):
            percentile_nearest_rank([], 50)

    @pytest.mark.parametrize("pct", [0.0, -1.0, 100.1])
    def test_out_of_range_percentile_raises(self, pct):
        with pytest.raises(ValueError, match="percentile"):
            percentile_nearest_rank([1, 2, 3], pct)


def _fake_plan(requests, finish_by_group, finish_time_ns=None):
    """A plan + result pair with hand-chosen per-request group finishes."""
    cluster = ServingClusterConfig()
    plan = InferencePlan(
        schedule=GoalSchedule(cluster.num_ranks, name="fake"),
        op_groups=[],
        requests=list(requests),
        cluster=cluster,
        steps={3: [DecodeStep(rank=3, index=0, duration_ns=1, joins=(), members=((0, 0),))]},
        process="poisson",
        rate_rps=100.0,
        seed=0,
    )

    horizon = (
        finish_time_ns
        if finish_time_ns is not None
        else max(finish_by_group.values(), default=0)
    )

    class _FakeResult:
        pass

    result = _FakeResult()
    result.group_finish_times_ns = finish_by_group
    result.finish_time_ns = horizon
    return plan, result


def _request(rid, arrival_ns=0, decode_tokens=4):
    return Request(
        id=rid,
        tenant="t",
        arrival_ns=arrival_ns,
        prompt_tokens=8,
        decode_tokens=decode_tokens,
        frontend_rank=0,
        prefill_rank=1,
        decode_rank=3,
    )


class TestComputeServingMetrics:
    def test_ttft_and_tpot_hand_computed(self):
        req = _request(0, arrival_ns=1_000, decode_tokens=5)
        # first token at 11_000, last at 31_000 -> ttft 10_000,
        # tpot (31_000 - 11_000) / 4 = 5_000
        plan, result = _fake_plan([req], {0: 11_000, 1: 31_000})
        m = compute_serving_metrics(plan, result, slo=SloSpec(ttft_ns=None))
        (outcome,) = m.outcomes
        assert outcome.ttft_ns == 10_000
        assert outcome.tpot_ns == 5_000.0
        assert m.ttft_percentiles_ns == {"p50": 10_000, "p99": 10_000, "p999": 10_000}

    def test_single_token_request_falls_back_to_first_token(self):
        req = _request(0, arrival_ns=0, decode_tokens=1)
        plan, result = _fake_plan([req], {0: 7_000})  # no completion group
        m = compute_serving_metrics(plan, result, slo=SloSpec(ttft_ns=None))
        (outcome,) = m.outcomes
        assert outcome.completion_ns == 7_000
        assert outcome.tpot_ns == 0.0

    def test_missing_group_is_actionable(self):
        req = _request(0)
        plan, result = _fake_plan([req], {})
        with pytest.raises(ValueError, match="op_groups=plan.op_groups"):
            compute_serving_metrics(plan, result)

    def test_goodput_excludes_deadline_missed_requests(self):
        # 4 requests finishing their first token 1..4 ms after arrival;
        # a 2.5 ms TTFT deadline passes exactly 2 of them
        requests = [_request(i, arrival_ns=0, decode_tokens=1) for i in range(4)]
        finishes = {2 * i: (i + 1) * 1_000_000 for i in range(4)}
        plan, result = _fake_plan(requests, finishes, finish_time_ns=1_000_000_000)
        m = compute_serving_metrics(plan, result, slo=SloSpec(ttft_ns=2_500_000))
        assert m.good_requests == 2
        assert [o.slo_met for o in m.outcomes] == [True, True, False, False]
        # horizon is exactly 1 simulated second
        assert m.throughput_rps == pytest.approx(4.0)
        assert m.goodput_rps == pytest.approx(2.0)

    def test_tpot_deadline_also_gates_goodput(self):
        req_fast = _request(0, decode_tokens=3)
        req_slow = _request(1, decode_tokens=3)
        finishes = {
            0: 1_000, 1: 5_000,      # tpot (5000-1000)/2 = 2_000
            2: 1_000, 3: 21_000,     # tpot 10_000
        }
        plan, result = _fake_plan([req_fast, req_slow], finishes, finish_time_ns=10**9)
        m = compute_serving_metrics(
            plan, result, slo=SloSpec(ttft_ns=None, tpot_ns=5_000)
        )
        assert [o.slo_met for o in m.outcomes] == [True, False]
        assert m.good_requests == 1

    def test_empty_plan_yields_no_percentiles(self):
        plan, result = _fake_plan([], {}, finish_time_ns=0)
        m = compute_serving_metrics(plan, result)
        assert m.num_requests == 0
        assert m.ttft_percentiles_ns == {}
        assert m.goodput_rps == 0.0
        assert m.throughput_rps == 0.0

    def test_slo_spec_validation(self):
        with pytest.raises(ValueError, match="ttft_ns"):
            SloSpec(ttft_ns=0)
        with pytest.raises(ValueError, match="tpot_ns"):
            SloSpec(tpot_ns=-5)

"""Statistical property tests for the open-loop arrival generators.

The serving benchmarks lean on three distributional claims — Poisson
arrivals are memoryless (CV ~ 1), the MMPP ``bursty`` process is *burstier*
than Poisson (CV > 1), and ``diurnal`` arrivals follow their sinusoidal
rate envelope — plus hard determinism guarantees (equal seeds give
bit-identical streams, different seeds give different ones).  These tests
pin all of them with seeded draws and tolerances wide enough to be
flake-free across PYTHONHASHSEEDs (the generators must not consult
``hash()`` at all).
"""
import math

import numpy as np
import pytest

from repro.apps.inference import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_process_names,
    build_arrival_process,
)

RATE = 1000.0  # requests/s -> mean gap 1 ms
N = 4000


def _gaps(times: np.ndarray) -> np.ndarray:
    return np.diff(np.concatenate(([0], times)))


def _cv(gaps: np.ndarray) -> float:
    return float(np.std(gaps) / np.mean(gaps))


class TestPoisson:
    def test_mean_gap_within_tolerance(self):
        times = PoissonArrivals(RATE, seed=1).arrival_times_ns(N)
        mean_gap = float(np.mean(_gaps(times)))
        assert mean_gap == pytest.approx(1e9 / RATE, rel=0.05)

    def test_cv_close_to_one(self):
        times = PoissonArrivals(RATE, seed=1).arrival_times_ns(N)
        assert _cv(_gaps(times)) == pytest.approx(1.0, abs=0.1)

    def test_sorted_non_negative_int64(self):
        times = PoissonArrivals(RATE, seed=3).arrival_times_ns(256)
        assert times.dtype == np.int64
        assert (times >= 0).all()
        assert (np.diff(times) >= 0).all()


class TestBursty:
    def test_burstier_than_poisson(self):
        bursty = BurstyArrivals(RATE, seed=1).arrival_times_ns(N)
        poisson = PoissonArrivals(RATE, seed=1).arrival_times_ns(N)
        cv_bursty = _cv(_gaps(bursty))
        assert cv_bursty > 1.2, f"bursty CV {cv_bursty:.2f} is not burstier than Poisson"
        assert cv_bursty > _cv(_gaps(poisson))

    def test_long_run_rate_preserved(self):
        times = BurstyArrivals(RATE, seed=2).arrival_times_ns(N)
        mean_gap = float(np.mean(_gaps(times)))
        assert mean_gap == pytest.approx(1e9 / RATE, rel=0.15)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="burst_factor"):
            BurstyArrivals(RATE, burst_factor=0.5)
        with pytest.raises(ValueError, match="burst_fraction"):
            BurstyArrivals(RATE, burst_fraction=1.5)
        with pytest.raises(ValueError, match="calm"):
            BurstyArrivals(RATE, burst_factor=4.0, burst_fraction=0.5)


class TestDiurnal:
    def test_rate_envelope_followed(self):
        """Peak-phase bins collect more arrivals than trough-phase bins."""
        proc = DiurnalArrivals(RATE, seed=1, amplitude=0.8, period_s=0.1)
        times = proc.arrival_times_ns(N)
        period_ns = proc.period_s * 1e9
        phase = (times % period_ns) / period_ns
        # sin peaks at phase 0.25 and troughs at 0.75
        peak = int(np.sum((phase > 0.10) & (phase < 0.40)))
        trough = int(np.sum((phase > 0.60) & (phase < 0.90)))
        assert peak > 2 * trough, f"peak bin {peak} vs trough bin {trough}"

    def test_rate_at_matches_envelope(self):
        proc = DiurnalArrivals(RATE, seed=0, amplitude=0.5, period_s=1.0)
        assert proc.rate_at(0.0) == pytest.approx(RATE)
        assert proc.rate_at(0.25e9) == pytest.approx(RATE * 1.5)
        assert proc.rate_at(0.75e9) == pytest.approx(RATE * 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(RATE, amplitude=1.5)
        with pytest.raises(ValueError, match="period"):
            DiurnalArrivals(RATE, period_s=0.0)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
    def test_equal_seeds_bit_identical(self, name):
        a = build_arrival_process(name, RATE, seed=11).arrival_times_ns(512)
        b = build_arrival_process(name, RATE, seed=11).arrival_times_ns(512)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
    def test_different_seeds_distinct(self, name):
        a = build_arrival_process(name, RATE, seed=11).arrival_times_ns(512)
        b = build_arrival_process(name, RATE, seed=12).arrival_times_ns(512)
        assert not np.array_equal(a, b)

    def test_processes_use_distinct_streams(self):
        """Same seed, different process -> different draws (name-tagged RNG)."""
        a = PoissonArrivals(RATE, seed=5).arrival_times_ns(64)
        b = DiurnalArrivals(RATE, seed=5, amplitude=0.5).arrival_times_ns(64)
        assert not np.array_equal(a, b)


class TestRegistry:
    def test_names_sorted_and_complete(self):
        assert arrival_process_names() == sorted(ARRIVAL_PROCESSES)
        assert set(arrival_process_names()) == {"poisson", "bursty", "diurnal"}

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="registered: bursty, diurnal, poisson"):
            build_arrival_process("pareto", RATE)

    @pytest.mark.parametrize("bad_rate", [0.0, -5.0, math.inf, math.nan])
    def test_bad_rates_rejected(self, bad_rate):
        with pytest.raises(ValueError, match="rate_rps"):
            PoissonArrivals(bad_rate)

    def test_non_positive_count_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            PoissonArrivals(RATE).arrival_times_ns(0)

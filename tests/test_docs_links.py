"""Markdown link check over the project documentation.

Every relative link in README.md and docs/*.md must point at a file that
exists in the repository, and every fragment (``#anchor``) must match a
heading of its target document (GitHub-style slugs).  External links are
only sanity-checked for scheme.  The CI docs job runs this suite.
"""
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

# [text](target) — ignoring images and in-code examples is fine for our docs
_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    slug = heading.strip().lower()
    slug = slug.replace("`", "")
    slug = re.sub(r"[^a-z0-9 _-]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {_slugify(h) for h in _HEADING.findall(path.read_text())}


def _links(path: Path):
    return _LINK.findall(path.read_text())


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    problems = []
    for target in _links(doc):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # external scheme
            if not target.startswith(("http://", "https://", "mailto:")):
                problems.append(f"{target}: unexpected scheme")
            continue
        raw, _, fragment = target.partition("#")
        dest = doc if not raw else (doc.parent / raw).resolve()
        if raw and not dest.exists():
            problems.append(f"{target}: file {raw} does not exist")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in _anchors(dest):
                problems.append(f"{target}: no heading for anchor #{fragment}")
    assert not problems, f"{doc.name} has broken links:\n" + "\n".join(problems)


def test_docs_cross_reference_each_other():
    """The doc set must stay connected: the README links the references."""
    readme = (REPO_ROOT / "README.md").read_text()
    for name in (
        "docs/architecture.md",
        "docs/performance.md",
        "docs/collectives.md",
        "docs/inference.md",
        "docs/scaling.md",
        "docs/cli.md",
    ):
        assert name in readme, f"README does not link {name}"
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "collectives.md" in architecture
    assert "inference.md" in architecture
    assert "scaling.md" in architecture


def test_collectives_doc_names_only_registered_algorithms():
    """Algorithm names in docs/collectives.md headings must exist in the registry."""
    from repro.collectives import COLLECTIVE_ALGORITHMS

    registered = {
        name for kinds in COLLECTIVE_ALGORITHMS.values() for name in kinds
    }
    text = (REPO_ROOT / "docs" / "collectives.md").read_text()
    documented = set(re.findall(r"^### `([a-z0-9_]+)`", text, re.MULTILINE))
    assert documented, "collectives.md lost its per-algorithm sections"
    unknown = documented - registered
    assert not unknown, f"collectives.md documents unregistered algorithms: {unknown}"
    # and every allreduce algorithm has a reference section
    missing = set(COLLECTIVE_ALGORITHMS["allreduce"]) - documented
    assert not missing, f"allreduce algorithms missing a reference section: {missing}"

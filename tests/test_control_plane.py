"""Unit tests of the control-plane convergence models (repro.network.control_plane).

Covers the protocol registry (mirroring the routing-strategy registry), the
advertisement-wave arithmetic (origin detection, per-hop learn times, the
distance-vector factor-two hop cost, bounded message counts, waves not
crossing dead links), view maintenance (reference-counted believed-failed
sets, memoized view keys, the ``knows`` forwarding predicate) and the
:class:`ConvergenceRecord` bookkeeping both backends surface.
"""
import pytest

from repro.network.control_plane import (
    CONTROL_PLANES,
    ControlPlane,
    ConvergenceRecord,
    DistanceVectorControlPlane,
    LinkStateControlPlane,
    OracleControlPlane,
    control_plane_names,
    create_control_plane,
    register_control_plane,
)
from repro.network.faults import LINK_DOWN, LINK_UP, resolve_link_ids
from repro.network.topology.fattree import FatTreeTopology


def _fat_tree() -> FatTreeTopology:
    # 2 ToRs x 4 hosts, 4 cores at 1:1 -- switch graph: tor0, tor1, core0-3
    return FatTreeTopology(8, nodes_per_tor=4)


def _ids(topo, *names: str):
    return [resolve_link_ids(topo, n)[0] for n in names]


# ------------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_protocols_registered(self):
        assert control_plane_names() == ("dv", "ls", "oracle")
        assert CONTROL_PLANES["oracle"] is OracleControlPlane
        assert CONTROL_PLANES["ls"] is LinkStateControlPlane
        assert CONTROL_PLANES["dv"] is DistanceVectorControlPlane

    def test_create_by_name(self):
        topo = _fat_tree()
        cp = create_control_plane("dv", topo, propagation_delay_ns=7, processing_delay_ns=3)
        assert isinstance(cp, DistanceVectorControlPlane)
        assert cp.propagation_delay_ns == 7 and cp.processing_delay_ns == 3

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown control plane 'bgp'.*dv, ls, oracle"):
            create_control_plane("bgp", _fat_tree())

    def test_register_decorator(self):
        @register_control_plane
        class SlowFlood(ControlPlane):
            name = "slowflood"
            rounds_per_hop = 3

        try:
            assert create_control_plane("slowflood", _fat_tree()).rounds_per_hop == 3
            assert "slowflood" in control_plane_names()
        finally:
            del CONTROL_PLANES["slowflood"]

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            create_control_plane("ls", _fat_tree(), propagation_delay_ns=-1)
        with pytest.raises(ValueError, match="non-negative"):
            create_control_plane("ls", _fat_tree(), processing_delay_ns=-1)


# ------------------------------------------------------------- wave arithmetic
class TestWave:
    def test_origins_are_the_switch_endpoints(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        assert cp._origin_switches(cable) == [
            topo.attachment(0),  # tor0
            topo.links[cable[0]].dst,  # core0
        ]
        # host links contribute only their switch endpoint
        host_up = _ids(topo, "host0->tor0")
        assert cp._origin_switches(host_up) == [topo.attachment(0)]

    def test_learn_times_one_hop_fat_tree(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo, propagation_delay_ns=500, processing_delay_ns=100)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        topo.fail_links(cable)
        learn, messages = cp.learn_times(cp._origin_switches(cable), event_time=10_000)
        # origins detect after one processing delay; every other switch is one
        # wave hop away on this two-level fabric
        base, hop = 10_100, 600
        assert set(learn) == set(cp._adjacency)
        origins = set(cp._origin_switches(cable))
        for sw, t in learn.items():
            assert t == (base if sw in origins else base + hop)
        # one advertisement per alive out-edge of every reached switch:
        # tor0 has 3 alive uplinks, core0 has 1 alive downlink, the other
        # three cores 2 each, tor1 all 4
        assert messages == 3 + 1 + 3 * 2 + 4

    def test_dv_pays_double_per_hop(self):
        topo_ls, topo_dv = _fat_tree(), _fat_tree()
        cable_names = ("tor0->core0", "core0->tor0")
        results = {}
        for name, topo in (("ls", topo_ls), ("dv", topo_dv)):
            cp = create_control_plane(name, topo, propagation_delay_ns=500, processing_delay_ns=100)
            cable = _ids(topo, *cable_names)
            topo.fail_links(cable)
            record, learn = cp.originate(10_000, LINK_DOWN, cable)
            results[name] = (record, learn)
        ls_record, ls_learn = results["ls"]
        dv_record, dv_learn = results["dv"]
        assert ls_record.time_to_recover_ns == 100 + 600
        assert dv_record.time_to_recover_ns == 100 + 2 * 600
        assert dv_record.messages == 2 * ls_record.messages
        # per switch: the dv wave lags exactly one extra (prop + proc) per hop
        for sw, t in ls_learn.items():
            lag = (t - 10_100) // 600
            assert dv_learn[sw] == 10_100 + lag * 1200

    def test_wave_does_not_cross_dead_links(self):
        topo = _fat_tree()
        # statically cut core0 off entirely, then create the control plane:
        # views boot with the truth, and later waves cannot reach core0
        isolated = _ids(
            topo, "tor0->core0", "core0->tor0", "tor1->core0", "core0->tor1"
        )
        topo.fail_links(isolated)
        cp = create_control_plane("ls", topo)
        assert cp.converged()  # boots converged with the pre-failed state
        cable = _ids(topo, "tor0->core1", "core1->tor0")
        topo.fail_links(cable)
        record, learn = cp.originate(5_000, LINK_DOWN, cable)
        core0 = topo.links[isolated[0]].dst
        assert core0 not in learn
        assert set(learn) == set(cp._adjacency) - {core0}
        assert record.converged_at_ns == max(learn.values())

    def test_oracle_is_instantaneous(self):
        topo = _fat_tree()
        cp = create_control_plane("oracle", topo)
        assert cp.instantaneous
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        topo.fail_links(cable)
        record, learn = cp.originate(10_000, LINK_DOWN, cable)
        assert record.time_to_recover_ns == 0
        assert record.messages == 0 and cp.messages_total == 0
        assert set(learn) == set(cp._adjacency)
        assert all(t == 10_000 for t in learn.values())

    def test_messages_accumulate(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        topo.fail_links(cable)
        first, _ = cp.originate(1_000, LINK_DOWN, cable)
        topo.restore_links(cable)
        second, _ = cp.originate(2_000, LINK_UP, cable)
        assert cp.messages_total == first.messages + second.messages
        # the link-up wave floods over the restored graph: strictly more
        # alive out-edges than the link-down wave saw
        assert second.messages > first.messages


# ------------------------------------------------------------------ the views
class TestViews:
    def test_apply_and_converged(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        topo.fail_links(cable)
        assert not cp.converged()
        _, learn = cp.originate(0, LINK_DOWN, cable)
        cp.apply(list(learn), LINK_DOWN, cable)
        assert cp.converged()
        for sw in cp._adjacency:
            assert cp.view_key(sw) == frozenset(cable)

    def test_partial_apply_leaves_stale_switches(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        topo.fail_links(cable)
        tor0 = topo.attachment(0)
        cp.apply([tor0], LINK_DOWN, cable)
        assert cp.view_key(tor0) == frozenset(cable)
        tor1 = topo.attachment(4)
        assert cp.view_key(tor1) == frozenset()
        assert not cp.converged()

    def test_views_reference_count_overlapping_causes(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        link = _ids(topo, "tor0->core0")
        sw = topo.attachment(0)
        cp.apply([sw], LINK_DOWN, link)
        cp.apply([sw], LINK_DOWN, link)  # second cause (e.g. a drain)
        cp.apply([sw], LINK_UP, link)
        assert cp.view_key(sw) == frozenset(link)  # one cause still holds
        cp.apply([sw], LINK_UP, link)
        assert cp.view_key(sw) == frozenset()
        cp.apply([sw], LINK_UP, link)  # spurious restore is a no-op
        assert cp.view_key(sw) == frozenset()

    def test_view_key_is_memoized_and_invalidated(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        sw = topo.attachment(0)
        key = cp.view_key(sw)
        assert cp.view_key(sw) is key
        cp.apply([sw], LINK_DOWN, _ids(topo, "tor0->core0"))
        assert cp.view_key(sw) != key

    def test_knows_predicate(self):
        topo = _fat_tree()
        cp = create_control_plane("ls", topo)
        cable = _ids(topo, "tor0->core0", "core0->tor0")
        route = next(
            r for r in topo.route_table(0, 4).candidates if cable[0] in r
        )
        topo.fail_links(cable)
        mask = topo.alive_mask()
        tor0 = topo.attachment(0)
        # stale switch: the dead uplink is not in its view -> blackhole
        assert not cp.knows(tor0, route, 1, mask)
        cp.apply([tor0], LINK_DOWN, cable)
        assert cp.knows(tor0, route, 1, mask)
        # hops past the dead link are not the forwarding switch's problem
        dead_hop = route.index(cable[0])
        assert cp.knows(tor0, route, dead_hop + 1, mask)
        # hosts hold no view and never blackhole
        assert cp.knows(0, route, 1, mask)


# ----------------------------------------------------------------- the record
class TestConvergenceRecord:
    def test_fields_and_ttr(self):
        record = ConvergenceRecord(
            time_ns=1_000,
            kind=LINK_DOWN,
            link_ids=(3, 4),
            converged_at_ns=2_500,
            messages=14,
            protocol="ls",
        )
        assert record.time_to_recover_ns == 1_500
        with pytest.raises(AttributeError):
            record.messages = 99  # frozen

"""Randomized property tests for control-plane convergence.

A seeded RNG generates random topologies (fat tree / torus / dragonfly with
random shape parameters) and random fault histories (a random subset of the
fabric cables fails, then a random subset of those recovers), replayed
through both real protocols (``ls`` and ``dv``).  For every scenario:

* after every advertisement wave has been applied, each *fully informed*
  switch's local view equals the topology's true failed set — so its
  view-filtered route table is exactly the static oracle's alive-filtered
  table (or both report the same partition),
* ``converged()`` holds iff every wave reached every switch (a switch cut
  off from an event's origins stays stale forever, by design),
* per-event message counts are bounded by ``rounds_per_hop`` messages per
  directed switch-to-switch cable — the waves are loop-free,
* the wave arithmetic is deterministic: recomputing a wave yields identical
  learn times and message counts.
"""
import random

import pytest

from repro.network.control_plane import create_control_plane
from repro.network.faults import (
    LINK_DOWN,
    LINK_UP,
    NetworkPartitionError,
    fabric_cables,
)
from repro.network.topology.dragonfly import DragonflyTopology
from repro.network.topology.fattree import FatTreeTopology
from repro.network.topology.torus import TorusTopology

NUM_RANDOM_SCENARIOS = 12
PROTOCOLS = ("ls", "dv")


def _random_topology(rng: random.Random):
    kind = rng.choice(("fat_tree", "torus", "dragonfly"))
    if kind == "fat_tree":
        nodes_per_tor = rng.randint(2, 6)
        num_tors = rng.randint(2, 4)
        return FatTreeTopology(
            nodes_per_tor * num_tors,
            nodes_per_tor=nodes_per_tor,
            oversubscription=rng.choice((1.0, 2.0)),
        )
    if kind == "torus":
        dims = tuple(rng.randint(2, 4) for _ in range(rng.choice((2, 3))))
        hosts_per_node = rng.randint(1, 2)
        capacity = hosts_per_node
        for d in dims:
            capacity *= d
        return TorusTopology(
            rng.randint(max(2, capacity // 2), capacity),
            dims=dims,
            hosts_per_node=hosts_per_node,
        )
    groups = rng.randint(2, 4)
    routers = rng.randint(2, 3)
    nodes = rng.randint(1, 3)
    capacity = groups * routers * nodes
    return DragonflyTopology(
        rng.randint(max(2, capacity // 2), capacity),
        groups=groups,
        routers_per_group=routers,
        nodes_per_router=nodes,
    )


def _random_history(rng: random.Random, topo):
    """(kind, link_ids) fault events: a failure burst, then partial recovery."""
    cables = fabric_cables(topo)
    if not cables:
        return []
    down = rng.sample(cables, rng.randint(1, max(1, len(cables) // 2)))
    up = rng.sample(down, rng.randint(0, len(down)))
    return [(LINK_DOWN, tuple(c)) for c in down] + [(LINK_UP, tuple(c)) for c in up]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCENARIOS))
def test_protocols_converge_to_the_oracle_routes(seed, protocol):
    rng = random.Random(seed)
    topo = _random_topology(rng)
    history = _random_history(rng, topo)
    cp = create_control_plane(
        protocol,
        topo,
        propagation_delay_ns=rng.choice((100, 500, 5000)),
        processing_delay_ns=rng.choice((0, 100)),
    )
    directed_cables = sum(len(edges) for edges in cp._adjacency.values())
    fully_informed = set(cp._adjacency)
    all_covered = True
    for step, (kind, link_ids) in enumerate(history):
        # flip the truth first, then originate over the post-event graph
        if kind == LINK_DOWN:
            topo.fail_links(link_ids)
        else:
            topo.restore_links(link_ids)
        record, learn = cp.originate(step * 10_000, kind, link_ids)
        # loop-free wave: at most rounds_per_hop messages per directed cable
        assert record.messages <= cp.rounds_per_hop * directed_cables
        assert record.converged_at_ns == (
            max(learn.values()) if learn else record.time_ns
        )
        assert all(t >= record.time_ns for t in learn.values())
        # deterministic arithmetic: recomputing the wave changes nothing
        replay, messages = cp.learn_times(cp._origin_switches(link_ids), record.time_ns)
        assert replay == learn and messages == record.messages
        cp.apply(list(learn), kind, link_ids)
        fully_informed &= set(learn)
        all_covered &= set(learn) == set(cp._adjacency)

    truth = topo.failed_links
    # every switch that saw every wave has converged on the truth...
    for sw in fully_informed:
        assert cp.view_key(sw) == truth
    # ...and global convergence holds exactly when no switch missed a wave
    assert cp.converged() == all_covered

    # a converged switch routes exactly like the static oracle: its
    # view-filtered table equals the alive-filtered table, partitions
    # included
    pairs = [
        (src, dst)
        for src in range(topo.num_hosts)
        for dst in rng.sample(range(topo.num_hosts), min(4, topo.num_hosts))
        if src != dst
    ]
    for src, dst in pairs:
        if topo.attachment(src) not in fully_informed:
            continue
        view = cp.view_key(topo.attachment(src))
        try:
            oracle = topo.alive_table(src, dst).candidates
        except NetworkPartitionError:
            with pytest.raises(NetworkPartitionError):
                topo.view_table(src, dst, view)
            continue
        assert topo.view_table(src, dst, view).candidates == oracle

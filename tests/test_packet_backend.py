"""Tests for the packet-level backend: timing, queues, drops, ECN, NDP."""
import pytest

from repro.goal import GoalBuilder
from repro.network import SimulationConfig
from repro.network.packet import PacketBackend
from repro.scheduler import GoalScheduler, simulate
from repro.schedgen import incast


def _pingpong(size):
    b = GoalBuilder(2)
    b.rank(0).send(size, dst=1, tag=1)
    b.rank(1).recv(size, src=0, tag=1)
    return b.build()


class TestBasics:
    def test_single_message_time_is_sane(self):
        cfg = SimulationConfig(topology="single_switch", link_latency=500, host_overhead=0)
        res = simulate(_pingpong(1 << 20), backend="htsim", config=cfg)
        serialization = (1 << 20) / cfg.link_bandwidth
        # lower bound: serialisation over one link + 2 hops of latency
        assert res.finish_time_ns >= serialization + 2 * cfg.link_latency
        # upper bound: within 3x of the ideal (windowing + store-and-forward)
        assert res.finish_time_ns <= 3 * serialization + 20 * cfg.link_latency

    def test_small_message_single_packet(self):
        cfg = SimulationConfig(topology="single_switch")
        res = simulate(_pingpong(100), backend="htsim", config=cfg)
        assert res.stats.packets_sent == 1
        assert res.stats.packets_delivered == 1
        assert res.stats.acks_sent == 1

    def test_packet_count_matches_mtu_segmentation(self):
        cfg = SimulationConfig(topology="single_switch", mtu=4096)
        size = 10 * 4096 + 1
        res = simulate(_pingpong(size), backend="htsim", config=cfg)
        assert res.stats.packets_sent == 11

    def test_bytes_delivered(self):
        cfg = SimulationConfig(topology="single_switch")
        res = simulate(_pingpong(123456), backend="htsim", config=cfg)
        assert res.stats.bytes_delivered == 123456

    def test_recv_posted_late_still_completes(self):
        b = GoalBuilder(2)
        b.rank(0).send(8192, dst=1, tag=1)
        c = b.rank(1).calc(1_000_000)
        b.rank(1).recv(8192, src=0, tag=1, requires=[c])
        res = simulate(b.build(), backend="htsim", config=SimulationConfig(topology="single_switch"))
        assert res.ops_completed == 3
        assert res.finish_time_ns >= 1_000_000

    def test_deterministic_given_seed(self):
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4, seed=42)
        sched = incast(8, 1 << 18)
        r1 = simulate(sched, backend="htsim", config=cfg)
        r2 = simulate(sched, backend="htsim", config=cfg)
        assert r1.finish_time_ns == r2.finish_time_ns
        assert r1.stats.packets_sent == r2.stats.packets_sent


class TestCongestionBehaviour:
    def test_incast_congests_receiver_downlink(self):
        cfg = SimulationConfig(topology="single_switch", buffer_size=1 << 16)
        sched = incast(9, 1 << 19)
        res = simulate(sched, backend="htsim", config=cfg)
        # eight senders into one downlink with tiny buffers must mark or drop
        assert res.stats.packets_ecn_marked + res.stats.packets_dropped > 0

    def test_drops_recovered_by_retransmission(self):
        cfg = SimulationConfig(topology="single_switch", buffer_size=1 << 14, initial_window_packets=64)
        sched = incast(9, 1 << 19)
        res = simulate(sched, backend="htsim", config=cfg)
        assert res.ops_completed == sched.num_ops()
        if res.stats.packets_dropped:
            assert res.stats.retransmissions > 0

    def test_oversubscription_slows_cross_tor_traffic(self):
        sched = incast(16, 1 << 19, receiver=0, senders=list(range(8, 16)))
        base = SimulationConfig(topology="fat_tree", nodes_per_tor=8, oversubscription=1.0)
        over = base.replace(oversubscription=8.0)
        t_base = simulate(sched, backend="htsim", config=base).finish_time_ns
        t_over = simulate(sched, backend="htsim", config=over).finish_time_ns
        assert t_over >= t_base

    def test_ndp_trims_instead_of_dropping(self):
        cfg = SimulationConfig(
            topology="single_switch", buffer_size=1 << 14, cc_algorithm="ndp", initial_window_packets=64
        )
        sched = incast(9, 1 << 19)
        res = simulate(sched, backend="htsim", config=cfg)
        assert res.stats.packets_trimmed > 0
        assert res.stats.packets_dropped == 0
        assert res.ops_completed == sched.num_ops()

    def test_queue_statistics_exposed(self):
        cfg = SimulationConfig(topology="single_switch", buffer_size=1 << 15)
        backend = PacketBackend()
        sched = incast(5, 1 << 18)
        GoalScheduler(sched, backend=backend, config=cfg).run()
        stats = backend.queue_statistics()
        assert len(stats) == len(backend.topology.links)
        assert any(q["max_queued_bytes"] > 0 for q in stats)

    def test_mct_statistics_present(self):
        cfg = SimulationConfig(topology="single_switch")
        res = simulate(incast(5, 1 << 18), backend="htsim", config=cfg)
        mct = res.mct_statistics()
        assert mct["count"] == 4
        assert mct["max"] >= mct["p99"] >= mct["mean"] > 0


class TestCongestionControlComparison:
    def _run(self, cc, oversubscription=1.0):
        cfg = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            oversubscription=oversubscription,
            cc_algorithm=cc,
            buffer_size=1 << 17,
        )
        sched = incast(16, 1 << 19, receiver=0, senders=list(range(8, 16)))
        return simulate(sched, backend="htsim", config=cfg)

    def test_all_algorithms_complete(self):
        for cc in ("mprdma", "swift", "dctcp", "ndp", "fixed"):
            res = self._run(cc)
            assert res.stats.messages_delivered == 8

    def test_ecn_based_cc_marks_under_oversubscription(self):
        res = self._run("mprdma", oversubscription=8.0)
        assert res.stats.packets_ecn_marked > 0

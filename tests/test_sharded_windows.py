"""Property tests for the sharded driver's conservative windows.

``run_sharded(..., window_log=log)`` records one ``(floor, until,
epoch_times)`` triple per barrier window.  Over seeded pseudo-random fault
schedules these tests check the invariants the determinism proof leans on:

* a fault epoch is consumed only once the global floor has reached it
  (every earlier event has run on every shard, none at/after it has);
* no window's ``until`` ever crosses an epoch that has not been consumed;
* every window respects the plan lookahead (``until <= floor + lookahead``);
* every fault epoch in the schedule is applied exactly once, in time order,
  including epochs that fire after the last packet has drained;
* snapshot jump-windows (adaptive routing) carry no epochs and land on a
  cadence boundary;
* the ``min_retransmit_timeout <= lookahead`` rejection names both
  computed values so the error is actionable without a debugger.
"""
from __future__ import annotations

import contextlib
import random
import warnings

import pytest

from repro.collectives import build_collective_schedule
from repro.network.config import SimulationConfig
from repro.network.faults import LINK_DOWN, LINK_UP, FaultEvent, FaultSchedule
from repro.network.packet.sharded import plan_shards, run_sharded
from repro.network.topology import build_topology


@contextlib.contextmanager
def _inline_pools():
    """Run shards in-process: identical results, no spawn cost per case."""
    import concurrent.futures

    real = concurrent.futures.ProcessPoolExecutor

    class _NoPool:
        def __init__(self, *args, **kwargs):
            raise NotImplementedError("inline shards for test speed")

    concurrent.futures.ProcessPoolExecutor = _NoPool
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        concurrent.futures.ProcessPoolExecutor = real


def _schedule(size=4096):
    return build_collective_schedule(
        "allreduce", "recursive_doubling", 16, size, name="window-props"
    )


# one flap per link keeps the schedule self-consistent (a second link_down
# on an already-dead link would be rejected as contradictory); the pool
# spans distinct ToRs so at most two of a ToR's four uplinks are ever down
_FLAP_POOL = [
    "tor0->core0",
    "tor1->core1",
    "tor2->core2",
    "tor3->core3",
    "tor0->core1",
    "tor1->core2",
    "tor2->core3",
    "tor3->core0",
]


def _random_faults(seed):
    rng = random.Random(seed)
    links = rng.sample(_FLAP_POOL, rng.randint(1, 4))
    events = []
    for link in links:
        down = rng.randrange(500, 25_000)
        up = down + rng.randrange(100, 8_000)
        events.append(FaultEvent(down, LINK_DOWN, link))
        events.append(FaultEvent(up, LINK_UP, link))
    return FaultSchedule(events=tuple(events))


def _epoch_times(config, num_ranks=16):
    topology = build_topology(config, num_ranks)
    return [t for t, _ in config.faults.grouped_events(topology)]


def _check_window_invariants(log, lookahead, expected_epochs):
    """Assert the barrier-window invariants over one recorded run."""
    assert log, "windowed run must record at least one window"
    consumed = []
    remaining = list(expected_epochs)
    for floor, until, epoch_times in log:
        if until < floor:
            # idle-gap snapshot jump: no traffic, no epochs
            assert epoch_times == ()
            continue
        for t in epoch_times:
            # consumed only once the global floor reached the epoch
            assert t <= floor, f"epoch {t} consumed before floor {floor}"
            assert remaining and remaining[0] == t, (
                f"epoch {t} consumed out of order (expected {remaining[:1]})"
            )
            remaining.pop(0)
            consumed.append(t)
        assert until <= floor + lookahead, (
            f"window [{floor}, {until}] exceeds lookahead {lookahead}"
        )
        if remaining:
            # never run past an unconsumed epoch
            assert until < remaining[0], (
                f"window edge {until} crossed unconsumed epoch {remaining[0]}"
            )
    assert consumed == list(expected_epochs), (
        "every fault epoch must be applied exactly once, in order"
    )


class TestWindowInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 424242])
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_random_fault_schedules(self, seed, shards):
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            seed=seed,
            shards=shards,
            faults=_random_faults(seed),
        )
        schedule = _schedule()
        expected = _epoch_times(config)
        topology = build_topology(config, schedule.num_ranks)
        plan = plan_shards(topology, schedule.num_ranks, shards)
        log = []
        with _inline_pools():
            result, _ = run_sharded(schedule, config, window_log=log)
        assert result.ops_completed > 0
        _check_window_invariants(log, plan.lookahead, expected)

    def test_no_faults_means_no_epochs_in_log(self):
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            shards=2,
        )
        schedule = _schedule()
        topology = build_topology(config, schedule.num_ranks)
        plan = plan_shards(topology, schedule.num_ranks, 2)
        log = []
        with _inline_pools():
            run_sharded(schedule, config, window_log=log)
        assert all(epochs == () for _, _, epochs in log)
        assert all(until == floor + plan.lookahead for floor, until, _ in log)

    def test_post_traffic_epochs_still_apply(self):
        # a flap long after the last packet drains: the driver must keep
        # opening windows until the schedule is exhausted (the convergence
        # ledger records transitions even when no packet witnesses them)
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            shards=2,
            faults=FaultSchedule(
                events=(
                    FaultEvent(5_000_000, LINK_DOWN, "tor0->core0"),
                    FaultEvent(5_000_500, LINK_UP, "tor0->core0"),
                )
            ),
        )
        schedule = _schedule()
        expected = _epoch_times(config)
        log = []
        with _inline_pools():
            result, _ = run_sharded(schedule, config, window_log=log)
        applied = [t for _, _, epochs in log for t in epochs]
        assert applied == expected
        assert result.finish_time_ns < 5_000_000

    def test_same_time_events_share_one_epoch(self):
        # two transitions declared at the same nanosecond group into a
        # single epoch and are applied at one barrier, in declaration order
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            shards=2,
            faults=FaultSchedule(
                events=(
                    FaultEvent(3000, LINK_DOWN, "tor0->core0"),
                    FaultEvent(3000, LINK_DOWN, "tor1->core1"),
                    FaultEvent(9000, LINK_UP, "tor0->core0"),
                    FaultEvent(9000, LINK_UP, "tor1->core1"),
                )
            ),
        )
        schedule = _schedule()
        assert _epoch_times(config) == [3000, 9000]
        log = []
        with _inline_pools():
            run_sharded(schedule, config, window_log=log)
        applied = [t for _, _, epochs in log for t in epochs]
        assert applied == [3000, 9000]

    @pytest.mark.parametrize("cadence", [0, 1000])
    def test_snapshot_jumps_carry_no_epochs(self, cadence):
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="adaptive",
            cc_algorithm="mprdma",
            shards=2,
            load_snapshot_ns=cadence,
            faults=_random_faults(3),
        )
        schedule = _schedule()
        expected = _epoch_times(config)
        topology = build_topology(config, schedule.num_ranks)
        plan = plan_shards(topology, schedule.num_ranks, 2)
        interval = cadence or topology.min_link_latency()
        log = []
        with _inline_pools():
            run_sharded(schedule, config, window_log=log)
        _check_window_invariants(log, plan.lookahead, expected)
        for floor, until, epochs in log:
            if until < floor:
                assert epochs == ()
                assert until % interval == 0, "jump must land on a cadence boundary"


class TestShardedValidation:
    def test_retransmit_timeout_error_names_computed_values(self):
        schedule = _schedule()
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            shards=2,
        )
        topology = build_topology(config, schedule.num_ranks)
        plan = plan_shards(topology, schedule.num_ranks, 2)
        bad = config.replace(min_retransmit_timeout=plan.lookahead)
        with pytest.raises(ValueError) as excinfo:
            run_sharded(schedule, bad)
        message = str(excinfo.value)
        assert f"min_retransmit_timeout ({plan.lookahead} ns)" in message
        assert f"lookahead ({plan.lookahead} ns)" in message
        assert "later window" in message

    def test_timeout_one_above_lookahead_accepted(self):
        schedule = _schedule()
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            routing="minimal",
            cc_algorithm="mprdma",
            shards=2,
        )
        topology = build_topology(config, schedule.num_ranks)
        plan = plan_shards(topology, schedule.num_ranks, 2)
        ok = config.replace(min_retransmit_timeout=plan.lookahead + 1)
        with _inline_pools():
            result, _ = run_sharded(schedule, ok)
        assert result.ops_completed > 0

"""Tests for the network topologies and their routing."""
import pytest

from repro.network.config import SimulationConfig
from repro.network.topology import (
    DragonflyTopology,
    FatTreeTopology,
    SingleSwitchTopology,
    build_topology,
)


class TestSingleSwitch:
    def test_route_shape(self):
        topo = SingleSwitchTopology(4)
        routes = topo.routes(0, 3)
        assert len(routes) == 1
        assert len(routes[0]) == 2

    def test_routes_valid(self):
        SingleSwitchTopology(5).check_routes()

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            SingleSwitchTopology(2).routes(1, 1)

    def test_device_and_link_counts(self):
        topo = SingleSwitchTopology(6)
        assert topo.num_devices == 7
        assert len(topo.links) == 12


class TestFatTree:
    def test_fully_provisioned_core_count(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=1.0)
        assert topo.num_tors == 2
        assert topo.num_cores == 16

    def test_oversubscription_reduces_cores(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=8.0)
        assert topo.num_cores == 2
        assert topo.oversubscription == 8.0

    def test_intra_tor_route_stays_local(self):
        topo = FatTreeTopology(32, nodes_per_tor=16)
        routes = topo.routes(0, 1)
        assert len(routes) == 1 and len(routes[0]) == 2

    def test_inter_tor_routes_fan_out_over_cores(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=2.0)
        routes = topo.routes(0, 20)
        assert len(routes) == topo.num_cores
        for route in routes:
            assert len(route) == 4

    def test_routes_valid(self):
        FatTreeTopology(12, nodes_per_tor=4, oversubscription=2.0).check_routes()

    def test_core_uplinks_listed(self):
        topo = FatTreeTopology(8, nodes_per_tor=4, oversubscription=1.0)
        assert len(topo.core_uplinks(0)) == topo.num_cores

    def test_describe(self):
        d = FatTreeTopology(8, nodes_per_tor=4, oversubscription=4.0).describe()
        assert d["num_cores"] == 1 and d["oversubscription"] == 4.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FatTreeTopology(8, nodes_per_tor=0)
        with pytest.raises(ValueError):
            FatTreeTopology(8, oversubscription=0.5)

    def test_min_path_latency(self):
        topo = FatTreeTopology(8, nodes_per_tor=4, latency=100)
        assert topo.min_path_latency(0, 1) == 200
        assert topo.min_path_latency(0, 5) == 400


class TestDragonfly:
    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            DragonflyTopology(1000, groups=2, routers_per_group=2, nodes_per_router=2)

    def test_same_router_route(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        assert len(topo.routes(0, 1)[0]) == 2

    def test_same_group_route(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        assert len(topo.routes(0, 4)[0]) == 3

    def test_inter_group_route_contains_global_link(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        routes = topo.routes(0, 8)
        assert routes, "expected at least one inter-group route"
        assert 3 <= len(routes[0]) <= 5

    def test_routes_valid(self):
        DragonflyTopology(24, groups=3, routers_per_group=2, nodes_per_router=4).check_routes()

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            DragonflyTopology(4, groups=1)


class TestBuildTopology:
    def test_build_each_kind(self):
        for kind, cls in (
            ("single_switch", SingleSwitchTopology),
            ("fat_tree", FatTreeTopology),
            ("dragonfly", DragonflyTopology),
        ):
            cfg = SimulationConfig(topology=kind, nodes_per_tor=8)
            topo = build_topology(cfg, 8)
            assert isinstance(topo, cls)
            assert topo.num_hosts == 8

    def test_config_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            SimulationConfig(topology="hypercube")

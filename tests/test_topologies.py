"""Tests for the network topologies and their routing."""
import numpy as np
import pytest

from repro.network.config import SimulationConfig
from repro.network.topology import (
    DragonflyTopology,
    FatTreeTopology,
    SingleSwitchTopology,
    SlimFlyTopology,
    TorusTopology,
    build_topology,
    register_topology,
    topology_names,
)


class TestSingleSwitch:
    def test_route_shape(self):
        topo = SingleSwitchTopology(4)
        routes = topo.routes(0, 3)
        assert len(routes) == 1
        assert len(routes[0]) == 2

    def test_routes_valid(self):
        SingleSwitchTopology(5).check_routes()

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            SingleSwitchTopology(2).routes(1, 1)

    def test_device_and_link_counts(self):
        topo = SingleSwitchTopology(6)
        assert topo.num_devices == 7
        assert len(topo.links) == 12


class TestFatTree:
    def test_fully_provisioned_core_count(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=1.0)
        assert topo.num_tors == 2
        assert topo.num_cores == 16

    def test_oversubscription_reduces_cores(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=8.0)
        assert topo.num_cores == 2
        assert topo.oversubscription == 8.0

    def test_intra_tor_route_stays_local(self):
        topo = FatTreeTopology(32, nodes_per_tor=16)
        routes = topo.routes(0, 1)
        assert len(routes) == 1 and len(routes[0]) == 2

    def test_inter_tor_routes_fan_out_over_cores(self):
        topo = FatTreeTopology(32, nodes_per_tor=16, oversubscription=2.0)
        routes = topo.routes(0, 20)
        assert len(routes) == topo.num_cores
        for route in routes:
            assert len(route) == 4

    def test_routes_valid(self):
        FatTreeTopology(12, nodes_per_tor=4, oversubscription=2.0).check_routes()

    def test_core_uplinks_listed(self):
        topo = FatTreeTopology(8, nodes_per_tor=4, oversubscription=1.0)
        assert len(topo.core_uplinks(0)) == topo.num_cores

    def test_describe(self):
        d = FatTreeTopology(8, nodes_per_tor=4, oversubscription=4.0).describe()
        assert d["num_cores"] == 1 and d["oversubscription"] == 4.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FatTreeTopology(8, nodes_per_tor=0)
        with pytest.raises(ValueError):
            FatTreeTopology(8, oversubscription=0.5)

    def test_min_path_latency(self):
        topo = FatTreeTopology(8, nodes_per_tor=4, latency=100)
        assert topo.min_path_latency(0, 1) == 200
        assert topo.min_path_latency(0, 5) == 400


class TestDragonfly:
    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            DragonflyTopology(1000, groups=2, routers_per_group=2, nodes_per_router=2)

    def test_same_router_route(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        assert len(topo.routes(0, 1)[0]) == 2

    def test_same_group_route(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        assert len(topo.routes(0, 4)[0]) == 3

    def test_inter_group_route_contains_global_link(self):
        topo = DragonflyTopology(16, groups=2, routers_per_group=2, nodes_per_router=4)
        routes = topo.routes(0, 8)
        assert routes, "expected at least one inter-group route"
        assert 3 <= len(routes[0]) <= 5

    def test_routes_valid(self):
        DragonflyTopology(24, groups=3, routers_per_group=2, nodes_per_router=4).check_routes()

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            DragonflyTopology(4, groups=1)


class TestTorus:
    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            TorusTopology(100, dims=(3, 3), hosts_per_node=1)

    def test_dims_validated(self):
        with pytest.raises(ValueError):
            TorusTopology(4, dims=(4,))
        with pytest.raises(ValueError):
            TorusTopology(4, dims=(4, 1))
        with pytest.raises(ValueError):
            TorusTopology(4, dims=(2, 2, 2, 2))

    def test_same_node_route(self):
        topo = TorusTopology(8, dims=(2, 2), hosts_per_node=2)
        assert topo.routes(0, 1) == ((topo._host_up[0], topo._host_down[1]),)

    def test_dimension_order_hop_count(self):
        # 4x4 torus, 1 host per node: host i sits on node i
        topo = TorusTopology(16, dims=(4, 4))
        # (0,0) -> (1,1): one hop per dimension + host links
        routes = topo.routes(0, 5)
        assert all(len(r) == 4 for r in routes)
        # the two dimension orders give distinct minimal paths
        assert len(routes) == 2

    def test_wraparound_takes_short_direction(self):
        topo = TorusTopology(16, dims=(4, 4))
        # (0,0) -> (3,0) is one wrap hop, not three forward hops
        routes = topo.routes(0, 3)
        assert all(len(r) == 3 for r in routes)

    def test_routes_valid_2d_and_3d(self):
        TorusTopology(12, dims=(3, 2), hosts_per_node=2).check_routes()
        TorusTopology(12, dims=(3, 2, 2)).check_routes()

    def test_valiant_routes_are_contiguous_and_longer(self):
        topo = TorusTopology(16, dims=(4, 4))
        rng = np.random.default_rng(0)
        minimal = min(len(r) for r in topo.routes(0, 5))
        for route in topo.valiant_routes(0, 5, rng, count=4):
            topo.validate_route(route, 0, 5)
            assert len(route) >= minimal

    def test_host_groups_follow_nodes(self):
        topo = TorusTopology(8, dims=(2, 2), hosts_per_node=2)
        assert topo.host_groups() == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_describe(self):
        d = TorusTopology(8, dims=(2, 2, 2)).describe()
        assert d["dims"] == (2, 2, 2) and d["num_nodes"] == 8


class TestSlimFly:
    def test_q_validated(self):
        with pytest.raises(ValueError):
            SlimFlyTopology(10, q=4)  # not prime
        with pytest.raises(ValueError):
            SlimFlyTopology(10, q=7)  # prime but 7 % 4 == 3
        with pytest.raises(ValueError):
            SlimFlyTopology(10_000, q=5)  # over capacity

    def test_mms_graph_shape(self):
        topo = SlimFlyTopology(50, q=5, hosts_per_router=1)
        assert topo.num_routers == 50
        assert topo.network_radix == 7
        # every router has exactly (3q - 1) / 2 neighbours
        assert all(len(adj) == 7 for adj in topo._adj)

    def test_diameter_two(self):
        topo = SlimFlyTopology(50, q=5, hosts_per_router=1)
        for r1 in range(topo.num_routers):
            for r2 in range(topo.num_routers):
                if r1 == r2:
                    continue
                paths = topo._router_paths(r1, r2)
                assert paths and all(len(p) <= 2 for p in paths)

    def test_routes_valid(self):
        SlimFlyTopology(20, q=5, hosts_per_router=2).check_routes()

    def test_balanced_concentration_default(self):
        topo = SlimFlyTopology(50, q=5)
        assert topo.hosts_per_router == 4  # ceil(7 / 2)

    def test_valiant_routes_are_contiguous(self):
        topo = SlimFlyTopology(20, q=5, hosts_per_router=2)
        rng = np.random.default_rng(1)
        for route in topo.valiant_routes(0, 19, rng, count=4):
            topo.validate_route(route, 0, 19)
            # valiant never descends to an intermediate host
            for link in route[1:-1]:
                assert not topo.is_host(topo.links[link].src)
                assert not topo.is_host(topo.links[link].dst)

    def test_describe(self):
        d = SlimFlyTopology(20, q=5).describe()
        assert d["q"] == 5 and d["num_routers"] == 50 and d["network_radix"] == 7


class TestBuildTopology:
    def test_build_each_kind(self):
        for kind, cls in (
            ("single_switch", SingleSwitchTopology),
            ("fat_tree", FatTreeTopology),
            ("dragonfly", DragonflyTopology),
            ("torus", TorusTopology),
            ("slimfly", SlimFlyTopology),
        ):
            cfg = SimulationConfig(topology=kind, nodes_per_tor=8, torus_dims=(3, 3))
            topo = build_topology(cfg, 8)
            assert isinstance(topo, cls)
            assert topo.num_hosts == 8

    def test_config_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            SimulationConfig(topology="hypercube")

    def test_config_rejects_bad_shapes_eagerly(self):
        with pytest.raises(ValueError):
            SimulationConfig(topology="torus", torus_dims=(1,))
        with pytest.raises(ValueError):
            SimulationConfig(topology="slimfly", slimfly_q=4)

    def test_registry_lists_builtins(self):
        names = topology_names()
        for expected in ("single_switch", "fat_tree", "dragonfly", "torus", "slimfly"):
            assert expected in names

    def test_register_custom_topology(self):
        from repro.network.topology import TOPOLOGY_BUILDERS, TOPOLOGY_DESCRIPTIONS, unregister_topology

        register_topology("test_custom", lambda cfg, n: SingleSwitchTopology(n))
        try:
            cfg = SimulationConfig(topology="test_custom")
            assert isinstance(build_topology(cfg, 4), SingleSwitchTopology)
        finally:
            unregister_topology("test_custom")
        assert "test_custom" not in TOPOLOGY_BUILDERS
        assert "test_custom" not in TOPOLOGY_DESCRIPTIONS


class TestBaseQueries:
    def test_attachment_and_groups_fat_tree(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        assert topo.attachment(0) == topo.tor_switches[0]
        assert topo.attachment(5) == topo.tor_switches[1]
        assert topo.host_groups() == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_attachment_rejects_switch(self):
        topo = SingleSwitchTopology(2)
        with pytest.raises(ValueError):
            topo.attachment(topo.switch)

    def test_default_valiant_routes_via_host(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        rng = np.random.default_rng(2)
        routes = topo.valiant_routes(0, 7, rng, count=3)
        assert len(routes) == 3
        for route in routes:
            topo.validate_route(route, 0, 7)

    def test_valiant_routes_empty_when_no_intermediate(self):
        topo = SingleSwitchTopology(2)
        assert topo.valiant_routes(0, 1, np.random.default_rng(0)) == ()


class TestCheckRoutesSymmetry:
    """check_routes verifies reverse-direction candidate symmetry and names
    the offending (src, dst, route) in the failure message."""

    class _MissingReverseCandidates(FatTreeTopology):
        """Forgets every candidate but the first in the reverse direction."""

        def routes(self, src_host, dst_host):
            candidates = super().routes(src_host, dst_host)
            if src_host > dst_host:
                return candidates[:1]
            return candidates

    class _SimplexShortcut(SingleSwitchTopology):
        """A direct host0 -> host1 cable with no reverse direction."""

        def __init__(self):
            super().__init__(2)
            self.shortcut = self._add_link(0, 1, 25.0, 500, "h0=>h1-simplex")

        def routes(self, src_host, dst_host):
            if (src_host, dst_host) == (0, 1):
                return ((self.shortcut,),)
            return super().routes(src_host, dst_host)

    def test_all_registered_topologies_are_symmetric(self):
        config = SimulationConfig(nodes_per_tor=4, torus_dims=(2, 4))
        for name in topology_names():
            build_topology(config.replace(topology=name), 8).check_routes()

    def test_missing_reverse_candidate_reports_offender(self):
        topo = self._MissingReverseCandidates(8, nodes_per_tor=4)
        with pytest.raises(AssertionError) as err:
            topo.check_routes()
        message = str(err.value)
        assert "not reverse-symmetric" in message
        # the offending pair, both candidate counts, and a concrete route
        assert "(src=0, dst=4)" in message
        assert "4 candidate(s)" in message and "1 with" in message
        assert "first offending route: (" in message

    def test_simplex_link_reports_offending_route(self):
        topo = self._SimplexShortcut()
        with pytest.raises(AssertionError) as err:
            topo.check_routes()
        message = str(err.value)
        assert "not reverse-symmetric" in message
        assert f"(src=0, dst=1, route=({topo.shortcut},))" in message
        assert "h0=>h1-simplex" in message
        assert "no reverse-direction twin 1->0" in message

    def test_dragonfly_global_cables_are_duplex(self):
        # the symmetry check is what forced dragonfly global links to be
        # full-duplex cables; lock the wiring in directly
        topo = DragonflyTopology(24, groups=3, routers_per_group=2, nodes_per_router=4)
        pairs = {(l.src, l.dst) for l in topo.links}
        assert all((dst, src) in pairs for src, dst in pairs)

"""Tests for MPI-style FIFO message matching."""
from repro.network.matching import MessageMatcher


class TestMessageMatcher:
    def test_recv_before_arrival(self):
        m = MessageMatcher()
        assert m.post_recv(0, 1, 5, "recv-A") is None
        assert m.post_arrival(0, 1, 5, "msg-1") == "recv-A"

    def test_arrival_before_recv(self):
        m = MessageMatcher()
        assert m.post_arrival(0, 1, 5, "msg-1") is None
        assert m.post_recv(0, 1, 5, "recv-A") == "msg-1"

    def test_fifo_order_of_arrivals(self):
        m = MessageMatcher()
        m.post_arrival(0, 1, 0, "first")
        m.post_arrival(0, 1, 0, "second")
        assert m.post_recv(0, 1, 0, "r1") == "first"
        assert m.post_recv(0, 1, 0, "r2") == "second"

    def test_fifo_order_of_recvs(self):
        m = MessageMatcher()
        m.post_recv(0, 1, 0, "r1")
        m.post_recv(0, 1, 0, "r2")
        assert m.post_arrival(0, 1, 0, "m1") == "r1"
        assert m.post_arrival(0, 1, 0, "m2") == "r2"

    def test_channels_are_independent(self):
        m = MessageMatcher()
        m.post_recv(0, 1, 1, "tag1")
        assert m.post_arrival(0, 1, 2, "msg-tag2") is None
        assert m.post_arrival(0, 1, 1, "msg-tag1") == "tag1"

    def test_direction_matters(self):
        m = MessageMatcher()
        m.post_recv(0, 1, 0, "r")
        assert m.post_arrival(1, 0, 0, "reverse-direction") is None

    def test_pending_counters(self):
        m = MessageMatcher()
        m.post_recv(0, 1, 0, "r")
        m.post_arrival(2, 3, 0, "m")
        assert m.pending_recv_count() == 1
        assert m.pending_arrival_count() == 1
        m.post_arrival(0, 1, 0, "x")
        m.post_recv(2, 3, 0, "y")
        assert m.pending_recv_count() == 0
        assert m.pending_arrival_count() == 0

    def test_peek_recv_does_not_consume(self):
        m = MessageMatcher()
        m.post_recv(0, 1, 0, "r")
        assert m.peek_recv(0, 1, 0) == "r"
        assert m.pending_recv_count() == 1
        assert m.peek_recv(9, 9, 9) is None

"""Tests for the GOAL scheduler."""
import pytest

from repro.goal import GoalBuilder
from repro.network import SimulationConfig
from repro.scheduler import GoalScheduler, SchedulerDeadlockError, simulate


class TestDependencies:
    def test_chain_executes_fully(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        prev = None
        for i in range(10):
            prev = r.calc(10, requires=[prev] if prev is not None else [])
        res = simulate(b.build(), backend="lgs")
        assert res.ops_completed == 10
        assert res.finish_time_ns == 100

    def test_diamond_dependency(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        a = r.calc(10)
        left = r.calc(20, requires=[a], cpu=0)
        right = r.calc(30, requires=[a], cpu=1)
        r.calc(5, requires=[left, right])
        res = simulate(b.build(), backend="lgs")
        assert res.finish_time_ns == 10 + 30 + 5

    def test_cross_rank_dependency_via_message(self):
        b = GoalBuilder(2)
        c = b.rank(0).calc(1000)
        b.rank(0).send(8, dst=1, tag=1, requires=[c])
        r = b.rank(1).recv(8, src=0, tag=1)
        b.rank(1).calc(500, requires=[r])
        res = simulate(b.build(), backend="lgs")
        assert res.rank_finish_times_ns[1] > 1000

    def test_deadlock_detection_on_missing_send(self):
        b = GoalBuilder(2)
        b.rank(1).recv(8, src=0, tag=1)
        with pytest.raises(SchedulerDeadlockError) as exc:
            simulate(b.build(), backend="lgs", validate=False)
        assert 1 in exc.value.stuck_per_rank or exc.value.stuck_per_rank == {}

    def test_validation_enabled_by_default(self):
        from repro.goal import GoalValidationError

        b = GoalBuilder(2)
        b.rank(1).recv(8, src=0, tag=1)
        with pytest.raises(GoalValidationError):
            simulate(b.build(), backend="lgs")


class TestResults:
    def test_ops_completed_counts_everything(self):
        b = GoalBuilder(2)
        for i in range(4):
            b.rank(0).send(64, dst=1, tag=i)
            b.rank(1).recv(64, src=0, tag=i)
            b.rank(0).calc(10)
        res = simulate(b.build(), backend="lgs")
        assert res.ops_completed == 12

    def test_rank_finish_times_length(self):
        b = GoalBuilder(3)
        b.rank(0).calc(10)
        b.rank(2).calc(20)
        res = simulate(b.build(), backend="lgs")
        assert len(res.rank_finish_times_ns) == 3
        assert res.rank_finish_times_ns[1] == 0

    def test_wall_clock_recorded(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1)
        res = simulate(b.build(), backend="lgs")
        assert res.wall_clock_s >= 0

    def test_backend_name_in_result(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1)
        assert simulate(b.build(), backend="lgs").backend == "lgs"
        assert (
            simulate(b.build(), backend="htsim", config=SimulationConfig(topology="single_switch")).backend
            == "htsim"
        )

    def test_finish_time_seconds_property(self):
        b = GoalBuilder(1)
        b.rank(0).calc(2_000_000_000)
        res = simulate(b.build(), backend="lgs")
        assert res.finish_time_s == pytest.approx(2.0)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1)
        with pytest.raises(ValueError):
            simulate(b.build(), backend="omnet")

    def test_backend_instance_accepted(self):
        from repro.network.loggops import LogGOPSBackend

        b = GoalBuilder(1)
        b.rank(0).calc(5)
        res = GoalScheduler(b.build(), backend=LogGOPSBackend()).run()
        assert res.finish_time_ns == 5

    def test_backends_agree_on_compute_only_workload(self):
        b = GoalBuilder(2)
        b.rank(0).calc(10_000)
        b.rank(1).calc(20_000)
        cfg = SimulationConfig(topology="single_switch")
        lgs = simulate(b.build(), backend="lgs", config=cfg)
        pkt = simulate(b.build(), backend="htsim", config=cfg)
        assert lgs.finish_time_ns == pkt.finish_time_ns == 20_000

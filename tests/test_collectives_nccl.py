"""Tests for the NCCL-style collective decompositions."""
import pytest

from repro.collectives import CollectiveContext
from repro.collectives import nccl as cnccl
from repro.goal import GoalBuilder, validate_schedule
from repro.scheduler import simulate


def _ctx(n, **kwargs):
    b = GoalBuilder(n)
    return b, CollectiveContext(b, list(range(n)), **kwargs)


class TestNcclConfig:
    def test_defaults(self):
        cfg = cnccl.NcclConfig()
        assert cfg.algorithm == "ring" and cfg.protocol == "Simple"

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            cnccl.NcclConfig(algorithm="butterfly")

    def test_invalid_protocol(self):
        with pytest.raises(ValueError):
            cnccl.NcclConfig(protocol="LL256")

    def test_protocol_chunk_defaults(self):
        assert cnccl.NcclConfig(protocol="LL").effective_chunk_bytes() < cnccl.NcclConfig(
            protocol="Simple"
        ).effective_chunk_bytes()

    def test_ll_wire_overhead(self):
        cfg = cnccl.NcclConfig(protocol="LL")
        assert cfg.wire_size(1000) == 2000

    def test_explicit_chunk_size(self):
        assert cnccl.NcclConfig(chunk_bytes=1234).effective_chunk_bytes() == 1234


class TestRingAllreduce:
    def test_channels_map_to_streams(self):
        b, ctx = _ctx(4)
        cfg = cnccl.NcclConfig(nchannels=3)
        cnccl.allreduce(ctx, 3 << 20, cfg)
        streams = set()
        for rank in b.build().ranks:
            streams.update(rank.compute_streams())
        assert {0, 1, 2}.issubset(streams)

    def test_chunking_increases_message_count(self):
        b1, ctx1 = _ctx(4)
        cnccl.allreduce(ctx1, 4 << 20, cnccl.NcclConfig(nchannels=1, chunk_bytes=1 << 20))
        coarse = b1.build().op_counts()["send"]
        b2, ctx2 = _ctx(4)
        cnccl.allreduce(ctx2, 4 << 20, cnccl.NcclConfig(nchannels=1, chunk_bytes=1 << 18))
        fine = b2.build().op_counts()["send"]
        assert fine > coarse

    def test_chunk_cap_respected(self):
        b, ctx = _ctx(2)
        cfg = cnccl.NcclConfig(nchannels=1, chunk_bytes=1024, max_chunks_per_step=4)
        cnccl.allreduce(ctx, 1 << 22, cfg)
        # 2 ranks, 2 steps, at most 4 chunks per step per rank
        assert b.build().op_counts()["send"] <= 2 * 2 * 4

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_completes_on_lgs(self, n):
        b, ctx = _ctx(n, reduce_ns_per_byte=0.001)
        cnccl.allreduce(ctx, 1 << 20, cnccl.NcclConfig())
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_tree_algorithm_completes(self):
        b, ctx = _ctx(8)
        cnccl.allreduce(ctx, 1 << 20, cnccl.NcclConfig(algorithm="tree"))
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_single_rank_noop(self):
        b, ctx = _ctx(1)
        assert cnccl.allreduce(ctx, 1024, cnccl.NcclConfig()) == {}


class TestBroadcastAndOthers:
    def test_broadcast_chunks_travel_ring(self):
        # Fig. 4: a 2 MB broadcast over 4 ranks with 0.5 MB chunks -> each rank
        # forwards 4 chunks, the last rank only receives.
        b, ctx = _ctx(4)
        cfg = cnccl.NcclConfig(nchannels=1, chunk_bytes=1 << 19)
        cnccl.broadcast(ctx, 2 << 20, cfg, root=0)
        sched = b.build()
        counts = sched.op_counts()
        assert counts["send"] == 4 * 3  # 4 chunks forwarded over 3 ring hops
        assert sched.ranks[0].total_bytes_received() == 0
        validate_schedule(sched)

    def test_broadcast_nonzero_root(self):
        b, ctx = _ctx(4)
        cnccl.broadcast(ctx, 1 << 20, cnccl.NcclConfig(), root=2)
        sched = b.build()
        assert sched.ranks[2].total_bytes_received() == 0
        validate_schedule(sched)

    def test_allgather_and_reduce_scatter(self):
        for fn in (cnccl.allgather, cnccl.reduce_scatter):
            b, ctx = _ctx(4)
            fn(ctx, 1 << 20, cnccl.NcclConfig())
            sched = b.build()
            validate_schedule(sched)
            counts = sched.op_counts()
            assert counts["send"] == counts["recv"] > 0

    def test_alltoall_pairs(self):
        n = 4
        b, ctx = _ctx(n)
        cnccl.alltoall(ctx, 1 << 16, cnccl.NcclConfig())
        assert b.build().op_counts()["send"] == n * (n - 1)
        validate_schedule(b.build())

    def test_send_recv_pair_chunked(self):
        b, ctx = _ctx(2)
        cfg = cnccl.NcclConfig(chunk_bytes=1 << 18, max_chunks_per_step=8)
        cnccl.send_recv_pair(ctx, 0, 1, 1 << 20, cfg)
        sched = b.build()
        assert sched.op_counts()["send"] == 4
        validate_schedule(sched)

    def test_send_recv_same_rank_rejected(self):
        b, ctx = _ctx(2)
        with pytest.raises(ValueError):
            cnccl.send_recv_pair(ctx, 1, 1, 1024, cnccl.NcclConfig())

    def test_deps_are_respected(self):
        b, ctx = _ctx(2)
        first = {0: b.rank(0).calc(100), 1: b.rank(1).calc(100)}
        cfg = cnccl.NcclConfig(nchannels=1)
        cnccl.allreduce(ctx, 1 << 16, cfg, deps=first)
        sched = b.build()
        # every comm op of rank 0 must (transitively) depend on the first calc
        roots = sched.ranks[0].roots()
        assert roots == [0]


class TestChunkingEdgeCases:
    """Regressions for degenerate NcclConfig chunking (zero-byte, size < parts)."""

    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_zero_byte_allreduce_is_valid_and_degenerate(self, algorithm):
        b, ctx = _ctx(4)
        cfg = cnccl.NcclConfig(algorithm=algorithm, nchannels=4)
        out = cnccl.allreduce(ctx, 0, cfg)
        sched = b.build()
        validate_schedule(sched)
        assert set(out) == set(range(4))
        # a single 1-byte control pipeline, not nchannels phantom channels
        streams = {op.cpu for rank in sched.ranks for op in rank.ops}
        assert streams == {0}
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_zero_byte_broadcast_and_reduce_scatter(self):
        for fn in (cnccl.broadcast, cnccl.reduce_scatter, cnccl.allgather):
            b, ctx = _ctx(5)
            fn(ctx, 0, cnccl.NcclConfig(nchannels=2))
            sched = b.build()
            validate_schedule(sched)
            assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_size_smaller_than_channel_count_uses_byte_count_channels(self):
        # 3 bytes over 8 channels: only 3 channels (streams) may carry data
        b, ctx = _ctx(4)
        cnccl.allreduce(ctx, 3, cnccl.NcclConfig(nchannels=8))
        sched = b.build()
        validate_schedule(sched)
        streams = {op.cpu for rank in sched.ranks for op in rank.ops}
        assert streams == {0, 1, 2}
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_size_smaller_than_ring_slices_is_valid(self):
        # 3 bytes over 5 ring positions: empty slices become 1-byte controls
        b, ctx = _ctx(5)
        cnccl.allreduce(ctx, 3, cnccl.NcclConfig(nchannels=1))
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_effective_channels(self):
        cfg = cnccl.NcclConfig(nchannels=4)
        assert cfg.effective_channels(0) == 1
        assert cfg.effective_channels(3) == 3
        assert cfg.effective_channels(4) == 4
        assert cfg.effective_channels(1 << 20) == 4

    def test_nonpositive_chunk_bytes_rejected(self):
        with pytest.raises(ValueError, match="chunk_bytes"):
            cnccl.NcclConfig(chunk_bytes=0)
        with pytest.raises(ValueError, match="chunk_bytes"):
            cnccl.NcclConfig(chunk_bytes=-4)

    def test_zero_byte_send_recv_pair(self):
        b, ctx = _ctx(2)
        cnccl.send_recv_pair(ctx, 0, 1, 0, cnccl.NcclConfig())
        sched = b.build()
        validate_schedule(sched)
        assert sched.op_counts()["send"] == 1

"""Tests for the MPI collective decompositions (structure and invariants)."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import CollectiveContext
from repro.collectives import mpi as calgs
from repro.goal import GoalBuilder, validate_schedule
from repro.scheduler import simulate


def _ctx(n, **kwargs):
    b = GoalBuilder(n)
    return b, CollectiveContext(b, list(range(n)), **kwargs)


def _counts(sched):
    return sched.op_counts()


class TestRingAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_message_count(self, n):
        b, ctx = _ctx(n)
        calgs.ring_allreduce(ctx, 1 << 20)
        counts = _counts(b.build())
        # 2*(n-1) steps, one send per rank per step
        assert counts["send"] == 2 * (n - 1) * n
        assert counts["recv"] == counts["send"]

    def test_total_bytes_close_to_theory(self):
        n, size = 4, 1 << 20
        b, ctx = _ctx(n)
        calgs.ring_allreduce(ctx, size)
        total = b.build().total_bytes()
        expected = 2 * (n - 1) * size  # each rank moves 2*size*(n-1)/n, times n ranks
        assert abs(total - expected) <= n * 2 * (n - 1)  # rounding of chunk splits

    def test_single_rank_is_noop(self):
        b, ctx = _ctx(1)
        out = calgs.ring_allreduce(ctx, 1024)
        assert out == {}
        assert b.build().num_ops() == 0

    def test_reduce_cost_inserted(self):
        b, ctx = _ctx(4, reduce_ns_per_byte=0.5)
        calgs.ring_allreduce(ctx, 1 << 16)
        assert b.build().total_calc_ns() > 0

    def test_validates_and_completes(self):
        b, ctx = _ctx(5)
        calgs.ring_allreduce(ctx, 1 << 18)
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()


class TestOtherAllreduces:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_recursive_doubling_completes(self, n):
        b, ctx = _ctx(n)
        calgs.recursive_doubling_allreduce(ctx, 1 << 16)
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_recursive_doubling_power_of_two_rounds(self):
        n = 8
        b, ctx = _ctx(n)
        calgs.recursive_doubling_allreduce(ctx, 4096)
        counts = _counts(b.build())
        assert counts["send"] == n * 3  # log2(8) rounds, one send per rank per round

    @pytest.mark.parametrize("n", [2, 4, 6, 9])
    def test_reduce_bcast_completes(self, n):
        b, ctx = _ctx(n)
        calgs.reduce_bcast_allreduce(ctx, 1 << 15)
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_algorithms_exit_on_every_rank(self):
        for fn in calgs.ALLREDUCE_ALGORITHMS.values():
            b, ctx = _ctx(6)
            out = fn(ctx, 1 << 16)
            assert sorted(out) == list(range(6))


class TestRootedCollectives:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_message_count(self, root):
        n = 4
        b, ctx = _ctx(n)
        calgs.binomial_bcast(ctx, 4096, root=root)
        counts = _counts(b.build())
        assert counts["send"] == n - 1
        assert counts["recv"] == n - 1
        validate_schedule(b.build())

    def test_bcast_root_never_receives(self):
        b, ctx = _ctx(8)
        calgs.binomial_bcast(ctx, 4096, root=2)
        sched = b.build()
        assert sched.ranks[2].total_bytes_received() == 0

    def test_reduce_root_never_sends(self):
        b, ctx = _ctx(8)
        calgs.binomial_reduce(ctx, 4096, root=3)
        sched = b.build()
        assert sched.ranks[3].total_bytes_sent() == 0

    def test_gather_concentrates_on_root(self):
        n = 6
        b, ctx = _ctx(n)
        calgs.linear_gather(ctx, 1000, root=0)
        sched = b.build()
        assert sched.ranks[0].total_bytes_received() == (n - 1) * 1000

    def test_scatter_originates_at_root(self):
        n = 6
        b, ctx = _ctx(n)
        calgs.linear_scatter(ctx, 1000, root=0)
        sched = b.build()
        assert sched.ranks[0].total_bytes_sent() == (n - 1) * 1000


class TestOtherCollectives:
    def test_alltoall_message_count(self):
        n = 5
        b, ctx = _ctx(n)
        calgs.pairwise_alltoall(ctx, 2048)
        counts = _counts(b.build())
        assert counts["send"] == n * (n - 1)

    def test_barrier_uses_tiny_messages(self):
        b, ctx = _ctx(8)
        calgs.dissemination_barrier(ctx)
        sched = b.build()
        assert all(op.size == 1 for r in sched.ranks for op in r.ops if op.is_comm)
        validate_schedule(sched)

    def test_barrier_round_count(self):
        n = 8
        b, ctx = _ctx(n)
        calgs.dissemination_barrier(ctx)
        assert _counts(b.build())["send"] == n * 3  # ceil(log2(8)) rounds

    def test_allgather_bytes(self):
        n, per_rank = 4, 1000
        b, ctx = _ctx(n)
        calgs.allgather(ctx, per_rank)
        total = b.build().total_bytes()
        assert abs(total - (n - 1) * n * per_rank) <= 4 * n * n

    def test_chained_collectives_share_context(self):
        b, ctx = _ctx(4)
        d = calgs.ring_allreduce(ctx, 4096)
        d = calgs.binomial_bcast(ctx, 2048, deps=d)
        d = calgs.dissemination_barrier(ctx, deps=d)
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=9), size=st.integers(min_value=1, max_value=1 << 20))
    def test_ring_allreduce_always_valid_and_completes(self, n, size):
        b, ctx = _ctx(n)
        calgs.ring_allreduce(ctx, size)
        sched = b.build()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=9), root=st.integers(min_value=0, max_value=8))
    def test_bcast_any_root_valid(self, n, root):
        b, ctx = _ctx(n)
        calgs.binomial_bcast(ctx, 1024, root=root % n)
        validate_schedule(b.build())

"""Tests for the compact binary GOAL codec (including property-based roundtrips)."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.goal import GoalBuilder, decode_goal, encode_goal, write_goal
from repro.goal.binary import GoalBinaryError, read_goal_binary, write_goal_binary
from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule


def _sample_schedule() -> GoalSchedule:
    b = GoalBuilder(3, name="binary-sample")
    r0 = b.rank(0)
    c = r0.calc(1000)
    s = r0.send(1 << 20, dst=1, tag=17, cpu=3, requires=[c])
    r0.recv(256, src=2, tag=1, requires=[c, s])
    b.rank(1).recv(1 << 20, src=0, tag=17)
    b.rank(2).send(256, dst=0, tag=1)
    return b.build()


class TestRoundTrip:
    def test_roundtrip_structure(self):
        original = _sample_schedule()
        decoded = decode_goal(encode_goal(original))
        assert decoded.name == original.name
        assert decoded.num_ranks == original.num_ranks
        for r in range(original.num_ranks):
            assert decoded.ranks[r].preds == original.ranks[r].preds
            for a, b_ in zip(original.ranks[r].ops, decoded.ranks[r].ops):
                assert a == b_

    def test_binary_smaller_than_text(self):
        sched = _sample_schedule()
        assert len(encode_goal(sched)) < len(write_goal(sched).encode())

    def test_file_helpers(self, tmp_path):
        sched = _sample_schedule()
        path = str(tmp_path / "s.goalbin")
        nbytes = write_goal_binary(sched, path)
        assert nbytes == len(encode_goal(sched))
        loaded = read_goal_binary(path)
        assert loaded.num_ops() == sched.num_ops()

    def test_labels_are_dropped(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1, label="will-disappear")
        decoded = decode_goal(encode_goal(b.build()))
        assert decoded.ranks[0].ops[0].label is None


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(GoalBinaryError):
            decode_goal(b"NOPE" + bytes(10))

    def test_bad_version(self):
        blob = bytearray(encode_goal(_sample_schedule()))
        blob[4] = 99
        with pytest.raises(GoalBinaryError):
            decode_goal(bytes(blob))

    def test_truncated_blob(self):
        blob = encode_goal(_sample_schedule())
        with pytest.raises(GoalBinaryError):
            decode_goal(blob[: len(blob) // 2])

    def test_trailing_garbage(self):
        blob = encode_goal(_sample_schedule())
        with pytest.raises(GoalBinaryError):
            decode_goal(blob + b"\x00")

    def test_empty_input(self):
        with pytest.raises(GoalBinaryError):
            decode_goal(b"")


# ---------------------------------------------------------------------------
# property-based roundtrip
# ---------------------------------------------------------------------------
@st.composite
def schedules(draw):
    num_ranks = draw(st.integers(min_value=1, max_value=4))
    sched = GoalSchedule(num_ranks, name=draw(st.text(max_size=8)))
    for rank in sched.ranks:
        n_ops = draw(st.integers(min_value=0, max_value=12))
        for i in range(n_ops):
            kind = draw(st.sampled_from([OpType.SEND, OpType.RECV, OpType.CALC]))
            size = draw(st.integers(min_value=0, max_value=1 << 30))
            cpu = draw(st.integers(min_value=0, max_value=5))
            tag = draw(st.integers(min_value=0, max_value=1 << 20))
            if kind == OpType.CALC:
                op = Op.calc(size, cpu=cpu)
            else:
                peer = draw(st.integers(min_value=0, max_value=num_ranks))
                op = Op(kind, max(size, 0), peer=peer, tag=tag, cpu=cpu)
            deps = []
            if i > 0:
                deps = draw(st.lists(st.integers(min_value=0, max_value=i - 1), max_size=3, unique=True))
            rank.add_op(op, deps)
    return sched


class TestPropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_encode_decode_identity(self, sched):
        decoded = decode_goal(encode_goal(sched))
        assert decoded.num_ranks == sched.num_ranks
        assert decoded.num_ops() == sched.num_ops()
        for r in range(sched.num_ranks):
            assert decoded.ranks[r].preds == sched.ranks[r].preds
            for a, b in zip(sched.ranks[r].ops, decoded.ranks[r].ops):
                assert a == b

    @settings(max_examples=30, deadline=None)
    @given(schedules())
    def test_encoding_is_deterministic(self, sched):
        assert encode_goal(sched) == encode_goal(sched)

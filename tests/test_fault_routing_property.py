"""Randomized property tests for failure-aware routing.

A seeded RNG generates random topologies (fat tree / torus / dragonfly with
random shape parameters) and random alive-masks (random subsets of the
fabric's switch-to-switch cables failed), and asserts the routing-layer
fault invariants for every registered strategy:

* every selected route uses only alive links,
* every selected route passes ``Topology.validate_route``,
* the selection consumes candidates in their original (healthy) order —
  filtering never reorders,
* a pair whose candidates are all failed raises
  :class:`~repro.network.faults.NetworkPartitionError` (the no-route case),
  and restoring the links heals it.

Mirrors the seeded-RNG style of ``tests/test_goal_roundtrip_property.py``:
one deterministic scenario per seed, parameterized over a seed range.
"""
import random

import numpy as np
import pytest

from repro.network.faults import NetworkPartitionError, fabric_cables
from repro.network.routing import create_routing, routing_names
from repro.network.topology.dragonfly import DragonflyTopology
from repro.network.topology.fattree import FatTreeTopology
from repro.network.topology.torus import TorusTopology

NUM_RANDOM_SCENARIOS = 25


def _random_topology(rng: random.Random):
    kind = rng.choice(("fat_tree", "torus", "dragonfly"))
    if kind == "fat_tree":
        nodes_per_tor = rng.randint(2, 6)
        num_tors = rng.randint(2, 4)
        return FatTreeTopology(
            nodes_per_tor * num_tors,
            nodes_per_tor=nodes_per_tor,
            oversubscription=rng.choice((1.0, 2.0)),
        )
    if kind == "torus":
        dims = tuple(rng.randint(2, 4) for _ in range(rng.choice((2, 3))))
        hosts_per_node = rng.randint(1, 2)
        capacity = hosts_per_node
        for d in dims:
            capacity *= d
        return TorusTopology(
            rng.randint(max(2, capacity // 2), capacity),
            dims=dims,
            hosts_per_node=hosts_per_node,
        )
    groups = rng.randint(2, 4)
    routers = rng.randint(2, 3)
    nodes = rng.randint(1, 3)
    capacity = groups * routers * nodes
    return DragonflyTopology(
        rng.randint(max(2, capacity // 2), capacity),
        groups=groups,
        routers_per_group=routers,
        nodes_per_router=nodes,
    )


def _random_alive_mask(rng: random.Random, topo) -> list:
    """Fail a random subset of the fabric cables (at most half of them)."""
    cables = fabric_cables(topo)
    if not cables:
        return []
    count = rng.randint(0, max(0, len(cables) // 2))
    failed = []
    for cable in rng.sample(cables, count):
        failed.extend(cable)
    topo.fail_links(failed)
    return failed


def _random_pairs(rng: random.Random, num_hosts: int, count: int):
    pairs = []
    for _ in range(count):
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts)
        while dst == src:
            dst = rng.randrange(num_hosts)
        pairs.append((src, dst))
    return pairs


@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCENARIOS))
def test_selected_routes_use_only_alive_links(seed):
    rng = random.Random(seed)
    topo = _random_topology(rng)
    failed = set(_random_alive_mask(rng, topo))
    loads = np.zeros(len(topo.links), dtype=np.int64)
    strategies = [
        create_routing(name, topo, np.random.default_rng(seed))
        for name in routing_names()
    ]
    for src, dst in _random_pairs(rng, topo.num_hosts, 12):
        try:
            alive = topo.alive_table(src, dst).candidates
        except NetworkPartitionError:
            # the no-route case: every healthy candidate must cross a failure
            for route in topo.route_table(src, dst).candidates:
                assert failed & set(route)
            continue
        # filtering preserves healthy candidate order
        healthy = topo.route_table(src, dst).candidates
        assert list(alive) == [
            r for r in healthy if not (failed & set(r))
        ]
        for strategy in strategies:
            route = strategy.select_route(src, dst, 4096, loads)
            assert not (failed & set(route)), (
                f"seed {seed}: {strategy.name} picked a dead link on "
                f"{type(topo).__name__} {src}->{dst}: {route}"
            )
            topo.validate_route(route, src, dst)


@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCENARIOS))
def test_partition_raises_and_restoring_heals(seed):
    rng = random.Random(seed)
    topo = _random_topology(rng)
    src, dst = _random_pairs(rng, topo.num_hosts, 1)[0]
    # fail exactly the links of every candidate of this pair: a guaranteed
    # no-route case regardless of the topology drawn
    doomed = sorted({l for r in topo.route_table(src, dst).candidates for l in r})
    topo.fail_links(doomed)
    with pytest.raises(NetworkPartitionError, match=f"host {src} to host {dst}"):
        topo.alive_table(src, dst)
    for name in routing_names():
        strategy = create_routing(name, topo, np.random.default_rng(seed))
        if name == "valiant" and topo.valiant_routes(
            src, dst, np.random.default_rng(seed)
        ):
            # valiant may legitimately survive over a detour; the minimal
            # fallback is only consulted when no detour survives
            continue
        with pytest.raises(NetworkPartitionError):
            strategy.select_route(src, dst, 4096, None)
    topo.restore_links(doomed)
    assert not topo.faulty
    assert topo.alive_table(src, dst).candidates == topo.route_table(src, dst).candidates


@pytest.mark.parametrize("seed", range(NUM_RANDOM_SCENARIOS))
def test_healthy_selection_unchanged_by_fault_machinery(seed):
    """On a never-faulted topology, selection equals a fresh topology's."""
    rng = random.Random(seed)
    topo_a = _random_topology(rng)
    topo_b = _random_topology(random.Random(seed))  # identical twin
    loads = np.zeros(len(topo_a.links), dtype=np.int64)
    for name in routing_names():
        sa = create_routing(name, topo_a, np.random.default_rng(seed))
        sb = create_routing(name, topo_b, np.random.default_rng(seed))
        for src, dst in _random_pairs(random.Random(seed + 1), topo_a.num_hosts, 8):
            assert sa.select_route(src, dst, 4096, loads) == sb.select_route(
                src, dst, 4096, loads
            )

"""Cross-module integration tests: backend agreement and end-to-end pipelines."""
import pytest

from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.goal import decode_goal, encode_goal, parse_goal, validate_schedule, write_goal
from repro.measurement import measure_reference_runtime, prediction_error
from repro.network import LogGOPSParams, SimulationConfig
from repro.schedgen import mpi_trace_to_goal, nccl_trace_to_goal, ring_allreduce_microbenchmark
from repro.scheduler import simulate


class TestBackendAgreement:
    """The two backends must broadly agree on uncongested workloads (paper §6.2)."""

    def _matched_configs(self):
        lgs = SimulationConfig(
            loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, O=0.0, S=0),
            topology="fat_tree",
            nodes_per_tor=8,
            oversubscription=1.0,
            link_latency=500,
            host_overhead=200,
        )
        return lgs

    def test_ring_allreduce_within_tolerance(self):
        cfg = self._matched_configs()
        sched = ring_allreduce_microbenchmark(8, 4 << 20)
        t_lgs = simulate(sched, backend="lgs", config=cfg).finish_time_ns
        t_pkt = simulate(sched, backend="htsim", config=cfg).finish_time_ns
        assert abs(t_lgs - t_pkt) / t_pkt < 0.35

    def test_hpc_app_within_tolerance(self):
        cfg = self._matched_configs()
        trace = HPC_APPLICATIONS["lulesh"].trace(HpcRunConfig(num_ranks=8, iterations=2, cells_per_rank=8000))
        sched = mpi_trace_to_goal(trace)
        t_lgs = simulate(sched, backend="lgs", config=cfg).finish_time_ns
        t_pkt = simulate(sched, backend="htsim", config=cfg).finish_time_ns
        assert abs(t_lgs - t_pkt) / t_pkt < 0.25

    def test_compute_bound_workloads_identical(self):
        cfg = self._matched_configs()
        from repro.goal import GoalBuilder

        b = GoalBuilder(4)
        for r in range(4):
            b.rank(r).calc(1_000_000)
        t_lgs = simulate(b.build(), backend="lgs", config=cfg).finish_time_ns
        t_pkt = simulate(b.build(), backend="htsim", config=cfg).finish_time_ns
        assert t_lgs == t_pkt


class TestFullPipelines:
    def test_hpc_trace_goal_text_binary_simulate(self):
        trace = HPC_APPLICATIONS["hpcg"].trace(HpcRunConfig(num_ranks=4, iterations=2, cells_per_rank=4000))
        sched = mpi_trace_to_goal(trace)
        # the generated schedule must survive both serialisations unchanged
        text_rt = parse_goal(write_goal(sched))
        bin_rt = decode_goal(encode_goal(sched))
        for other in (text_rt, bin_rt):
            assert other.num_ops() == sched.num_ops()
            assert other.num_edges() == sched.num_edges()
        res = simulate(bin_rt, backend="lgs", config=SimulationConfig(loggops=LogGOPSParams.hpc_cluster()))
        assert res.ops_completed == sched.num_ops()

    def test_ai_pipeline_gpu_vs_node_granularity(self):
        par = ParallelismConfig(dp=4, microbatches=2, global_batch=16)
        report = LlmTrainer(llama_7b().scaled(0.04), par, gpus_per_node=2, iterations=1).trace()
        per_gpu = nccl_trace_to_goal(report, gpus_per_node=1)
        per_node = nccl_trace_to_goal(report, gpus_per_node=2)
        assert per_gpu.num_ranks == 4 and per_node.num_ranks == 2
        # grouping removes inter-node traffic that became intra-node
        assert per_node.total_bytes() < per_gpu.total_bytes()
        for sched in (per_gpu, per_node):
            assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_validation_error_shape_lgs_vs_reference(self):
        # the LGS prediction for an HPC workload should be within ~15% of the
        # packet-level reference measurement (the paper reports <5% on real
        # hardware; the tolerance here absorbs the scaled-down problem sizes)
        trace = HPC_APPLICATIONS["lammps"].trace(HpcRunConfig(num_ranks=8, iterations=3, cells_per_rank=8000))
        sched = mpi_trace_to_goal(trace)
        reference_cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=8, oversubscription=1.0)
        measured = measure_reference_runtime(sched, base_config=reference_cfg, trials=2)
        lgs_cfg = SimulationConfig(loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, S=0))
        predicted = simulate(sched, backend="lgs", config=lgs_cfg).finish_time_ns
        assert abs(prediction_error(predicted, measured.runtime_ns)) < 0.15

    def test_oversubscription_gap_lgs_blind_packet_aware(self):
        # paper Fig. 12: LGS cannot see reduced core bandwidth, the packet
        # backend can — the gap must widen under oversubscription.  Eight
        # concurrent cross-ToR pair flows keep every host link lightly
        # loaded, so the shared ToR uplinks are the only possible
        # bottleneck: with 8:1 oversubscription the aggregate must
        # serialise ~8x (an incast would be receiver-downlink-bound and
        # tell the two fabrics apart only by sub-percent queueing noise).
        from repro.goal.builder import GoalBuilder

        builder = GoalBuilder(16, name="cross-tor-pairs")
        for s in range(8, 16):
            dst = s - 8
            builder.rank(s).send(1 << 20, dst=dst, tag=s)
            builder.rank(dst).recv(1 << 20, src=s, tag=s)
        sched = builder.build()
        lgs_cfg = SimulationConfig(loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, S=0))
        t_lgs = simulate(sched, backend="lgs", config=lgs_cfg).finish_time_ns

        full = SimulationConfig(topology="fat_tree", nodes_per_tor=8, oversubscription=1.0)
        over = full.replace(oversubscription=8.0)
        t_full = simulate(sched, backend="htsim", config=full).finish_time_ns
        t_over = simulate(sched, backend="htsim", config=over).finish_time_ns

        gap_full = abs(t_lgs - t_full) / t_full
        gap_over = abs(t_lgs - t_over) / t_over
        assert t_over > t_full * 2
        assert gap_over > gap_full

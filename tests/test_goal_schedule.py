"""Unit tests for RankSchedule / GoalSchedule."""
import pytest

from repro.goal import GoalSchedule, Op
from repro.goal.schedule import RankSchedule


class TestRankSchedule:
    def test_add_op_returns_indices_in_order(self):
        rank = RankSchedule(0)
        assert rank.add_op(Op.calc(1)) == 0
        assert rank.add_op(Op.calc(2)) == 1

    def test_dependencies_must_reference_earlier_vertices(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1))
        with pytest.raises(ValueError):
            rank.add_op(Op.calc(2), requires=[5])

    def test_add_dependency_forward_edge_rejected(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1))
        rank.add_op(Op.calc(2))
        with pytest.raises(ValueError):
            rank.add_dependency(0, 1)

    def test_add_dependency_self_loop_rejected(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1))
        with pytest.raises(ValueError):
            rank.add_dependency(0, 0)

    def test_duplicate_label_rejected(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1, label="a"))
        with pytest.raises(ValueError):
            rank.add_op(Op.calc(2, label="a"))

    def test_vertex_by_label(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1, label="x"))
        assert rank.vertex_by_label("x") == 0
        with pytest.raises(KeyError):
            rank.vertex_by_label("missing")

    def test_successors_and_in_degrees(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(1))
        b = rank.add_op(Op.calc(1), requires=[a])
        c = rank.add_op(Op.calc(1), requires=[a, b])
        assert rank.successors()[a] == [b, c]
        assert rank.in_degrees() == [0, 1, 2]

    def test_roots_and_leaves(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(1))
        b = rank.add_op(Op.calc(1))
        c = rank.add_op(Op.calc(1), requires=[a, b])
        assert rank.roots() == [a, b]
        assert rank.leaves() == [c]

    def test_totals(self):
        rank = RankSchedule(0)
        rank.add_op(Op.send(100, dst=1))
        rank.add_op(Op.recv(40, src=1))
        rank.add_op(Op.calc(7))
        assert rank.total_bytes_sent() == 100
        assert rank.total_bytes_received() == 40
        assert rank.total_calc_ns() == 7

    def test_compute_streams(self):
        rank = RankSchedule(0)
        rank.add_op(Op.calc(1, cpu=0))
        rank.add_op(Op.calc(1, cpu=3))
        assert rank.compute_streams() == [0, 3]

    def test_critical_path_chain(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(10))
        b = rank.add_op(Op.calc(20), requires=[a])
        rank.add_op(Op.calc(5))  # independent
        assert rank.critical_path_ns() == 30

    def test_critical_path_ignores_comm(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(10))
        s = rank.add_op(Op.send(1000, dst=1), requires=[a])
        rank.add_op(Op.calc(10), requires=[s])
        assert rank.critical_path_ns() == 20

    def test_copy_deep(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(10, label="a"))
        rank.add_op(Op.calc(20), requires=[a])
        cp = rank.copy()
        cp.ops[0].size = 99
        cp.preds[1].append(0)
        assert rank.ops[0].size == 10

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            RankSchedule(-1)

    def test_mutation_invalidates_successor_cache(self):
        rank = RankSchedule(0)
        a = rank.add_op(Op.calc(1))
        b = rank.add_op(Op.calc(1))
        assert rank.successors()[a] == []
        rank.add_dependency(b, a)
        assert rank.successors()[a] == [b]


class TestGoalSchedule:
    def _simple(self) -> GoalSchedule:
        sched = GoalSchedule(2, name="t")
        sched.ranks[0].add_op(Op.calc(5))
        sched.ranks[0].add_op(Op.send(100, dst=1), requires=[0])
        sched.ranks[1].add_op(Op.recv(100, src=0))
        return sched

    def test_num_ranks_positive(self):
        with pytest.raises(ValueError):
            GoalSchedule(0)

    def test_counts(self):
        sched = self._simple()
        assert sched.num_ops() == 3
        assert sched.num_edges() == 1
        assert sched.total_bytes() == 100
        assert sched.total_calc_ns() == 5

    def test_op_counts(self):
        counts = self._simple().op_counts()
        assert counts == {"send": 1, "recv": 1, "calc": 1}

    def test_summary_keys(self):
        summary = self._simple().summary()
        for key in ("name", "num_ranks", "num_ops", "sends", "recvs", "calcs", "total_bytes"):
            assert key in summary

    def test_indexing_and_iteration(self):
        sched = self._simple()
        assert sched[0] is sched.ranks[0]
        assert len(list(sched)) == 2
        assert len(sched) == 2

    def test_copy_independent(self):
        sched = self._simple()
        cp = sched.copy()
        cp.ranks[0].ops[0].size = 999
        assert sched.ranks[0].ops[0].size == 5

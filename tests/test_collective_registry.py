"""Registry, property and autotuner tests for the collective algorithm engine.

The property grid required by the engine's contract: for every registered
algorithm x rank counts {2..9, 16, 17}, the generated GOAL schedule
validates (acyclic, matched messages), conserves bytes per rank (up to
chunk-split rounding), and replays bit-identically on both backends.
"""
import pytest

from repro.collectives import (
    COLLECTIVE_ALGORITHMS,
    CostModel,
    algorithm_names,
    build_collective_schedule,
    collective_names,
    contiguous_groups,
    get_algorithm,
    groups_from_topology,
    select_algorithm,
)
from repro.collectives.context import CollectiveContext, validate_groups
from repro.collectives.hierarchical import grid_shape
from repro.goal import GoalBuilder
from repro.goal.validate import validate_schedule
from repro.network.config import LogGOPSParams, SimulationConfig
from repro.network.topology import build_topology
from repro.scheduler import simulate

RANK_COUNTS = [2, 3, 4, 5, 6, 7, 8, 9, 16, 17]
#: collectives whose algorithms are symmetric: every rank sends exactly what
#: it receives (up to chunk-split rounding)
SYMMETRIC = {"allreduce", "allgather", "barrier", "alltoall"}

ALL_ALGORITHMS = [
    (collective, name)
    for collective in collective_names()
    for name in algorithm_names(collective)
]


def _schedule(collective, name, n, size=2048):
    return build_collective_schedule(
        collective, name, n, size, groups=contiguous_groups(n, 4)
    )


class TestRegistry:
    def test_expected_contents(self):
        assert set(collective_names()) == {
            "allreduce", "allgather", "reduce_scatter", "bcast", "barrier", "alltoall",
        }
        assert algorithm_names("allreduce") == [
            "ring", "recursive_doubling", "reduce_bcast",
            "recursive_halving_doubling", "bucket", "hier_rs", "hier_leader",
        ]

    def test_get_algorithm_errors_list_candidates(self):
        with pytest.raises(ValueError, match="registered: ring"):
            get_algorithm("allreduce", "nope")
        with pytest.raises(ValueError, match="unknown collective"):
            get_algorithm("allscatter", "ring")

    def test_every_algorithm_has_docs_metadata(self):
        for collective, name in ALL_ALGORITHMS:
            alg = get_algorithm(collective, name)
            assert alg.description
            assert alg.cost_formula
            assert alg.collective == collective

    def test_hierarchical_flag_matches_group_requirement(self):
        for collective, name in ALL_ALGORITHMS:
            alg = get_algorithm(collective, name)
            builder = GoalBuilder(4)
            ctx = CollectiveContext(builder, [0, 1, 2, 3])  # no groups
            if alg.hierarchical:
                with pytest.raises(ValueError, match="locality groups"):
                    alg.emit(ctx, 4096, None)
            else:
                alg.emit(ctx, 4096, None)
                validate_schedule(builder.build())


class TestGroupHelpers:
    def test_contiguous_groups(self):
        assert contiguous_groups(7, 3) == [[0, 1, 2], [3, 4, 5], [6]]
        with pytest.raises(ValueError):
            contiguous_groups(0, 3)
        with pytest.raises(ValueError):
            contiguous_groups(4, 0)

    def test_validate_groups_rejects_bad_partitions(self):
        validate_groups([[0, 1], [2]], 3)
        with pytest.raises(ValueError, match="duplicate"):
            validate_groups([[0, 1], [1, 2]], 3)
        with pytest.raises(ValueError, match="partition"):
            validate_groups([[0, 1]], 3)
        with pytest.raises(ValueError, match="non-empty"):
            validate_groups([[0, 1, 2], []], 3)

    def test_groups_from_topology_fat_tree(self):
        topo = build_topology(SimulationConfig(topology="fat_tree", nodes_per_tor=4), 8)
        assert groups_from_topology(range(8), topo) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_groups_from_topology_respects_placement(self):
        topo = build_topology(SimulationConfig(topology="fat_tree", nodes_per_tor=4), 8)
        placement = {0: 0, 1: 4}  # comm ranks on different ToRs
        assert groups_from_topology([0, 1], topo, placement) == [[0], [1]]
        with pytest.raises(ValueError, match="does not contain"):
            groups_from_topology([0], topo, {0: 99})

    def test_grid_shape(self):
        assert grid_shape(32) == (4, 8)
        assert grid_shape(16) == (4, 4)
        assert grid_shape(17) == (1, 17)  # prime: bucket degenerates to ring
        with pytest.raises(ValueError):
            grid_shape(0)


class TestScheduleProperties:
    """The issue's property grid: every algorithm x rank counts {2..9, 16, 17}."""

    @pytest.mark.parametrize("collective,name", ALL_ALGORITHMS)
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_validates_and_conserves_bytes(self, collective, name, n):
        sched = _schedule(collective, name, n)
        # validates: acyclic dependencies, in-range peers, matched messages
        validate_schedule(sched)
        # global conservation
        sent = sum(r.total_bytes_sent() for r in sched.ranks)
        received = sum(r.total_bytes_received() for r in sched.ranks)
        assert sent == received
        if collective in SYMMETRIC:
            # per-rank conservation, up to chunk-split rounding (uneven
            # S/N splits shift at most one byte per ring step)
            for rank in sched.ranks:
                delta = abs(rank.total_bytes_sent() - rank.total_bytes_received())
                assert delta <= 8 * n + 64, (collective, name, n, rank.rank, delta)

    @pytest.mark.parametrize("collective,name", ALL_ALGORITHMS)
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_replays_bit_identically_on_lgs(self, collective, name, n):
        sched = _schedule(collective, name, n)
        results = [simulate(sched, backend="lgs") for _ in range(2)]
        assert results[0].ops_completed == sched.num_ops()
        assert results[0].finish_time_ns == results[1].finish_time_ns
        assert results[0].stats.messages_delivered == results[1].stats.messages_delivered

    @pytest.mark.parametrize("collective,name", ALL_ALGORITHMS)
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_replays_bit_identically_on_packet_backend(self, collective, name, n):
        sched = _schedule(collective, name, n)
        results = [simulate(sched, backend="htsim") for _ in range(2)]
        assert results[0].ops_completed == sched.num_ops()
        assert results[0].finish_time_ns == results[1].finish_time_ns
        assert results[0].stats.packets_dropped == results[1].stats.packets_dropped

    def test_hierarchical_uneven_groups_complete(self):
        # groups of unequal width exercise the missing-slot truncation path
        for name in ("hier_rs", "hier_leader"):
            sched = build_collective_schedule(
                "allreduce", name, 7, 4096, groups=[[0, 1, 2], [3, 4], [5], [6]]
            )
            validate_schedule(sched)
            assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_single_group_degenerates_cleanly(self):
        sched = build_collective_schedule(
            "allreduce", "hier_rs", 4, 4096, groups=[[0, 1, 2, 3]]
        )
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()


class TestAutotuner:
    def test_small_messages_pick_low_latency(self):
        choice = select_algorithm("allreduce", 256, 32, params=LogGOPSParams())
        assert choice.name == "recursive_doubling"
        assert choice.costs["ring"] > choice.cost_ns

    def test_large_flat_messages_pick_rabenseifner(self):
        choice = select_algorithm("allreduce", 64 << 20, 32, params=LogGOPSParams())
        assert choice.name == "recursive_halving_doubling"

    def test_hierarchical_skipped_without_groups(self):
        choice = select_algorithm("allreduce", 1 << 20, 32, params=LogGOPSParams())
        assert choice.costs["hier_rs"] == float("inf")
        assert choice.costs["hier_leader"] == float("inf")

    def test_oversubscribed_fat_tree_prefers_two_level(self):
        config = SimulationConfig(topology="fat_tree", oversubscription=4.0)
        topo = build_topology(config, 32)
        choice = select_algorithm(
            "allreduce", 1 << 20, 32, params=LogGOPSParams(), topology=topo
        )
        assert choice.name in ("bucket", "hier_rs", "hier_leader")
        assert choice.costs["recursive_halving_doubling"] > choice.cost_ns

    def test_topology_model_carries_latencies_and_uplinks(self):
        config = SimulationConfig(topology="fat_tree", oversubscription=4.0)
        topo = build_topology(config, 32)
        model = CostModel.from_loggops(LogGOPSParams(), topology=topo)
        assert model.L_intra is not None and model.L_inter is not None
        assert model.L_intra < model.L_inter
        assert model.uplinks_per_group == pytest.approx(4.0)
        assert model.inter_factor(16) == pytest.approx(4.0)
        assert model.inter_factor(2) == 1.0

    def test_costs_are_reported_for_every_candidate(self):
        choice = select_algorithm("allreduce", 4096, 8, params=LogGOPSParams())
        assert set(choice.costs) == set(algorithm_names("allreduce"))
        assert choice.cost_ns == min(choice.costs.values())

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown collective"):
            select_algorithm("allscatter", 4096, 8)
        with pytest.raises(ValueError, match="num_ranks"):
            select_algorithm("allreduce", 4096, 0)
        with pytest.raises(ValueError, match="size"):
            select_algorithm("allreduce", -1, 8)

    def test_build_with_auto_resolves_through_autotuner(self):
        sched = build_collective_schedule("allreduce", "auto", 8, 256)
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

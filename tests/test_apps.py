"""Tests for the HPC and AI application models."""
import pytest

from repro.apps.ai import (
    DlrmTrainer,
    LlmTrainer,
    MODEL_PRESETS,
    ModelConfig,
    ParallelismConfig,
    llama_7b,
    mistral_8x7b,
)
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig, factor_2d, factor_3d
from repro.tracers.mpi import COLLECTIVE_CALLS


class TestFactorisation:
    def test_factor_2d(self):
        assert factor_2d(16) == (4, 4)
        assert factor_2d(12) == (3, 4)
        assert factor_2d(7) == (1, 7)

    def test_factor_3d(self):
        assert factor_3d(8) == (2, 2, 2)
        assert factor_3d(27) == (3, 3, 3)
        px, py, pz = factor_3d(12)
        assert px * py * pz == 12


class TestHpcRunConfig:
    def test_weak_scaling_keeps_per_rank_size(self):
        cfg = HpcRunConfig(num_ranks=64, cells_per_rank=1000, scaling="weak")
        assert cfg.effective_cells_per_rank() == 1000

    def test_strong_scaling_shrinks_per_rank_size(self):
        cfg = HpcRunConfig(
            num_ranks=64, cells_per_rank=1000, scaling="strong", strong_scaling_base_ranks=8
        )
        assert cfg.effective_cells_per_rank() == 125

    def test_invalid_scaling(self):
        with pytest.raises(ValueError):
            HpcRunConfig(num_ranks=4, scaling="superlinear")


class TestHpcApplications:
    @pytest.mark.parametrize("name", sorted(HPC_APPLICATIONS))
    def test_every_app_produces_consistent_trace(self, name):
        app = HPC_APPLICATIONS[name]
        cfg = HpcRunConfig(num_ranks=8, iterations=2, cells_per_rank=4000, seed=1)
        trace = app.trace(cfg)
        assert trace.num_ranks == 8
        assert trace.num_events() > 0
        # every rank participates
        assert all(len(evts) > 0 for evts in trace.events)
        # collective call sequences must agree across ranks (same multiset of calls)
        coll_per_rank = [
            [e.call for e in evts if e.call in COLLECTIVE_CALLS] for evts in trace.events
        ]
        assert all(c == coll_per_rank[0] for c in coll_per_rank[1:])

    def test_compute_dominates_cloverleaf(self):
        cfg = HpcRunConfig(num_ranks=8, iterations=2, cells_per_rank=8000)
        trace = HPC_APPLICATIONS["cloverleaf"].trace(cfg)
        events = trace.events[0]
        gaps = sum(
            max(0, b.start_ns - a.end_ns) for a, b in zip(events, events[1:])
        )
        assert gaps > 0

    def test_openmx_uses_alltoall(self):
        cfg = HpcRunConfig(num_ranks=8, iterations=1, cells_per_rank=4000)
        trace = HPC_APPLICATIONS["openmx"].trace(cfg)
        assert any(e.call == "MPI_Alltoall" for e in trace.events[0])

    def test_icon_gathers_to_root(self):
        cfg = HpcRunConfig(num_ranks=8, iterations=4, cells_per_rank=4000)
        trace = HPC_APPLICATIONS["icon"].trace(cfg)
        assert any(e.call == "MPI_Gather" for e in trace.events[0])

    def test_traces_are_deterministic_per_seed(self):
        cfg = HpcRunConfig(num_ranks=4, iterations=2, cells_per_rank=4000, seed=7)
        a = HPC_APPLICATIONS["hpcg"].trace(cfg).to_text()
        b = HPC_APPLICATIONS["hpcg"].trace(cfg).to_text()
        assert a == b


class TestParallelismConfig:
    def test_num_gpus(self):
        assert ParallelismConfig(tp=2, pp=2, dp=4, global_batch=32, microbatches=2).num_gpus == 16

    def test_microbatch_size(self):
        par = ParallelismConfig(dp=4, microbatches=4, global_batch=32)
        assert par.microbatch_size == 2

    def test_invalid_batch_divisibility(self):
        with pytest.raises(ValueError):
            ParallelismConfig(dp=3, microbatches=2, global_batch=32)

    def test_ep_must_divide_dp(self):
        with pytest.raises(ValueError):
            ParallelismConfig(dp=4, ep=3, global_batch=32, microbatches=1)


class TestModelConfig:
    def test_presets_exist(self):
        assert set(MODEL_PRESETS) >= {"llama-7b", "llama-70b", "mistral-8x7b", "moe-8x13b", "moe-8x70b", "dlrm"}

    def test_scaled_reduces_size(self):
        full = llama_7b()
        small = full.scaled(0.1)
        assert small.num_layers < full.num_layers
        assert small.hidden < full.hidden

    def test_moe_layer_pattern(self):
        moe = mistral_8x7b()
        assert moe.is_moe_layer(0)
        assert not llama_7b().is_moe_layer(0)

    def test_scaled_factor_bounds(self):
        with pytest.raises(ValueError):
            llama_7b().scaled(0.0)


class TestLlmTrainer:
    def _trace(self, model, par, **kw):
        return LlmTrainer(model, par, iterations=1, **kw).trace()

    def test_dp_only_has_allreduce_no_p2p(self):
        par = ParallelismConfig(dp=4, microbatches=2, global_batch=16)
        report = self._trace(llama_7b().scaled(0.05), par)
        ops = [k.op for _, k in report.nccl_kernels(0)]
        assert "AllReduce" in ops
        assert "Send" not in ops and "Recv" not in ops

    def test_pp_emits_send_recv(self):
        par = ParallelismConfig(pp=2, dp=2, microbatches=2, global_batch=16)
        report = self._trace(llama_7b().scaled(0.05), par)
        first_stage_ops = [k.op for _, k in report.nccl_kernels(0)]
        last_stage_gpu = LlmTrainer(llama_7b().scaled(0.05), par).gpu_id(0, 1, 0)
        last_stage_ops = [k.op for _, k in report.nccl_kernels(last_stage_gpu)]
        assert "Send" in first_stage_ops
        assert "Recv" in last_stage_ops

    def test_moe_emits_alltoall(self):
        par = ParallelismConfig(pp=1, dp=4, ep=2, microbatches=2, global_batch=16)
        report = self._trace(mistral_8x7b().scaled(0.05), par)
        ops = [k.op for _, k in report.nccl_kernels(0)]
        assert "AllToAll" in ops

    def test_tp_allreduce_on_tp_communicator(self):
        par = ParallelismConfig(tp=2, dp=2, microbatches=2, global_batch=16)
        report = self._trace(llama_7b().scaled(0.05), par)
        comms = report.communicators
        tp_groups = [m for cid, m in comms.items() if cid != 0 and len(m) == 2 and m[1] - m[0] == 1]
        assert tp_groups, "expected at least one TP communicator of stride 1"

    def test_gpu_count_matches_parallelism(self):
        par = ParallelismConfig(tp=2, pp=2, dp=2, microbatches=2, global_batch=16)
        report = self._trace(llama_7b().scaled(0.05), par)
        assert report.num_gpus == 8

    def test_dp_allreduce_on_separate_stream(self):
        par = ParallelismConfig(dp=4, microbatches=2, global_batch=16)
        report = self._trace(llama_7b().scaled(0.05), par)
        assert LlmTrainer.DP_STREAM in report.streams[0]

    def test_ep_cannot_exceed_experts(self):
        with pytest.raises(ValueError):
            LlmTrainer(
                mistral_8x7b().scaled(0.05),
                ParallelismConfig(dp=16, ep=16, microbatches=1, global_batch=16),
            )


class TestDlrm:
    def test_trace_contains_alltoall_and_allreduce(self):
        report = DlrmTrainer(num_gpus=4, iterations=1).trace()
        ops = [k.op for _, k in report.nccl_kernels(0)]
        assert ops.count("AllToAll") == 2
        assert "AllReduce" in ops

    def test_requires_two_gpus(self):
        with pytest.raises(ValueError):
            DlrmTrainer(num_gpus=1)

"""Unit tests of the congestion-control window algorithms."""
import pytest

from repro.network.congestion import (
    DCTCP,
    MPRDMA,
    FixedWindow,
    NDPReceiverDriven,
    Swift,
    create_congestion_control,
)


def _mk(cls, **kwargs):
    defaults = dict(mtu=4096, initial_window_packets=10, base_rtt_ns=10_000)
    defaults.update(kwargs)
    return cls(**defaults)


class TestFactory:
    def test_create_by_name(self):
        for name, cls in (
            ("mprdma", MPRDMA),
            ("swift", Swift),
            ("dctcp", DCTCP),
            ("ndp", NDPReceiverDriven),
            ("fixed", FixedWindow),
        ):
            cc = create_congestion_control(name, mtu=4096, initial_window_packets=8, base_rtt_ns=5000)
            assert isinstance(cc, cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            create_congestion_control("bbr", 4096, 8, 5000)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            _mk(MPRDMA, mtu=0)
        with pytest.raises(ValueError):
            _mk(MPRDMA, initial_window_packets=0)


class TestWindowSemantics:
    def test_can_send_respects_window(self):
        cc = _mk(FixedWindow, initial_window_packets=2)
        assert cc.can_send(0)
        assert cc.can_send(4096)
        assert not cc.can_send(2 * 4096)

    def test_can_send_always_allows_first_packet(self):
        cc = _mk(FixedWindow, initial_window_packets=1)
        assert cc.can_send(0)

    def test_window_bytes(self):
        cc = _mk(FixedWindow, initial_window_packets=3)
        assert cc.window_bytes() == 3 * 4096


class TestMPRDMA:
    def test_unmarked_acks_grow_window(self):
        cc = _mk(MPRDMA)
        before = cc.cwnd
        for _ in range(20):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000)
        assert cc.cwnd > before

    def test_marked_acks_shrink_window(self):
        cc = _mk(MPRDMA)
        before = cc.cwnd
        for _ in range(5):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.cwnd < before

    def test_loss_collapses_window(self):
        cc = _mk(MPRDMA)
        cc.on_loss()
        assert cc.cwnd == cc.min_window

    def test_window_never_below_minimum(self):
        cc = _mk(MPRDMA, initial_window_packets=1)
        for _ in range(50):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.cwnd >= cc.min_window


class TestSwift:
    def test_low_delay_grows_window(self):
        cc = _mk(Swift)
        before = cc.cwnd
        for _ in range(20):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=5_000)
        assert cc.cwnd > before

    def test_high_delay_shrinks_window(self):
        cc = _mk(Swift, initial_window_packets=4)
        before = cc.cwnd
        for _ in range(40):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=200_000)
        assert cc.cwnd < before

    def test_decrease_bounded_by_max_mdf(self):
        cc = _mk(Swift, initial_window_packets=4)
        start = cc.cwnd
        # one full window of very late acks triggers exactly one decrease
        for _ in range(int(start)):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000_000)
        assert cc.cwnd >= start * (1.0 - cc.max_mdf) - 1e-9

    def test_ecn_is_ignored_by_swift(self):
        cc = _mk(Swift)
        a = _mk(Swift)
        for _ in range(10):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=5_000)
            a.on_ack(4096, ecn_marked=False, rtt_ns=5_000)
        assert cc.cwnd == a.cwnd

    def test_loss_reduces_window(self):
        cc = _mk(Swift)
        before = cc.cwnd
        cc.on_loss()
        assert cc.cwnd < before


class TestDCTCP:
    def test_alpha_tracks_marking_fraction(self):
        cc = _mk(DCTCP, initial_window_packets=4)
        for _ in range(100):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.alpha > 0.3

    def test_unmarked_traffic_keeps_alpha_zero(self):
        cc = _mk(DCTCP)
        for _ in range(50):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000)
        assert cc.alpha == 0.0
        assert cc.cwnd > cc.initial_window_packets

    def test_loss_halves_window(self):
        cc = _mk(DCTCP, initial_window_packets=8)
        cc.on_loss()
        assert cc.cwnd == pytest.approx(4.0)


class TestNDP:
    def test_marked_receiver_driven(self):
        assert NDPReceiverDriven.receiver_driven is True
        assert not MPRDMA.receiver_driven

    def test_feedback_is_noop(self):
        cc = _mk(NDPReceiverDriven)
        w = cc.cwnd
        cc.on_ack(4096, True, 1_000_000)
        cc.on_loss()
        assert cc.cwnd == w

    def test_header_size_positive(self):
        assert _mk(NDPReceiverDriven).header_size > 0


# ---------------------------------------------------------------------------
# Window growth/shrink boundary cases, per module (satellite of the
# co-tenancy PR: previously only integration-covered).
# ---------------------------------------------------------------------------
class TestWindowBoundaries:
    def test_can_send_exact_window_edge(self):
        # a packet that exactly fills the window is allowed; one byte past is not
        cc = _mk(FixedWindow, initial_window_packets=3)
        assert cc.can_send(2 * 4096)  # 2 in flight + 1 more == window
        assert not cc.can_send(2 * 4096 + 1)

    def test_window_bytes_truncates_fractional_cwnd(self):
        cc = _mk(MPRDMA, initial_window_packets=2)
        cc.on_ack(4096, ecn_marked=True, rtt_ns=1)  # 2.0 -> 1.5 packets
        assert cc.cwnd == pytest.approx(1.5)
        assert cc.window_bytes() == int(1.5 * 4096)

    def test_clamp_exactly_at_minimum_is_stable(self):
        cc = _mk(MPRDMA, initial_window_packets=1)
        assert cc.cwnd == cc.min_window
        cc.on_ack(4096, ecn_marked=True, rtt_ns=1)
        assert cc.cwnd == cc.min_window  # 1.0 - 0.5 clamps back to 1.0


class TestMPRDMABoundaries:
    def test_exact_per_ack_arithmetic(self):
        cc = _mk(MPRDMA, initial_window_packets=4)
        cc.on_ack(4096, ecn_marked=False, rtt_ns=1)
        assert cc.cwnd == pytest.approx(4.0 + 1.0 / 4.0)
        cc.on_ack(4096, ecn_marked=True, rtt_ns=1)
        assert cc.cwnd == pytest.approx(4.25 - 0.5)

    def test_loss_collapse_is_exact_from_any_state(self):
        cc = _mk(MPRDMA, initial_window_packets=100)
        for _ in range(10):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=1)
        cc.on_loss()
        assert cc.cwnd == cc.min_window

    def test_alternating_marks_drift_down(self):
        # decrease per mark (0.5) outweighs increase per unmarked ack (1/cwnd
        # < 0.5 for cwnd > 2), so fair alternation shrinks toward 2 packets
        cc = _mk(MPRDMA, initial_window_packets=8)
        for _ in range(50):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=1)
            cc.on_ack(4096, ecn_marked=False, rtt_ns=1)
        assert cc.cwnd < 3.0
        assert cc.cwnd >= cc.min_window


class TestSwiftBoundaries:
    def test_rtt_exactly_at_target_still_grows(self):
        cc = _mk(Swift, initial_window_packets=4)
        before = cc.cwnd
        cc.on_ack(4096, ecn_marked=False, rtt_ns=cc.target_delay_ns)
        assert cc.cwnd > before

    def test_rtt_one_past_target_decreases_only_once_per_window(self):
        cc = _mk(Swift, initial_window_packets=4)
        start = cc.cwnd
        late = cc.target_delay_ns + 1
        # fewer acks than a window: no decrease yet
        for _ in range(int(start) - 1):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=late)
        assert cc.cwnd == pytest.approx(start)
        # the window-completing ack triggers exactly one decrease
        cc.on_ack(4096, ecn_marked=False, rtt_ns=late)
        assert cc.cwnd < start

    def test_huge_excess_delay_bounded_by_max_mdf(self):
        cc = _mk(Swift, initial_window_packets=4)
        start = cc.cwnd
        for _ in range(int(start)):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10 ** 9)
        assert cc.cwnd == pytest.approx(start * (1.0 - cc.max_mdf))

    def test_zero_base_rtt_keeps_positive_target(self):
        cc = _mk(Swift, base_rtt_ns=0)
        assert cc.target_delay_ns == 1

    def test_loss_decrease_exact(self):
        cc = _mk(Swift, initial_window_packets=10)
        cc.on_loss()
        assert cc.cwnd == pytest.approx(10 * (1.0 - cc.max_mdf))


class TestDCTCPBoundaries:
    def test_alpha_updates_only_at_window_boundary(self):
        # the boundary is dynamic (additive increase grows cwnd per ack), so
        # alpha must stay zero for at least the initial window's worth of
        # acks and then jump to exactly g after one fully marked window
        cc = _mk(DCTCP, initial_window_packets=4)
        acks = 0
        while cc.alpha == 0.0 and acks < 50:
            cc.on_ack(4096, ecn_marked=True, rtt_ns=1)
            acks += 1
        assert acks >= 4  # never before a full initial window
        assert cc.alpha == pytest.approx(cc.g)  # one fully marked window

    def test_unmarked_window_never_shrinks(self):
        cc = _mk(DCTCP, initial_window_packets=4)
        for _ in range(8):
            before = cc.cwnd
            cc.on_ack(4096, ecn_marked=False, rtt_ns=1)
            assert cc.cwnd >= before

    def test_single_mark_in_window_triggers_reduction(self):
        # one mark in an otherwise clean window still reduces at the boundary
        cc = _mk(DCTCP, initial_window_packets=4)
        grown = _mk(DCTCP, initial_window_packets=4)
        for i in range(10):  # enough acks to complete at least one window
            cc.on_ack(4096, ecn_marked=(i == 0), rtt_ns=1)
            grown.on_ack(4096, ecn_marked=False, rtt_ns=1)
        assert cc.cwnd < grown.cwnd

    def test_loss_halves_and_clamps(self):
        cc = _mk(DCTCP, initial_window_packets=1)
        cc.on_loss()
        assert cc.cwnd == cc.min_window


class TestFixedWindowBoundaries:
    def test_acks_never_change_window(self):
        cc = _mk(FixedWindow, initial_window_packets=6)
        for marked in (True, False):
            cc.on_ack(4096, ecn_marked=marked, rtt_ns=10 ** 9)
        assert cc.cwnd == 6.0

    def test_repeated_losses_floor_at_min_window(self):
        cc = _mk(FixedWindow, initial_window_packets=6)
        for _ in range(10):
            cc.on_loss()
        assert cc.cwnd == cc.min_window


class TestNdpTrimEdgeCases:
    """NDP's trim/pull path through the packet backend (edge behaviour)."""

    def _incast_result(self, buffer_size):
        from repro.network import SimulationConfig
        from repro.schedgen import incast
        from repro.scheduler import simulate

        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            cc_algorithm="ndp",
            buffer_size=buffer_size,
            mtu=4096,
            seed=2,
        )
        return simulate(incast(8, 1 << 16), backend="htsim", config=config)

    def test_overflow_trims_instead_of_dropping(self):
        # a buffer of exactly two MTUs forces the incast to trim headers
        result = self._incast_result(buffer_size=2 * 4096)
        assert result.stats.packets_trimmed > 0
        assert result.stats.packets_dropped == 0
        # trimmed packets are retransmitted via pulls; delivery completes
        assert result.stats.messages_delivered == 7
        assert result.ops_completed > 0

    def test_ample_buffer_never_trims(self):
        result = self._incast_result(buffer_size=1 << 20)
        assert result.stats.packets_trimmed == 0
        assert result.stats.messages_delivered == 7

"""Unit tests of the congestion-control window algorithms."""
import pytest

from repro.network.congestion import (
    DCTCP,
    MPRDMA,
    FixedWindow,
    NDPReceiverDriven,
    Swift,
    create_congestion_control,
)


def _mk(cls, **kwargs):
    defaults = dict(mtu=4096, initial_window_packets=10, base_rtt_ns=10_000)
    defaults.update(kwargs)
    return cls(**defaults)


class TestFactory:
    def test_create_by_name(self):
        for name, cls in (
            ("mprdma", MPRDMA),
            ("swift", Swift),
            ("dctcp", DCTCP),
            ("ndp", NDPReceiverDriven),
            ("fixed", FixedWindow),
        ):
            cc = create_congestion_control(name, mtu=4096, initial_window_packets=8, base_rtt_ns=5000)
            assert isinstance(cc, cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            create_congestion_control("bbr", 4096, 8, 5000)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            _mk(MPRDMA, mtu=0)
        with pytest.raises(ValueError):
            _mk(MPRDMA, initial_window_packets=0)


class TestWindowSemantics:
    def test_can_send_respects_window(self):
        cc = _mk(FixedWindow, initial_window_packets=2)
        assert cc.can_send(0)
        assert cc.can_send(4096)
        assert not cc.can_send(2 * 4096)

    def test_can_send_always_allows_first_packet(self):
        cc = _mk(FixedWindow, initial_window_packets=1)
        assert cc.can_send(0)

    def test_window_bytes(self):
        cc = _mk(FixedWindow, initial_window_packets=3)
        assert cc.window_bytes() == 3 * 4096


class TestMPRDMA:
    def test_unmarked_acks_grow_window(self):
        cc = _mk(MPRDMA)
        before = cc.cwnd
        for _ in range(20):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000)
        assert cc.cwnd > before

    def test_marked_acks_shrink_window(self):
        cc = _mk(MPRDMA)
        before = cc.cwnd
        for _ in range(5):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.cwnd < before

    def test_loss_collapses_window(self):
        cc = _mk(MPRDMA)
        cc.on_loss()
        assert cc.cwnd == cc.min_window

    def test_window_never_below_minimum(self):
        cc = _mk(MPRDMA, initial_window_packets=1)
        for _ in range(50):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.cwnd >= cc.min_window


class TestSwift:
    def test_low_delay_grows_window(self):
        cc = _mk(Swift)
        before = cc.cwnd
        for _ in range(20):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=5_000)
        assert cc.cwnd > before

    def test_high_delay_shrinks_window(self):
        cc = _mk(Swift, initial_window_packets=4)
        before = cc.cwnd
        for _ in range(40):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=200_000)
        assert cc.cwnd < before

    def test_decrease_bounded_by_max_mdf(self):
        cc = _mk(Swift, initial_window_packets=4)
        start = cc.cwnd
        # one full window of very late acks triggers exactly one decrease
        for _ in range(int(start)):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000_000)
        assert cc.cwnd >= start * (1.0 - cc.max_mdf) - 1e-9

    def test_ecn_is_ignored_by_swift(self):
        cc = _mk(Swift)
        a = _mk(Swift)
        for _ in range(10):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=5_000)
            a.on_ack(4096, ecn_marked=False, rtt_ns=5_000)
        assert cc.cwnd == a.cwnd

    def test_loss_reduces_window(self):
        cc = _mk(Swift)
        before = cc.cwnd
        cc.on_loss()
        assert cc.cwnd < before


class TestDCTCP:
    def test_alpha_tracks_marking_fraction(self):
        cc = _mk(DCTCP, initial_window_packets=4)
        for _ in range(100):
            cc.on_ack(4096, ecn_marked=True, rtt_ns=10_000)
        assert cc.alpha > 0.3

    def test_unmarked_traffic_keeps_alpha_zero(self):
        cc = _mk(DCTCP)
        for _ in range(50):
            cc.on_ack(4096, ecn_marked=False, rtt_ns=10_000)
        assert cc.alpha == 0.0
        assert cc.cwnd > cc.initial_window_packets

    def test_loss_halves_window(self):
        cc = _mk(DCTCP, initial_window_packets=8)
        cc.on_loss()
        assert cc.cwnd == pytest.approx(4.0)


class TestNDP:
    def test_marked_receiver_driven(self):
        assert NDPReceiverDriven.receiver_driven is True
        assert not MPRDMA.receiver_driven

    def test_feedback_is_noop(self):
        cc = _mk(NDPReceiverDriven)
        w = cc.cwnd
        cc.on_ack(4096, True, 1_000_000)
        cc.on_loss()
        assert cc.cwnd == w

    def test_header_size_positive(self):
        assert _mk(NDPReceiverDriven).header_size > 0

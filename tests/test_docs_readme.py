"""Docs checks: README / architecture code blocks stay import-clean.

Extracts fenced ``python`` code blocks from the top-level docs, compiles
each one, and executes their import statements so a renamed module or
symbol breaks CI instead of silently rotting the documentation.  Shell
blocks are spot-checked for files they reference.
"""
import re
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "performance.md",
    REPO_ROOT / "docs" / "collectives.md",
    REPO_ROOT / "docs" / "inference.md",
]

_FENCE = re.compile(r"[ \t]*```python\n(.*?)[ \t]*```", re.DOTALL)


def _python_blocks(path):
    # blocks nested in markdown lists are indented; dedent before compiling
    return [textwrap.dedent(block) for block in _FENCE.findall(path.read_text())]


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_doc_exists_and_has_content(doc):
    assert doc.exists(), f"{doc} is missing"
    assert len(doc.read_text()) > 500


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_python_blocks_compile(doc):
    blocks = _python_blocks(doc)
    for i, block in enumerate(blocks):
        # blocks with intentional placeholders (...) still have to parse
        compile(block, f"{doc.name}[block {i}]", "exec")


def test_readme_imports_resolve():
    """Every import statement in README python blocks must execute."""
    blocks = _python_blocks(REPO_ROOT / "README.md")
    assert blocks, "README has no python code blocks"
    imports = [
        line
        for block in blocks
        for line in block.splitlines()
        if re.match(r"\s*(from|import)\s+\w", line) and "..." not in line
    ]
    assert imports, "README python blocks contain no imports"
    source = "\n".join(line.strip() for line in imports)
    exec(compile(source, "README.md[imports]", "exec"), {})


def test_readme_referenced_files_exist():
    """Paths the README tells users to run must exist in the repo."""
    text = (REPO_ROOT / "README.md").read_text()
    for rel in set(re.findall(r"(?:examples|docs|benchmarks)/[\w./-]+\.(?:py|md)", text)):
        assert (REPO_ROOT / rel).exists(), f"README references missing file {rel}"


def test_readme_names_all_topologies_and_routings():
    """The support matrix must mention every registered topology and routing."""
    from repro.network.routing import routing_names
    from repro.network.topology import topology_names

    text = (REPO_ROOT / "README.md").read_text()
    for name in topology_names() + routing_names():
        assert f"`{name}`" in text, f"README support matrix is missing {name!r}"

"""Differential tests: structural route synthesis vs the enumeration reference.

Regular topologies compute candidate routes in closed form from coordinates
(:meth:`Topology.synthesized_routes`); the pre-existing :meth:`Topology.routes`
enumeration stays as the reference.  These tests prove the two bit-identical —
same candidate tuples, same order, same hop latencies — on small instances of
*every registered topology*, then prove that whole simulations are
bit-identical with synthesis on and off across every routing strategy.

This file runs in the CI flake-guard job under two PYTHONHASHSEEDs: the
closed-form link-id arithmetic must not depend on dict/set iteration order.
"""
import pytest

from repro.network.config import SimulationConfig
from repro.network.routing import routing_names
from repro.network.topology import build_topology, topology_names
from repro.network.topology.base import RouteTable
from repro.schedgen import all_to_all
from repro.scheduler import simulate

# One small instance per registered topology: (config, num_hosts).
# test_every_registered_topology_is_covered keeps this in sync with the
# factory, so a new topology cannot land without a differential entry.
SMALL_INSTANCES = {
    "single_switch": (SimulationConfig(topology="single_switch"), 6),
    "fat_tree": (SimulationConfig(topology="fat_tree", nodes_per_tor=4), 12),
    "fat_tree_multiplane": (
        SimulationConfig(
            topology="fat_tree_multiplane", nodes_per_tor=4, fattree_planes=2
        ),
        12,
    ),
    "fat_tree_rail": (
        SimulationConfig(topology="fat_tree_rail", fattree_rails=2, nodes_per_tor=3),
        12,
    ),
    "dragonfly": (
        SimulationConfig(
            topology="dragonfly",
            dragonfly_groups=4,
            dragonfly_routers_per_group=2,
            dragonfly_nodes_per_router=2,
        ),
        16,
    ),
    "torus": (SimulationConfig(topology="torus", torus_dims=(3, 3)), 9),
    "slimfly": (SimulationConfig(topology="slimfly"), 12),
}

# Extra shapes that stress the closed-form arithmetic beyond the defaults:
# oversubscription (fewer cores), partial ToRs/pods, 3D torus, asymmetric
# dragonfly, multi-GPU torus nodes.
EXTRA_INSTANCES = [
    (SimulationConfig(topology="fat_tree", nodes_per_tor=4, oversubscription=2.0), 10),
    (SimulationConfig(topology="fat_tree", nodes_per_tor=8), 20),
    (
        SimulationConfig(
            topology="fat_tree_multiplane",
            nodes_per_tor=8,
            fattree_planes=4,
            oversubscription=2.0,
        ),
        16,
    ),
    (SimulationConfig(topology="fat_tree_rail", fattree_rails=4, nodes_per_tor=2), 16),
    (SimulationConfig(topology="torus", torus_dims=(2, 3, 4)), 24),
    (SimulationConfig(topology="torus", torus_dims=(4, 4), torus_hosts_per_node=2), 20),
    (
        SimulationConfig(
            topology="dragonfly",
            dragonfly_groups=5,
            dragonfly_routers_per_group=3,
            dragonfly_nodes_per_router=1,
        ),
        15,
    ),
]


def _assert_synthesis_matches(topo) -> None:
    for src in range(topo.num_hosts):
        for dst in range(topo.num_hosts):
            if src == dst:
                continue
            synthesized = tuple(topo.synthesized_routes(src, dst))
            enumerated = tuple(topo.routes(src, dst))
            assert synthesized == enumerated, (
                f"{type(topo).__name__}: candidates diverge for "
                f"({src}, {dst}): {synthesized} != {enumerated}"
            )
            # same hop latencies, via the same numpy tables the strategies read
            syn_table = RouteTable(synthesized, topo.links)
            enum_table = RouteTable(enumerated, topo.links)
            assert syn_table.latency.tolist() == enum_table.latency.tolist()
            assert syn_table.hops.tolist() == enum_table.hops.tolist()


def test_every_registered_topology_is_covered():
    assert set(SMALL_INSTANCES) == set(topology_names())


@pytest.mark.parametrize("name", sorted(SMALL_INSTANCES))
def test_synthesized_routes_equal_enumerated(name):
    config, num_hosts = SMALL_INSTANCES[name]
    topo = build_topology(config, num_hosts)
    _assert_synthesis_matches(topo)


@pytest.mark.parametrize(
    "config, num_hosts",
    EXTRA_INSTANCES,
    ids=lambda v: v.topology if isinstance(v, SimulationConfig) else str(v),
)
def test_synthesized_routes_equal_enumerated_extra_shapes(config, num_hosts):
    topo = build_topology(config, num_hosts)
    _assert_synthesis_matches(topo)


@pytest.mark.parametrize("name", sorted(SMALL_INSTANCES))
def test_route_tables_identical_with_synthesis_off(name):
    """route_table() must yield identical tables from either source."""
    config, num_hosts = SMALL_INSTANCES[name]
    syn = build_topology(config, num_hosts)
    ref = build_topology(config.replace(route_synthesis=False), num_hosts)
    syn.use_synthesis = True
    ref.use_synthesis = False
    for src in range(num_hosts):
        for dst in range(num_hosts):
            if src == dst:
                continue
            assert (
                syn.route_table(src, dst).candidates
                == ref.route_table(src, dst).candidates
            )


@pytest.mark.parametrize("routing", sorted(routing_names()))
@pytest.mark.parametrize(
    "topology", ["fat_tree", "fat_tree_multiplane", "fat_tree_rail", "dragonfly", "torus"]
)
def test_simulation_bit_identical_across_synthesis(topology, routing):
    """Full runs must be bit-identical with synthesis on vs off."""
    config, num_hosts = SMALL_INSTANCES[topology]
    config = config.replace(routing=routing, seed=7)
    schedule = all_to_all(num_hosts, 1 << 12)
    on = simulate(schedule, backend="htsim", config=config)
    off = simulate(
        schedule, backend="htsim", config=config.replace(route_synthesis=False)
    )
    assert on.finish_time_ns == off.finish_time_ns
    assert on.stats == off.stats


@pytest.mark.parametrize("topology", ["torus", "slimfly"])
def test_loggops_bit_identical_across_synthesis(topology):
    """Topology-aware LogGOPS runs must be equally synthesis-blind."""
    config, num_hosts = SMALL_INSTANCES[topology]
    config = config.replace(routing="adaptive", seed=11)
    schedule = all_to_all(num_hosts, 1 << 12)
    on = simulate(schedule, backend="lgs", config=config)
    off = simulate(
        schedule, backend="lgs", config=config.replace(route_synthesis=False)
    )
    assert on.finish_time_ns == off.finish_time_ns
    assert on.stats == off.stats

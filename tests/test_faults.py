"""Unit tests of the fault-injection subsystem (repro.network.faults).

Covers the FaultSchedule spec itself (validation, resolution, nested random
draws), the topology's fault state (fail/restore/drain, alive-filtered route
tables, the partition error, static degradation), both backends' fault
behaviour (static and timed events, in-flight rerouting, degraded-capacity
latency factors), and the headline guarantee: an **empty** schedule leaves
both backends bit-identical to a run without any fault machinery.
"""
import pytest

from repro.network import FaultEvent, FaultSchedule, NetworkPartitionError, SimulationConfig
from repro.network.faults import (
    LINK_DOWN,
    LINK_UP,
    SWITCH_DRAIN,
    SWITCH_UNDRAIN,
    fabric_cables,
    random_failed_link_ids,
    resolve_link_ids,
    switch_link_ids,
)
from repro.network.topology.fattree import FatTreeTopology
from repro.schedgen import all_to_all, incast
from repro.scheduler import simulate


def _fat_tree_config(**kwargs) -> SimulationConfig:
    return SimulationConfig(topology="fat_tree", nodes_per_tor=4, **kwargs)


def _link_id(topo, name: str) -> int:
    return resolve_link_ids(topo, name)[0]


# --------------------------------------------------------------------------- spec
class TestFaultScheduleSpec:
    def test_empty_schedule_is_falsy(self):
        assert FaultSchedule().is_empty()
        assert not FaultSchedule()
        assert FaultSchedule(failed_links=("tor0->core0",))
        assert FaultSchedule(link_failure_rate=0.1)
        assert FaultSchedule(events=(FaultEvent(0, LINK_DOWN, 3),))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="link_failure_rate"):
            FaultSchedule(link_failure_rate=1.0)
        with pytest.raises(ValueError, match="link_failure_rate"):
            FaultSchedule(link_failure_rate=-0.1)

    def test_rejects_bad_degradation_factor(self):
        with pytest.raises(ValueError, match="capacity factor"):
            FaultSchedule(degraded_links=(("tor0->core0", 0.0),))
        with pytest.raises(ValueError, match="capacity factor"):
            FaultSchedule(degraded_links=(("tor0->core0", 1.5),))

    def test_event_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(-1, LINK_DOWN, "x")
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultEvent(0, "link_wobble", "x")
        with pytest.raises(ValueError, match="switch device id"):
            FaultEvent(0, SWITCH_DRAIN, "tor0")

    def test_sorted_events_stable_on_ties(self):
        a = FaultEvent(5, LINK_DOWN, "a")
        b = FaultEvent(5, LINK_DOWN, "b")
        c = FaultEvent(1, LINK_UP, "c")
        fs = FaultSchedule(events=(a, b, c), failed_links=("c",))
        assert fs.sorted_events() == (c, a, b)

    def test_accepts_lists(self):
        fs = FaultSchedule(
            events=[FaultEvent(0, LINK_DOWN, "x")],
            failed_links=["a", 2],
            degraded_links=[("b", 0.5)],
        )
        assert isinstance(fs.events, tuple)
        assert fs.failed_links == ("a", 2)
        assert fs.degraded_links == (("b", 0.5),)


class TestContradictorySchedules:
    """Contradictory timed sequences are rejected with actionable errors.

    A duplicate link_down would need two link_ups to undo (the topology
    reference-counts failure causes), and a link_up/undrain with no prior
    down/drain is a no-op masking a schedule bug — both are almost
    certainly authoring mistakes, so construction fails fast.
    """

    def test_duplicate_link_down(self):
        with pytest.raises(ValueError, match="already down.*link_up for it first"):
            FaultSchedule(
                events=(
                    FaultEvent(10, LINK_DOWN, "tor0->core0"),
                    FaultEvent(20, LINK_DOWN, "tor0->core0"),
                )
            )

    def test_link_down_already_in_failed_links(self):
        with pytest.raises(ValueError, match="contradictory.*already down"):
            FaultSchedule(
                failed_links=("tor0->core0",),
                events=(FaultEvent(10, LINK_DOWN, "tor0->core0"),),
            )

    def test_link_up_without_prior_down(self):
        with pytest.raises(ValueError, match="not down.*prior link_down"):
            FaultSchedule(events=(FaultEvent(10, LINK_UP, "tor0->core0"),))

    def test_double_link_up(self):
        with pytest.raises(ValueError, match="not down at that time"):
            FaultSchedule(
                failed_links=("tor0->core0",),
                events=(
                    FaultEvent(10, LINK_UP, "tor0->core0"),
                    FaultEvent(20, LINK_UP, "tor0->core0"),
                ),
            )

    def test_duplicate_drain_and_spurious_undrain(self):
        with pytest.raises(ValueError, match="already drained.*switch_undrain"):
            FaultSchedule(
                events=(
                    FaultEvent(10, SWITCH_DRAIN, 8),
                    FaultEvent(20, SWITCH_DRAIN, 8),
                )
            )
        with pytest.raises(ValueError, match="not drained.*prior.*switch_drain"):
            FaultSchedule(events=(FaultEvent(10, SWITCH_UNDRAIN, 8),))

    def test_contradiction_checked_in_time_order_not_declaration_order(self):
        # declared out of order, but the *applied* sequence is legal
        fs = FaultSchedule(
            events=(
                FaultEvent(30, LINK_DOWN, "tor0->core0"),
                FaultEvent(20, LINK_UP, "tor0->core0"),
                FaultEvent(10, LINK_DOWN, "tor0->core0"),
            )
        )
        assert len(fs.sorted_events()) == 3

    def test_flap_and_redown_are_legal(self):
        fs = FaultSchedule(
            failed_links=("core0->tor0",),
            events=(
                FaultEvent(10, LINK_DOWN, "tor0->core0"),
                FaultEvent(20, LINK_UP, "tor0->core0"),
                FaultEvent(25, LINK_UP, "core0->tor0"),
                FaultEvent(30, LINK_DOWN, "tor0->core0"),
                FaultEvent(40, SWITCH_DRAIN, 8),
                FaultEvent(50, SWITCH_UNDRAIN, 8),
                FaultEvent(60, SWITCH_DRAIN, 8),
            ),
        )
        assert len(fs.events) == 7

    def test_same_link_by_name_and_id_tracked_per_spelling(self):
        # best-effort: without a topology the two spellings cannot be
        # unified, so this does not raise (documented limitation)
        fs = FaultSchedule(
            events=(
                FaultEvent(10, LINK_DOWN, "tor0->core0"),
                FaultEvent(20, LINK_DOWN, 7),
            )
        )
        assert len(fs.events) == 2


# --------------------------------------------------------------------- resolution
class TestResolution:
    def setup_method(self):
        self.topo = FatTreeTopology(8, nodes_per_tor=4)

    def test_resolve_by_name_and_id(self):
        link_id = _link_id(self.topo, "tor0->core1")
        assert self.topo.links[link_id].name == "tor0->core1"
        assert resolve_link_ids(self.topo, link_id) == [link_id]

    def test_unknown_name_lists_examples(self):
        with pytest.raises(ValueError, match="no link named 'nope'"):
            resolve_link_ids(self.topo, "nope")
        with pytest.raises(ValueError, match="valid names"):
            resolve_link_ids(self.topo, "nope")

    def test_out_of_range_id(self):
        with pytest.raises(ValueError, match="out of range"):
            resolve_link_ids(self.topo, 10_000)

    def test_switch_link_ids_cover_all_directions(self):
        tor0 = self.topo.tor_switches[0]
        ids = switch_link_ids(self.topo, tor0)
        for link_id in ids:
            link = self.topo.links[link_id]
            assert tor0 in (link.src, link.dst)
        # 4 hosts x 2 directions + per-core up/down
        assert len(ids) == 8 + 2 * self.topo.num_cores

    def test_switch_link_ids_rejects_hosts(self):
        with pytest.raises(ValueError, match="is a host"):
            switch_link_ids(self.topo, 0)
        with pytest.raises(ValueError, match="out of range"):
            switch_link_ids(self.topo, self.topo.num_devices)

    def test_fabric_cables_exclude_host_links(self):
        cables = fabric_cables(self.topo)
        # 2 ToRs x 4 cores = 8 switch-to-switch cables, 2 links each
        assert len(cables) == 8
        for cable in cables:
            assert len(cable) == 2
            for link_id in cable:
                link = self.topo.links[link_id]
                assert not self.topo.is_host(link.src)
                assert not self.topo.is_host(link.dst)

    def test_random_draws_nested_across_rates(self):
        low = set(random_failed_link_ids(self.topo, 0.25, seed=7))
        high = set(random_failed_link_ids(self.topo, 0.5, seed=7))
        assert low and low < high
        assert random_failed_link_ids(self.topo, 0.0, seed=7) == []

    def test_random_draws_fail_whole_cables(self):
        ids = random_failed_link_ids(self.topo, 0.25, seed=3)
        links = self.topo.links
        for link_id in ids:
            link = links[link_id]
            reverse = [
                l.link_id for l in links if l.src == link.dst and l.dst == link.src
            ]
            assert any(r in ids for r in reverse)

    def test_static_failed_ids_deduplicate(self):
        link_id = _link_id(self.topo, "tor0->core0")
        fs = FaultSchedule(failed_links=("tor0->core0", link_id))
        assert fs.static_failed_ids(self.topo) == [link_id]


# ----------------------------------------------------------------- topology state
class TestTopologyFaultState:
    def setup_method(self):
        self.topo = FatTreeTopology(8, nodes_per_tor=4)

    def test_fail_restore_roundtrip(self):
        link_id = _link_id(self.topo, "tor0->core0")
        assert not self.topo.faulty
        assert self.topo.alive_mask() is None
        self.topo.fail_links([link_id])
        assert self.topo.faulty
        mask = self.topo.alive_mask()
        assert not mask[link_id] and mask.sum() == len(self.topo.links) - 1
        assert not self.topo.route_alive((link_id,))
        self.topo.restore_links([link_id])
        assert not self.topo.faulty
        assert self.topo.alive_mask() is None

    def test_alive_table_filters_candidates(self):
        full = self.topo.route_table(0, 4).candidates
        dead = _link_id(self.topo, "tor0->core0")
        self.topo.fail_links([dead])
        alive = self.topo.alive_table(0, 4).candidates
        assert len(alive) == len(full) - 1
        assert all(dead not in route for route in alive)
        # candidate order is preserved
        assert list(alive) == [r for r in full if dead not in r]

    def test_alive_table_memoized_per_epoch(self):
        self.topo.fail_links([_link_id(self.topo, "tor0->core0")])
        first = self.topo.alive_table(0, 4)
        assert self.topo.alive_table(0, 4) is first
        self.topo.fail_links([_link_id(self.topo, "tor0->core1")])
        assert self.topo.alive_table(0, 4) is not first

    def test_partition_error_names_pair_and_links(self):
        for core in range(self.topo.num_cores):
            self.topo.fail_links([_link_id(self.topo, f"tor0->core{core}")])
        with pytest.raises(NetworkPartitionError, match=r"host 0 to host 4"):
            self.topo.alive_table(0, 4)
        with pytest.raises(NetworkPartitionError, match="tor0->core0"):
            self.topo.alive_table(0, 4)
        # intra-ToR pairs are unaffected
        assert self.topo.alive_table(0, 1).candidates

    def test_partition_error_reports_epoch_and_hop_prefixes(self):
        # four fail_links calls -> fault epoch 4; all 4 candidates die at
        # hop 2 (the ToR uplink tier), so the hop-prefix profile localizes
        # the cut: alive through the NIC hop, dead from the uplinks on
        for core in range(self.topo.num_cores):
            self.topo.fail_links([_link_id(self.topo, f"tor0->core{core}")])
        with pytest.raises(NetworkPartitionError, match=r"at fault epoch 4"):
            self.topo.alive_table(0, 4)
        with pytest.raises(
            NetworkPartitionError,
            match=r"4 alive through hop 1; 0 alive through hop 2",
        ):
            self.topo.alive_table(0, 4)

    def test_partition_error_caps_failed_link_names(self):
        # a 16k-host report must not dump thousands of link names: beyond
        # 12 the message summarizes with "+N more"
        big = FatTreeTopology(64, nodes_per_tor=4)  # 16 tors x 4 cores
        failed = [f"tor{t}->core{c}" for t in (0, 1, 2, 3) for c in range(4)]
        big.fail_links([_link_id(big, name) for name in failed])
        with pytest.raises(NetworkPartitionError, match=r"\+4 more"):
            big.alive_table(0, 60)

    def test_overlapping_causes_are_reference_counted(self):
        # drain two switches sharing a cable, undrain one: the shared cable
        # must stay down until the second cause is also restored
        from repro.network.faults import switch_link_ids

        tor0 = self.topo.tor_switches[0]
        core0 = self.topo.core_switches[0]
        drain_tor = switch_link_ids(self.topo, tor0)
        drain_core = switch_link_ids(self.topo, core0)
        shared = set(drain_tor) & set(drain_core)
        assert shared  # the tor0<->core0 cable
        self.topo.fail_links(drain_tor)
        self.topo.fail_links(drain_core)
        self.topo.restore_links(drain_tor)
        assert self.topo.faulty
        assert self.topo.failed_links == frozenset(drain_core)
        for link_id in shared:
            assert not self.topo.route_alive((link_id,))
        self.topo.restore_links(drain_core)
        assert not self.topo.faulty

    def test_restore_of_healthy_link_is_noop(self):
        link_id = _link_id(self.topo, "tor0->core0")
        self.topo.restore_links([link_id])
        assert not self.topo.faulty
        # duplicates within one call count as one cause
        self.topo.fail_links([link_id, link_id])
        self.topo.restore_links([link_id])
        assert not self.topo.faulty

    def test_degrade_link_scales_bandwidth(self):
        link_id = _link_id(self.topo, "tor0->core0")
        before = self.topo.links[link_id].bandwidth
        self.topo.degrade_link(link_id, 0.5)
        assert self.topo.links[link_id].bandwidth == pytest.approx(before * 0.5)
        with pytest.raises(ValueError, match="capacity factor"):
            self.topo.degrade_link(link_id, 0.0)


# ----------------------------------------------------- empty schedule bit-identity
class TestEmptyScheduleBitIdentity:
    """An empty FaultSchedule must be byte-for-byte the pre-fault behaviour."""

    @pytest.mark.parametrize("backend", ["htsim", "lgs"])
    def test_default_and_explicit_empty_identical(self, backend):
        schedule = all_to_all(8, 1 << 16)
        base = _fat_tree_config(seed=3)
        r0 = simulate(schedule, backend=backend, config=base)
        r1 = simulate(
            schedule, backend=backend, config=base.replace(faults=FaultSchedule())
        )
        r2 = simulate(schedule, backend=backend, config=base.replace(faults=None))
        assert r0.finish_time_ns == r1.finish_time_ns == r2.finish_time_ns
        assert r0.rank_finish_times_ns == r1.rank_finish_times_ns
        assert r0.message_records == r1.message_records == r2.message_records
        assert vars(r0.stats) == vars(r1.stats) == vars(r2.stats)

    @pytest.mark.parametrize("backend", ["htsim", "lgs"])
    def test_topology_aware_empty_identical(self, backend):
        schedule = all_to_all(8, 1 << 14)
        base = SimulationConfig(topology="torus", torus_dims=(2, 2), torus_hosts_per_node=2, routing="adaptive", seed=5)
        r0 = simulate(schedule, backend=backend, config=base)
        r1 = simulate(schedule, backend=backend, config=base.replace(faults=FaultSchedule()))
        assert r0.finish_time_ns == r1.finish_time_ns
        assert r0.message_records == r1.message_records

    @pytest.mark.parametrize("backend", ["htsim", "lgs"])
    def test_oracle_control_plane_is_the_default_behaviour(self, backend):
        """``control_plane="oracle"`` is bit-identical to the pre-convergence
        code path, with and without faults, at any delay setting (the delay
        knobs must be dead parameters under the oracle)."""
        schedule = all_to_all(8, 1 << 16)
        fs = FaultSchedule(
            events=(
                FaultEvent(3_000, LINK_DOWN, "tor0->core0"),
                FaultEvent(3_000, LINK_DOWN, "core0->tor0"),
            )
        )
        for faults in (None, fs):
            base = _fat_tree_config(seed=3) if faults is None else _fat_tree_config(
                seed=3, faults=faults
            )
            r0 = simulate(schedule, backend=backend, config=base)
            r1 = simulate(
                schedule, backend=backend, config=base.replace(control_plane="oracle")
            )
            r2 = simulate(
                schedule,
                backend=backend,
                config=base.replace(control_plane="oracle", cp_propagation_ns=999_999),
            )
            assert r0.finish_time_ns == r1.finish_time_ns == r2.finish_time_ns
            assert r0.message_records == r1.message_records == r2.message_records
            assert vars(r0.stats) == vars(r1.stats) == vars(r2.stats)

    def test_unknown_control_plane_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown control plane 'bgp'"):
            SimulationConfig(control_plane="bgp")
        with pytest.raises(ValueError, match="non-negative"):
            SimulationConfig(cp_propagation_ns=-1)


# ------------------------------------------------------------------ packet backend
class TestPacketBackendFaults:
    def test_static_failure_avoids_dead_links(self):
        schedule = all_to_all(8, 1 << 16)
        fs = FaultSchedule(failed_links=("tor0->core0", "core0->tor0"))
        config = _fat_tree_config(faults=fs)
        from repro.network.packet.backend import PacketBackend
        from repro.scheduler import GoalScheduler

        backend = PacketBackend()
        result = GoalScheduler(schedule, backend=backend, config=config).run()
        assert result.stats.messages_delivered == 8 * 7
        dead = {
            _link_id(backend.topology, "tor0->core0"),
            _link_id(backend.topology, "core0->tor0"),
        }
        for flow in backend.flows:
            assert not dead & set(flow.route)
            assert not dead & set(flow.ack_route)

    def test_mid_run_failure_reroutes_in_flight_packets(self):
        schedule = all_to_all(8, 1 << 20)
        names = [f"tor{t}->core{c}" for t in (0, 1) for c in (0, 1, 2)]
        names += [f"core{c}->tor{t}" for t in (0, 1) for c in (0, 1, 2)]
        fs = FaultSchedule(events=tuple(FaultEvent(30_000, LINK_DOWN, n) for n in names))
        config = _fat_tree_config()
        healthy = simulate(schedule, backend="htsim", config=config)
        faulted = simulate(schedule, backend="htsim", config=config.replace(faults=fs))
        assert faulted.stats.messages_delivered == healthy.stats.messages_delivered
        assert faulted.stats.packets_rerouted > 0
        assert faulted.finish_time_ns > healthy.finish_time_ns

    def test_fault_behaviour_identical_across_engines(self):
        """Burst and legacy engines agree event-for-event under faults."""
        schedule = all_to_all(8, 1 << 20)
        names = [f"tor{t}->core{c}" for t in (0, 1) for c in (0, 1, 2)]
        names += [f"core{c}->tor{t}" for t in (0, 1) for c in (0, 1, 2)]
        fs = FaultSchedule(events=tuple(FaultEvent(30_000, LINK_DOWN, n) for n in names))
        config = _fat_tree_config(faults=fs)
        burst = simulate(schedule, backend="htsim", config=config)
        legacy = simulate(
            schedule, backend="htsim", config=config.replace(packet_batching=False)
        )
        assert burst.finish_time_ns == legacy.finish_time_ns
        assert burst.message_records == legacy.message_records
        assert burst.stats.packets_rerouted == legacy.stats.packets_rerouted
        assert burst.stats.packets_lost_to_faults == legacy.stats.packets_lost_to_faults

    def test_link_flap_recovers(self):
        schedule = all_to_all(8, 1 << 18)
        fs = FaultSchedule(
            events=(
                FaultEvent(20_000, LINK_DOWN, "tor0->core0"),
                FaultEvent(20_000, LINK_DOWN, "core0->tor0"),
                FaultEvent(60_000, LINK_UP, "tor0->core0"),
                FaultEvent(60_000, LINK_UP, "core0->tor0"),
            )
        )
        config = _fat_tree_config()
        healthy = simulate(schedule, backend="htsim", config=config)
        flapped = simulate(schedule, backend="htsim", config=config.replace(faults=fs))
        assert flapped.stats.messages_delivered == healthy.stats.messages_delivered

    def test_switch_drain_event(self):
        schedule = all_to_all(8, 1 << 18)
        config = _fat_tree_config()
        from repro.network.topology import build_topology

        topo = build_topology(config, 8)
        core0 = topo.core_switches[0]
        fs = FaultSchedule(
            events=(
                FaultEvent(10_000, SWITCH_DRAIN, core0),
                FaultEvent(80_000, SWITCH_UNDRAIN, core0),
            )
        )
        result = simulate(schedule, backend="htsim", config=config.replace(faults=fs))
        assert result.stats.messages_delivered == 8 * 7

    def test_partition_raises_at_injection(self):
        schedule = all_to_all(8, 1 << 14)
        names = [f"tor0->core{c}" for c in range(4)]
        fs = FaultSchedule(failed_links=tuple(names))
        with pytest.raises(NetworkPartitionError, match="no surviving route"):
            simulate(schedule, backend="htsim", config=_fat_tree_config(faults=fs))

    def test_degraded_link_slows_flows(self):
        schedule = incast(5, 1 << 18)
        config = SimulationConfig(topology="single_switch")
        healthy = simulate(schedule, backend="htsim", config=config)
        degraded = simulate(
            schedule,
            backend="htsim",
            config=config.replace(
                faults=FaultSchedule(degraded_links=(("switch->host0", 0.25),))
            ),
        )
        assert degraded.finish_time_ns > healthy.finish_time_ns


# ----------------------------------------------------------------- LogGOPS backend
class TestLogGOPSBackendFaults:
    def test_capacity_loss_inflates_serialisation(self):
        schedule = all_to_all(8, 1 << 18)
        config = _fat_tree_config()
        healthy = simulate(schedule, backend="lgs", config=config)
        faulted = simulate(
            schedule,
            backend="lgs",
            config=config.replace(
                faults=FaultSchedule(link_failure_rate=0.25, failure_seed=1)
            ),
        )
        assert faulted.finish_time_ns > healthy.finish_time_ns

    def test_monotone_in_failure_rate(self):
        schedule = all_to_all(8, 1 << 18)
        config = _fat_tree_config()
        finishes = [
            simulate(
                schedule,
                backend="lgs",
                config=config.replace(
                    faults=FaultSchedule(link_failure_rate=rate, failure_seed=1)
                    if rate
                    else FaultSchedule()
                ),
            ).finish_time_ns
            for rate in (0.0, 0.25, 0.5)
        ]
        assert finishes == sorted(finishes)
        assert finishes[-1] > finishes[0]

    def test_timed_event_changes_late_messages_only(self):
        schedule = all_to_all(8, 1 << 18)
        config = _fat_tree_config()
        healthy = simulate(schedule, backend="lgs", config=config)
        late = healthy.finish_time_ns + 1_000
        fs = FaultSchedule(events=(FaultEvent(late, LINK_DOWN, "tor0->core0"),))
        after_end = simulate(schedule, backend="lgs", config=config.replace(faults=fs))
        assert after_end.finish_time_ns == healthy.finish_time_ns
        early = FaultSchedule(events=(FaultEvent(0, LINK_DOWN, "tor0->core0"),))
        degraded = simulate(schedule, backend="lgs", config=config.replace(faults=early))
        assert degraded.finish_time_ns > healthy.finish_time_ns

    def test_all_capacity_lost_raises(self):
        schedule = all_to_all(8, 1 << 14)
        names = [f"tor{t}->core{c}" for t in (0, 1) for c in range(4)]
        names += [f"core{c}->tor{t}" for t in (0, 1) for c in range(4)]
        fs = FaultSchedule(failed_links=tuple(names))
        with pytest.raises(NetworkPartitionError, match="capacity"):
            simulate(schedule, backend="lgs", config=_fat_tree_config(faults=fs))

    def test_topology_aware_mode_routes_around_failures(self):
        schedule = all_to_all(8, 1 << 14)
        # fat tree with ECMP diversity: killing one core uplink leaves the
        # other cores as surviving candidates
        config = _fat_tree_config(loggops_use_topology=True)
        from repro.network.loggops import LogGOPSBackend
        from repro.scheduler import GoalScheduler

        backend = LogGOPSBackend()
        result = GoalScheduler(
            schedule,
            backend=backend,
            config=config.replace(
                faults=FaultSchedule(failed_links=("tor0->core0", "core0->tor0"))
            ),
        ).run()
        assert result.stats.messages_delivered == 8 * 7
        loads = backend.link_loads()
        assert "tor0->core0" not in loads and "core0->tor0" not in loads
        assert any(name.startswith("tor0->core") for name in loads)


# ------------------------------------------------------------------- config layer
class TestConfigIntegration:
    def test_config_rejects_non_schedule(self):
        with pytest.raises(ValueError, match="FaultSchedule"):
            SimulationConfig(faults="tor0->core0")

    def test_none_normalises_to_empty(self):
        assert SimulationConfig(faults=None).faults == FaultSchedule()

    def test_describe_includes_faults(self):
        fs = FaultSchedule(failed_links=("tor0->core0",))
        desc = SimulationConfig(faults=fs).describe()
        assert desc["faults"]["failed_links"] == ("tor0->core0",)

    def test_replace_carries_faults(self):
        fs = FaultSchedule(link_failure_rate=0.1)
        cfg = SimulationConfig(faults=fs).replace(seed=9)
        assert cfg.faults is fs


# ------------------------------------------------------------------ cluster layer
class TestClusterFaults:
    def test_fault_free_baseline_attributes_fault_slowdown(self):
        from repro.cluster import ClusterJob, run_cotenant

        jobs = [
            ClusterJob(all_to_all(4, 1 << 16), name="a"),
            ClusterJob(all_to_all(4, 1 << 16), name="b"),
        ]
        config = _fat_tree_config()
        faults = FaultSchedule(failed_links=("tor0->core0", "core0->tor0"))
        degraded = run_cotenant(
            jobs,
            cluster_nodes=8,
            strategy="fragmented",
            group_size=2,
            backend="htsim",
            config=config.replace(faults=faults),
            fault_free_baseline=True,
        )
        faulted_baseline = run_cotenant(
            jobs,
            cluster_nodes=8,
            strategy="fragmented",
            group_size=2,
            backend="htsim",
            config=config.replace(faults=faults),
        )
        for healthy_base, degraded_base in zip(
            degraded.outcomes, faulted_baseline.outcomes
        ):
            # same co-tenant run, different baselines: the healthy-fabric
            # baseline can only be faster, so attributed slowdown is >=
            assert healthy_base.runtime_ns == degraded_base.runtime_ns
            assert healthy_base.slowdown >= degraded_base.slowdown


# ------------------------------------------------------------------ sweep layer
class TestResilienceSweep:
    def test_grid_shape_and_baselines(self):
        from repro.sweep import resilience_sweep

        schedule = all_to_all(8, 1 << 14)
        entries = resilience_sweep(
            schedule,
            {"ft": _fat_tree_config()},
            failure_rates=(0.0, 0.25),
            routings=("minimal", "adaptive"),
            backend="htsim",
            failure_seed=1,
        )
        assert len(entries) == 4
        for e in entries:
            assert e.baseline_finish_ns > 0
            if e.failure_rate == 0.0:
                assert e.slowdown == 1.0
                assert e.failed_links == 0
            else:
                assert e.failed_links > 0

    def test_healthy_baseline_injected_when_rates_omit_zero(self):
        from repro.sweep import resilience_sweep

        schedule = all_to_all(8, 1 << 14)
        entries = resilience_sweep(
            schedule,
            {"ft": _fat_tree_config()},
            failure_rates=(0.25,),
            routings=("minimal",),
            backend="lgs",
            failure_seed=1,
        )
        # the healthy cell is added as the slowdown baseline
        assert [e.failure_rate for e in entries] == [0.0, 0.25]
        assert entries[1].baseline_finish_ns == entries[0].finish_time_ns
        assert entries[1].slowdown > 1.0

    def test_parallel_matches_serial(self):
        from repro.sweep import resilience_sweep

        schedule = all_to_all(8, 1 << 14)
        kwargs = dict(
            failure_rates=(0.0, 0.25),
            routings=("minimal",),
            backend="lgs",
            failure_seed=2,
        )
        serial = resilience_sweep(schedule, {"ft": _fat_tree_config()}, **kwargs)
        parallel = resilience_sweep(
            schedule, {"ft": _fat_tree_config()}, parallel=2, **kwargs
        )
        import dataclasses

        strip = [dataclasses.replace(e, wall_clock_s=0.0) for e in serial]
        strip_par = [dataclasses.replace(e, wall_clock_s=0.0) for e in parallel]
        assert strip == strip_par

    def test_empty_rates_rejected(self):
        from repro.sweep import resilience_sweep

        with pytest.raises(ValueError, match="failure rate"):
            resilience_sweep(all_to_all(4, 1024), {"ft": _fat_tree_config()}, failure_rates=())

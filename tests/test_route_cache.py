"""Unit and property tests of the bounded route-table caches.

The per-pair route memos (`route_table` / `alive_table` / `view_table` /
`route_latency`, plus the per-topology path memos) are O(N²) in hosts; this
PR bounds them with LRU caches (see docs/scaling.md).  Covered here:

* the :class:`LruCache` primitive itself (hits, misses, eviction order,
  budget changes, 0 = unbounded),
* eviction exactness — a tiny budget must not change simulated results,
* per-fault-epoch eviction of the alive/view tables (the `_view_tables`
  unbounded-growth regression), including across a multi-event
  ``FaultSchedule``,
* the ``alive_mask`` invalidation hook on `degrade_link`-style changes, as
  a property test over interleaved fail/restore/drain/degrade sequences,
* route-cache hit/miss/eviction counters surfacing on ``NetworkStats``
  (both backends) and summing under ``merge``.

This file runs in the CI flake-guard job under two PYTHONHASHSEEDs.
"""
import numpy as np
import pytest

from repro.network import FaultEvent, FaultSchedule, SimulationConfig
from repro.network.backend import NetworkStats
from repro.network.faults import LINK_DOWN, LINK_UP, resolve_link_ids, switch_link_ids
from repro.network.topology.base import DEFAULT_ROUTE_CACHE_BUDGET, LruCache
from repro.network.topology.fattree import FatTreeTopology
from repro.schedgen import all_to_all
from repro.scheduler import simulate


def _link_id(topo, name: str) -> int:
    return resolve_link_ids(topo, name)[0]


# ------------------------------------------------------------------ primitive
class TestLruCache:
    def test_get_put_and_counters(self):
        cache = LruCache(budget=4)
        assert cache.get("a") is None
        assert cache.misses == 1
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert len(cache) == 1 and "a" in cache

    def test_evicts_least_recently_used(self):
        cache = LruCache(budget=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_zero_budget_is_unbounded(self):
        cache = LruCache(budget=0)
        for i in range(10_000):
            cache.put(i, i)
        assert len(cache) == 10_000 and cache.evictions == 0

    def test_shrinking_budget_trims_immediately(self):
        cache = LruCache(budget=0)
        for i in range(10):
            cache.put(i, i)
        cache.set_budget(3)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert all(i in cache for i in (7, 8, 9))

    def test_clear(self):
        cache = LruCache(budget=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None

    def test_cached_none_counts_as_hit(self):
        # regression: get() used to detect misses by comparing the stored
        # value against None, so a legitimately-None entry was re-missed
        # (and its recency never refreshed) on every lookup
        cache = LruCache(budget=2)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.hits == 1 and cache.misses == 0
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_cached_none_distinct_from_default(self):
        cache = LruCache(budget=2)
        sentinel = object()
        assert cache.get("missing", sentinel) is sentinel
        cache.put("present", None)
        assert cache.get("present", sentinel) is None


# ------------------------------------------------------------ topology caches
class TestBoundedTopologyCaches:
    def test_route_tables_respect_budget(self):
        topo = FatTreeTopology(16, nodes_per_tor=4)
        topo.set_route_cache_budget(8)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    topo.route_table(src, dst)
        assert len(topo._route_tables) == 8
        assert topo._route_tables.evictions == 16 * 15 - 8

    def test_eviction_rebuilds_bit_identically(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        topo.set_route_cache_budget(1)
        first = topo.route_table(0, 4).candidates
        topo.route_table(4, 0)  # evicts (0, 4)
        assert topo.route_table(0, 4).candidates == first

    def test_default_budget_is_bounded(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        assert topo.route_cache_budget == DEFAULT_ROUTE_CACHE_BUDGET
        for cache in topo._bounded_caches:
            assert cache.budget == DEFAULT_ROUTE_CACHE_BUDGET

    def test_cache_stats_aggregate(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        topo.route_table(0, 4)
        topo.route_table(0, 4)
        stats = topo.route_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["entries"] >= 1

    def test_tiny_budget_results_bit_identical(self):
        """Eviction pressure must never change simulated results."""
        schedule = all_to_all(8, 1 << 12)
        config = SimulationConfig(
            topology="fat_tree", nodes_per_tor=4, routing="adaptive", seed=5
        )
        roomy = simulate(schedule, backend="htsim", config=config)
        tight = simulate(
            schedule, backend="htsim", config=config.replace(route_cache_entries=2)
        )
        assert roomy.finish_time_ns == tight.finish_time_ns
        # eviction counters differ by design; everything else must not
        for field in ("messages_delivered", "bytes_delivered", "packets_sent",
                      "packets_dropped", "retransmissions", "max_queue_bytes"):
            assert getattr(roomy.stats, field) == getattr(tight.stats, field)
        assert tight.stats.route_cache_evictions > 0


# --------------------------------------------------- fault-epoch eviction
class TestFaultEpochEviction:
    def setup_method(self):
        self.topo = FatTreeTopology(8, nodes_per_tor=4)

    def test_alive_tables_evicted_on_fault_change(self):
        dead = _link_id(self.topo, "tor0->core0")
        self.topo.fail_links([dead])
        self.topo.alive_table(0, 4)
        assert len(self.topo._alive_tables) == 1
        self.topo.restore_links([dead])
        assert len(self.topo._alive_tables) == 0

    def test_view_tables_evicted_on_fault_change(self):
        """Regression: _view_tables used to grow without bound across epochs."""
        dead = _link_id(self.topo, "tor0->core0")
        for h in range(4, 8):
            self.topo.view_table(0, h, frozenset([dead]))
        assert len(self.topo._view_tables) == 4
        self.topo.fail_links([dead])
        assert len(self.topo._view_tables) == 0

    def test_view_tables_bounded_across_multi_event_schedule(self):
        """A long convergence run must keep every per-pair cache bounded."""
        names = [f"tor{t}->core{c}" for t in range(2) for c in range(2)]
        events = []
        for i, name in enumerate(names):
            events.append(FaultEvent(10_000 + 20_000 * i, LINK_DOWN, name))
            events.append(FaultEvent(20_000 + 20_000 * i, LINK_UP, name))
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            faults=FaultSchedule(events=tuple(events)),
            control_plane="dv",
            route_cache_entries=16,
        )
        from repro.scheduler import GoalScheduler

        scheduler = GoalScheduler(all_to_all(8, 1 << 14), backend="htsim", config=config)
        scheduler.run()
        topo = scheduler.backend.topology
        for cache in topo._bounded_caches:
            assert len(cache) <= 16, "a per-pair cache escaped its budget"


# ------------------------------------------------- alive_mask invalidation
class TestAliveMaskInvalidation:
    def test_degrade_link_invalidates_mask_and_bumps_version(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        topo.fail_links([_link_id(topo, "tor0->core0")])
        mask = topo.alive_mask()
        version = topo.link_state_version
        topo.degrade_link(_link_id(topo, "tor0->core1"), 0.5)
        assert topo.link_state_version == version + 1
        assert topo._alive_mask is None  # rebuilt on next read
        assert topo.alive_mask() is not mask

    def test_property_interleaved_fault_sequences(self):
        """alive_mask / route_alive must track a model set through any
        interleaving of fail / restore / drain / undrain / degrade."""
        rng = np.random.default_rng(1234)
        topo = FatTreeTopology(16, nodes_per_tor=4)
        cables = [l.link_id for l in topo.links]
        switches = list(topo.tor_switches) + list(topo.core_switches)
        # model: multiset of failure causes per link id
        causes = {}

        def model_fail(ids):
            for i in set(ids):
                causes[i] = causes.get(i, 0) + 1

        def model_restore(ids):
            for i in set(ids):
                if causes.get(i, 0) > 1:
                    causes[i] -= 1
                elif i in causes:
                    del causes[i]

        version = topo.link_state_version
        for _ in range(200):
            op = rng.integers(5)
            if op == 0:
                ids = [int(c) for c in rng.choice(cables, size=2)]
                topo.fail_links(ids)
                model_fail(ids)
            elif op == 1 and causes:
                ids = [int(c) for c in rng.choice(list(causes), size=1)]
                topo.restore_links(ids)
                model_restore(ids)
            elif op == 2:
                sw = int(rng.choice(switches))
                ids = switch_link_ids(topo, sw)
                topo.fail_links(ids)
                model_fail(ids)
                topo.restore_links(ids)  # undrain immediately half the time
                model_restore(ids)
            elif op == 3:
                topo.degrade_link(int(rng.choice(cables)), 0.9)
            else:
                link = int(rng.choice(cables))
                topo.restore_links([link])
                # a no-op when the link is healthy, a decrement when it isn't
                model_restore([link])
            # every mutation above must keep the version monotone
            assert topo.link_state_version >= version
            version = topo.link_state_version
            # the mask and the scalar predicate must both match the model
            mask = topo.alive_mask()
            if not causes:
                assert not topo.faulty and mask is None
            else:
                assert topo.faulty
                dead = set(causes)
                assert set(np.flatnonzero(~mask).tolist()) == dead
                for link in list(dead)[:3]:
                    assert not topo.route_alive((link,))
            alive_link = next(
                l for l in cables if l not in causes
            )
            assert topo.route_alive((alive_link,))


# ------------------------------------------------------------- stats plumbing
class TestRouteCacheStatsPlumbing:
    def test_packet_backend_reports_cache_stats(self):
        result = simulate(
            all_to_all(8, 1 << 12),
            backend="htsim",
            config=SimulationConfig(topology="fat_tree", nodes_per_tor=4),
        )
        assert result.stats.route_cache_misses > 0
        assert result.stats.route_cache_evictions == 0  # budget is roomy

    def test_loggops_backend_reports_cache_stats(self):
        result = simulate(
            all_to_all(8, 1 << 12),
            backend="lgs",
            config=SimulationConfig(topology="torus", torus_dims=(3, 3)),
        )
        assert result.stats.route_cache_misses > 0

    def test_merge_sums_cache_counters(self):
        a = NetworkStats(route_cache_hits=3, route_cache_misses=2, route_cache_evictions=1)
        b = NetworkStats(route_cache_hits=10, route_cache_misses=20, route_cache_evictions=30)
        merged = a.merge(b)
        assert merged.route_cache_hits == 13
        assert merged.route_cache_misses == 22
        assert merged.route_cache_evictions == 31

"""Tests for the MPI trace -> GOAL schedule generator."""
import pytest

from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.goal import validate_schedule
from repro.goal.ops import OpType
from repro.schedgen.mpi import MpiScheduleGenerator, TraceMismatchError, mpi_trace_to_goal
from repro.scheduler import simulate
from repro.tracers.mpi import MpiTracer


def _pingpong_trace():
    t = MpiTracer(2)
    t.compute(0, 1000)
    t.record(0, "MPI_Send", size=4096, peer=1, tag=7)
    t.compute(0, 500)
    t.record(0, "MPI_Recv", size=64, peer=1, tag=8)
    t.record(1, "MPI_Recv", size=4096, peer=0, tag=7)
    t.compute(1, 200)
    t.record(1, "MPI_Send", size=64, peer=0, tag=8)
    return t.finish()


class TestP2PConversion:
    def test_send_recv_converted(self):
        sched = mpi_trace_to_goal(_pingpong_trace())
        validate_schedule(sched)
        counts = sched.op_counts()
        assert counts["send"] == 2 and counts["recv"] == 2

    def test_compute_gaps_become_calc(self):
        sched = mpi_trace_to_goal(_pingpong_trace())
        assert sched.ranks[0].total_calc_ns() >= 1500

    def test_compute_scale_applied(self):
        full = mpi_trace_to_goal(_pingpong_trace(), compute_scale=1.0)
        half = mpi_trace_to_goal(_pingpong_trace(), compute_scale=0.5)
        assert half.ranks[0].total_calc_ns() == pytest.approx(full.ranks[0].total_calc_ns() * 0.5, rel=0.01)

    def test_simulates_to_completion(self):
        sched = mpi_trace_to_goal(_pingpong_trace())
        res = simulate(sched, backend="lgs")
        assert res.ops_completed == sched.num_ops()

    def test_sendrecv_creates_parallel_ops(self):
        t = MpiTracer(2)
        for r in (0, 1):
            t.record(r, "MPI_Sendrecv", size=128, peer=1 - r, recv_peer=1 - r, recv_size=128, tag=5)
        sched = mpi_trace_to_goal(t.finish())
        validate_schedule(sched)
        res = simulate(sched, backend="lgs")
        assert res.ops_completed == sched.num_ops()


class TestCollectiveConversion:
    def test_allreduce_decomposed_to_p2p(self):
        t = MpiTracer(4)
        for r in range(4):
            t.compute(r, 100)
            t.record(r, "MPI_Allreduce", size=1 << 20)
        sched = mpi_trace_to_goal(t.finish())
        validate_schedule(sched)
        counts = sched.op_counts()
        assert counts["send"] == 4 * 2 * 3  # ring allreduce over 4 ranks

    def test_small_allreduce_uses_recursive_doubling(self):
        t = MpiTracer(4)
        for r in range(4):
            t.record(r, "MPI_Allreduce", size=8)
        sched = mpi_trace_to_goal(t.finish())
        counts = sched.op_counts()
        assert counts["send"] == 4 * 2  # log2(4) rounds of full-buffer exchange

    def test_multiple_collectives_in_order(self):
        t = MpiTracer(3)
        for r in range(3):
            t.record(r, "MPI_Bcast", size=4096, root=0)
            t.compute(r, 50)
            t.record(r, "MPI_Allreduce", size=64)
            t.record(r, "MPI_Barrier")
        sched = mpi_trace_to_goal(t.finish())
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_sub_communicator_collective(self):
        t = MpiTracer(4)
        t.define_communicator(1, [0, 2])
        for r in (0, 2):
            t.record(r, "MPI_Allreduce", size=256, comm=1)
        for r in (1, 3):
            t.compute(r, 10)
            t.record(r, "MPI_Barrier", comm=0)
        for r in (0, 2):
            t.record(r, "MPI_Barrier", comm=0)
        sched = mpi_trace_to_goal(t.finish())
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_mismatched_collectives_raise(self):
        t = MpiTracer(2)
        t.record(0, "MPI_Allreduce", size=64)
        # rank 1 never calls the collective
        t.record(1, "MPI_Send", size=8, peer=0, tag=1)
        t.record(0, "MPI_Recv", size=8, peer=1, tag=1)
        # rank 0's Recv comes after its Allreduce, which can never complete
        with pytest.raises(TraceMismatchError):
            MpiScheduleGenerator(t.finish()).generate()

    def test_every_collective_kind_supported(self):
        calls = [
            ("MPI_Allreduce", {}),
            ("MPI_Reduce", {"root": 1}),
            ("MPI_Bcast", {"root": 0}),
            ("MPI_Barrier", {}),
            ("MPI_Allgather", {}),
            ("MPI_Alltoall", {}),
            ("MPI_Gather", {"root": 0}),
            ("MPI_Scatter", {"root": 0}),
            ("MPI_Reduce_scatter", {}),
        ]
        t = MpiTracer(4)
        for call, kw in calls:
            for r in range(4):
                t.record(r, call, size=2048, **kw)
        sched = mpi_trace_to_goal(t.finish())
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_algorithm_override(self):
        t = MpiTracer(4)
        for r in range(4):
            t.record(r, "MPI_Allreduce", size=1 << 20)
        sched = mpi_trace_to_goal(t.finish(), algorithms={"MPI_Allreduce": "reduce_bcast"})
        counts = sched.op_counts()
        assert counts["send"] == 2 * 3  # reduce tree + bcast tree over 4 ranks


class TestEndToEndApplications:
    @pytest.mark.parametrize("name", ["cloverleaf", "hpcg", "lammps"])
    def test_hpc_apps_convert_and_simulate(self, name):
        cfg = HpcRunConfig(num_ranks=8, iterations=2, cells_per_rank=4000)
        trace = HPC_APPLICATIONS[name].trace(cfg)
        sched = mpi_trace_to_goal(trace)
        validate_schedule(sched)
        res = simulate(sched, backend="lgs")
        assert res.ops_completed == sched.num_ops()
        assert res.finish_time_ns > 0

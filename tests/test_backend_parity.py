"""Cross-backend differential test harness.

Runs a grid of small GOAL schedules — pt2pt chains, incast, ring-allreduce,
all-to-all and inference-serving patterns across two topologies — through **both** the
message-level (LogGOPS) and the packet-level backend, and asserts the
invariants any pair of correct network simulators must share:

* **completion** — both backends execute every GOAL op and deliver every
  message,
* **conservation of bytes per rank** — per-rank sent/received byte totals
  derived from the message records are identical across backends and match
  the schedule's declared communication ops,
* **monotone finish times** — message completions never precede their
  posts, rank finish times bound their ranks' message completions, and the
  makespan bounds everything,
* **model ordering** — on uncongested runs with calibrated parameters
  (LogGOPS ``L`` lower-bounding the packet path's propagation delay and
  ``G`` matching the link bandwidth), the contention-free LogGOPS model
  finishes no later than the packet model, which additionally pays per-hop
  store-and-forward serialisation and window ramp-up.

The grid is parameterized over an optional :class:`FaultSchedule`, so the
fault-injection paths run through the exact same invariants (the model
ordering is skipped there: capacity-factor inflation and packet rerouting
degrade along different axes by design).

Convergence cells additionally run a timed mid-run failure under every
registered control plane (oracle / ls / dv) and assert the convergence
accounting: bytes are conserved *including* blackholed packets (every sent
packet is delivered, queue-dropped, stranded or blackholed — nothing
vanishes), the oracle's time-to-recover is exactly zero on both backends,
and the real protocols report the same positive convergence window on both.
"""
import pytest

from repro.goal import GoalSchedule, Op
from repro.network import FaultEvent, FaultSchedule, SimulationConfig
from repro.goal.ops import OpType
from repro.network.faults import LINK_DOWN
from repro.schedgen import all_to_all, incast, ring_allreduce_microbenchmark
from repro.scheduler import simulate


def _pt2pt(chunks: int = 4, size: int = 1 << 15) -> GoalSchedule:
    """A dependent chain of pt2pt messages between two ranks."""
    sched = GoalSchedule(2, name="pt2pt")
    sender, receiver = sched.ranks
    prev_send = None
    prev_recv = None
    for i in range(chunks):
        prev_send = sender.add_op(
            Op.send(size, dst=1, tag=i), () if prev_send is None else (prev_send,)
        )
        prev_recv = receiver.add_op(
            Op.recv(size, src=0, tag=i), () if prev_recv is None else (prev_recv,)
        )
    return sched


def _inference(num_requests: int = 12, rate_rps: float = 150.0) -> GoalSchedule:
    """A low-rate serving cell: calibrated-uncongested on the parity config.

    150 req/s against a ~780 req/s fleet keeps the prefill queue empty and
    the KV flows far below line rate, so the model-ordering invariant (lgs
    <= packet) applies to the serving DAG's mix of calcs, streamed compute
    and message flows.
    """
    from repro.apps.inference import build_inference_workload

    return build_inference_workload(
        num_requests=num_requests, rate_rps=rate_rps, seed=5
    ).schedule


def _parity_config(topology: str, faults: FaultSchedule = None) -> SimulationConfig:
    """Calibrated parameters: the LogGOPS model lower-bounds the packet model.

    ``G`` is the reciprocal of the link bandwidth, ``o`` equals the packet
    backend's host overhead, and ``L`` (two hops of propagation) is a lower
    bound of every packet path's propagation delay, so on uncongested runs
    the contention-free LogGOPS prediction cannot exceed the packet one.
    """
    from repro.network.config import LogGOPSParams

    return SimulationConfig(
        topology=topology,
        nodes_per_tor=4,
        link_bandwidth=25.0,
        link_latency=500,
        host_overhead=200,
        loggops=LogGOPSParams(L=1000, o=200, g=5, G=0.04, O=0.0, S=0),
        faults=faults if faults is not None else FaultSchedule(),
        seed=1,
    )


#: One core cable of the fat tree down from time 0 (fault-parameterized grid).
_FAULTS = FaultSchedule(failed_links=("tor0->core0", "core0->tor0"))

# (cell id, schedule factory, topology, uncongested, faults)
_GRID = [
    ("pt2pt-single", _pt2pt, "single_switch", True, None),
    ("pt2pt-fattree", _pt2pt, "fat_tree", True, None),
    ("incast-single", lambda: incast(8, 1 << 15), "single_switch", False, None),
    ("incast-fattree", lambda: incast(8, 1 << 15), "fat_tree", False, None),
    (
        "allreduce-single",
        lambda: ring_allreduce_microbenchmark(8, 1 << 16),
        "single_switch",
        True,
        None,
    ),
    (
        "allreduce-fattree",
        lambda: ring_allreduce_microbenchmark(8, 1 << 16),
        "fat_tree",
        True,
        None,
    ),
    ("alltoall-fattree", lambda: all_to_all(8, 1 << 14), "fat_tree", False, None),
    # inference-serving cells: open-loop arrivals, prefill/decode phases,
    # continuous batching (see repro.apps.inference)
    ("inference-single", _inference, "single_switch", True, None),
    ("inference-fattree", _inference, "fat_tree", True, None),
    # fault-injection cells: same invariants on a degraded fabric
    ("pt2pt-fattree-faulted", _pt2pt, "fat_tree", False, _FAULTS),
    (
        "allreduce-fattree-faulted",
        lambda: ring_allreduce_microbenchmark(8, 1 << 16),
        "fat_tree",
        False,
        _FAULTS,
    ),
    ("alltoall-fattree-faulted", lambda: all_to_all(8, 1 << 14), "fat_tree", False, _FAULTS),
    ("inference-fattree-faulted", _inference, "fat_tree", False, _FAULTS),
]

#: A core cable fails mid-run (while all-to-all traffic crosses it).
_CONVERGENCE_FAULTS = FaultSchedule(
    events=(
        FaultEvent(3_000, LINK_DOWN, "tor0->core0"),
        FaultEvent(3_000, LINK_DOWN, "core0->tor0"),
    )
)

# convergence cells: same invariants plus control-plane accounting; the 6th
# field selects the control plane (absent = oracle, the default)
_CONVERGENCE_CELL_IDS = []
for _cp_name in ("oracle", "ls", "dv"):
    _GRID.append(
        (
            f"alltoall-fattree-cp-{_cp_name}",
            lambda: all_to_all(8, 1 << 14),
            "fat_tree",
            False,
            _CONVERGENCE_FAULTS,
            _cp_name,
        )
    )
    _CONVERGENCE_CELL_IDS.append(f"alltoall-fattree-cp-{_cp_name}")

_CELL_IDS = [cell[0] for cell in _GRID]


def _declared_bytes(schedule: GoalSchedule):
    """Per-rank (sent, received) byte totals declared by the GOAL program."""
    sent = {r.rank: 0 for r in schedule.ranks}
    received = {r.rank: 0 for r in schedule.ranks}
    for rank in schedule.ranks:
        for op in rank.ops:
            if op.kind is OpType.SEND:
                sent[rank.rank] += op.size
            elif op.kind is OpType.RECV:
                received[rank.rank] += op.size
    return sent, received


def _record_bytes(result):
    """Per-rank (sent, received) byte totals observed in the message records."""
    sent = {}
    received = {}
    for rec in result.message_records:
        sent[rec.src] = sent.get(rec.src, 0) + rec.size
        received[rec.dst] = received.get(rec.dst, 0) + rec.size
    return sent, received


def _run_cell(cell):
    _, make_schedule, topology, _, faults = cell[:5]
    schedule = make_schedule()
    config = _parity_config(topology, faults)
    if len(cell) > 5:
        # convergence cell: a slow control plane so the stale window is
        # wide enough to blackhole live all-to-all traffic
        config = config.replace(control_plane=cell[5], cp_propagation_ns=50_000)
    lgs = simulate(schedule, backend="lgs", config=config)
    pkt = simulate(schedule, backend="htsim", config=config)
    return schedule, lgs, pkt


@pytest.fixture(scope="module")
def cell_results():
    """Each grid cell simulated once on both backends (shared by all tests)."""
    return {cell[0]: _run_cell(cell) for cell in _GRID}


@pytest.mark.parametrize("cell_id", _CELL_IDS)
def test_both_backends_complete(cell_results, cell_id):
    schedule, lgs, pkt = cell_results[cell_id]
    total_ops = sum(len(r.ops) for r in schedule.ranks)
    assert lgs.ops_completed == total_ops
    assert pkt.ops_completed == total_ops
    assert lgs.stats.messages_delivered == pkt.stats.messages_delivered
    assert lgs.stats.bytes_delivered == pkt.stats.bytes_delivered


@pytest.mark.parametrize("cell_id", _CELL_IDS)
def test_bytes_conserved_per_rank(cell_results, cell_id):
    schedule, lgs, pkt = cell_results[cell_id]
    declared_sent, declared_received = _declared_bytes(schedule)
    for result in (lgs, pkt):
        sent, received = _record_bytes(result)
        for rank in range(schedule.num_ranks):
            assert sent.get(rank, 0) == declared_sent[rank], (
                f"{cell_id}/{result.backend}: rank {rank} sent bytes diverge"
            )
            assert received.get(rank, 0) == declared_received[rank], (
                f"{cell_id}/{result.backend}: rank {rank} received bytes diverge"
            )


@pytest.mark.parametrize("cell_id", _CELL_IDS)
def test_finish_times_monotone(cell_results, cell_id):
    _, lgs, pkt = cell_results[cell_id]
    for result in (lgs, pkt):
        assert result.finish_time_ns > 0
        assert result.finish_time_ns == max(result.rank_finish_times_ns)
        latest_completion = 0
        for rec in result.message_records:
            assert rec.completion_time >= rec.post_time, (
                f"{cell_id}/{result.backend}: message completed before its post"
            )
            latest_completion = max(latest_completion, rec.completion_time)
        assert result.finish_time_ns >= latest_completion
        # the destination rank cannot finish before its last arrival
        for rec in result.message_records:
            assert result.rank_finish_times_ns[rec.dst] >= rec.completion_time


@pytest.mark.parametrize(
    "cell_id", [cell[0] for cell in _GRID if cell[3]]
)
def test_lgs_lower_bounds_packet_when_uncongested(cell_results, cell_id):
    """Contention-free LogGOPS finishes no later than the packet model."""
    _, lgs, pkt = cell_results[cell_id]
    assert lgs.finish_time_ns <= pkt.finish_time_ns, (
        f"{cell_id}: lgs {lgs.finish_time_ns} ns > packet {pkt.finish_time_ns} ns"
    )


@pytest.mark.parametrize(
    "cell_id",
    [cell[0] for cell in _GRID if cell[4] is not None and cell[0].endswith("-faulted")],
)
def test_fault_cells_degrade_both_backends(cell_results, cell_id):
    """Fault cells slow both models relative to their healthy twin cell."""
    healthy_id = cell_id.removesuffix("-faulted")
    _, lgs_h, pkt_h = cell_results[healthy_id]
    _, lgs_f, pkt_f = cell_results[cell_id]
    assert lgs_f.finish_time_ns >= lgs_h.finish_time_ns
    assert pkt_f.finish_time_ns >= pkt_h.finish_time_ns


@pytest.mark.parametrize("cell_id", _CONVERGENCE_CELL_IDS)
def test_convergence_cells_conserve_packets_including_blackholed(
    cell_results, cell_id
):
    """Every sent packet is accounted for: nothing vanishes silently.

    On the packet backend, a DATA packet ends in exactly one of four
    ledgers — delivered, queue-dropped, stranded by a fault with no
    surviving continuation, or blackholed by a stale switch — and lost
    packets are recovered by retransmission (each retransmission is a new
    sent packet), so the books balance exactly.
    """
    _, lgs, pkt = cell_results[cell_id]
    s = pkt.stats
    assert s.packets_sent == (
        s.packets_delivered
        + s.packets_dropped
        + s.packets_lost_to_faults
        + s.packets_blackholed
    ), f"{cell_id}: packet ledgers do not balance"
    # the message-level backend models convergence as a capacity ramp; it
    # forwards no packets and therefore blackholes none
    assert lgs.stats.packets_blackholed == 0


@pytest.mark.parametrize("cell_id", _CONVERGENCE_CELL_IDS)
def test_convergence_accounting_across_backends(cell_results, cell_id):
    """Oracle TTR is exactly zero; real protocols agree across backends."""
    _, lgs, pkt = cell_results[cell_id]
    if cell_id.endswith("oracle"):
        assert lgs.stats.time_to_recover_ns == 0
        assert pkt.stats.time_to_recover_ns == 0
        assert pkt.stats.packets_blackholed == 0
    else:
        # the convergence window is a property of the fabric and protocol,
        # not of the traffic model: both backends report the same positive
        # time-to-recover
        assert lgs.stats.time_to_recover_ns > 0
        assert lgs.stats.time_to_recover_ns == pkt.stats.time_to_recover_ns
        # the mid-run failure crosses live traffic: stale ToRs blackhole
        assert pkt.stats.packets_blackholed > 0

"""Differential tests for the sharded packet engine (``shards > 1``).

The determinism contract under test (see ``repro.network.packet.sharded``):

* configurations that consume no engine randomness (single-candidate
  routes, traffic outside the probabilistic ECN band) are **bit-identical**
  across ``shards`` in {1, 2, 4} — including timed fault schedules and
  convergent control planes (``time_to_recover_ns``, ``packets_blackholed``
  and the full :class:`ConvergenceRecord` list match the serial engine);
* configurations that do consume randomness (multi-candidate ECMP,
  Valiant, fault re-picks over multi-candidate tables) are bit-identical
  across every shard count >= 2 (the keyed streams depend only on
  simulated identities, never on shard layout);
* load-adaptive routing is bit-identical across shard counts >= 2 at any
  snapshot cadence; against the serial engine it is a documented
  approximation (barrier snapshots vs live queue depths), so only
  conserved totals are compared there;
* the packet ledger ``sent == delivered + dropped + lost_to_faults +
  blackholed`` balances for every shard count, drops and faults included;
* when worker pools cannot be spawned the engine falls back to running
  shards in-process with a ``RuntimeWarning`` and the *same* results.
"""
from __future__ import annotations

import contextlib
import warnings

import pytest

from repro.collectives import build_collective_schedule
from repro.network.config import SimulationConfig
from repro.network.faults import (
    LINK_DOWN,
    LINK_UP,
    SWITCH_DRAIN,
    SWITCH_UNDRAIN,
    FaultEvent,
    FaultSchedule,
)
from repro.network.packet.sharded import (
    _NO_CUT,
    plan_shards,
    run_sharded,
)
from repro.network.topology import build_topology
from repro.scheduler import GoalScheduler
from repro.schedgen.synthetic import all_to_all


def _allreduce(ranks=16, size=4096):
    return build_collective_schedule(
        "allreduce", "recursive_doubling", ranks, size, name="shard-parity"
    )


def _run(schedule, config):
    scheduler = GoalScheduler(
        schedule, backend="htsim", config=config, validate=False
    )
    result = scheduler.run()
    return result, scheduler.events_executed


@contextlib.contextmanager
def _inline_pools():
    """Run shards in-process (results are identical, pools are just slower).

    The fallback is itself under test in :class:`TestSerialFallback`; the
    differential grids below lean on it so a 4-point shard sweep does not
    pay process spawn costs per cell.
    """
    import concurrent.futures

    real = concurrent.futures.ProcessPoolExecutor

    class _NoPool:
        def __init__(self, *args, **kwargs):
            raise NotImplementedError("inline shards for test speed")

    concurrent.futures.ProcessPoolExecutor = _NoPool
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        concurrent.futures.ProcessPoolExecutor = real


def _flap(link, down_ns, up_ns):
    return FaultSchedule(
        events=(
            FaultEvent(down_ns, LINK_DOWN, link),
            FaultEvent(up_ns, LINK_UP, link),
        )
    )


def _fingerprint(result):
    """Everything that must match bit-for-bit, minus wall clock."""
    return (
        result.finish_time_ns,
        tuple(result.rank_finish_times_ns),
        result.ops_completed,
        sorted(result.message_records),
        sorted(result.group_finish_times_ns.items()),
    )


def _stats_tuple(stats):
    """Stats fields that are layout-invariant (cache split is not: a shard
    cannot share its neighbour's ACK-route lookup, so only hit+miss totals
    are comparable against the serial engine)."""
    return (
        stats.messages_delivered,
        stats.bytes_delivered,
        stats.packets_sent,
        stats.packets_delivered,
        stats.packets_dropped,
        stats.packets_trimmed,
        stats.packets_ecn_marked,
        stats.retransmissions,
        stats.acks_sent,
        stats.packets_lost_to_faults,
        stats.packets_blackholed,
        sorted(stats.queue_drop_events.items()),
    )


def _assert_ledger(stats):
    assert stats.packets_sent == (
        stats.packets_delivered
        + stats.packets_dropped
        + stats.packets_lost_to_faults
        + stats.packets_blackholed
    ), "packet ledger must balance"


# RNG-free configurations: serial and sharded engines must agree exactly.
SERIAL_EXACT = [
    pytest.param(
        SimulationConfig(topology="fat_tree", routing="minimal", cc_algorithm="mprdma"),
        id="fat_tree-minimal-mprdma",
    ),
    pytest.param(
        SimulationConfig(topology="dragonfly", routing="minimal", cc_algorithm="swift"),
        id="dragonfly-minimal-swift",
    ),
    pytest.param(
        SimulationConfig(topology="torus", routing="minimal", cc_algorithm="ndp"),
        id="torus-minimal-ndp",
    ),
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            routing="minimal",
            cc_algorithm="dctcp",
            packet_batching=False,
        ),
        id="fat_tree-legacy-engine",
    ),
]


class TestSerialExactParity:
    """shards in {1, 2, 4} bit-identical on randomness-free configurations."""

    @pytest.mark.parametrize("config", SERIAL_EXACT)
    def test_bit_identical_across_shard_counts(self, config):
        schedule = _allreduce()
        reference = None
        for shards in (1, 2, 4):
            result, events = _run(schedule, config.replace(shards=shards))
            _assert_ledger(result.stats)
            probe = (
                _fingerprint(result),
                _stats_tuple(result.stats),
                result.stats.route_cache_hits + result.stats.route_cache_misses,
                events,
            )
            if reference is None:
                reference = probe
            else:
                assert probe == reference, f"shards={shards} diverged"

    def test_cache_totals_conserved_but_split_may_differ(self):
        schedule = _allreduce()
        config = SimulationConfig(
            topology="fat_tree", routing="minimal", cc_algorithm="mprdma"
        )
        serial, _ = _run(schedule, config)
        sharded, _ = _run(schedule, config.replace(shards=4))
        assert (
            serial.stats.route_cache_hits + serial.stats.route_cache_misses
            == sharded.stats.route_cache_hits + sharded.stats.route_cache_misses
        )


class TestShardCountInvariance:
    """RNG-consuming configs: identical across all shard counts >= 2."""

    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(
                SimulationConfig(
                    topology="dragonfly",
                    routing="valiant",
                    cc_algorithm="mprdma",
                    seed=7,
                ),
                id="dragonfly-valiant",
            ),
            pytest.param(
                SimulationConfig(
                    topology="fat_tree",
                    nodes_per_tor=4,
                    routing="minimal",
                    cc_algorithm="dctcp",
                    seed=7,
                ),
                id="fat_tree-multipath-ecmp",
            ),
        ],
    )
    def test_invariant_across_shard_counts(self, config):
        schedule = _allreduce()
        reference = None
        for shards in (2, 3, 4):
            result, events = _run(schedule, config.replace(shards=shards))
            _assert_ledger(result.stats)
            probe = (_fingerprint(result), _stats_tuple(result.stats), events)
            if reference is None:
                reference = probe
            else:
                assert probe == reference, f"shards={shards} diverged"


class TestDropLedger:
    """Congested fabric (tiny buffers): the ledger balances under loss and
    delivered payload matches the serial engine (drop *timing* may shift a
    window under the deferred-loss barrier, so no bit-identity here)."""

    def test_ledger_conserved_under_drops(self):
        schedule = all_to_all(16, 1 << 14)
        config = SimulationConfig(
            topology="fat_tree",
            routing="minimal",
            cc_algorithm="mprdma",
            buffer_size=8192,
        )
        serial, _ = _run(schedule, config)
        assert serial.stats.packets_dropped > 0, "scenario must actually drop"
        _assert_ledger(serial.stats)
        for shards in (2, 4):
            result, _ = _run(schedule, config.replace(shards=shards))
            _assert_ledger(result.stats)
            assert result.stats.packets_dropped > 0
            assert (
                result.stats.messages_delivered == serial.stats.messages_delivered
            )
            assert result.stats.bytes_delivered == serial.stats.bytes_delivered


class TestMergePaths:
    def test_job_stats_merge_across_shards(self):
        from repro.cluster import ClusterJob, build_cotenant_schedule

        jobs = [
            ClusterJob(all_to_all(4, 1 << 12, name="job-a")),
            ClusterJob(all_to_all(4, 1 << 12, name="job-b")),
        ]
        plan = build_cotenant_schedule(jobs, strategy="packed")
        config = SimulationConfig(
            topology="fat_tree",
            routing="minimal",
            cc_algorithm="mprdma",
            job_tag_stride=plan.tag_stride,
        )
        serial, _ = _run(plan.schedule, config)
        # 4 shards over two 4-rank jobs: each job spans two shards, so the
        # merge must *sum* per-shard JobStats, not just relabel them
        sharded, _ = _run(plan.schedule, config.replace(shards=4))
        assert serial.job_stats and set(sharded.job_stats) == set(serial.job_stats)
        for job, js in serial.job_stats.items():
            sj = sharded.job_stats[job]
            assert sj.messages_delivered == js.messages_delivered
            assert sj.bytes_delivered == js.bytes_delivered
            assert sj.link_bytes == js.link_bytes
        assert _fingerprint(sharded) == _fingerprint(serial)

    def test_group_finish_times_merge_across_shards(self):
        schedule = _allreduce()
        config = SimulationConfig(
            topology="fat_tree", routing="minimal", cc_algorithm="mprdma"
        )
        op_groups = [
            [rank % 2] * len(ops) for rank, ops in enumerate(schedule.ranks)
        ]

        def run(shards):
            scheduler = GoalScheduler(
                schedule,
                backend="htsim",
                config=config.replace(shards=shards),
                validate=False,
                op_groups=op_groups,
            )
            return scheduler.run()

        serial, sharded = run(1), run(2)
        assert set(serial.group_finish_times_ns) == {0, 1}
        assert sharded.group_finish_times_ns == serial.group_finish_times_ns

    def test_single_host_topology_clamps_to_serial_engine(self):
        schedule = all_to_all(1, 1 << 10)
        config = SimulationConfig(
            topology="single_switch", routing="minimal", shards=4
        )
        result, events = run_sharded(schedule, config.replace(shards=4))
        direct, direct_events = _run(schedule, config.replace(shards=1))
        assert result.finish_time_ns == direct.finish_time_ns
        assert events == direct_events

    def test_spawned_pools_match_forked_pools(self, monkeypatch):
        # platforms without fork() ship the boot payload through submit();
        # results must not depend on which transport the workers used
        import multiprocessing

        schedule = _allreduce()
        config = SimulationConfig(
            topology="fat_tree", routing="minimal", cc_algorithm="mprdma", shards=2
        )
        forked, forked_events = _run(schedule, config)

        real = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("fork start method unavailable")
            return real(method)

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        spawned, spawned_events = run_sharded(schedule, config)
        assert _fingerprint(spawned) == _fingerprint(forked)
        assert spawned_events == forked_events


class TestSerialFallback:
    def test_broken_pool_falls_back_in_process(self, monkeypatch):
        import concurrent.futures

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise NotImplementedError("no process support on this platform")

        schedule = _allreduce()
        config = SimulationConfig(
            topology="fat_tree", routing="minimal", cc_algorithm="mprdma", shards=2
        )
        pooled, pooled_events = _run(schedule, config)

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", _NoPool)
        with pytest.warns(RuntimeWarning, match="running shards in-process"):
            inline, inline_events = run_sharded(schedule, config)
        assert _fingerprint(inline) == _fingerprint(pooled)
        assert _stats_tuple(inline.stats) == _stats_tuple(pooled.stats)
        assert inline_events == pooled_events

    def test_pool_fallback_error_set_shared_with_sweep(self):
        import pickle

        from repro.sweep import pool_fallback_errors

        errs = pool_fallback_errors()
        assert NotImplementedError in errs
        assert OSError in errs
        assert pickle.PicklingError in errs


class TestValidation:
    def _scheduler(self, config):
        return GoalScheduler(
            _allreduce(), backend="htsim", config=config, validate=False
        )

    def test_short_retransmit_timeout_rejected(self):
        config = SimulationConfig(
            topology="fat_tree", shards=2, min_retransmit_timeout=1
        )
        with pytest.raises(ValueError, match="min_retransmit_timeout"):
            self._scheduler(config).run()

    def test_non_packet_backend_rejected(self):
        config = SimulationConfig(shards=2)
        with pytest.raises(ValueError, match="packet backend"):
            GoalScheduler(
                _allreduce(), backend="lgs", config=config, validate=False
            ).run()

    def test_shards_below_one_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            SimulationConfig(shards=0)


class TestShardPlan:
    def test_hosts_partition_contiguously(self):
        config = SimulationConfig(topology="fat_tree")
        topology = build_topology(config, 16)
        plan = plan_shards(topology, 16, 4)
        owners = plan.rank_owner
        assert sorted(owners) == list(owners), "host blocks must be contiguous"
        assert set(owners) == {0, 1, 2, 3}
        assert sorted(r for rs in plan.shard_ranks for r in rs) == list(range(16))

    def test_switch_follows_first_attached_host(self):
        config = SimulationConfig(topology="fat_tree")
        topology = build_topology(config, 16)
        plan = plan_shards(topology, 16, 2)
        for host in range(topology.num_hosts):
            tor = topology.attachment(host)
            first = min(
                h for h in range(topology.num_hosts) if topology.attachment(h) == tor
            )
            assert plan.device_owner[tor] == plan.rank_owner[first]

    def test_lookahead_is_min_cut_latency(self):
        config = SimulationConfig(topology="fat_tree")
        topology = build_topology(config, 16)
        plan = plan_shards(topology, 16, 4)
        owner = plan.device_owner
        cut = [
            link.latency
            for link in topology.links
            if owner[link.src] != owner[link.dst]
        ]
        assert cut, "4-way split of a fat tree must cut links"
        assert plan.lookahead == min(cut)
        assert plan.num_cut_links == len(cut)

    def test_single_shard_has_no_cut(self):
        config = SimulationConfig(topology="fat_tree")
        topology = build_topology(config, 16)
        plan = plan_shards(topology, 16, 1)
        assert plan.num_cut_links == 0
        assert plan.lookahead == _NO_CUT

    def test_oversharding_rejected(self):
        config = SimulationConfig(topology="fat_tree")
        topology = build_topology(config, 16)
        with pytest.raises(ValueError, match="shards must be in"):
            plan_shards(topology, 16, topology.num_hosts + 1)

    def test_run_clamps_shards_to_host_count(self):
        schedule = _allreduce(ranks=2, size=1024)
        config = SimulationConfig(
            topology="fat_tree", routing="minimal", cc_algorithm="mprdma"
        )
        serial, serial_events = _run(schedule, config)
        topology = build_topology(config, schedule.num_ranks)
        # asking for more shards than hosts clamps to num_hosts and still
        # matches a direct run; every rank finishes either way
        over = config.replace(shards=topology.num_hosts + 8)
        clamped, clamped_events = run_sharded(schedule, over)
        assert clamped.finish_time_ns == serial.finish_time_ns
        assert tuple(clamped.rank_finish_times_ns) == tuple(
            serial.rank_finish_times_ns
        )


# ------------------------------------------------------------------ fault grids
#
# Single-candidate tree: one ToR pair over one core (oversubscription 8
# leaves exactly one cross-ToR candidate), probabilistic ECN band closed.
# Every route decision is forced, so serial and sharded engines must agree
# bit-for-bit even across fault transitions and control-plane waves.
_ONE_PATH_TREE = SimulationConfig(
    topology="fat_tree",
    nodes_per_tor=8,
    oversubscription=8.0,
    routing="minimal",
    cc_algorithm="mprdma",
    ecn_kmin_frac=1.0,
    ecn_kmax_frac=1.0,
    seed=5,
)

# RNG-consuming faulted configurations: shard-count invariance (>= 2) and
# conservation against the serial engine, but no bit-identity with serial
# (multi-candidate re-picks draw from keyed streams the serial engine
# does not share).
FAULTED_INVARIANT = [
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="minimal",
            cc_algorithm="mprdma",
            faults=_flap("tor0->core0", 3000, 9000),
        ),
        id="fat_tree-minimal-flap",
    ),
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="valiant",
            cc_algorithm="dctcp",
            faults=_flap("tor0->core0", 3000, 9000),
        ),
        id="fat_tree-valiant-flap",
    ),
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="minimal",
            cc_algorithm="mprdma",
            faults=FaultSchedule(
                events=(
                    FaultEvent(3000, SWITCH_DRAIN, 18),
                    FaultEvent(9000, SWITCH_UNDRAIN, 18),
                )
            ),
        ),
        id="fat_tree-switch-drain",
    ),
    pytest.param(
        SimulationConfig(
            topology="dragonfly",
            routing="valiant",
            cc_algorithm="swift",
            faults=_flap("r0.0->r0.1", 3000, 9000),
        ),
        id="dragonfly-valiant-flap",
    ),
    pytest.param(
        # a 1 ns flap: the mask change itself is (almost) unobservable but
        # the epoch machinery, the re-pick sweep, and the rf=0 compression
        # cutoff all still fire — this cell caught the replica route-swap
        # bug during development
        SimulationConfig(
            topology="dragonfly",
            routing="valiant",
            cc_algorithm="swift",
            faults=_flap("r0.0->r0.1", 3000, 3001),
        ),
        id="dragonfly-1ns-flap",
    ),
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="minimal",
            cc_algorithm="mprdma",
            faults=FaultSchedule(
                events=(
                    FaultEvent(3000, LINK_DOWN, "tor0->core0"),
                    FaultEvent(5000, LINK_DOWN, "tor1->core1"),
                    FaultEvent(8000, LINK_UP, "tor0->core0"),
                    FaultEvent(9000, LINK_UP, "tor1->core1"),
                )
            ),
        ),
        id="fat_tree-overlapping-flaps",
    ),
    pytest.param(
        SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="adaptive",
            cc_algorithm="mprdma",
            faults=_flap("tor0->core0", 3000, 9000),
        ),
        id="fat_tree-adaptive-flap",
    ),
]


@pytest.mark.slow_sharded
class TestFaultedShardInvariance:
    """Timed fault schedules: identical across every shard count >= 2."""

    @pytest.mark.parametrize("config", FAULTED_INVARIANT)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_invariant_across_shard_counts(self, config, seed):
        schedule = _allreduce(size=1 << 15)
        config = config.replace(seed=seed)
        serial, _ = _run(schedule, config)
        reference = None
        with _inline_pools():
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                probe = (_fingerprint(result), _stats_tuple(result.stats))
                if reference is None:
                    reference = probe
                else:
                    assert probe == reference, f"shards={shards} diverged"
                # conserved against serial even when timing is not
                assert (
                    result.stats.messages_delivered
                    == serial.stats.messages_delivered
                )
                assert result.stats.bytes_delivered == serial.stats.bytes_delivered

    def test_fault_accounting_shared_with_serial_ledger(self):
        # the faulted ledger balances serially too (same identity)
        schedule = _allreduce(size=1 << 15)
        config = FAULTED_INVARIANT[0].values[0].replace(seed=3)
        serial, _ = _run(schedule, config)
        _assert_ledger(serial.stats)


@pytest.mark.slow_sharded
class TestFaultSerialExactControlPlane:
    """Single-candidate tree + convergent control plane: bit-identical to
    the serial engine including TTR, blackholes, and ConvergenceRecords."""

    def _compare(self, config, expect_blackholed=None, expect_lost=None):
        schedule = _allreduce(size=1 << 15)
        serial, _ = _run(schedule, config)
        _assert_ledger(serial.stats)
        ttr = {"dv": 1300, "ls": 700}[config.control_plane]
        assert serial.stats.time_to_recover_ns == ttr
        if expect_blackholed is not None:
            assert serial.stats.packets_blackholed == expect_blackholed
        if expect_lost is not None:
            assert serial.stats.packets_lost_to_faults == expect_lost
        with _inline_pools():
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                assert _fingerprint(result) == _fingerprint(serial), (
                    f"shards={shards} diverged from serial"
                )
                assert _stats_tuple(result.stats) == _stats_tuple(serial.stats)
                assert result.convergence_records == serial.convergence_records
        return serial

    @pytest.mark.parametrize("protocol", ["dv", "ls"])
    def test_idle_link_flap_recovers_serial_exact(self, protocol):
        # flap closes before the first learn: a pure convergence wave
        config = _ONE_PATH_TREE.replace(
            control_plane=protocol, faults=_flap("tor0->core0", 3000, 3300)
        )
        serial = self._compare(config, expect_blackholed=0, expect_lost=0)
        assert serial.stats.retransmissions == 0

    @pytest.mark.parametrize("protocol", ["dv", "ls"])
    def test_traffic_flap_loses_packets_serial_exact(self, protocol):
        # adjacent switches learn at +100 and shift in-flight packets to
        # the lost-to-faults path; the source ToR learns only after the
        # link is back, so no re-pick ever sees a partitioned truth
        config = _ONE_PATH_TREE.replace(
            control_plane=protocol, faults=_flap("core0->tor1", 12000, 12550)
        )
        serial = self._compare(config, expect_blackholed=0)
        assert serial.stats.packets_lost_to_faults > 0
        assert serial.stats.retransmissions > 0

    @pytest.mark.parametrize("protocol", ["dv", "ls"])
    def test_stale_switch_blackholes_serial_exact(self, protocol):
        # fault start tuned so a packet reaches the stale core inside the
        # 100 ns pre-learn window: it is forwarded into the black hole
        config = _ONE_PATH_TREE.replace(
            control_plane=protocol, faults=_flap("core0->tor1", 11074, 11624)
        )
        serial = self._compare(config)
        assert serial.stats.packets_blackholed > 0

    @pytest.mark.parametrize("protocol", ["dv", "ls"])
    def test_convergence_record_structure(self, protocol):
        schedule = _allreduce(size=1 << 15)
        config = _ONE_PATH_TREE.replace(
            control_plane=protocol, faults=_flap("tor0->core0", 3000, 3300)
        )
        with _inline_pools():
            result, _ = _run(schedule, config.replace(shards=2))
        kinds = [record.kind for record in result.convergence_records]
        assert kinds == ["link_down", "link_up"]
        for record in result.convergence_records:
            assert record.protocol == protocol
            assert record.converged_at_ns > record.time_ns
            assert record.messages > 0
        assert result.stats.time_to_recover_ns == max(
            record.time_to_recover_ns for record in result.convergence_records
        )


@pytest.mark.slow_sharded
class TestControlPlaneShardInvariance:
    """Convergent control planes over multi-candidate fabrics: traffic
    timing may diverge from serial (ECMP draws), but shard counts >= 2
    agree bit-for-bit and the convergence wave itself — replayed
    identically on every shard's full-topology replica — matches serial
    exactly."""

    @pytest.mark.parametrize("protocol", ["dv", "ls"])
    @pytest.mark.parametrize(
        "base",
        [
            pytest.param(
                SimulationConfig(
                    topology="fat_tree",
                    nodes_per_tor=8,
                    routing="minimal",
                    cc_algorithm="mprdma",
                    seed=1,
                ),
                id="fat_tree-ecmp",
            ),
            pytest.param(
                SimulationConfig(
                    topology="dragonfly",
                    routing="valiant",
                    cc_algorithm="swift",
                    seed=1,
                ),
                id="dragonfly-valiant",
            ),
        ],
    )
    def test_wave_matches_serial_while_traffic_is_invariant(self, protocol, base):
        schedule = _allreduce(size=1 << 15)
        link = {"fat_tree": "tor0->core0", "dragonfly": "r0.0->r0.1"}[base.topology]
        config = base.replace(
            control_plane=protocol, faults=_flap(link, 3000, 6000)
        )
        serial, _ = _run(schedule, config)
        assert serial.stats.time_to_recover_ns > 0
        assert len(serial.convergence_records) == 2
        reference = None
        with _inline_pools():
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                probe = (
                    _fingerprint(result),
                    _stats_tuple(result.stats),
                    result.convergence_records,
                )
                if reference is None:
                    reference = probe
                else:
                    assert probe == reference, f"shards={shards} diverged"
                # the wave is traffic-independent: serial-exact even here
                assert result.convergence_records == serial.convergence_records
                assert (
                    result.stats.time_to_recover_ns
                    == serial.stats.time_to_recover_ns
                )


@pytest.mark.slow_sharded
class TestAdaptiveSnapshots:
    """Load-adaptive routing under shards: barrier load snapshots replace
    live queue depths.  Semantics are a function of the snapshot cadence
    (a config knob), never of the shard layout."""

    @pytest.mark.parametrize("cadence", [0, 2000], ids=["auto", "explicit-2000"])
    def test_invariant_across_shard_counts(self, cadence):
        schedule = _allreduce(size=1 << 15)
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="adaptive",
            cc_algorithm="mprdma",
            seed=3,
            load_snapshot_ns=cadence,
        )
        reference = None
        with _inline_pools():
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                probe = (_fingerprint(result), _stats_tuple(result.stats))
                if reference is None:
                    reference = probe
                else:
                    assert probe == reference, f"shards={shards} diverged"

    def test_documented_approximation_conserves_payload(self):
        # sharded adaptive routes on snapshots, serial on live loads: the
        # two may time differently (the documented approximation), but
        # both deliver every message exactly once
        schedule = _allreduce(size=1 << 15)
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="adaptive",
            cc_algorithm="mprdma",
            seed=3,
        )
        serial, _ = _run(schedule, config)
        with _inline_pools():
            sharded, _ = _run(schedule, config.replace(shards=4))
        assert sharded.stats.messages_delivered == serial.stats.messages_delivered
        assert sharded.stats.bytes_delivered == serial.stats.bytes_delivered
        assert sharded.ops_completed == serial.ops_completed

    def test_cadence_with_faults_is_invariant(self):
        schedule = _allreduce(size=1 << 15)
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="adaptive",
            cc_algorithm="mprdma",
            seed=11,
            load_snapshot_ns=1500,
            faults=_flap("tor0->core0", 3000, 9000),
        )
        with _inline_pools():
            probes = []
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                probes.append((_fingerprint(result), _stats_tuple(result.stats)))
        assert probes[0] == probes[1] == probes[2]

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError, match="load_snapshot_ns"):
            SimulationConfig(load_snapshot_ns=-1)


@pytest.mark.slow_sharded
class TestFaultLedgerAndCaches:
    def test_ledger_under_congestion_and_faults(self):
        # tiny buffers force congestion drops *while* a link flaps: every
        # loss class lands in its own ledger column and the sum closes
        schedule = all_to_all(16, 1 << 14)
        config = SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=8,
            routing="minimal",
            cc_algorithm="mprdma",
            buffer_size=8192,
            faults=_flap("tor0->core0", 3000, 9000),
        )
        serial, _ = _run(schedule, config)
        assert serial.stats.packets_dropped > 0
        _assert_ledger(serial.stats)
        with _inline_pools():
            for shards in (2, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                _assert_ledger(result.stats)
                assert (
                    result.stats.messages_delivered
                    == serial.stats.messages_delivered
                )
                assert result.stats.bytes_delivered == serial.stats.bytes_delivered

    def test_cache_totals_conserved_under_faults(self):
        # fault epochs drop memoized alive tables on every shard exactly as
        # they do serially: total lookups (hits + misses) stay conserved on
        # a randomness-free configuration (the flap must close before the
        # cross-ToR wave posts at ~8.6 us: the one-path tree has no detour,
        # so an outage under live traffic would partition the serial run)
        schedule = _allreduce(size=1 << 15)
        config = _ONE_PATH_TREE.replace(faults=_flap("tor0->core0", 3000, 3300))
        serial, _ = _run(schedule, config)
        with _inline_pools():
            sharded, _ = _run(schedule, config.replace(shards=4))
        assert (
            serial.stats.route_cache_hits + serial.stats.route_cache_misses
            == sharded.stats.route_cache_hits + sharded.stats.route_cache_misses
        )

    def test_oracle_faults_on_one_path_tree_serial_exact(self):
        # no control plane at all: the oracle path re-picks instantly; on
        # the single-candidate tree nothing draws randomness, so faulted
        # runs stay bit-identical to serial
        schedule = _allreduce(size=1 << 15)
        config = _ONE_PATH_TREE.replace(faults=_flap("tor0->core0", 3000, 3300))
        serial, _ = _run(schedule, config)
        _assert_ledger(serial.stats)
        with _inline_pools():
            for shards in (2, 3, 4):
                result, _ = _run(schedule, config.replace(shards=shards))
                assert _fingerprint(result) == _fingerprint(serial)
                assert _stats_tuple(result.stats) == _stats_tuple(serial.stats)

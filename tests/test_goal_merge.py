"""Tests for rank remapping and multi-job / multi-tenant merging."""
import pytest

from repro.goal import (
    GoalBuilder,
    concatenate_schedules,
    delay_schedule,
    encode_goal,
    merge_onto_shared_nodes,
    relabel_tags,
    remap_ranks,
    validate_schedule,
)
from repro.scheduler import simulate


def _pingpong(name="pp", size=1024):
    b = GoalBuilder(2, name=name)
    s = b.rank(0).send(size, dst=1, tag=1)
    b.rank(0).recv(size, src=1, tag=2, requires=[s])
    r = b.rank(1).recv(size, src=0, tag=1)
    b.rank(1).send(size, dst=0, tag=2, requires=[r])
    return b.build()


class TestRemapRanks:
    def test_remap_moves_ops_and_peers(self):
        sched = _pingpong()
        remapped = remap_ranks(sched, {0: 3, 1: 1}, num_ranks=4)
        assert len(remapped.ranks[3]) == 2
        assert len(remapped.ranks[0]) == 0
        assert remapped.ranks[3].ops[0].peer == 1
        validate_schedule(remapped)

    def test_remap_infers_num_ranks(self):
        remapped = remap_ranks(_pingpong(), {0: 5, 1: 2})
        assert remapped.num_ranks == 6

    def test_remap_requires_full_mapping(self):
        with pytest.raises(ValueError):
            remap_ranks(_pingpong(), {0: 1})

    def test_remap_requires_injective_mapping(self):
        with pytest.raises(ValueError):
            remap_ranks(_pingpong(), {0: 1, 1: 1})

    def test_remap_too_small_num_ranks(self):
        with pytest.raises(ValueError):
            remap_ranks(_pingpong(), {0: 0, 1: 5}, num_ranks=3)

    def test_remapped_schedule_still_simulates(self):
        remapped = remap_ranks(_pingpong(), {0: 2, 1: 0}, num_ranks=3)
        result = simulate(remapped, backend="lgs")
        assert result.ops_completed == remapped.num_ops()


class TestRelabelTags:
    def test_tags_offset(self):
        out = relabel_tags(_pingpong(), 100)
        tags = sorted({op.tag for r in out.ranks for op in r.ops if op.is_comm})
        assert tags == [101, 102]

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            relabel_tags(_pingpong(), -1)


class TestConcatenate:
    def test_default_packing(self):
        merged = concatenate_schedules([_pingpong("a"), _pingpong("b")])
        assert merged.num_ranks == 4
        assert merged.num_ops() == 8
        validate_schedule(merged)

    def test_explicit_placements(self):
        merged = concatenate_schedules(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 2}, {0: 1, 1: 3}],
        )
        assert len(merged.ranks[2]) == 2
        validate_schedule(merged)

    def test_overlapping_placements_rejected(self):
        with pytest.raises(ValueError):
            concatenate_schedules(
                [_pingpong("a"), _pingpong("b")],
                placements=[{0: 0, 1: 1}, {0: 1, 1: 2}],
            )

    def test_tags_kept_disjoint_across_jobs(self):
        merged = concatenate_schedules([_pingpong("a"), _pingpong("b")])
        tags_job0 = {op.tag for op in merged.ranks[0].ops if op.is_comm}
        tags_job1 = {op.tag for op in merged.ranks[2].ops if op.is_comm}
        assert tags_job0.isdisjoint(tags_job1)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            concatenate_schedules([])

    def test_merged_simulates_to_completion(self):
        merged = concatenate_schedules([_pingpong("a"), _pingpong("b"), _pingpong("c")])
        result = simulate(merged, backend="lgs")
        assert result.ops_completed == merged.num_ops()


class TestMultiTenant:
    def test_shared_nodes_merge(self):
        merged = merge_onto_shared_nodes(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 1}, {0: 0, 1: 1}],
        )
        assert merged.num_ranks == 2
        assert merged.num_ops() == 8
        validate_schedule(merged)

    def test_tenant_streams_are_disjoint(self):
        merged = merge_onto_shared_nodes(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 1}, {0: 0, 1: 1}],
            stream_stride=8,
        )
        streams = merged.ranks[0].compute_streams()
        assert any(s >= 8 for s in streams)

    def test_tenant_dags_stay_independent(self):
        merged = merge_onto_shared_nodes(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 1}, {0: 0, 1: 1}],
        )
        # the second tenant's first op must have no dependency on the first tenant
        rank0 = merged.ranks[0]
        second_tenant_first = 2  # two ops per tenant per rank, appended in order
        assert rank0.preds[second_tenant_first] == []

    def test_shared_merge_simulates(self):
        merged = merge_onto_shared_nodes(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 1}, {0: 1, 1: 0}],
        )
        result = simulate(merged, backend="lgs")
        assert result.ops_completed == merged.num_ops()

    def test_stream_stride_too_small_rejected(self):
        b = GoalBuilder(2, name="hi-stream")
        b.rank(0).send(8, dst=1, tag=1, cpu=70)
        b.rank(1).recv(8, src=0, tag=1, cpu=70)
        with pytest.raises(ValueError):
            merge_onto_shared_nodes(
                [b.build()], placements=[{0: 0, 1: 1}], stream_stride=64
            )

    def test_placement_must_cover_all_ranks(self):
        with pytest.raises(ValueError):
            merge_onto_shared_nodes([_pingpong()], placements=[{0: 0}])


class TestErrorPaths:
    """Error paths of the merge entry points (satellite of the co-tenancy PR)."""

    def test_rank_collision_within_one_job(self):
        # one job mapping two of its own ranks onto the same node
        with pytest.raises(ValueError, match="overlap"):
            concatenate_schedules([_pingpong()], placements=[{0: 3, 1: 3}])

    def test_rank_collision_across_jobs_names_the_fix(self):
        with pytest.raises(ValueError, match="disjoint"):
            concatenate_schedules(
                [_pingpong("a"), _pingpong("b")],
                placements=[{0: 0, 1: 1}, {0: 1, 1: 2}],
            )

    def test_empty_schedule_list_rejected_everywhere(self):
        with pytest.raises(ValueError, match="at least one"):
            concatenate_schedules([])
        with pytest.raises(ValueError, match="at least one"):
            merge_onto_shared_nodes([], placements=[])

    def test_mismatched_placement_count(self):
        with pytest.raises(ValueError, match="one placement per schedule"):
            concatenate_schedules(
                [_pingpong("a"), _pingpong("b")], placements=[{0: 0, 1: 1}]
            )
        with pytest.raises(ValueError, match="one placement per schedule"):
            merge_onto_shared_nodes(
                [_pingpong("a"), _pingpong("b")], placements=[{0: 0, 1: 1}]
            )

    def test_mismatched_arrival_count(self):
        with pytest.raises(ValueError, match="one arrival per schedule"):
            concatenate_schedules([_pingpong("a"), _pingpong("b")], arrivals=[0])
        with pytest.raises(ValueError, match="one arrival per schedule"):
            merge_onto_shared_nodes(
                [_pingpong("a")], placements=[{0: 0, 1: 1}], arrivals=[0, 5]
            )

    def test_placement_missing_a_rank(self):
        with pytest.raises(ValueError, match="missing rank 1"):
            concatenate_schedules([_pingpong("a")], placements=[{0: 0}])

    def test_num_ranks_too_small_for_placement(self):
        with pytest.raises(IndexError):
            concatenate_schedules(
                [_pingpong("a")], placements=[{0: 0, 1: 5}], num_ranks=3
            )


class TestArrivals:
    def test_arrival_prepends_delay_roots(self):
        merged = concatenate_schedules(
            [_pingpong("a"), _pingpong("b")], arrivals=[0, 700]
        )
        # job a untouched (arrival 0), job b's ranks gated by a calc 700 root
        assert len(merged.ranks[0]) == 2
        assert len(merged.ranks[2]) == 3
        assert merged.ranks[2].ops[0].is_calc and merged.ranks[2].ops[0].size == 700
        validate_schedule(merged)

    def test_arrivals_match_manual_delay_composition(self):
        auto = concatenate_schedules([_pingpong("a"), _pingpong("b")], arrivals=[0, 999])
        manual = concatenate_schedules(
            [_pingpong("a"), delay_schedule(_pingpong("b"), 999)]
        )
        assert encode_goal(auto) == encode_goal(manual)

    def test_delayed_job_finishes_later(self):
        base = simulate(concatenate_schedules([_pingpong("a"), _pingpong("b")]), backend="lgs")
        delayed = simulate(
            concatenate_schedules([_pingpong("a"), _pingpong("b")], arrivals=[0, 4321]),
            backend="lgs",
        )
        assert delayed.finish_time_ns == base.finish_time_ns + 4321

    def test_shared_nodes_accept_arrivals(self):
        merged = merge_onto_shared_nodes(
            [_pingpong("a"), _pingpong("b")],
            placements=[{0: 0, 1: 1}, {0: 0, 1: 1}],
            arrivals=[0, 250],
        )
        result = simulate(merged, backend="lgs")
        assert result.ops_completed == merged.num_ops()


class TestMergeDeterminism:
    """Multi-job merging is a pure function of its inputs, in job order."""

    def _jobs(self):
        return [_pingpong("a", size=512), _pingpong("b", size=1024), _pingpong("c", size=2048)]

    def test_same_inputs_same_bytes(self):
        one = concatenate_schedules(self._jobs(), arrivals=[0, 10, 20])
        two = concatenate_schedules(self._jobs(), arrivals=[0, 10, 20])
        assert encode_goal(one) == encode_goal(two)

    def test_shared_merge_same_inputs_same_bytes(self):
        placements = [{0: 0, 1: 1}] * 3
        one = merge_onto_shared_nodes(self._jobs(), placements=placements)
        two = merge_onto_shared_nodes(self._jobs(), placements=placements)
        assert encode_goal(one) == encode_goal(two)

    def test_job_order_defines_tag_windows(self):
        stride = 1 << 20
        merged = concatenate_schedules(self._jobs(), tag_stride=stride)
        for job_idx, base_rank in enumerate((0, 2, 4)):
            tags = {op.tag for op in merged.ranks[base_rank].ops if op.is_comm}
            assert all(job_idx * stride <= t < (job_idx + 1) * stride for t in tags)

    def test_merged_simulation_is_deterministic(self):
        merged = concatenate_schedules(self._jobs(), arrivals=[0, 5, 10])
        a = simulate(merged, backend="lgs")
        b = simulate(merged, backend="lgs")
        assert a.finish_time_ns == b.finish_time_ns
        assert a.rank_finish_times_ns == b.rank_finish_times_ns
        assert a.message_records == b.message_records

    def test_reordering_jobs_reorders_node_blocks(self):
        fwd = concatenate_schedules([_pingpong("a", size=512), _pingpong("b", size=1024)])
        rev = concatenate_schedules([_pingpong("b", size=1024), _pingpong("a", size=512)])
        # default packing is positional: job 0 always occupies the first block
        assert fwd.ranks[0].ops[0].size == 512
        assert rev.ranks[0].ops[0].size == 1024

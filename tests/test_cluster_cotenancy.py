"""Tests for the multi-job co-tenancy engine (repro.cluster) and its plumbing."""
import pytest

from repro.cluster import (
    TAG_STRIDE,
    ClusterJob,
    build_cotenant_schedule,
    run_cotenant,
)
from repro.goal import GoalBuilder, delay_schedule
from repro.network import SimulationConfig
from repro.placement import fragmented_placement, random_interleaved_placement, JobRequest
from repro.scheduler import simulate
from repro.sweep import interference_sweep


def _ring(n, size, name, tag=1):
    b = GoalBuilder(n, name=name)
    for r in range(n):
        b.rank(r).send(size, dst=(r + 1) % n, tag=tag)
        b.rank(r).recv(size, src=(r - 1) % n, tag=tag)
    return b.build()


def _alltoall(n, size, name):
    b = GoalBuilder(n, name=name)
    for r in range(n):
        for peer in range(n):
            if peer != r:
                b.rank(r).send(size, dst=peer, tag=r * n + peer + 1)
                b.rank(r).recv(size, src=peer, tag=peer * n + r + 1)
    return b.build()


def _oversub_config(**kwargs):
    base = dict(
        topology="fat_tree", nodes_per_tor=4, oversubscription=4.0, seed=5
    )
    base.update(kwargs)
    return SimulationConfig(**base)


class TestDelaySchedule:
    def test_zero_delay_is_identity_object(self):
        sched = _ring(4, 1024, "a")
        assert delay_schedule(sched, 0) is sched

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            delay_schedule(_ring(4, 1024, "a"), -1)

    def test_delay_shifts_completion_exactly(self):
        sched = _ring(4, 1 << 14, "a")
        base = simulate(sched, backend="lgs")
        delayed = simulate(delay_schedule(sched, 12_345), backend="lgs")
        assert delayed.finish_time_ns == base.finish_time_ns + 12_345

    def test_delay_gates_every_op(self):
        sched = _ring(4, 1 << 14, "a")
        delayed = delay_schedule(sched, 10)
        for rank in delayed.ranks:
            # the delay calc is the sole root of every non-empty rank
            assert rank.roots() == [0]
            assert rank.ops[0].is_calc and rank.ops[0].size == 10

    def test_delay_preserves_labels(self):
        b = GoalBuilder(2, name="labelled")
        b.rank(0).send(8, dst=1, tag=1, label="x")
        b.rank(1).recv(8, src=0, tag=1)
        delayed = delay_schedule(b.build(), 7)
        assert delayed.ranks[0].vertex_by_label("x") == 1


class TestBitIdentity:
    """A 1-job co-tenant run must be bit-identical to the plain path."""

    @pytest.mark.parametrize("backend", ["lgs", "htsim"])
    def test_single_job_identical(self, backend):
        sched = _alltoall(8, 1 << 14, "solo")
        cfg = _oversub_config()
        plain = simulate(sched, backend=backend, config=cfg)
        cot = run_cotenant(
            [ClusterJob(sched)], strategy="packed", backend=backend,
            config=cfg, baseline=False,
        )
        assert cot.result.finish_time_ns == plain.finish_time_ns
        assert cot.result.rank_finish_times_ns == plain.rank_finish_times_ns
        assert cot.result.stats == plain.stats
        assert cot.result.message_records == plain.message_records

    @pytest.mark.parametrize("backend", ["lgs", "htsim"])
    def test_attribution_never_perturbs_timing(self, backend):
        # same 2-job run with and without job attribution: identical results
        jobs = [ClusterJob(_ring(4, 1 << 14, "a")), ClusterJob(_ring(4, 1 << 14, "b"))]
        cfg = _oversub_config()
        plan = build_cotenant_schedule(jobs, strategy="fragmented", group_size=4)
        with_attr = simulate(
            plan.schedule, backend=backend,
            config=cfg.replace(job_tag_stride=plan.tag_stride),
        )
        without = simulate(plan.schedule, backend=backend, config=cfg)
        assert with_attr.finish_time_ns == without.finish_time_ns
        assert with_attr.rank_finish_times_ns == without.rank_finish_times_ns
        assert with_attr.stats == without.stats
        assert with_attr.job_stats and not without.job_stats


class TestCotenantEngine:
    @pytest.mark.parametrize("backend", ["lgs", "htsim"])
    def test_per_job_attribution_sums_to_totals(self, backend):
        jobs = [
            ClusterJob(_ring(4, 1 << 14, "a"), name="a"),
            ClusterJob(_alltoall(4, 1 << 12, "b"), name="b"),
        ]
        res = run_cotenant(
            jobs, strategy="packed", backend=backend,
            config=_oversub_config(), baseline=False,
        )
        total_msgs = sum(o.messages_delivered for o in res.outcomes)
        total_bytes = sum(o.bytes_delivered for o in res.outcomes)
        assert total_msgs == res.result.stats.messages_delivered
        assert total_bytes == res.result.stats.bytes_delivered
        assert res.outcome("a").messages_delivered == 4
        assert res.outcome("b").messages_delivered == 12

    def test_fragmented_placement_shows_attributed_interference(self):
        jobs = [
            ClusterJob(_alltoall(4, 1 << 16, "a"), name="a"),
            ClusterJob(_alltoall(4, 1 << 16, "b"), name="b"),
        ]
        cfg = _oversub_config()
        packed = run_cotenant(jobs, cluster_nodes=8, strategy="packed",
                              backend="htsim", config=cfg)
        frag = run_cotenant(jobs, cluster_nodes=8, strategy="fragmented",
                            backend="htsim", config=cfg, group_size=4)
        # packed: disjoint ToRs, no shared links, no contention slowdown
        assert packed.contended_links() == {}
        for out in packed.outcomes:
            assert out.slowdown == pytest.approx(1.0, abs=0.02)
        # fragmented: both jobs cross the oversubscribed core and slow down
        assert frag.contended_links()
        for out in frag.outcomes:
            assert out.slowdown > packed.outcome(out.name).slowdown + 0.05
            assert out.link_bytes  # per-link attribution present

    def test_arrival_stagger_reduces_interference(self):
        a = _alltoall(4, 1 << 16, "a")
        b = _alltoall(4, 1 << 16, "b")
        cfg = _oversub_config()
        overlap = run_cotenant(
            [ClusterJob(a, name="a"), ClusterJob(b, name="b")],
            cluster_nodes=8, strategy="fragmented", backend="htsim",
            config=cfg, group_size=4,
        )
        staggered = run_cotenant(
            [ClusterJob(a, name="a"), ClusterJob(b, arrival_ns=10_000_000, name="b")],
            cluster_nodes=8, strategy="fragmented", backend="htsim",
            config=cfg, group_size=4,
        )
        # job b arriving after job a drained removes the contention
        assert staggered.outcome("b").slowdown < overlap.outcome("b").slowdown
        assert staggered.outcome("b").slowdown == pytest.approx(1.0, abs=0.02)
        # runtimes are measured from each job's arrival, not from t=0
        assert staggered.outcome("b").finish_ns >= 10_000_000
        assert staggered.outcome("b").runtime_ns < staggered.outcome("b").finish_ns

    def test_shared_nodes_attribute_per_tenant_completion(self):
        jobs = [
            ClusterJob(_ring(4, 1 << 16, "a"), name="a"),
            ClusterJob(_ring(4, 1 << 16, "b"), name="b"),
        ]
        identity = {i: i for i in range(4)}
        res = run_cotenant(
            jobs, cluster_nodes=4, placements=[identity, identity],
            backend="lgs", config=SimulationConfig(), baseline=False,
        )
        assert res.plan.shared
        # tenants share every NIC: the second tenant must finish later
        assert res.outcome("b").finish_ns > res.outcome("a").finish_ns
        assert res.result.group_finish_times_ns[1] == res.outcome("b").finish_ns

    def test_rejects_tags_outside_window(self):
        b = GoalBuilder(2, name="huge-tag")
        b.rank(0).send(8, dst=1, tag=TAG_STRIDE)
        b.rank(1).recv(8, src=0, tag=TAG_STRIDE)
        with pytest.raises(ValueError, match="tag_stride"):
            build_cotenant_schedule([ClusterJob(b.build())])

    def test_rejects_empty_job_list(self):
        with pytest.raises(ValueError):
            build_cotenant_schedule([])

    def test_rejects_mismatched_placements(self):
        jobs = [ClusterJob(_ring(2, 8, "a")), ClusterJob(_ring(2, 8, "b"))]
        with pytest.raises(ValueError, match="one placement per job"):
            build_cotenant_schedule(jobs, cluster_nodes=4, placements=[{0: 0, 1: 1}])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            ClusterJob(_ring(2, 8, "a"), arrival_ns=-1)

    def test_empty_job_finishes_on_arrival(self):
        # a job with no ops completes nothing; it reports zero runtime from
        # its arrival rather than a negative one
        from repro.goal import GoalSchedule

        jobs = [
            ClusterJob(_ring(2, 1 << 12, "real"), name="real"),
            ClusterJob(GoalSchedule(2, name="empty"), arrival_ns=1000, name="empty"),
        ]
        res = run_cotenant(jobs, backend="lgs", config=SimulationConfig(),
                           baseline=False, validate=False)
        empty = res.outcome("empty")
        assert empty.finish_ns == 1000
        assert empty.runtime_ns == 0

    def test_duplicate_job_labels_disambiguated(self):
        # two jobs from the same generator share a label; attribution must
        # not collapse them into one entry
        jobs = [ClusterJob(_alltoall(4, 1 << 16, "twin")) for _ in range(2)]
        res = run_cotenant(
            jobs, cluster_nodes=8, strategy="fragmented", backend="htsim",
            config=_oversub_config(), baseline=False, group_size=4,
        )
        names = [o.name for o in res.outcomes]
        assert len(set(names)) == 2
        assert res.contended_links()  # both jobs visible on shared links

    def test_group_strategies_default_to_simulated_topology(self):
        # without group_size/topology kwargs, fragmented derives its groups
        # from the config's fat-tree ToRs (4 hosts each), not the global
        # default of 16 — so two 8-rank jobs on 16 nodes really interleave
        jobs = [
            ClusterJob(_ring(8, 1 << 14, "a"), name="a"),
            ClusterJob(_ring(8, 1 << 14, "b"), name="b"),
        ]
        res = run_cotenant(
            jobs, cluster_nodes=16, strategy="fragmented", backend="htsim",
            config=_oversub_config(), baseline=False,
        )
        nodes_a = set(res.outcome("a").nodes)
        assert {n // 4 for n in nodes_a} == {0, 1, 2, 3}  # all four ToRs


class TestSchedulerGroups:
    def test_op_groups_shape_validated(self):
        sched = _ring(2, 8, "a")
        with pytest.raises(ValueError, match="op_groups"):
            simulate(sched, backend="lgs", op_groups=[[0]])

    def test_ungrouped_ops_excluded(self):
        sched = _ring(2, 8, "a")
        groups = [[0, -1], [-1, 0]]
        res = simulate(sched, backend="lgs", op_groups=groups)
        assert set(res.group_finish_times_ns) == {0}


class TestNewPlacements:
    def _jobs(self):
        return [JobRequest(_ring(4, 8, "a")), JobRequest(_ring(4, 8, "b"))]

    def test_fragmented_spreads_across_groups(self):
        p = fragmented_placement(self._jobs(), 8, group_size=4)
        for idx in range(2):
            nodes = p.nodes_of_job(idx)
            groups = {n // 4 for n in nodes}
            assert groups == {0, 1}  # every job touches every group
        # disjoint and complete
        all_nodes = [n for m in p.mappings for n in m.values()]
        assert sorted(all_nodes) == list(range(8))

    def test_fragmented_capacity_error(self):
        with pytest.raises(ValueError):
            fragmented_placement(self._jobs(), 7, group_size=4)

    def test_random_interleaved_deals_alternately(self):
        p = random_interleaved_placement(self._jobs(), 8, seed=9)
        all_nodes = [n for m in p.mappings for n in m.values()]
        assert sorted(all_nodes) == list(range(8))
        # deterministic for a fixed seed
        q = random_interleaved_placement(self._jobs(), 8, seed=9)
        assert p.mappings == q.mappings
        r = random_interleaved_placement(self._jobs(), 8, seed=10)
        assert p.mappings != r.mappings


class TestInterferenceSweep:
    def test_grid_order_and_parallel_equality(self):
        jobs = [
            ClusterJob(_ring(4, 1 << 14, "a"), name="a"),
            ClusterJob(_ring(4, 1 << 14, "b"), name="b"),
        ]
        kwargs = dict(
            strategies=("packed", "fragmented"),
            configs={"ft": _oversub_config()},
            backend="htsim",
            group_size=4,
            seed=3,
        )
        serial = interference_sweep(jobs, 8, **kwargs)
        parallel = interference_sweep(jobs, 8, parallel=2, **kwargs)
        assert serial == parallel
        assert [(e.strategy, e.job) for e in serial] == [
            ("packed", "a"), ("packed", "b"),
            ("fragmented", "a"), ("fragmented", "b"),
        ]

    def test_strategy_kwargs_filtered_per_strategy(self):
        # seed applies to random only; group_size to fragmented only —
        # neither may break the other strategies in the same grid
        jobs = [ClusterJob(_ring(2, 1 << 12, "a"), name="a")]
        entries = interference_sweep(
            jobs, 4, strategies=("packed", "random", "fragmented"),
            backend="lgs", seed=3, group_size=2,
        )
        assert len(entries) == 3


class TestCotenantFacadeAndCli:
    def test_facade_wraps_plain_schedules(self):
        from repro.core import Atlahs

        res = Atlahs().run_cotenant(
            [_ring(4, 1 << 12, "a"), _ring(4, 1 << 12, "b")],
            strategy="packed",
            config=_oversub_config(),
            baseline=False,
        )
        assert len(res.outcomes) == 2
        assert res.result.ops_completed == res.plan.schedule.num_ops()

    def test_cli_cotenant_synthetic_specs(self, capsys):
        import json

        from repro.cli import main

        rc = main(
            [
                "cotenant", "alltoall:4:4096", "allreduce:4:4096",
                "--placement", "packed,fragmented", "--group-size", "4",
                "--backend", "htsim", "--nodes-per-tor", "4",
                "--oversubscription", "4.0", "--arrivals", "0,1000",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["strategies"]) == {"packed", "fragmented"}
        packed_jobs = payload["strategies"]["packed"]["jobs"]
        assert [j["job"] for j in packed_jobs] == ["alltoall:4:4096", "allreduce:4:4096"]
        assert packed_jobs[1]["arrival_ms"] == pytest.approx(1e-3)
        assert all(j["slowdown"] is not None for j in packed_jobs)

    def test_cli_cotenant_goal_file(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.goal import write_goal_file

        path = tmp_path / "job.goal"
        write_goal_file(_ring(4, 4096, "filejob"), str(path))
        rc = main(["cotenant", str(path), "--backend", "lgs", "--no-baseline"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        jobs = payload["strategies"]["packed"]["jobs"]
        assert len(jobs) == 1 and jobs[0]["slowdown"] is None

    def test_cli_cotenant_rejects_bad_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["cotenant", "bogus:4:4096"])

"""Tests for the message-level LogGOPS backend (analytic timing checks)."""
import pytest

from repro.goal import GoalBuilder
from repro.network import LogGOPSParams, SimulationConfig
from repro.scheduler import simulate


def _config(**kwargs):
    return SimulationConfig(loggops=LogGOPSParams(**kwargs))


def _single_message(size, **params):
    b = GoalBuilder(2)
    b.rank(0).send(size, dst=1, tag=1)
    b.rank(1).recv(size, src=0, tag=1)
    return simulate(b.build(), backend="lgs", config=_config(**params))


class TestSingleMessageTiming:
    def test_eager_message_latency_formula(self):
        # o (send cpu) + L + size*G + o (recv cpu)
        res = _single_message(1000, L=1000, o=100, g=0, G=1.0, O=0.0, S=0)
        assert res.finish_time_ns == 100 + 1000 + 1000 + 100

    def test_zero_byte_like_small_message(self):
        res = _single_message(1, L=500, o=10, g=0, G=0.0, O=0.0, S=0)
        assert res.finish_time_ns == 10 + 500 + 10

    def test_per_byte_cpu_overhead(self):
        res = _single_message(1000, L=0, o=0, g=0, G=0.0, O=1.0, S=0)
        # sender charges size*O before injecting; receiver charges size*O again
        assert res.finish_time_ns == 2000

    def test_bandwidth_term_scales_with_size(self):
        small = _single_message(1_000, L=0, o=0, g=0, G=0.1, O=0.0, S=0)
        large = _single_message(10_000, L=0, o=0, g=0, G=0.1, O=0.0, S=0)
        assert large.finish_time_ns - small.finish_time_ns == pytest.approx(900, abs=2)

    def test_send_completes_locally_for_eager(self):
        b = GoalBuilder(2)
        s = b.rank(0).send(1000, dst=1, tag=1)
        b.rank(0).calc(50, requires=[s])
        b.rank(1).recv(1000, src=0, tag=1)
        res = simulate(b.build(), backend="lgs", config=_config(L=10_000, o=100, G=0.0, S=0))
        # rank 0 finishes its calc long before the message is delivered at L
        assert res.rank_finish_times_ns[0] < res.rank_finish_times_ns[1]


class TestRendezvous:
    def test_rendezvous_waits_for_receiver(self):
        params = dict(L=100, o=10, g=0, G=0.0, O=0.0)
        b = GoalBuilder(2)
        b.rank(0).send(10_000, dst=1, tag=1)
        c = b.rank(1).calc(50_000)
        b.rank(1).recv(10_000, src=0, tag=1, requires=[c])
        eager = simulate(b.build(), backend="lgs", config=_config(S=0, **params))

        b2 = GoalBuilder(2)
        b2.rank(0).send(10_000, dst=1, tag=1)
        c2 = b2.rank(1).calc(50_000)
        b2.rank(1).recv(10_000, src=0, tag=1, requires=[c2])
        rndv = simulate(b2.build(), backend="lgs", config=_config(S=1000, **params))
        # under rendezvous the transfer cannot start before the recv is posted
        assert rndv.finish_time_ns > eager.finish_time_ns
        assert rndv.finish_time_ns >= 50_000

    def test_rendezvous_send_blocks_sender(self):
        params = dict(L=100, o=10, g=0, G=0.0, O=0.0, S=1000)
        b = GoalBuilder(2)
        s = b.rank(0).send(10_000, dst=1, tag=1)
        b.rank(0).calc(1, requires=[s])
        c = b.rank(1).calc(20_000)
        b.rank(1).recv(10_000, src=0, tag=1, requires=[c])
        res = simulate(b.build(), backend="lgs", config=_config(**params))
        assert res.rank_finish_times_ns[0] >= 20_000

    def test_recv_posted_before_rendezvous_send(self):
        params = dict(L=100, o=10, g=0, G=0.01, O=0.0, S=1000)
        b = GoalBuilder(2)
        c = b.rank(0).calc(5_000)
        b.rank(0).send(10_000, dst=1, tag=1, requires=[c])
        b.rank(1).recv(10_000, src=0, tag=1)
        res = simulate(b.build(), backend="lgs", config=_config(**params))
        assert res.ops_completed == 3


class TestResourceContention:
    def test_incast_serialises_at_receiver_nic(self):
        # two senders to one receiver: second message must wait for the first
        b = GoalBuilder(3)
        b.rank(1).send(10_000, dst=0, tag=1)
        b.rank(2).send(10_000, dst=0, tag=2)
        b.rank(0).recv(10_000, src=1, tag=1)
        b.rank(0).recv(10_000, src=2, tag=2)
        res = simulate(b.build(), backend="lgs", config=_config(L=0, o=0, g=0, G=1.0, O=0.0, S=0))
        assert res.finish_time_ns >= 20_000

    def test_sender_nic_gap_g(self):
        b = GoalBuilder(3)
        b.rank(0).send(1, dst=1, tag=1)
        b.rank(0).send(1, dst=2, tag=2)
        b.rank(1).recv(1, src=0, tag=1)
        b.rank(2).recv(1, src=0, tag=2)
        res = simulate(b.build(), backend="lgs", config=_config(L=0, o=0, g=1000, G=0.0, O=0.0, S=0))
        assert res.finish_time_ns >= 1000

    def test_compute_streams_overlap(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1000, cpu=0)
        b.rank(0).calc(1000, cpu=1)
        res = simulate(b.build(), backend="lgs")
        assert res.finish_time_ns == 1000

    def test_same_stream_serialises(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1000, cpu=0)
        b.rank(0).calc(1000, cpu=0)
        res = simulate(b.build(), backend="lgs")
        assert res.finish_time_ns == 2000


class TestStatsAndRecords:
    def test_message_records_collected(self):
        b = GoalBuilder(2)
        b.rank(0).send(100, dst=1, tag=9)
        b.rank(1).recv(100, src=0, tag=9)
        res = simulate(b.build(), backend="lgs")
        assert len(res.message_records) == 1
        rec = res.message_records[0]
        assert (rec.src, rec.dst, rec.size, rec.tag) == (0, 1, 100, 9)
        assert rec.completion_latency > 0

    def test_stats_counts(self):
        b = GoalBuilder(2)
        for i in range(5):
            b.rank(0).send(100, dst=1, tag=i)
            b.rank(1).recv(100, src=0, tag=i)
        res = simulate(b.build(), backend="lgs")
        assert res.stats.messages_delivered == 5
        assert res.stats.bytes_delivered == 500

    def test_record_collection_can_be_disabled(self):
        b = GoalBuilder(2)
        b.rank(0).send(100, dst=1)
        b.rank(1).recv(100, src=0)
        cfg = SimulationConfig(collect_message_records=False)
        res = simulate(b.build(), backend="lgs", config=cfg)
        assert res.message_records == []
        with pytest.raises(ValueError):
            res.mct_statistics()

    def test_ai_and_hpc_presets(self):
        assert LogGOPSParams.ai_cluster().L == 3700
        assert LogGOPSParams.hpc_cluster().S == 256000
        assert LogGOPSParams(G=0.04).bandwidth_bytes_per_ns() == pytest.approx(25.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogGOPSParams(L=-1)
        with pytest.raises(ValueError):
            LogGOPSParams(G=-0.1)

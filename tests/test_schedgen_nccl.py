"""Tests for the NCCL trace -> GOAL pipeline (stages 2-4) and grouping."""
import pytest

from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b, mistral_8x7b
from repro.collectives.nccl import NcclConfig
from repro.goal import GoalBuilder, validate_schedule
from repro.goal.ops import OpType
from repro.schedgen.grouping import group_ranks_into_nodes
from repro.schedgen.nccl import NcclScheduleGenerator, NcclTraceMismatchError, nccl_trace_to_goal
from repro.scheduler import simulate
from repro.tracers.nccl import NcclTracer


def _small_report(dp=4, pp=1, ep=1, model=None):
    model = model or llama_7b().scaled(0.05)
    par = ParallelismConfig(tp=1, pp=pp, dp=dp, ep=ep, microbatches=2, global_batch=16)
    return LlmTrainer(model, par, gpus_per_node=2, iterations=1).trace()


class TestStage2And3:
    def test_gpu_schedule_one_rank_per_gpu(self):
        report = _small_report()
        gen = NcclScheduleGenerator(report, gpus_per_node=1)
        sched = gen.generate()
        assert sched.num_ranks == report.num_gpus
        validate_schedule(sched)

    def test_compute_gaps_become_calc(self):
        t = NcclTracer(2)
        t.compute(0, 0, 5000)
        t.nccl(0, 0, "AllReduce", 4096)
        t.compute(1, 0, 100)
        t.nccl(1, 0, "AllReduce", 4096)
        sched = NcclScheduleGenerator(t.finish(), gpus_per_node=1).generate()
        assert sched.ranks[0].total_calc_ns() >= 5000

    def test_compute_scale(self):
        report = _small_report(dp=2)
        full = NcclScheduleGenerator(report, gpus_per_node=1).generate()
        half = NcclScheduleGenerator(report, compute_scale=0.5, gpus_per_node=1).generate()
        assert half.total_calc_ns() < full.total_calc_ns()

    def test_p2p_send_recv_correlated(self):
        t = NcclTracer(2)
        t.nccl(0, 0, "Send", 1 << 16, peer=1)
        t.nccl(0, 0, "Send", 1 << 16, peer=1)
        t.nccl(1, 0, "Recv", 1 << 16, peer=0)
        t.nccl(1, 0, "Recv", 1 << 16, peer=0)
        sched = NcclScheduleGenerator(t.finish(), gpus_per_node=1).generate()
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_mismatched_collectives_raise(self):
        t = NcclTracer(2)
        t.nccl(0, 0, "AllReduce", 4096, comm=0)
        # GPU 1 never issues the collective
        with pytest.raises(NcclTraceMismatchError):
            NcclScheduleGenerator(t.finish(), gpus_per_node=1).generate()

    def test_nccl_config_changes_schedule_shape(self):
        report = _small_report(dp=2)
        a = nccl_trace_to_goal(report, nccl_config=NcclConfig(nchannels=1), gpus_per_node=1)
        b = nccl_trace_to_goal(report, nccl_config=NcclConfig(nchannels=4), gpus_per_node=1)
        assert b.num_ops() != a.num_ops()

    def test_simulates_on_both_backends(self):
        from repro.network import SimulationConfig

        sched = nccl_trace_to_goal(_small_report(dp=4), gpus_per_node=1)
        lgs = simulate(sched, backend="lgs")
        pkt = simulate(
            sched, backend="htsim", config=SimulationConfig(topology="fat_tree", nodes_per_tor=4)
        )
        assert lgs.ops_completed == pkt.ops_completed == sched.num_ops()


class TestStage4Grouping:
    def test_grouping_reduces_rank_count(self):
        report = _small_report(dp=4)
        sched = nccl_trace_to_goal(report, gpus_per_node=2)
        assert sched.num_ranks == 2
        validate_schedule(sched)

    def test_intra_node_comm_replaced_by_calc(self):
        b = GoalBuilder(4)
        b.rank(0).send(1 << 20, dst=1, tag=1)
        b.rank(1).recv(1 << 20, src=0, tag=1)
        b.rank(2).send(1 << 20, dst=3, tag=2)
        b.rank(3).recv(1 << 20, src=2, tag=2)
        grouped = group_ranks_into_nodes(b.build(), ranks_per_node=2)
        assert grouped.num_ranks == 2
        counts = grouped.op_counts()
        assert counts["send"] == 0 and counts["recv"] == 0
        assert counts["calc"] == 4
        # the send side carries the NVLink transfer cost
        assert grouped.total_calc_ns() > 0

    def test_intra_node_dependency_preserved(self):
        b = GoalBuilder(2)
        c = b.rank(0).calc(10_000)
        b.rank(0).send(1024, dst=1, tag=1, requires=[c])
        r = b.rank(1).recv(1024, src=0, tag=1)
        b.rank(1).calc(500, requires=[r])
        grouped = group_ranks_into_nodes(b.build(), ranks_per_node=2)
        res = simulate(grouped, backend="lgs")
        # the consumer calc must still wait for the producer's 10us compute
        assert res.finish_time_ns >= 10_000

    def test_inter_node_comm_remapped(self):
        b = GoalBuilder(4)
        b.rank(0).send(4096, dst=2, tag=1)
        b.rank(2).recv(4096, src=0, tag=1)
        grouped = group_ranks_into_nodes(b.build(), ranks_per_node=2)
        sends = [op for r in grouped.ranks for op in r.ops if op.is_send]
        assert len(sends) == 1 and sends[0].peer == 1
        validate_schedule(grouped)

    def test_streams_offset_per_local_rank(self):
        b = GoalBuilder(2)
        b.rank(0).calc(10, cpu=0)
        b.rank(1).calc(10, cpu=0)
        grouped = group_ranks_into_nodes(b.build(), ranks_per_node=2, stream_stride=16)
        assert sorted(grouped.ranks[0].compute_streams()) == [0, 16]

    def test_stream_stride_violation_rejected(self):
        b = GoalBuilder(2)
        b.rank(0).calc(10, cpu=20)
        b.rank(1).calc(10)
        with pytest.raises(ValueError):
            group_ranks_into_nodes(b.build(), ranks_per_node=2, stream_stride=16)

    def test_explicit_node_map(self):
        b = GoalBuilder(4)
        for r in range(4):
            b.rank(r).calc(r + 1)
        grouped = group_ranks_into_nodes(b.build(), node_of=[0, 1, 0, 1])
        assert grouped.num_ranks == 2
        assert len(grouped.ranks[0]) == 2

    def test_requires_exactly_one_grouping_spec(self):
        b = GoalBuilder(2)
        b.rank(0).calc(1)
        with pytest.raises(ValueError):
            group_ranks_into_nodes(b.build())
        with pytest.raises(ValueError):
            group_ranks_into_nodes(b.build(), ranks_per_node=2, node_of=[0, 0])

    def test_what_if_regrouping(self):
        # the paper's Stage-4 example: regroup an 8-GPU/2-node trace as 4 nodes
        report = _small_report(dp=8)
        two_nodes = nccl_trace_to_goal(report, gpus_per_node=4)
        four_nodes = nccl_trace_to_goal(report, gpus_per_node=2)
        assert two_nodes.num_ranks == 2
        assert four_nodes.num_ranks == 4
        for sched in (two_nodes, four_nodes):
            validate_schedule(sched)
            assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_grouped_moe_workload_completes(self):
        report = _small_report(dp=4, pp=2, ep=2, model=mistral_8x7b().scaled(0.05))
        sched = nccl_trace_to_goal(report, gpus_per_node=2)
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

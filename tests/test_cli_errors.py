"""CLI error-path tests: malformed specs exit non-zero with actionable
messages, never tracebacks.

Covers ``atlahs cotenant``, ``atlahs faults`` and ``atlahs inference``: bad
``pattern:ranks:size`` job specs, malformed/overlapping arrival lists,
unknown placement strategies, bad failure rates, unknown link names,
malformed timed-event specs, malformed tenant-mix specs, negative offered
rates and unknown arrival processes.  Every case asserts a
:class:`SystemExit` whose message names the offending input, which is what
separates a diagnosable CLI error from a stack trace.
"""
import pytest

from repro.cli import main


def _exit_message(excinfo) -> str:
    code = excinfo.value.code
    return code if isinstance(code, str) else str(code)


class TestCotenantErrors:
    def test_unknown_synthetic_pattern(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "sparkle:8:1024"])
        message = _exit_message(excinfo)
        assert "sparkle" in message and "expected one of" in message

    def test_non_integer_ranks_in_spec(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:eight:1024"])
        assert "incast:eight:1024" in _exit_message(excinfo)

    def test_bad_size_in_spec(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:8:huge"])
        assert "incast:8:huge" in _exit_message(excinfo)

    def test_non_integer_arrivals(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:4:1024", "alltoall:4:1024", "--arrivals", "0,soon"])
        message = _exit_message(excinfo)
        assert "--arrivals" in message and "comma-separated integers" in message

    def test_arrival_count_mismatch(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:4:1024", "alltoall:4:1024", "--arrivals", "0,1,2"])
        message = _exit_message(excinfo)
        assert "3 times for 2 jobs" in message

    def test_negative_arrival(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:4:1024", "alltoall:4:1024", "--arrivals", "0,-5"])
        message = _exit_message(excinfo)
        assert "bad --arrivals" in message and "non-negative" in message

    def test_unknown_placement_strategy(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cotenant", "incast:4:1024", "--placement", "scattered"])
        message = _exit_message(excinfo)
        assert "scattered" in message and "registered" in message


class TestFaultsErrors:
    def test_unknown_synthetic_pattern(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "sparkle:8:1024"])
        assert "sparkle" in _exit_message(excinfo)

    def test_malformed_rates(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--rates", "0,lots"])
        message = _exit_message(excinfo)
        assert "--rates" in message and "0,lots" in message

    def test_empty_rates(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--rates", ","])
        assert "no failure rates" in _exit_message(excinfo)

    def test_out_of_range_rate(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--rates", "0,1.5"])
        message = _exit_message(excinfo)
        assert "bad resilience sweep" in message and "link_failure_rate" in message

    def test_unknown_routing(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--routings", "minimal,teleport"])
        message = _exit_message(excinfo)
        assert "teleport" in message and "registered" in message

    def test_unknown_link_name(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--fail-links", "tor9->core9"])
        message = _exit_message(excinfo)
        assert "tor9->core9" in message and "valid names" in message

    def test_event_spec_without_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--link-down", "tor0->core0"])
        message = _exit_message(excinfo)
        assert "TARGET@TIME_NS" in message

    def test_event_spec_with_bad_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--link-down", "tor0->core0@later"])
        message = _exit_message(excinfo)
        assert "later" in message and "integer" in message

    def test_event_spec_with_negative_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--link-down", "tor0->core0@-5"])
        message = _exit_message(excinfo)
        assert "non-negative" in message

    def test_drain_switch_requires_device_id(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--drain-switch", "tor0@1000"])
        message = _exit_message(excinfo)
        assert "switch" in message and "device id" in message

    def test_unknown_control_plane(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--control-plane", "bgp"])
        message = _exit_message(excinfo)
        assert "bgp" in message and "registered" in message
        assert "dv" in message and "ls" in message and "oracle" in message

    def test_empty_control_plane_list(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--control-plane", ","])
        assert "no protocols" in _exit_message(excinfo)

    def test_negative_propagation_delay(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--cp-propagation-ns", "-5"])
        message = _exit_message(excinfo)
        assert "--cp-propagation-ns" in message and "non-negative" in message

    def test_negative_processing_delay(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--cp-processing-ns", "-1"])
        message = _exit_message(excinfo)
        assert "--cp-processing-ns" in message and "non-negative" in message

    def test_negative_fail_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "incast:4:1024", "--fail-time-ns", "-10"])
        message = _exit_message(excinfo)
        assert "--fail-time-ns" in message and "non-negative" in message

    def test_scenario_mode_accepts_only_one_protocol(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "faults",
                    "alltoall:8:4096",
                    "--fail-links",
                    "tor0->core0",
                    "--control-plane",
                    "ls,dv",
                ]
            )
        message = _exit_message(excinfo)
        assert "several protocols" in message and "rate-sweep" in message

    def test_partitioning_scenario_is_actionable(self):
        # failing both uplinks of tor0 (2 hosts per ToR -> 2 cores)
        # disconnects every cross-ToR pair of the all-to-all
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "faults",
                    "alltoall:4:1024",
                    "--backend",
                    "htsim",
                    "--fail-links",
                    "tor0->core0,tor0->core1",
                    "--nodes-per-tor",
                    "2",
                ]
            )
        message = _exit_message(excinfo)
        assert "fault scenario failed" in message
        assert "no surviving route" in message


class TestFaultsHappyPaths:
    """The error tests above prove rejects; prove the accepts too."""

    def test_rate_sweep_outputs_cells(self, capsys):
        import json

        rc = main(
            [
                "faults",
                "incast:4:4096",
                "--rates",
                "0,0.25",
                "--nodes-per-tor",
                "2",
                "--backend",
                "lgs",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 2
        assert payload["cells"][0]["failure_rate"] == 0.0
        assert payload["cells"][1]["slowdown"] >= 1.0

    def test_explicit_scenario_outputs_comparison(self, capsys):
        import json

        rc = main(
            [
                "faults",
                "alltoall:8:65536",
                "--backend",
                "htsim",
                "--nodes-per-tor",
                "4",
                "--fail-links",
                "tor0->core0,core0->tor0",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["failed_links"] == ["tor0->core0", "core0->tor0"]
        assert payload["healthy_time_ms"] > 0
        assert payload["faulted_time_ms"] > 0
        # the default control plane is the instantaneous oracle
        assert payload["control_plane"] == "oracle"
        assert payload["time_to_recover_ns"] == 0
        assert payload["packets_blackholed"] == 0

    def test_convergent_scenario_reports_recovery_metrics(self, capsys):
        import json

        rc = main(
            [
                "faults",
                "alltoall:8:65536",
                "--backend",
                "htsim",
                "--nodes-per-tor",
                "4",
                "--link-down",
                "tor0->core0@3000",
                "--link-down",
                "core0->tor0@3000",
                "--control-plane",
                "dv",
                "--cp-propagation-ns",
                "50000",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["control_plane"] == "dv"
        assert payload["time_to_recover_ns"] > 0
        assert payload["packets_blackholed"] > 0

    def test_timed_sweep_compares_control_planes(self, capsys):
        import json

        rc = main(
            [
                "faults",
                "alltoall:8:65536",
                "--rates",
                "0,0.25",
                "--nodes-per-tor",
                "4",
                "--backend",
                "lgs",
                "--control-plane",
                "oracle,ls",
                "--fail-time-ns",
                "3000",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fail_time_ns"] == 3000
        # rates x protocols cells, each tagged with its protocol and metrics
        assert len(payload["cells"]) == 4
        assert {c["control_plane"] for c in payload["cells"]} == {"oracle", "ls"}
        for cell in payload["cells"]:
            assert "time_to_recover_ns" in cell and "packets_blackholed" in cell
            if cell["control_plane"] == "oracle" or cell["failure_rate"] == 0.0:
                assert cell["time_to_recover_ns"] == 0
            else:
                assert cell["time_to_recover_ns"] > 0


class TestInferenceErrors:
    def test_unknown_arrival_process(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--process", "pareto"])
        message = _exit_message(excinfo)
        assert "pareto" in message
        assert "bursty" in message and "diurnal" in message and "poisson" in message

    def test_malformed_rates(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--rates", "200,fast"])
        message = _exit_message(excinfo)
        assert "--rates" in message and "200,fast" in message

    def test_empty_rates(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--rates", ","])
        assert "no offered rates" in _exit_message(excinfo)

    def test_negative_rate(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--rates", "200,-50"])
        message = _exit_message(excinfo)
        assert "bad --rates" in message and "positive" in message

    def test_tenant_spec_with_wrong_arity(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--tenants", "chat:3:128"])
        message = _exit_message(excinfo)
        assert "chat:3:128" in message
        assert "NAME:WEIGHT:PROMPT_TOKENS:DECODE_TOKENS" in message

    def test_tenant_spec_with_non_numeric_weight(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--tenants", "chat:heavy:128:32"])
        assert "chat:heavy:128:32" in _exit_message(excinfo)

    def test_tenant_spec_with_non_positive_tokens(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--tenants", "chat:1:0:32"])
        message = _exit_message(excinfo)
        assert "chat:1:0:32" in message and "positive" in message

    def test_duplicate_tenant_names(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--tenants", "chat:1:128:32,chat:2:64:8"])
        message = _exit_message(excinfo)
        assert "duplicate" in message and "chat" in message

    def test_empty_tenant_list(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--tenants", ","])
        assert "no tenants" in _exit_message(excinfo)

    def test_bad_cluster_shape(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--prefill-ranks", "0"])
        message = _exit_message(excinfo)
        assert "bad serving cluster" in message and "prefill_ranks" in message

    def test_bad_slo_deadline(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inference", "--slo-ttft-ms", "-1"])
        message = _exit_message(excinfo)
        assert "bad --slo-ttft-ms" in message


class TestInferenceHappyPath:
    def test_rate_sweep_outputs_cells(self, capsys):
        import json

        rc = main(
            [
                "inference",
                "--requests",
                "12",
                "--rates",
                "200,600",
                "--tenants",
                "chat:3:64:8,summarize:1:128:4",
                "--nodes-per-tor",
                "2",
                "--backend",
                "lgs",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nominal_capacity_rps"] > 0
        assert [t["name"] for t in payload["tenants"]] == ["chat", "summarize"]
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert cell["goodput_rps"] > 0
            assert cell["ttft_p50_ms"] <= cell["ttft_p99_ms"] <= cell["ttft_p999_ms"]


class TestMissingFileSpecs:
    @pytest.mark.parametrize("command", ["cotenant", "faults"])
    def test_missing_goal_file_is_actionable(self, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "nonexistent.goal"])
        message = _exit_message(excinfo)
        assert "nonexistent.goal" in message and "pattern:ranks:size" in message


class TestShardingFlagErrors:
    def test_shards_rejected_on_loggops_backend(self):
        # --shards used to be silently ignored off the packet backend,
        # misreporting single-process runs as parallel ones
        with pytest.raises(SystemExit) as excinfo:
            main(["synthetic", "allreduce", "--shards", "2"])
        message = _exit_message(excinfo)
        assert "--shards 2" in message
        assert "--backend htsim" in message
        assert "'lgs'" in message

    def test_shards_rejected_on_explicit_lgs(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["synthetic", "allreduce", "--backend", "lgs", "--shards", "4"]
            )
        assert "--shards 4" in _exit_message(excinfo)

    def test_negative_load_snapshot_cadence_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "synthetic",
                    "allreduce",
                    "--backend",
                    "htsim",
                    "--load-snapshot-ns",
                    "-5",
                ]
            )
        message = _exit_message(excinfo)
        assert "--load-snapshot-ns" in message and "-5" in message

    def test_shards_accepted_on_packet_backend(self, capsys):
        import json

        rc = main(
            [
                "synthetic",
                "allreduce",
                "--ranks",
                "8",
                "--message-size",
                "1024",
                "--backend",
                "htsim",
                "--shards",
                "2",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] > 0

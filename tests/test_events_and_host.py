"""Tests for the discrete-event queue and the host compute model."""
import pytest

from repro.network.events import EventQueue
from repro.network.host import HostCompute


class TestEventQueue:
    def test_events_run_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(30, lambda t, p: seen.append(p), "c")
        q.schedule(10, lambda t, p: seen.append(p), "a")
        q.schedule(20, lambda t, p: seen.append(p), "b")
        q.run()
        assert seen == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        seen = []
        for label in "abc":
            q.schedule(5, lambda t, p: seen.append(p), label)
        q.run()
        assert seen == ["a", "b", "c"]

    def test_now_advances_with_events(self):
        q = EventQueue()
        times = []
        q.schedule(7, lambda t, p: times.append(q.now))
        q.schedule(12, lambda t, p: times.append(q.now))
        final = q.run()
        assert times == [7, 12]
        assert final == 12

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda t, p: q.schedule(5, lambda *_: None))
        with pytest.raises(ValueError):
            q.run()

    def test_schedule_delivery_in_past_rejected(self):
        # regression: deliveries used to be pushed unchecked, so a stale
        # timestamp silently moved the clock backwards on pop()
        q = EventQueue()
        q.schedule(10, lambda t, p: q.schedule_delivery(5, 4, 0, lambda *_: None, None))
        with pytest.raises(ValueError, match="delivery"):
            q.run()

    def test_schedule_finish_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda t, p: q.schedule_finish(5, 0, lambda *_: None, None))
        with pytest.raises(ValueError, match="finish"):
            q.run()

    def test_schedule_delivery_at_current_time_allowed(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda t, p: q.schedule_delivery(10, 9, 0, lambda t2, p2: seen.append(t2), None))
        q.run()
        assert seen == [10]

    def test_schedule_after_uses_current_time(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda t, p: q.schedule_after(5, lambda t2, p2: seen.append(t2)))
        q.run()
        assert seen == [15]

    def test_until_limit(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda t, p: seen.append(t))
        q.schedule(100, lambda t, p: seen.append(t))
        q.run(until=50)
        assert seen == [10]
        assert len(q) == 1

    def test_max_events_guard(self):
        q = EventQueue()

        def rearm(t, p):
            q.schedule_after(1, rearm)

        q.schedule(0, rearm)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_max_events_executes_at_most_n(self):
        # regression: the limit used to let the (N+1)th event run before raising
        q = EventQueue()
        executed = []

        def rearm(t, p):
            executed.append(t)
            q.schedule_after(1, rearm)

        q.schedule(0, rearm)
        with pytest.raises(RuntimeError):
            q.run(max_events=5)
        assert len(executed) == 5

    def test_max_events_not_raised_when_queue_drains_exactly(self):
        q = EventQueue()
        seen = []
        for t in range(5):
            q.schedule(t, lambda time, p: seen.append(time))
        assert q.run(max_events=5) == 4
        assert seen == [0, 1, 2, 3, 4]

    def test_events_scheduled_during_run_are_processed(self):
        q = EventQueue()
        seen = []
        q.schedule(1, lambda t, p: q.schedule(2, lambda t2, p2: seen.append("nested")))
        q.run()
        assert seen == ["nested"]

    def test_peek_and_empty(self):
        q = EventQueue()
        assert q.empty() and q.peek_time() is None
        q.schedule(4, lambda t, p: None)
        assert q.peek_time() == 4 and not q.empty()


class TestHostCompute:
    def test_reservations_serialise_on_one_stream(self):
        host = HostCompute()
        s1, e1 = host.reserve(0, 0, earliest=0, duration=100)
        s2, e2 = host.reserve(0, 0, earliest=0, duration=50)
        assert (s1, e1) == (0, 100)
        assert (s2, e2) == (100, 150)

    def test_streams_are_independent(self):
        host = HostCompute()
        host.reserve(0, 0, 0, 100)
        s, e = host.reserve(0, 1, 0, 50)
        assert (s, e) == (0, 50)

    def test_ranks_are_independent(self):
        host = HostCompute()
        host.reserve(0, 0, 0, 100)
        s, _ = host.reserve(1, 0, 0, 10)
        assert s == 0

    def test_earliest_respected(self):
        host = HostCompute()
        s, e = host.reserve(0, 0, earliest=500, duration=10)
        assert (s, e) == (500, 510)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            HostCompute().reserve(0, 0, 0, -1)

    def test_busy_accounting(self):
        host = HostCompute()
        host.reserve(3, 0, 0, 70)
        host.reserve(3, 1, 0, 30)
        assert host.busy_ns[3] == 100

    def test_rank_finish_time(self):
        host = HostCompute()
        host.reserve(2, 0, 0, 100)
        host.reserve(2, 5, 400, 100)
        assert host.rank_finish_time(2) == 500
        assert host.rank_finish_time(9) == 0

    def test_reset(self):
        host = HostCompute()
        host.reserve(0, 0, 0, 100)
        host.reset()
        assert host.free_at(0, 0) == 0
        assert host.busy_ns == {}

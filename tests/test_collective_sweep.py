"""Tests for collective_sweep and the algorithm knob through schedgen / CLI."""
import json

import pytest

from repro.apps.ai import LlmTrainer, ModelConfig, ParallelismConfig
from repro.cli import main
from repro.collectives import contiguous_groups
from repro.goal.validate import validate_schedule
from repro.network.config import SimulationConfig
from repro.schedgen.mpi import mpi_trace_to_goal
from repro.schedgen.nccl import nccl_trace_to_goal
from repro.scheduler import simulate
from repro.sweep import collective_sweep
from repro.tracers.mpi import MpiTracer


def _tiny_model():
    return ModelConfig(name="tiny", num_layers=2, hidden=64, seq_len=8)


def _tiny_report(dp=4):
    par = ParallelismConfig(dp=dp, microbatches=1, global_batch=dp)
    return LlmTrainer(_tiny_model(), par, gpus_per_node=2, iterations=1).trace()


def _allreduce_trace(n=6, size=1 << 16):
    t = MpiTracer(n)
    for rank in range(n):
        t.compute(rank, 100)
        t.record(rank, "MPI_Allreduce", size=size)
    return t.finish()


class TestCollectiveSweep:
    def test_grid_order_and_resolution(self):
        configs = {
            "fat_tree": SimulationConfig(topology="fat_tree"),
            "dragonfly": SimulationConfig(topology="dragonfly"),
        }
        entries = collective_sweep(
            configs, 8, sizes=(4096, 65536), algorithms=("ring", "auto"), backend="lgs"
        )
        assert len(entries) == 2 * 2 * 2
        assert [e.topology for e in entries[:4]] == ["fat_tree"] * 4
        assert [e.size for e in entries[:2]] == [4096, 65536]
        for e in entries:
            assert e.finish_time_ns > 0
            assert e.messages_delivered > 0
            if e.algorithm == "auto":
                assert e.resolved == e.autotuner_pick
            else:
                assert e.resolved == e.algorithm

    def test_parallel_equals_serial(self):
        import dataclasses

        configs = {"fat_tree": SimulationConfig(topology="fat_tree")}
        kwargs = dict(sizes=(4096,), algorithms=("ring", "hier_rs"), backend="lgs")
        serial = collective_sweep(configs, 8, **kwargs)
        parallel = collective_sweep(configs, 8, parallel=2, **kwargs)
        # wall_clock_s is host timing; everything simulated must be identical
        scrub = lambda e: dataclasses.replace(e, wall_clock_s=0.0)
        assert [scrub(e) for e in serial] == [scrub(e) for e in parallel]

    def test_unknown_algorithm_fails_before_running(self):
        with pytest.raises(ValueError, match="registered"):
            collective_sweep(
                {"fat_tree": SimulationConfig()}, 8, algorithms=("warp-drive",)
            )

    def test_needs_at_least_two_ranks(self):
        with pytest.raises(ValueError, match="2 ranks"):
            collective_sweep({"fat_tree": SimulationConfig()}, 1)


class TestMpiScheduleGeneratorKnob:
    @pytest.mark.parametrize("algo", ["hier_rs", "hier_leader", "bucket", "auto"])
    def test_algorithm_override_end_to_end(self, algo):
        sched = mpi_trace_to_goal(
            _allreduce_trace(),
            algorithms={"MPI_Allreduce": algo},
            groups=[[0, 1, 2], [3, 4, 5]],
        )
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_topology_derives_groups(self):
        from repro.network.topology import build_topology

        topo = build_topology(SimulationConfig(topology="fat_tree", nodes_per_tor=3), 6)
        sched = mpi_trace_to_goal(
            _allreduce_trace(),
            algorithms={"MPI_Allreduce": "hier_rs"},
            topology=topo,
        )
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="registered"):
            mpi_trace_to_goal(
                _allreduce_trace(), algorithms={"MPI_Allreduce": "warp-drive"}
            )

    def test_default_schedules_unchanged_by_new_parameters(self):
        base = mpi_trace_to_goal(_allreduce_trace())
        again = mpi_trace_to_goal(_allreduce_trace(), groups=[[0, 1, 2], [3, 4, 5]])
        assert base.op_counts() == again.op_counts()
        assert simulate(base, backend="lgs").finish_time_ns == simulate(
            again, backend="lgs"
        ).finish_time_ns

    def test_bcast_algorithm_selectable(self):
        n = 5
        t = MpiTracer(n)
        for rank in range(n):
            t.record(rank, "MPI_Bcast", size=1 << 18, root=0)
        sched = mpi_trace_to_goal(
            t.finish(), algorithms={"MPI_Bcast": "scatter_allgather"}
        )
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()


class TestNcclScheduleGeneratorKnob:
    def test_collective_algorithm_override(self):
        report = _tiny_report()
        sched = nccl_trace_to_goal(
            report, gpus_per_node=1, collective_algorithm="hier_rs"
        )
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_hierarchy_follows_report_node_grouping(self):
        # report traced with gpus_per_node=2: the full pipeline (Stage 3
        # hierarchical decomposition at the node boundary + Stage 4 grouping)
        sched = nccl_trace_to_goal(_tiny_report(), collective_algorithm="hier_rs")
        validate_schedule(sched)
        assert sched.num_ranks == 2  # 4 GPUs grouped 2 per node
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_hierarchy_follows_explicit_gpus_per_node_override(self):
        from repro.schedgen.nccl import NcclScheduleGenerator

        gen = NcclScheduleGenerator(
            _tiny_report(), gpus_per_node=4, collective_algorithm="hier_rs"
        )
        # the hierarchy must match the overridden node width, not the
        # report's physical one (2)
        assert gen._node_groups == [[0, 1, 2, 3]]

    def test_auto_override(self):
        report = _tiny_report()
        sched = nccl_trace_to_goal(report, gpus_per_node=1, collective_algorithm="auto")
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_none_is_bit_identical_to_previous_default(self):
        a = nccl_trace_to_goal(_tiny_report(), gpus_per_node=1)
        b = nccl_trace_to_goal(_tiny_report(), gpus_per_node=1, collective_algorithm=None)
        assert a.op_counts() == b.op_counts()
        assert simulate(a, backend="lgs").finish_time_ns == simulate(
            b, backend="lgs"
        ).finish_time_ns

    def test_override_changes_the_decomposition(self):
        default = nccl_trace_to_goal(_tiny_report(), gpus_per_node=1)
        hier = nccl_trace_to_goal(
            _tiny_report(), gpus_per_node=1, collective_algorithm="hier_rs"
        )
        assert default.op_counts() != hier.op_counts()


class TestCollectivesCli:
    def test_list_and_describe(self, capsys):
        assert main(["collectives"]) == 0
        out = capsys.readouterr().out
        assert "hier_rs" in out and "recursive_halving_doubling" in out
        assert main(["collectives", "--describe", "hier_rs"]) == 0
        out = capsys.readouterr().out
        assert "LogGOPS cost" in out and "hierarchical: yes" in out

    def test_describe_unknown_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["collectives", "--describe", "warp-drive"])

    def test_sweep_reports_cells_and_winners(self, capsys):
        rc = main([
            "collectives", "--sweep", "--backend", "lgs", "--ranks", "8",
            "--sizes", "4096", "--algorithms", "ring,hier_rs",
            "--topologies", "fat_tree,dragonfly",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 4
        assert len(payload["winners"]) == 2
        assert {w["topology"] for w in payload["winners"]} == {"fat_tree", "dragonfly"}

    def test_sweep_rejects_bad_input(self):
        with pytest.raises(SystemExit):
            main(["collectives", "--sweep", "--sizes", "banana"])
        with pytest.raises(SystemExit):
            main(["collectives", "--sweep", "--topologies", "moebius"])
        with pytest.raises(SystemExit):
            main(["collectives", "--sweep", "--algorithms", "warp-drive",
                  "--sizes", "4096", "--ranks", "4"])

    def test_ai_collective_algorithm_flag(self, capsys):
        rc = main([
            "ai", "llama-7b", "--scale", "0.05", "--dp", "4", "--batch", "8",
            "--microbatches", "2", "--collective-algorithm", "hier_rs",
            "--gpus-per-node", "2",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ops_completed"] > 0

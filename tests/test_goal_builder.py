"""Unit tests for the GoalBuilder / RankBuilder fluent API."""
import pytest

from repro.goal import GoalBuilder, OpType


class TestRankBuilder:
    def test_handles_are_sequential(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        assert r.calc(1) == 0
        assert r.calc(1) == 1
        assert r.last() == 1

    def test_last_on_empty_rank(self):
        b = GoalBuilder(2)
        assert b.rank(1).last() is None

    def test_requires_accepts_scalars_and_iterables(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        a = r.calc(1)
        c = r.calc(1)
        d = r.calc(1)
        r.requires(d, a, [c])
        sched = b.build()
        assert sorted(sched.ranks[0].preds[d]) == [a, c]

    def test_chain_serialises(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        vs = [r.calc(1) for _ in range(4)]
        r.chain(vs)
        preds = b.build().ranks[0].preds
        assert preds[vs[1]] == [vs[0]]
        assert preds[vs[3]] == [vs[2]]

    def test_join_creates_dummy(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        a, c = r.calc(1), r.calc(2)
        j = r.join([a, c])
        op = b.build().ranks[0].ops[j]
        assert op.is_dummy
        assert sorted(b.build().ranks[0].preds[j]) == [a, c]

    def test_fork_creates_dependent_dummies(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        a = r.calc(1)
        forks = r.fork(a, 3)
        sched = b.build()
        assert len(forks) == 3
        for f in forks:
            assert sched.ranks[0].preds[f] == [a]

    def test_send_recv_fields(self):
        b = GoalBuilder(2)
        s = b.rank(0).send(64, dst=1, tag=9, cpu=2)
        r = b.rank(1).recv(64, src=0, tag=9)
        sched = b.build()
        sop = sched.ranks[0].ops[s]
        rop = sched.ranks[1].ops[r]
        assert sop.kind == OpType.SEND and sop.peer == 1 and sop.tag == 9 and sop.cpu == 2
        assert rop.kind == OpType.RECV and rop.peer == 0

    def test_add_prebuilt_op(self):
        from repro.goal import Op

        b = GoalBuilder(1)
        v = b.rank(0).add(Op.calc(123))
        assert b.build().ranks[0].ops[v].size == 123

    def test_rank_property(self):
        b = GoalBuilder(3)
        assert b.rank(2).rank == 2

    def test_len_tracks_ops(self):
        b = GoalBuilder(1)
        r = b.rank(0)
        r.calc(1)
        r.calc(1)
        assert len(r) == 2


class TestGoalBuilder:
    def test_num_ranks(self):
        assert GoalBuilder(5).num_ranks == 5

    def test_ranks_returns_all_builders(self):
        b = GoalBuilder(3)
        assert [rb.rank for rb in b.ranks()] == [0, 1, 2]

    def test_build_returns_same_schedule(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1)
        s1 = b.build()
        b.rank(0).calc(2)
        s2 = b.build()
        assert s1 is s2
        assert s2.num_ops() == 2

    def test_name_propagates(self):
        assert GoalBuilder(1, name="xyz").build().name == "xyz"

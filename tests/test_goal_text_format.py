"""Tests for the textual GOAL parser and writer."""
import pytest

from repro.goal import GoalBuilder, GoalParseError, parse_goal, write_goal
from repro.goal.ops import OpType

EXAMPLE = """
# the paper's Fig. 3 example
num_ranks 2

rank 0 {
    l1: calc 100
    l2: calc 200 cpu 0
    l3: calc 200 cpu 1
    l2 requires l1
    l3 requires l1
    l4: send 10b to 1 tag 5
    l4 requires l2
    l4 requires l3
}

rank 1 {
    r1: recv 10b from 0 tag 5
}
"""


class TestParser:
    def test_parse_example(self):
        sched = parse_goal(EXAMPLE)
        assert sched.num_ranks == 2
        assert len(sched.ranks[0]) == 4
        assert len(sched.ranks[1]) == 1

    def test_parse_dependencies(self):
        sched = parse_goal(EXAMPLE)
        r0 = sched.ranks[0]
        l4 = r0.vertex_by_label("l4")
        assert sorted(r0.preds[l4]) == [r0.vertex_by_label("l2"), r0.vertex_by_label("l3")]

    def test_parse_cpu_assignment(self):
        sched = parse_goal(EXAMPLE)
        r0 = sched.ranks[0]
        assert r0.ops[r0.vertex_by_label("l3")].cpu == 1

    def test_parse_send_fields(self):
        sched = parse_goal(EXAMPLE)
        op = sched.ranks[0].ops[sched.ranks[0].vertex_by_label("l4")]
        assert op.kind == OpType.SEND and op.size == 10 and op.peer == 1 and op.tag == 5

    def test_num_ranks_inferred_when_missing(self):
        sched = parse_goal("rank 0 { a: calc 1 }\nrank 2 { b: calc 1 }")
        assert sched.num_ranks == 3

    def test_comments_and_blank_lines_ignored(self):
        text = "num_ranks 1\n\n// comment\nrank 0 {\n  # inline\n  a: calc 1 // trailing\n}\n"
        assert parse_goal(text).num_ops() == 1

    def test_unlabelled_ops_allowed(self):
        sched = parse_goal("rank 0 { calc 5\ncalc 6 }")
        assert sched.num_ops() == 2

    def test_cpuN_legacy_syntax(self):
        sched = parse_goal("rank 0 { a: calc 5 cpu1 }")
        assert sched.ranks[0].ops[0].cpu == 1

    def test_error_unknown_label(self):
        with pytest.raises(GoalParseError):
            parse_goal("rank 0 { a: calc 1\n b requires a }")

    def test_error_duplicate_rank(self):
        with pytest.raises(GoalParseError):
            parse_goal("rank 0 { a: calc 1 }\nrank 0 { b: calc 1 }")

    def test_error_unclosed_block(self):
        with pytest.raises(GoalParseError):
            parse_goal("rank 0 { a: calc 1")

    def test_error_bad_op(self):
        with pytest.raises(GoalParseError):
            parse_goal("rank 0 { a: sendx 10 to 1 }")

    def test_error_rank_exceeds_num_ranks(self):
        with pytest.raises(GoalParseError):
            parse_goal("num_ranks 1\nrank 3 { a: calc 1 }")

    def test_error_duplicate_num_ranks(self):
        with pytest.raises(GoalParseError):
            parse_goal("num_ranks 2\nnum_ranks 2\nrank 0 { a: calc 1 }")

    def test_error_empty_input(self):
        with pytest.raises(GoalParseError):
            parse_goal("")

    def test_error_line_number_reported(self):
        try:
            parse_goal("num_ranks 1\nrank 0 {\n  bogus line here\n}")
        except GoalParseError as exc:
            assert exc.line_no == 3
        else:  # pragma: no cover
            pytest.fail("expected GoalParseError")

    def test_forward_requires_rejected(self):
        text = "rank 0 { a: calc 1\n b: calc 1\n a requires b }"
        with pytest.raises(GoalParseError):
            parse_goal(text)


class TestWriterRoundTrip:
    def _build(self):
        b = GoalBuilder(3, name="rt")
        r0 = b.rank(0)
        c = r0.calc(100)
        s = r0.send(4096, dst=1, tag=3, cpu=2, requires=[c])
        r0.recv(64, src=2, requires=[s])
        b.rank(1).recv(4096, src=0, tag=3)
        b.rank(2).send(64, dst=0)
        return b.build()

    def test_roundtrip_preserves_structure(self):
        original = self._build()
        parsed = parse_goal(write_goal(original))
        assert parsed.num_ranks == original.num_ranks
        assert parsed.num_ops() == original.num_ops()
        assert parsed.num_edges() == original.num_edges()
        for r in range(original.num_ranks):
            for o1, o2 in zip(original.ranks[r].ops, parsed.ranks[r].ops):
                assert o1 == o2
            assert original.ranks[r].preds == parsed.ranks[r].preds

    def test_writer_emits_num_ranks_header(self):
        assert write_goal(self._build()).startswith("num_ranks 3")

    def test_writer_handles_unlabelled_ops(self):
        b = GoalBuilder(1)
        b.rank(0).calc(1)
        text = write_goal(b.build())
        assert "op0" in text

"""Tests for the benchmark harness (``repro.perf`` / ``atlahs bench``)."""
from __future__ import annotations

import json

import pytest

from repro.network.config import SimulationConfig
from repro.perf import (
    BenchCase,
    compare_to_baseline,
    default_suite,
    load_bench,
    run_case,
    run_suite,
    write_bench,
)
from repro.schedgen import all_to_all


def _tiny_case(name="tiny", backend="lgs"):
    return BenchCase(
        name,
        backend,
        lambda: all_to_all(4, 1 << 10),
        SimulationConfig(),
        repeats=2,
    )


class TestRunCase:
    def test_reports_wall_clock_and_events(self):
        result = run_case(_tiny_case())
        assert result["wall_clock_s"] > 0
        assert result["events"] > 0
        assert result["events_per_s"] > 0
        assert result["finish_time_ns"] > 0
        assert result["backend"] == "lgs"

    def test_packet_backend_case(self):
        result = run_case(_tiny_case(backend="htsim"))
        assert result["events"] > 0 and result["finish_time_ns"] > 0

    def test_best_repeat_keeps_its_own_event_count(self, monkeypatch):
        # regression: the harness used to pair the best wall clock with the
        # *last* repeat's event count, skewing events_per_s whenever repeats
        # executed different event totals
        import repro.perf as perf

        class _StubResult:
            def __init__(self, finish):
                self.finish_time_ns = finish

        runs = [
            {"wall": 10.0, "events": 100, "finish": 555},
            {"wall": 2.0, "events": 222, "finish": 777},
            {"wall": 6.0, "events": 333, "finish": 999},
        ]
        state = {"repeat": 0, "clock": 0.0}

        class _StubScheduler:
            def __init__(self, schedule, backend, config, validate):
                self._spec = runs[state["repeat"]]
                state["repeat"] += 1

            def run(self):
                state["clock"] += self._spec["wall"]
                self.events_executed = self._spec["events"]
                return _StubResult(self._spec["finish"])

        class _StubTime:
            @staticmethod
            def perf_counter():
                return state["clock"]

        monkeypatch.setattr(perf, "GoalScheduler", _StubScheduler)
        monkeypatch.setattr(perf, "time", _StubTime)
        case = BenchCase(
            "stub", "htsim", lambda: None, SimulationConfig(), repeats=3
        )
        result = run_case(case)
        assert result["wall_clock_s"] == 2.0
        assert result["events"] == 222
        assert result["finish_time_ns"] == 777
        assert result["events_per_s"] == 111


class TestSuite:
    def test_default_suite_covers_both_backends(self):
        suite = default_suite(quick=True)
        backends = {case.backend for case in suite}
        assert backends == {"lgs", "htsim"}
        assert any("fig8" in case.name for case in suite)

    def test_run_suite_and_roundtrip(self, tmp_path):
        doc = run_suite(quick=True, cases=[_tiny_case()])
        assert doc["cases"]["tiny"]["wall_clock_s"] > 0
        path = write_bench(doc, str(tmp_path / "BENCH_test.json"))
        assert load_bench(str(path)) == json.loads(path.read_text())


class TestBaselineComparison:
    def _doc(self, wall):
        return {"cases": {"a": {"wall_clock_s": wall}}}

    def test_speedup_reported(self):
        cmp_ = compare_to_baseline(self._doc(1.0), self._doc(2.0))
        assert cmp_.ok
        assert cmp_.entries[0].speedup == pytest.approx(2.0)

    def test_regression_detected(self):
        cmp_ = compare_to_baseline(self._doc(5.0), self._doc(1.0), max_regression=2.0)
        assert not cmp_.ok
        assert cmp_.regressions[0].name == "a"

    def test_tolerance_below_threshold_passes(self):
        cmp_ = compare_to_baseline(self._doc(1.9), self._doc(1.0), max_regression=2.0)
        assert cmp_.ok

    def test_missing_cases_skipped(self):
        current = {"cases": {"a": {"wall_clock_s": 1.0}, "b": {"wall_clock_s": 1.0}}}
        cmp_ = compare_to_baseline(current, self._doc(1.0))
        assert cmp_.missing == ["b"]
        assert cmp_.ok

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline(self._doc(1.0), self._doc(1.0), max_regression=0)

    def _rss_doc(self, wall, rss):
        return {"cases": {"a": {"wall_clock_s": wall, "peak_rss_kb": rss}}}

    def test_rss_regression_detected(self):
        cmp_ = compare_to_baseline(
            self._rss_doc(1.0, 1300), self._rss_doc(1.0, 1000),
            max_rss_regression=1.2,
        )
        assert not cmp_.ok
        entry = cmp_.regressions[0]
        assert entry.rss_regressed and not entry.regressed
        assert entry.rss_ratio == pytest.approx(1.3)

    def test_rss_below_threshold_passes(self):
        cmp_ = compare_to_baseline(
            self._rss_doc(1.0, 1100), self._rss_doc(1.0, 1000),
            max_rss_regression=1.2,
        )
        assert cmp_.ok

    def test_rss_gate_tolerates_baselines_without_rss(self):
        """Pre-gate baselines lack peak_rss_kb; the gate must skip, not crash."""
        cmp_ = compare_to_baseline(
            self._rss_doc(1.0, 1000), self._doc(1.0), max_rss_regression=1.2
        )
        assert cmp_.ok
        assert cmp_.entries[0].rss_ratio is None

    def test_bad_rss_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline(
                self._rss_doc(1.0, 1), self._rss_doc(1.0, 1), max_rss_regression=0
            )


class TestCommittedBaseline:
    def test_committed_baselines_parse(self):
        from pathlib import Path

        base_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        files = sorted(base_dir.glob("BENCH_*.json"))
        assert files, "no committed BENCH baselines found"
        for path in files:
            doc = load_bench(str(path))
            assert doc["cases"], path
            for case in doc["cases"].values():
                assert case["wall_clock_s"] > 0


class TestCli:
    def test_bench_cli_quick(self, tmp_path, capsys):
        from repro.cli import main
        from repro.perf import BenchCase  # noqa: F401  (import sanity)

        out = tmp_path / "BENCH_cli.json"
        # --cases keeps the 16k scale cases out of the unit suite; they run
        # in the CI bench-smoke job (and locally via --cases allreduce16k)
        code = main(["bench", "--quick", "--cases", "fig8", "--output", str(out)])
        assert code == 0
        assert out.exists()
        # run against itself as baseline: speedup ~1x, never a regression
        code = main(
            [
                "bench", "--quick", "--cases", "fig8",
                "--output", str(out), "--baseline", str(out),
                "--max-rss-regression", "1.2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "baseline check passed" in captured
        assert "rss 1.00x" in captured

    def test_bench_cli_rejects_unknown_case_filter(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "--quick", "--cases", "nonesuch"])
        assert code == 2
        assert "matches no case" in capsys.readouterr().out

"""Tests for the pluggable routing subsystem."""
import numpy as np
import pytest

from repro.network.config import SimulationConfig
from repro.network.routing import (
    ROUTING_STRATEGIES,
    AdaptiveRouting,
    MinimalRouting,
    RoutingStrategy,
    ValiantRouting,
    create_routing,
    register_routing,
    routing_names,
)
from repro.network.topology import FatTreeTopology, SlimFlyTopology, TorusTopology
from repro.scheduler import simulate
from repro.schedgen import all_to_all, incast


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(routing_names()) >= {"minimal", "valiant", "adaptive"}

    def test_create_by_name(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        for name, cls in (
            ("minimal", MinimalRouting),
            ("valiant", ValiantRouting),
            ("adaptive", AdaptiveRouting),
        ):
            assert isinstance(create_routing(name, topo, _rng()), cls)

    def test_unknown_name_rejected(self):
        topo = FatTreeTopology(8, nodes_per_tor=4)
        with pytest.raises(ValueError):
            create_routing("up_down", topo, _rng())

    def test_register_custom_strategy(self):
        class FirstRoute(RoutingStrategy):
            name = "test_first"

            def select_route(self, src, dst, size=0, link_load=None):
                return self.topology.routes(src, dst)[0]

        register_routing(FirstRoute)
        try:
            topo = FatTreeTopology(8, nodes_per_tor=4)
            strategy = create_routing("test_first", topo, _rng())
            assert strategy.select_route(0, 7) == topo.routes(0, 7)[0]
            # config validation accepts the new name
            SimulationConfig(routing="test_first")
        finally:
            del ROUTING_STRATEGIES["test_first"]

    def test_config_rejects_unknown_routing(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing="spray")


class TestMinimal:
    def test_selects_only_minimal_candidates(self):
        topo = FatTreeTopology(16, nodes_per_tor=4, oversubscription=1.0)
        strategy = MinimalRouting(topo, _rng())
        candidates = set(topo.routes(0, 12))
        for _ in range(20):
            assert strategy.select_route(0, 12) in candidates

    def test_single_candidate_consumes_no_randomness(self):
        topo = FatTreeTopology(8, nodes_per_tor=8)  # intra-ToR: one route
        rng = _rng()
        before = rng.integers(1 << 30)
        rng2 = _rng()
        MinimalRouting(topo, rng2).select_route(0, 1)
        assert before == rng2.integers(1 << 30)


class TestValiant:
    def test_routes_through_intermediate(self):
        topo = TorusTopology(16, dims=(4, 4))
        strategy = ValiantRouting(topo, _rng())
        minimal_best = min(len(r) for r in topo.routes(0, 1))
        lengths = {len(strategy.select_route(0, 1)) for _ in range(20)}
        assert max(lengths) > minimal_best  # detours actually happen
        for _ in range(20):
            topo.validate_route(strategy.select_route(0, 1), 0, 1)

    def test_falls_back_to_minimal_without_intermediates(self):
        from repro.network.topology import SingleSwitchTopology

        topo = SingleSwitchTopology(2)
        strategy = ValiantRouting(topo, _rng())
        assert strategy.select_route(0, 1) == topo.routes(0, 1)[0]


class TestAdaptive:
    def test_unloaded_network_routes_minimally(self):
        topo = SlimFlyTopology(20, q=5, hosts_per_router=2)
        strategy = AdaptiveRouting(topo, _rng())
        minimal = set(topo.routes(0, 19))
        assert strategy.select_route(0, 19, 0, lambda link: 0) in minimal

    def test_congestion_diverts_to_valiant(self):
        topo = TorusTopology(16, dims=(4, 4))
        # enough valiant candidates that at least one avoids the hot links
        strategy = AdaptiveRouting(topo, _rng(), count=8)
        minimal = set(topo.routes(0, 5))
        # saturate the router-level links of every minimal path (the host
        # up/downlinks are shared with any detour and stay unloaded)
        hot = {link for route in minimal for link in route[1:-1]}
        route = strategy.select_route(0, 5, 0, lambda link: 1 << 20 if link in hot else 0)
        assert route not in minimal
        topo.validate_route(route, 0, 5)

    def test_tied_costs_preserve_ecmp_spreading(self):
        # with equal loads (e.g. an idle start) adaptive must still spread
        # over the minimal candidates instead of always taking the first
        topo = FatTreeTopology(32, nodes_per_tor=4, oversubscription=1.0)
        strategy = AdaptiveRouting(topo, _rng())
        chosen = {strategy.select_route(0, 12, 0, lambda link: 0) for _ in range(30)}
        assert len(chosen) > 1

    def test_no_load_signal_behaves_minimally(self):
        topo = TorusTopology(16, dims=(4, 4))
        strategy = AdaptiveRouting(topo, _rng())
        assert strategy.select_route(0, 5) in set(topo.routes(0, 5))


class TestBackendIntegration:
    @pytest.mark.parametrize("routing", ["minimal", "valiant", "adaptive"])
    @pytest.mark.parametrize(
        "topology,extra",
        [
            ("torus", {"torus_dims": (2, 2), "torus_hosts_per_node": 2}),
            ("slimfly", {"slimfly_q": 5, "slimfly_hosts_per_router": 1}),
        ],
    )
    def test_all_routings_complete_on_both_backends(self, topology, extra, routing):
        schedule = all_to_all(8, 1 << 14)
        for backend in ("lgs", "htsim"):
            cfg = SimulationConfig(topology=topology, routing=routing, **extra)
            result = simulate(schedule, backend=backend, config=cfg)
            assert result.finish_time_ns > 0
            assert result.stats.messages_delivered == 8 * 7

    def test_packet_backend_valiant_slower_than_minimal_when_idle(self):
        # longer paths cost latency when there is no congestion to avoid
        schedule = incast(8, 1 << 12)
        extra = {"torus_dims": (4, 4), "torus_hosts_per_node": 1}
        results = {}
        for routing in ("minimal", "valiant"):
            cfg = SimulationConfig(topology="torus", routing=routing, **extra)
            results[routing] = simulate(schedule, backend="htsim", config=cfg).finish_time_ns
        assert results["valiant"] >= results["minimal"]

    def test_loggops_topology_latency_enabled_for_torus(self):
        # auto mode: torus uses routed-path latency, fat tree keeps flat L
        schedule = all_to_all(4, 1 << 10)
        torus_cfg = SimulationConfig(topology="torus", torus_dims=(2, 2))
        flat_cfg = SimulationConfig(
            topology="torus", torus_dims=(2, 2), loggops_use_topology=False
        )
        t_topo = simulate(schedule, backend="lgs", config=torus_cfg).finish_time_ns
        t_flat = simulate(schedule, backend="lgs", config=flat_cfg).finish_time_ns
        # default LogGOPS L (3700) exceeds any 2x2 torus path latency (<= 2000)
        assert t_topo < t_flat

    def test_loggops_flat_latency_preserved_for_fat_tree(self):
        schedule = all_to_all(4, 1 << 10)
        assert not SimulationConfig(topology="fat_tree").loggops_topology_enabled()
        explicit = SimulationConfig(topology="fat_tree", loggops_use_topology=False)
        auto = SimulationConfig(topology="fat_tree")
        t1 = simulate(schedule, backend="lgs", config=explicit).finish_time_ns
        t2 = simulate(schedule, backend="lgs", config=auto).finish_time_ns
        assert t1 == t2

    def test_loggops_routing_choice_changes_latency(self):
        schedule = all_to_all(8, 1 << 14)
        base = SimulationConfig(topology="torus", torus_dims=(4, 4), torus_hosts_per_node=1)
        t_min = simulate(schedule, backend="lgs", config=base).finish_time_ns
        t_val = simulate(
            schedule, backend="lgs", config=base.replace(routing="valiant")
        ).finish_time_ns
        assert t_val > t_min  # valiant detours show up as extra wire latency

    def test_loggops_link_loads_exposed(self):
        from repro.network.loggops.backend import LogGOPSBackend
        from repro.scheduler import GoalScheduler

        schedule = all_to_all(4, 1 << 10)
        backend = LogGOPSBackend()
        GoalScheduler(
            schedule,
            backend=backend,
            config=SimulationConfig(topology="torus", torus_dims=(2, 2)),
        ).run()
        loads = backend.link_loads()
        assert loads and all(v > 0 for v in loads.values())

"""Tests for the Direct Drive storage generator and the synthetic microbenchmarks."""
import pytest

from repro.goal import validate_schedule
from repro.goal.ops import OpType
from repro.network import SimulationConfig
from repro.schedgen import (
    all_to_all,
    incast,
    permutation,
    ring_allreduce_microbenchmark,
    storage_trace_to_goal,
    uniform_random_pairs,
)
from repro.schedgen.storage import CONTROL_BYTES, DirectDriveConfig, DirectDriveScheduleGenerator
from repro.scheduler import simulate
from repro.tracers.storage import FinancialWorkloadGenerator, SpcRecord, SpcTrace


class TestDirectDriveConfig:
    def test_rank_layout(self):
        cfg = DirectDriveConfig(num_clients=2, num_ccs=3, num_bss=4)
        assert cfg.num_ranks == 2 + 3 + 4 + 3
        assert cfg.role_of(0) == "client0"
        assert cfg.role_of(2) == "ccs0"
        assert cfg.role_of(5) == "bss0"
        assert cfg.role_of(cfg.mds_rank) == "mds"
        assert cfg.role_of(cfg.gs_rank) == "gs"
        assert cfg.role_of(cfg.slb_rank) == "slb"

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            DirectDriveConfig(num_bss=2, replication_factor=5)

    def test_rank_helpers_wrap(self):
        cfg = DirectDriveConfig(num_clients=2, num_ccs=2, num_bss=2, replication_factor=2)
        assert cfg.client_rank(5) == 1
        assert cfg.ccs_rank(3) == 2 + 1
        assert cfg.bss_rank(4) == 2 + 2 + 0


class TestDirectDriveGeneration:
    def _trace(self, n=20, seed=0):
        return FinancialWorkloadGenerator(seed=seed).generate(n)

    def test_schedule_validates(self):
        sched = storage_trace_to_goal(self._trace(), DirectDriveConfig())
        validate_schedule(sched)

    def test_read_flow_structure(self):
        trace = SpcTrace([SpcRecord(0, 1 << 10, 8192, "r", 0.0)])
        cfg = DirectDriveConfig(num_clients=1, num_ccs=1, num_bss=2, replication_factor=1)
        sched = storage_trace_to_goal(trace, cfg)
        validate_schedule(sched)
        # the data transfer of 8192 bytes flows from a BSS to the client
        data_sends = [
            op for r in sched.ranks for op in r.ops if op.is_send and op.size == 8192
        ]
        assert len(data_sends) == 1
        assert data_sends[0].peer == 0

    def test_write_flow_replicates(self):
        trace = SpcTrace([SpcRecord(0, 1 << 10, 8192, "w", 0.0)])
        cfg = DirectDriveConfig(num_clients=1, num_ccs=1, num_bss=4, replication_factor=3)
        sched = storage_trace_to_goal(trace, cfg)
        validate_schedule(sched)
        data_sends = [op for r in sched.ranks for op in r.ops if op.is_send and op.size == 8192]
        # client -> primary plus primary -> 2 replicas
        assert len(data_sends) == 3

    def test_metadata_refresh_every_n_requests(self):
        trace = self._trace(70)
        cfg = DirectDriveConfig(num_clients=1, metadata_every=16)
        sched = storage_trace_to_goal(trace, cfg)
        mds_recvs = sum(1 for op in sched.ranks[cfg.mds_rank].ops if op.is_recv)
        assert mds_recvs == 70 // 16

    def test_session_setup_contacts_slb_and_gs(self):
        sched = storage_trace_to_goal(self._trace(4), DirectDriveConfig(num_clients=2))
        cfg = DirectDriveConfig(num_clients=2)
        assert len(sched.ranks[cfg.slb_rank]) > 0
        assert len(sched.ranks[cfg.gs_rank]) > 0

    def test_arrival_pacing_preserved(self):
        trace = self._trace(50)
        sched = storage_trace_to_goal(trace, DirectDriveConfig(num_clients=1))
        total_gap = sched.ranks[0].total_calc_ns()
        expected = (trace.records[-1].timestamp - trace.records[0].timestamp) * 1e9
        assert total_gap == pytest.approx(expected, rel=0.05)

    def test_timescale_compresses_gaps(self):
        trace = self._trace(50)
        slow = storage_trace_to_goal(trace, DirectDriveConfig(num_clients=1, timescale=1.0))
        fast = storage_trace_to_goal(trace, DirectDriveConfig(num_clients=1, timescale=0.1))
        assert fast.ranks[0].total_calc_ns() < slow.ranks[0].total_calc_ns()

    def test_simulates_on_packet_backend(self):
        sched = storage_trace_to_goal(self._trace(30), DirectDriveConfig())
        cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=8)
        res = simulate(sched, backend="htsim", config=cfg)
        assert res.ops_completed == sched.num_ops()
        assert res.stats.messages_delivered > 0

    def test_server_threads_spread_work(self):
        sched = storage_trace_to_goal(self._trace(40), DirectDriveConfig(server_threads=4))
        cfg = DirectDriveConfig(server_threads=4)
        streams = set()
        for rank in range(cfg.num_clients, cfg.num_clients + cfg.num_ccs + cfg.num_bss):
            streams.update(sched.ranks[rank].compute_streams())
        assert len(streams) > 1


class TestSyntheticPatterns:
    def test_incast_structure(self):
        sched = incast(8, 1 << 16)
        validate_schedule(sched)
        assert sched.ranks[0].total_bytes_received() == 7 * (1 << 16)
        assert sched.ranks[0].total_bytes_sent() == 0

    def test_incast_custom_senders(self):
        sched = incast(8, 1024, receiver=3, senders=[0, 1], messages_per_sender=2)
        assert sched.ranks[3].total_bytes_received() == 4 * 1024
        validate_schedule(sched)

    def test_incast_rejects_receiver_as_sender(self):
        with pytest.raises(ValueError):
            incast(4, 1024, receiver=0, senders=[0, 1])

    def test_permutation_is_derangement(self):
        sched = permutation(16, 4096, seed=3)
        validate_schedule(sched)
        for rank in sched.ranks:
            sends = [op for op in rank.ops if op.is_send]
            assert len(sends) == 1
            assert sends[0].peer != rank.rank

    def test_permutation_deterministic_by_seed(self):
        a = permutation(8, 1024, seed=1)
        b = permutation(8, 1024, seed=1)
        assert [op.peer for op in a.ranks[0].ops] == [op.peer for op in b.ranks[0].ops]

    def test_all_to_all_counts(self):
        sched = all_to_all(5, 2048)
        assert sched.op_counts()["send"] == 20
        validate_schedule(sched)

    def test_ring_allreduce_microbenchmark(self):
        sched = ring_allreduce_microbenchmark(4, 1 << 18, repetitions=2)
        validate_schedule(sched)
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

    def test_uniform_random_pairs(self):
        sched = uniform_random_pairs(6, 30, 4096, seed=2)
        validate_schedule(sched)
        assert sched.op_counts()["send"] == 30
        assert simulate(sched, backend="lgs").ops_completed == sched.num_ops()

"""Plan invariants and end-to-end runs of the inference-serving generator.

The continuous-batching engine and the GOAL emission are deterministic
plans; these tests pin their structural invariants — every request produces
exactly its token count, batches respect the occupancy cap, joins happen
once, op groups line up with the emitted ops — and run a small serving cell
end-to-end on both backends through the facade, checking that per-request
group finish times behave like latencies (first token after arrival,
completion after first token, everything inside the makespan).
"""
import pytest

from repro.apps.inference import (
    DEFAULT_TENANTS,
    ServingClusterConfig,
    TenantSpec,
    build_inference_workload,
)
from repro.core import Atlahs
from repro.goal.validate import validate_schedule
from repro.measurement.serving import compute_serving_metrics
from repro.network import SimulationConfig
from repro.scheduler import simulate


@pytest.fixture(scope="module")
def plan():
    return build_inference_workload(num_requests=32, rate_rps=500.0, seed=9)


class TestPlanInvariants:
    def test_schedule_validates(self, plan):
        validate_schedule(plan.schedule)

    def test_rank_count_matches_cluster(self, plan):
        assert plan.schedule.num_ranks == plan.cluster.num_ranks

    def test_op_groups_shape_matches_schedule(self, plan):
        assert len(plan.op_groups) == plan.schedule.num_ranks
        for rank, groups in zip(plan.schedule.ranks, plan.op_groups):
            assert len(groups) == len(rank.ops)

    def test_request_groups_appear_exactly_once(self, plan):
        flat = [g for groups in plan.op_groups for g in groups if g >= 0]
        for req in plan.requests:
            assert flat.count(req.first_token_group) == 1
            expected = 0 if req.decode_tokens == 1 else 1
            assert flat.count(req.completion_group) == expected

    def test_every_request_gets_all_its_tokens(self, plan):
        produced = {req.id: 0 for req in plan.requests}
        for timeline in plan.steps.values():
            for step in timeline:
                for rid, _token in step.members:
                    produced[rid] += 1
        for req in plan.requests:
            assert produced[req.id] == req.decode_tokens

    def test_token_indices_are_sequential_per_request(self, plan):
        seen = {req.id: [] for req in plan.requests}
        for timeline in plan.steps.values():
            for step in timeline:
                for rid, token in step.members:
                    seen[rid].append(token)
        for req in plan.requests:
            assert seen[req.id] == list(range(req.decode_tokens))

    def test_batches_respect_occupancy_cap(self, plan):
        for timeline in plan.steps.values():
            for step in timeline:
                assert 0 < step.batch_size <= plan.cluster.max_batch

    def test_each_request_joins_exactly_once_on_its_rank(self, plan):
        joins = {}
        for rank, timeline in plan.steps.items():
            for step in timeline:
                for rid in step.joins:
                    assert rid not in joins
                    joins[rid] = rank
        for req in plan.requests:
            assert joins[req.id] == req.decode_rank

    def test_batch_occupancy_stats(self, plan):
        stats = plan.batch_occupancy()
        assert stats["steps"] > 0
        assert 1.0 <= stats["mean_batch"] <= stats["max_batch"] <= plan.cluster.max_batch

    def test_arrivals_sorted_and_ids_dense(self, plan):
        arrivals = [r.arrival_ns for r in plan.requests]
        assert arrivals == sorted(arrivals)
        assert [r.id for r in plan.requests] == list(range(len(plan.requests)))


class TestDeterminism:
    def test_equal_seeds_identical_plans(self):
        a = build_inference_workload(num_requests=16, rate_rps=400.0, seed=4)
        b = build_inference_workload(num_requests=16, rate_rps=400.0, seed=4)
        assert [r.arrival_ns for r in a.requests] == [r.arrival_ns for r in b.requests]
        assert [r.prompt_tokens for r in a.requests] == [r.prompt_tokens for r in b.requests]
        assert a.op_groups == b.op_groups
        assert a.steps == b.steps

    def test_different_seeds_differ(self):
        a = build_inference_workload(num_requests=16, rate_rps=400.0, seed=4)
        b = build_inference_workload(num_requests=16, rate_rps=400.0, seed=5)
        assert [r.arrival_ns for r in a.requests] != [r.arrival_ns for r in b.requests]


class TestTenantMixes:
    def test_weights_shape_the_mix(self):
        tenants = (
            TenantSpec("heavy", weight=9.0, prompt_tokens=64, decode_tokens=4),
            TenantSpec("light", weight=1.0, prompt_tokens=64, decode_tokens=4),
        )
        plan = build_inference_workload(
            num_requests=200, rate_rps=300.0, tenants=tenants, seed=2
        )
        heavy = sum(1 for r in plan.requests if r.tenant == "heavy")
        assert heavy > 150  # ~180 expected at 9:1

    def test_duplicate_tenant_names_rejected(self):
        tenants = (TenantSpec("a"), TenantSpec("a", weight=2.0))
        with pytest.raises(ValueError, match="duplicate tenant"):
            build_inference_workload(num_requests=4, tenants=tenants)

    def test_tenant_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError, match="positive"):
            TenantSpec("t", prompt_tokens=0)

    def test_nominal_capacity_positive_and_prefill_bound(self):
        cluster = ServingClusterConfig()
        cap = cluster.nominal_capacity_rps(DEFAULT_TENANTS)
        prefill_rps = cluster.prefill_ranks * 1e9 / (
            DEFAULT_TENANTS[0].prompt_tokens * cluster.prefill_ns_per_token
        )
        assert 0 < cap <= prefill_rps


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["lgs", "htsim"])
    def test_group_finish_times_behave_like_latencies(self, plan, backend):
        config = SimulationConfig(topology="fat_tree", nodes_per_tor=2, seed=1)
        result = simulate(
            plan.schedule, backend=backend, config=config, op_groups=plan.op_groups
        )
        gft = result.group_finish_times_ns
        for req in plan.requests:
            first = gft[req.first_token_group]
            completion = gft.get(req.completion_group, first)
            assert first > req.arrival_ns
            assert completion >= first
            assert result.finish_time_ns >= completion

    def test_facade_returns_plan_and_metrics(self):
        out = Atlahs(SimulationConfig(nodes_per_tor=2)).run_inference(
            num_requests=8, rate_rps=300.0, seed=1
        )
        metrics = out.extras["metrics"]
        assert metrics.num_requests == 8
        assert metrics.goodput_rps > 0
        assert set(metrics.ttft_percentiles_ns) == {"p50", "p99", "p999"}
        assert out.goal_bytes > 0

    def test_metrics_match_direct_computation(self, plan):
        config = SimulationConfig(topology="fat_tree", nodes_per_tor=2, seed=1)
        result = simulate(
            plan.schedule, backend="lgs", config=config, op_groups=plan.op_groups
        )
        m = compute_serving_metrics(plan, result)
        ttfts = sorted(o.ttft_ns for o in m.outcomes)
        assert m.ttft_percentiles_ns["p50"] == ttfts[15]  # ceil(0.5 * 32) = 16th
        assert m.ttft_percentiles_ns["p999"] == ttfts[-1]

#!/usr/bin/env python
"""Serve an open-loop inference workload and watch the goodput knee.

Demonstrates the inference-serving family (:mod:`repro.apps.inference`):
generate request streams from a Poisson arrival process at several offered
rates around the serving cluster's nominal capacity, simulate the
disaggregated prefill/decode pipeline (KV-cache transfers, continuous
batching) on the message-level backend, and fold per-request op-group
finish times into SLO metrics.  The printed table shows the production
serving signature: goodput tracks offered load below capacity, saturates
at the knee, and the p999 time-to-first-token blows up super-linearly past
it while the median barely moves.

Run with::

    PYTHONPATH=src python examples/inference_serving.py
"""
from repro.apps.inference import DEFAULT_TENANTS, ServingClusterConfig
from repro.measurement.serving import SloSpec
from repro.network import SimulationConfig
from repro.sweep import inference_sweep


def main() -> None:
    cluster = ServingClusterConfig(frontends=1, prefill_ranks=2, decode_ranks=2)
    capacity = cluster.nominal_capacity_rps(DEFAULT_TENANTS)
    print(f"serving cluster: {cluster.num_ranks} ranks, "
          f"nominal capacity ~{capacity:.0f} req/s")

    # same request population at every rate (fixed seed); only the
    # arrival clock stretches or compresses
    rates = [round(capacity * f) for f in (0.4, 0.7, 1.0, 1.5, 2.5)]
    entries = inference_sweep(
        rates,
        configs={"fat_tree": SimulationConfig(topology="fat_tree", nodes_per_tor=2)},
        backend="lgs",
        num_requests=96,
        process="poisson",
        cluster=cluster,
        seed=7,
        slo=SloSpec(ttft_ns=20_000_000),  # 20 ms TTFT deadline
    )

    header = (f"{'offered':>9} {'goodput':>9} {'ttft p50':>10} "
              f"{'ttft p99':>10} {'ttft p999':>10} {'batch':>6}")
    print(header)
    print("-" * len(header))
    for e in entries:
        print(
            f"{e.offered_rps:>7.0f}/s {e.goodput_rps:>7.0f}/s "
            f"{e.ttft_p50_ns / 1e6:>8.2f}ms {e.ttft_p99_ns / 1e6:>8.2f}ms "
            f"{e.ttft_p999_ns / 1e6:>8.2f}ms {e.mean_batch:>6.2f}"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Job-placement case study example (paper §6.3 / Fig. 13).

An AI job (scaled-down Llama training) and an HPC job (LULESH) share a 4:1
oversubscribed fat-tree cluster.  The script simulates both jobs under a
packed allocation (nodes assigned sequentially, communication stays local)
and a random allocation (no locality, core links shared), and reports the
per-job slowdown — the quantity behind the paper's "+36% / +2%" annotations.

Run with::

    python examples/multi_job_placement.py
"""
from repro.apps.ai import ParallelismConfig, llama_7b
from repro.apps.hpc import HpcRunConfig
from repro.core import Atlahs
from repro.network import SimulationConfig
from repro.placement import JobRequest, place_jobs
from repro.scheduler import simulate


def per_job_runtime(result, placement, jobs):
    """Max rank-finish time over each job's nodes."""
    runtimes = []
    for idx in range(len(jobs)):
        nodes = placement.nodes_of_job(idx)
        runtimes.append(max(result.rank_finish_times_ns[n] for n in nodes))
    return runtimes


def main() -> None:
    atlahs = Atlahs()

    ai = atlahs.run_ai_training(
        llama_7b().scaled(0.04),
        ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=32),
        iterations=1,
        gpus_per_node=2,
        simulate_schedule=False,
    )
    hpc = atlahs.run_hpc(
        "lulesh", HpcRunConfig(num_ranks=8, iterations=3, cells_per_rank=16_000), simulate_schedule=False
    )
    jobs = [JobRequest(ai.schedule, name="llama"), JobRequest(hpc.schedule, name="lulesh")]

    cluster_nodes = 16
    config = SimulationConfig(
        topology="fat_tree", nodes_per_tor=4, oversubscription=4.0, cc_algorithm="mprdma"
    )

    baselines = {}
    print(f"{'allocation':<12} {'job':<8} {'runtime (ms)':>13} {'vs packed':>10}")
    for strategy in ("packed", "random"):
        placement = place_jobs(jobs, cluster_nodes, strategy=strategy, **({"seed": 3} if strategy == "random" else {}))
        merged = placement.merged_schedule(jobs)
        result = simulate(merged, backend="htsim", config=config)
        runtimes = per_job_runtime(result, placement, jobs)
        for job, runtime in zip(jobs, runtimes):
            key = job.label
            if strategy == "packed":
                baselines[key] = runtime
                delta = ""
            else:
                delta = f"{(runtime / baselines[key] - 1) * 100:+.0f}%"
            print(f"{strategy:<12} {key:<8} {runtime / 1e6:>13.2f} {delta:>10}")


if __name__ == "__main__":
    main()

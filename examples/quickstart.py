#!/usr/bin/env python
"""Quickstart: build a GOAL schedule by hand and simulate it on both backends.

This mirrors the paper's Fig. 3 example — a tiny program with computation on
two compute streams feeding a send — extended with a receiver so the message
actually goes somewhere, and then replays it on the message-level (LogGOPSim)
and packet-level (htsim-like) backends.

Run with::

    python examples/quickstart.py
"""
from repro.goal import GoalBuilder, validate_schedule, write_goal
from repro.network import SimulationConfig
from repro.scheduler import simulate


def build_schedule():
    """The Fig. 3 schedule: two parallel calcs gate a 10-byte send to rank 1."""
    builder = GoalBuilder(num_ranks=2, name="fig3-example")
    r0 = builder.rank(0)
    l1 = r0.calc(100, label="l1")
    l2 = r0.calc(200, cpu=0, requires=[l1], label="l2")
    l3 = r0.calc(200, cpu=1, requires=[l1], label="l3")
    r0.send(10, dst=1, tag=1, requires=[l2, l3], label="l4")

    r1 = builder.rank(1)
    r1.recv(10, src=0, tag=1, label="l1")
    return builder.build()


def main() -> None:
    schedule = build_schedule()
    validate_schedule(schedule)

    print("Textual GOAL representation:")
    print(write_goal(schedule))

    for backend in ("lgs", "htsim"):
        config = SimulationConfig(topology="single_switch")
        result = simulate(schedule, backend=backend, config=config)
        print(
            f"backend={backend:5s}  simulated time = {result.finish_time_ns} ns  "
            f"messages = {result.stats.messages_delivered}"
        )


if __name__ == "__main__":
    main()

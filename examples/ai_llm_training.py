#!/usr/bin/env python
"""AI pipeline example: trace a scaled-down Llama training run and simulate it.

The script runs the full 4-stage GOAL generation pipeline of the paper
(§3.1.2): the LLM trainer model emits an nsys-like per-GPU/per-stream trace,
the generator decomposes the NCCL collectives according to the chosen
NCCL algorithm/protocol/channel configuration, groups GPUs into nodes, and
finally the schedule is replayed on both the message-level and the
packet-level backend.  It also converts the same trace to the Chakra-like
format and runs the AstraSim-like baseline for comparison.

Run with::

    python examples/ai_llm_training.py
"""
from repro.apps.ai import ParallelismConfig, llama_7b
from repro.collectives.nccl import NcclConfig
from repro.core import Atlahs
from repro.network import SimulationConfig


def main() -> None:
    # Scaled-down Llama 7B trained with pure data parallelism on 16 GPUs / 4 nodes,
    # the first configuration of the paper's Fig. 8.
    model = llama_7b().scaled(0.05)
    parallelism = ParallelismConfig(tp=1, pp=1, dp=16, microbatches=2, global_batch=32)
    print(f"model={model.name}  layers={model.num_layers} hidden={model.hidden}  "
          f"parallelism={parallelism.describe()}  gpus={parallelism.num_gpus}")

    atlahs = Atlahs()
    nccl = NcclConfig(algorithm="ring", protocol="Simple", nchannels=2)

    iterations = 2
    out = atlahs.run_ai_training(
        model, parallelism, iterations=iterations, gpus_per_node=4, nccl_config=nccl, backend="lgs"
    )
    per_iter_lgs = out.result.finish_time_s / iterations
    print(f"ATLAHS LGS   : {per_iter_lgs * 1e3:8.2f} ms / iteration   "
          f"(goal: {out.goal_bytes / 1024:.1f} KiB, trace: {out.trace_bytes / 1024:.1f} KiB)")

    pkt_config = SimulationConfig(topology="fat_tree", nodes_per_tor=4, oversubscription=1.0)
    result_pkt = atlahs.simulate_goal(out.schedule, backend="htsim", config=pkt_config)
    print(f"ATLAHS htsim : {result_pkt.finish_time_s / iterations * 1e3:8.2f} ms / iteration   "
          f"(packets: {result_pkt.stats.packets_sent}, drops: {result_pkt.stats.packets_dropped})")

    baseline = atlahs.compare_with_astrasim(out.extras["report"])
    if "error" in baseline:
        print(f"AstraSim     : failed ({baseline['error']})")
    else:
        print(f"AstraSim     : {baseline['finish_time_ns'] / iterations / 1e6:8.2f} ms / iteration   "
              f"(chakra: {baseline['chakra_bytes'] / 1024:.1f} KiB)")
    print(f"trace-size ratio  GOAL : Chakra = 1 : {baseline['chakra_bytes'] / out.goal_bytes:.1f}")


if __name__ == "__main__":
    main()

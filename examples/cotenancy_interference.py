#!/usr/bin/env python
"""Co-tenancy interference study: job arrivals, placement, attribution.

Extends the Fig. 13 placement case study (see
``examples/multi_job_placement.py``) with the multi-job co-tenancy engine:
an AI job (scaled-down Llama training) and an HPC job (LULESH) share a 4:1
oversubscribed fat tree, the HPC job arriving 50 us after the AI job.  The
engine simulates both jobs as *one* fabric-shared program and attributes the
results back per job — runtime, slowdown versus an isolated run under the
same placement, and the per-link contention breakdown — across a
packed / fragmented / random placement grid.

Run with::

    python examples/cotenancy_interference.py
"""
from repro.apps.ai import ParallelismConfig, llama_7b
from repro.apps.hpc import HpcRunConfig
from repro.cluster import ClusterJob, run_cotenant
from repro.core import Atlahs
from repro.network import SimulationConfig
from repro.sweep import interference_sweep


def main() -> None:
    atlahs = Atlahs()

    ai = atlahs.run_ai_training(
        llama_7b().scaled(0.04),
        ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=32),
        iterations=1,
        gpus_per_node=2,
        simulate_schedule=False,
    )
    hpc = atlahs.run_hpc(
        "lulesh",
        HpcRunConfig(num_ranks=8, iterations=3, cells_per_rank=16_000),
        simulate_schedule=False,
    )
    jobs = [
        ClusterJob(ai.schedule, name="llama"),
        ClusterJob(hpc.schedule, arrival_ns=50_000, name="lulesh"),
    ]

    cluster_nodes = 16
    config = SimulationConfig(
        topology="fat_tree", nodes_per_tor=4, oversubscription=4.0, cc_algorithm="mprdma"
    )

    # Two complementary per-job metrics come out of each cell:
    # * slowdown      — co-tenant runtime over an isolated run of the same job
    #                   under the *same* placement (pure cross-job contention),
    # * vs packed     — runtime relative to the packed cell (adds the job's own
    #                   loss of locality, the paper's Fig. 13 quantity).
    entries = interference_sweep(
        jobs,
        cluster_nodes,
        strategies=("packed", "fragmented", "random"),
        configs={"fat_tree_4to1": config},
        backend="htsim",
        seed=3,
        group_size=4,
    )
    packed_runtime = {
        e.job: e.runtime_ns for e in entries if e.strategy == "packed"
    }
    print(f"{'placement':<14} {'job':<8} {'runtime (ms)':>13} {'slowdown':>9} {'vs packed':>10} {'contended links':>16}")
    for e in entries:
        vs_packed = e.runtime_ns / packed_runtime[e.job]
        print(
            f"{e.strategy:<14} {e.job:<8} {e.runtime_ms:>13.2f} "
            f"{e.slowdown:>8.2f}x {vs_packed:>9.2f}x {e.contended_link_count:>16d}"
        )

    # drill into one cell: which links do the jobs actually fight over?
    res = run_cotenant(
        jobs, cluster_nodes, strategy="fragmented", backend="htsim",
        config=config, group_size=4,
    )
    print("\nfragmented placement, busiest contended links:")
    contended = res.contended_links()
    for link, per_job in sorted(contended.items(), key=lambda kv: -sum(kv[1].values()))[:5]:
        shares = ", ".join(f"{job}={byts / 1e6:.1f} MB" for job, byts in per_job.items())
        print(f"  {link:<18} {shares}")


if __name__ == "__main__":
    main()

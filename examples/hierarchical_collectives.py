#!/usr/bin/env python
"""Hierarchical vs flat allreduce across fabrics, plus the autotuner's view.

Demonstrates the collective algorithm engine (``docs/collectives.md``):
sweep a 32-rank allreduce over flat (ring, Rabenseifner) and topology-aware
(bucket/2D-ring, two-level hierarchical) algorithms on an oversubscribed
fat tree and a dragonfly, on the packet-level backend, and print each
cell's measured finish time next to what the analytic LogGOPS autotuner
(`select_algorithm`) would have picked.

Run with::

    PYTHONPATH=src python examples/hierarchical_collectives.py
"""
import os

from repro.network import SimulationConfig
from repro.sweep import collective_sweep

RANKS = 32
SIZES = (262144, 4194304)  # 256 KiB (mixed) and 4 MiB (bandwidth-bound)
ALGORITHMS = ("ring", "recursive_halving_doubling", "bucket", "hier_rs", "auto")


def main() -> None:
    configs = {
        "fat_tree 4:1": SimulationConfig(topology="fat_tree", oversubscription=4.0),
        "dragonfly": SimulationConfig(topology="dragonfly"),
    }
    workers = min(8, os.cpu_count() or 1)
    entries = collective_sweep(
        configs,
        num_ranks=RANKS,
        sizes=SIZES,
        algorithms=ALGORITHMS,
        backend="htsim",
        parallel=workers,
    )

    print(f"allreduce, {RANKS} ranks, packet backend ({workers} workers)\n")
    print(f"{'topology':14s} {'size':>10s} {'algorithm':>28s} {'finish':>10s}   autotuner")
    winners = {}
    for e in entries:
        key = (e.topology, e.size)
        if key not in winners or e.finish_time_ns < winners[key].finish_time_ns:
            winners[key] = e
        marker = " <- auto" if e.algorithm == "auto" else ""
        print(
            f"{e.topology:14s} {e.size:>10d} {e.resolved:>28s} "
            f"{e.finish_time_us:>8.1f}us   {e.autotuner_pick}{marker}"
        )
    print("\nmeasured winners:")
    for (topo, size), e in sorted(winners.items()):
        agree = "agrees" if e.autotuner_pick == e.resolved else "disagrees"
        print(
            f"  {topo:14s} {size:>10d}B -> {e.resolved} "
            f"({e.finish_time_us:.1f}us; autotuner {agree})"
        )


if __name__ == "__main__":
    main()

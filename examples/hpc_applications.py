#!/usr/bin/env python
"""HPC pipeline example: trace the proxy applications and validate predictions.

For a selection of the paper's HPC applications (Fig. 10) the script traces
the application model, converts the trace to GOAL with Schedgen, produces a
"measured" reference runtime with the measurement harness, and compares the
LogGOPS-backend prediction against it — printing the same compute-fraction
and prediction-error quantities the paper annotates on its bars.

Run with::

    python examples/hpc_applications.py
"""
from repro.apps.hpc import HpcRunConfig
from repro.core import Atlahs
from repro.measurement import measure_reference_runtime, prediction_error
from repro.network import LogGOPSParams, SimulationConfig


def main() -> None:
    atlahs = Atlahs()
    lgs_config = SimulationConfig(loggops=LogGOPSParams.hpc_cluster())
    reference_config = SimulationConfig(topology="fat_tree", nodes_per_tor=8, oversubscription=1.0)

    workloads = [
        ("cloverleaf", 8, "weak"),
        ("hpcg", 8, "weak"),
        ("hpcg", 16, "strong"),
        ("lulesh", 8, "weak"),
        ("lammps", 16, "weak"),
        ("icon", 16, "weak"),
    ]

    print(f"{'application':<14} {'ranks':>5} {'scaling':>8} {'measured (ms)':>14} "
          f"{'predicted (ms)':>15} {'error':>8} {'compute %':>10}")
    for app, ranks, scaling in workloads:
        run = HpcRunConfig(num_ranks=ranks, iterations=4, cells_per_rank=16_000, scaling=scaling)
        out = atlahs.run_hpc(app, run, backend="lgs", config=lgs_config)
        measured = measure_reference_runtime(out.schedule, base_config=reference_config, trials=2)
        err = prediction_error(out.result.finish_time_ns, measured.runtime_ns)
        print(
            f"{app:<14} {ranks:>5} {scaling:>8} {measured.runtime_ns / 1e6:>14.2f} "
            f"{out.result.finish_time_ns / 1e6:>15.2f} {err * 100:>7.1f}% "
            f"{measured.compute_fraction * 100:>9.1f}%"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Fault-injection study: degraded fabrics, link flaps and switch drains.

Replays one all-to-all workload on a 4:1 oversubscribed fat tree while the
fabric degrades (see :mod:`repro.network.faults`):

1. a **failure-rate sweep** — a rising fraction of the switch-to-switch
   cables fails from time 0 (nested seeded draws, so the curve is monotone
   by construction), comparing how minimal/ECMP and UGAL-style adaptive
   routing ride out the lost capacity,
2. a **link-flap scenario** — a core uplink goes down mid-run and comes
   back later; in-flight packets are forced onto surviving candidate
   routes (the ``packets_rerouted`` counter) and stranded ones are
   recovered by loss timeout,
3. a **co-tenant run under faults** — two jobs share the degraded fabric
   and each job's slowdown is attributed against a healthy-fabric isolated
   baseline (fault + contention combined).

Run with::

    python examples/fault_resilience.py
"""
from repro.cluster import ClusterJob, run_cotenant
from repro.network import FaultEvent, FaultSchedule, SimulationConfig
from repro.network.faults import LINK_DOWN, LINK_UP
from repro.schedgen import all_to_all
from repro.scheduler import simulate
from repro.sweep import resilience_sweep


def main() -> None:
    schedule = all_to_all(32, 1 << 16)
    config = SimulationConfig(topology="fat_tree", nodes_per_tor=16, oversubscription=4.0)

    # 1. failure-rate sweep: minimal vs adaptive on a shrinking core
    entries = resilience_sweep(
        schedule,
        {"fat_tree_4to1": config},
        failure_rates=(0.0, 0.125, 0.25),
        routings=("minimal", "adaptive"),
        backend="htsim",
        failure_seed=1,
    )
    print(f"{'routing':<10} {'failure rate':>12} {'failed links':>13} {'runtime (ms)':>13} {'slowdown':>9}")
    for e in entries:
        print(
            f"{e.routing:<10} {e.failure_rate:>12.3f} {e.failed_links:>13d} "
            f"{e.finish_time_ms:>13.3f} {e.slowdown:>8.3f}x"
        )

    # 2. link flap: a core uplink goes down mid-run, comes back 100 us later
    flap = FaultSchedule(
        events=(
            FaultEvent(30_000, LINK_DOWN, "tor0->core0"),
            FaultEvent(30_000, LINK_DOWN, "core0->tor0"),
            FaultEvent(130_000, LINK_UP, "tor0->core0"),
            FaultEvent(130_000, LINK_UP, "core0->tor0"),
        )
    )
    healthy = simulate(schedule, backend="htsim", config=config)
    flapped = simulate(schedule, backend="htsim", config=config.replace(faults=flap))
    print("\nlink flap (tor0<->core0 down 30-130 us):")
    print(f"  healthy runtime  {healthy.finish_time_ns / 1e6:8.3f} ms")
    print(
        f"  flapped runtime  {flapped.finish_time_ns / 1e6:8.3f} ms "
        f"({flapped.finish_time_ns / healthy.finish_time_ns:.3f}x, "
        f"{flapped.stats.packets_rerouted} packets rerouted, "
        f"{flapped.stats.packets_lost_to_faults} stranded)"
    )

    # 3. co-tenancy on a degraded fabric: who pays for the lost capacity?
    # fragmented placement spreads both jobs across the ToRs, so their
    # cross-ToR traffic shares the degraded core
    jobs = [
        ClusterJob(all_to_all(16, 1 << 16), name="jobA"),
        ClusterJob(all_to_all(16, 1 << 16), arrival_ns=20_000, name="jobB"),
    ]
    degraded = FaultSchedule(link_failure_rate=0.25, failure_seed=1)
    res = run_cotenant(
        jobs,
        cluster_nodes=32,
        strategy="fragmented",
        group_size=8,
        backend="htsim",
        config=config.replace(faults=degraded),
        fault_free_baseline=True,
    )
    print("\nco-tenant jobs on the degraded fabric (baseline: healthy, isolated):")
    for out in res.outcomes:
        print(
            f"  {out.name:<6} runtime {out.runtime_ns / 1e6:8.3f} ms   "
            f"fault+contention slowdown {out.slowdown:.3f}x"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Control-plane convergence study: routing that heals over time.

The fault-injection examples assume an *oracle* control plane: the instant a
cable dies, every switch already routes around it.  Real fabrics converge —
advertisements propagate hop by hop, and until they arrive, switches forward
onto dead links and packets vanish into black holes.  This example replays
one all-to-all workload on a 4:1 oversubscribed fat tree while a core uplink
fails mid-run, under the three convergence models in
:mod:`repro.network.control_plane`:

1. **oracle** — instantaneous global knowledge (the lower bound; today's
   default, time-to-recover identically zero),
2. **ls** — link-state flooding: one advertisement wave over the surviving
   switch graph,
3. **dv** — distance-vector: per-neighbour exchange rounds, roughly twice
   the link-state convergence time.

For each model it reports time-to-recover, blackholed packets and protocol
message counts (via :func:`repro.measurement.summarize_convergence`), then
sweeps the advertisement propagation delay to show blackhole loss growing
with a slower control plane.

Run with::

    python examples/control_plane_convergence.py
"""
from repro.measurement import summarize_convergence
from repro.network import FaultEvent, FaultSchedule, SimulationConfig
from repro.network.backend import create_backend
from repro.network.faults import LINK_DOWN
from repro.schedgen import all_to_all
from repro.scheduler import simulate

RANKS = 32
FAULT = FaultSchedule(
    events=(
        FaultEvent(30_000, LINK_DOWN, "tor0->core0"),
        FaultEvent(30_000, LINK_DOWN, "core0->tor0"),
    )
)


def _config(control_plane: str, propagation_ns: int = 500) -> SimulationConfig:
    return SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=16,
        oversubscription=4.0,
        faults=FAULT,
        control_plane=control_plane,
        cp_propagation_ns=propagation_ns,
    )


def main() -> None:
    schedule = all_to_all(RANKS, 1 << 16)

    # 1. the three convergence models on both backends
    print(
        f"{'backend':<8} {'protocol':<9} {'runtime (ms)':>13} "
        f"{'TTR (ns)':>10} {'blackholed':>11} {'messages':>9}"
    )
    for backend_name in ("lgs", "htsim"):
        for protocol in ("oracle", "ls", "dv"):
            backend = create_backend(backend_name)
            result = simulate(schedule, backend=backend, config=_config(protocol))
            summary = summarize_convergence(backend.convergence_report(), result.stats)
            print(
                f"{backend_name:<8} {protocol:<9} {result.finish_time_ns / 1e6:>13.3f} "
                f"{result.stats.time_to_recover_ns:>10d} "
                f"{result.stats.packets_blackholed:>11d} {summary.convergence_messages:>9d}"
            )

    # 2. slower advertisements -> longer stale window -> more blackholed
    # packets (retransmissions re-enter the black hole until the source's
    # first-hop switch has learned about the dead uplink)
    print("\npropagation-delay sweep (htsim, dv):")
    print(f"{'propagation (ns)':>17} {'TTR (ns)':>10} {'blackholed':>11} {'blackhole %':>12}")
    for propagation_ns in (1_000, 50_000, 200_000):
        backend = create_backend("htsim")
        result = simulate(
            schedule, backend=backend, config=_config("dv", propagation_ns)
        )
        summary = summarize_convergence(backend.convergence_report(), result.stats)
        print(
            f"{propagation_ns:>17d} {result.stats.time_to_recover_ns:>10d} "
            f"{result.stats.packets_blackholed:>11d} "
            f"{100 * summary.blackhole_fraction:>11.4f}%"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Storage case study example (paper §6.1 / Fig. 11).

Generates a Financial-distribution-like block-I/O workload, converts it into
GOAL against the Azure Direct Drive architecture model (CCS / BSS / MDS / GS
/ SLB services), and compares the message-completion-time statistics of the
MPRDMA and NDP congestion-control algorithms on a fully provisioned fat tree
and on an 8:1 oversubscribed one.

Run with::

    python examples/storage_direct_drive.py
"""
from repro.core import Atlahs
from repro.network import SimulationConfig
from repro.schedgen.storage import DirectDriveConfig
from repro.tracers.storage import FinancialWorkloadGenerator


def main() -> None:
    operations = 1000  # scaled down from the paper's 5k for a quick run
    trace = FinancialWorkloadGenerator(seed=7, mean_size_bytes=16384).generate(operations)
    # timescale < 1 compresses the traced arrival times so the scaled-down
    # deployment sees a comparable level of load to the paper's setup
    direct_drive = DirectDriveConfig(num_clients=4, num_ccs=4, num_bss=8, timescale=0.005)
    atlahs = Atlahs()

    print(f"{'topology':<22} {'CC':>8} {'mean MCT (us)':>14} {'p99 MCT (us)':>13} {'max MCT (us)':>13}")
    for oversub, label in ((1.0, "no oversubscription"), (8.0, "8:1 oversubscription")):
        for cc in ("mprdma", "ndp"):
            config = SimulationConfig(
                topology="fat_tree",
                nodes_per_tor=8,
                oversubscription=oversub,
                cc_algorithm=cc,
            )
            out = atlahs.run_storage(trace, direct_drive, backend="htsim", config=config)
            mct = out.result.mct_statistics()
            print(
                f"{label:<22} {cc:>8} {mct['mean'] / 1e3:>14.1f} "
                f"{mct['p99'] / 1e3:>13.1f} {mct['max'] / 1e3:>13.1f}"
            )


if __name__ == "__main__":
    main()

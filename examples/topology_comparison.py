#!/usr/bin/env python
"""Compare topologies and routing strategies on one LLM-training workload.

Demonstrates the sweep API (:mod:`repro.sweep`): trace a small Llama-like
training job once, then replay the same GOAL schedule on a fat tree,
dragonfly, 2D torus and Slim Fly, each under minimal (ECMP) and UGAL-style
adaptive routing, on the packet-level backend.  The printed table shows how
the interconnect and the routing policy move both the predicted runtime and
the congestion signals while the *application* stays fixed — the paper's
core "one trace, many networks" workflow.

Run with::

    PYTHONPATH=src python examples/topology_comparison.py
"""
import os

from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.network import SimulationConfig
from repro.schedgen import nccl_trace_to_goal
from repro.sweep import default_topology_configs, topology_routing_sweep


def build_schedule():
    """An 8-GPU data-parallel Llama-like training iteration (laptop scale)."""
    model = llama_7b().scaled(0.02)
    par = ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=1, iterations=1).trace()
    return nccl_trace_to_goal(report, gpus_per_node=1)


def main() -> None:
    schedule = build_schedule()
    print(f"workload: {schedule.name}  ({schedule.num_ranks} ranks)")

    base = SimulationConfig(nodes_per_tor=4, oversubscription=4.0, buffer_size=1 << 17)
    configs = default_topology_configs(schedule.num_ranks, base)
    # parallel=N farms the grid's cells out to worker processes; results
    # are identical to the serial engine (cells are seeded up front)
    entries = topology_routing_sweep(
        schedule,
        configs,
        routings=("minimal", "adaptive"),
        backend="htsim",
        parallel=os.cpu_count(),
    )

    header = f"{'topology':<11} {'routing':<9} {'runtime':>10} {'drops':>6} {'ECN marks':>10}"
    print(header)
    print("-" * len(header))
    for e in entries:
        print(
            f"{e.topology:<11} {e.routing:<9} {e.finish_time_ms:>8.2f}ms "
            f"{e.packets_dropped:>6d} {e.packets_ecn_marked:>10d}"
        )


if __name__ == "__main__":
    main()

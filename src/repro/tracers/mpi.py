"""liballprof-style MPI traces.

The paper traces MPI applications with ``liballprof``, a thin PMPI wrapper
that records every MPI call, its arguments and its start/end timestamps
(§3.1.1).  This module defines the same information as Python objects plus a
compact line-oriented text serialisation whose on-disk size stands in for the
"Trace (MiB)" column of Table 1.

The only information the schedule generator consumes is, per rank, the
ordered sequence of calls with their arguments and the *gaps* between
consecutive calls (the inferred computation), so the format stores exactly
that.
"""
from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: MPI calls understood by the schedule generator.
P2P_CALLS = {"MPI_Send", "MPI_Recv", "MPI_Sendrecv"}
COLLECTIVE_CALLS = {
    "MPI_Allreduce",
    "MPI_Reduce",
    "MPI_Bcast",
    "MPI_Barrier",
    "MPI_Allgather",
    "MPI_Alltoall",
    "MPI_Gather",
    "MPI_Scatter",
    "MPI_Reduce_scatter",
}
KNOWN_CALLS = P2P_CALLS | COLLECTIVE_CALLS


@dataclass
class MpiEvent:
    """One traced MPI call on one rank.

    Attributes
    ----------
    call:
        MPI function name (``MPI_Allreduce``, ``MPI_Send``, ...).
    start_ns / end_ns:
        Wall-clock timestamps of the call on this rank.
    size:
        Message/buffer size in bytes (count * datatype size).  For
        ``MPI_Sendrecv`` this is the send size; ``recv_size`` holds the other
        direction.  For all-to-all style calls it is the per-pair size.
    peer:
        Peer rank for point-to-point calls (destination for sends, source for
        receives), else ``None``.
    recv_peer / recv_size:
        Second leg of an ``MPI_Sendrecv``.
    root:
        Root rank for rooted collectives.
    comm:
        Communicator id (0 is ``MPI_COMM_WORLD``).
    tag:
        Message tag for point-to-point calls.
    seq:
        Per-communicator collective sequence number assigned by the tracer;
        used by the generator to correlate the same collective across ranks.
    """

    call: str
    start_ns: int
    end_ns: int
    size: int = 0
    peer: Optional[int] = None
    recv_peer: Optional[int] = None
    recv_size: int = 0
    root: int = 0
    comm: int = 0
    tag: int = 0
    seq: int = 0

    def __post_init__(self) -> None:
        if self.call not in KNOWN_CALLS:
            raise ValueError(f"unknown MPI call {self.call!r}")
        if self.end_ns < self.start_ns:
            raise ValueError("event ends before it starts")
        if self.size < 0 or self.recv_size < 0:
            raise ValueError("sizes must be non-negative")


@dataclass
class MpiTrace:
    """A complete liballprof-style trace: one event list per rank."""

    num_ranks: int
    name: str = "mpi-app"
    events: List[List[MpiEvent]] = field(default_factory=list)
    #: ranks of each communicator id (comm 0 defaults to all ranks)
    communicators: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if not self.events:
            self.events = [[] for _ in range(self.num_ranks)]
        if len(self.events) != self.num_ranks:
            raise ValueError("need exactly one event list per rank")
        self.communicators.setdefault(0, list(range(self.num_ranks)))

    def add(self, rank: int, event: MpiEvent) -> None:
        """Append ``event`` to ``rank``'s stream (events must be in time order)."""
        stream = self.events[rank]
        if stream and event.start_ns < stream[-1].end_ns:
            raise ValueError(
                f"rank {rank}: event {event.call} starts at {event.start_ns} before the "
                f"previous event ended at {stream[-1].end_ns}"
            )
        stream.append(event)

    def num_events(self) -> int:
        return sum(len(e) for e in self.events)

    def duration_ns(self, rank: int) -> int:
        """Traced duration of ``rank`` (end of last event)."""
        stream = self.events[rank]
        return stream[-1].end_ns if stream else 0

    def makespan_ns(self) -> int:
        """Longest per-rank traced duration."""
        return max((self.duration_ns(r) for r in range(self.num_ranks)), default=0)

    # ------------------------------------------------------------- serialisation
    def to_text(self) -> str:
        """Serialise to the compact line format (one event per line)."""
        out = io.StringIO()
        out.write(f"# liballprof trace: {self.name}\n")
        out.write(f"ranks {self.num_ranks}\n")
        for comm_id, members in sorted(self.communicators.items()):
            out.write(f"comm {comm_id} {' '.join(map(str, members))}\n")
        for rank, stream in enumerate(self.events):
            out.write(f"rank {rank} {len(stream)}\n")
            for e in stream:
                fields = [
                    e.call,
                    str(e.start_ns),
                    str(e.end_ns),
                    str(e.size),
                    "-" if e.peer is None else str(e.peer),
                    "-" if e.recv_peer is None else str(e.recv_peer),
                    str(e.recv_size),
                    str(e.root),
                    str(e.comm),
                    str(e.tag),
                    str(e.seq),
                ]
                out.write(" ".join(fields) + "\n")
        return out.getvalue()

    @classmethod
    def from_text(cls, text: str) -> "MpiTrace":
        """Parse a trace previously produced by :meth:`to_text`."""
        lines = [ln for ln in text.splitlines() if ln and not ln.startswith("#")]
        if not lines or not lines[0].startswith("ranks "):
            raise ValueError("not a liballprof trace (missing 'ranks' header)")
        num_ranks = int(lines[0].split()[1])
        trace = cls(num_ranks=num_ranks)
        trace.communicators = {}
        idx = 1
        while idx < len(lines) and lines[idx].startswith("comm "):
            parts = lines[idx].split()
            trace.communicators[int(parts[1])] = [int(x) for x in parts[2:]]
            idx += 1
        trace.communicators.setdefault(0, list(range(num_ranks)))
        while idx < len(lines):
            header = lines[idx].split()
            if header[0] != "rank":
                raise ValueError(f"expected 'rank' header, got {lines[idx]!r}")
            rank, count = int(header[1]), int(header[2])
            idx += 1
            for _ in range(count):
                f = lines[idx].split()
                trace.events[rank].append(
                    MpiEvent(
                        call=f[0],
                        start_ns=int(f[1]),
                        end_ns=int(f[2]),
                        size=int(f[3]),
                        peer=None if f[4] == "-" else int(f[4]),
                        recv_peer=None if f[5] == "-" else int(f[5]),
                        recv_size=int(f[6]),
                        root=int(f[7]),
                        comm=int(f[8]),
                        tag=int(f[9]),
                        seq=int(f[10]),
                    )
                )
                idx += 1
        return trace

    def to_file(self, path: str) -> int:
        """Write the text serialisation to ``path``; return the byte count."""
        data = self.to_text().encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def from_file(cls, path: str) -> "MpiTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_text(fh.read())

    def size_bytes(self) -> int:
        """Size of the text serialisation (stand-in for the on-disk trace size)."""
        return len(self.to_text().encode("utf-8"))


class MpiTracer:
    """Records MPI calls for one application run (the PMPI interposer stand-in).

    Application models keep one per-rank clock and call :meth:`compute` /
    :meth:`record` in program order; the tracer assigns collective sequence
    numbers per communicator exactly like the real wrapper would by counting
    calls.
    """

    def __init__(self, num_ranks: int, name: str = "mpi-app") -> None:
        self.trace = MpiTrace(num_ranks=num_ranks, name=name)
        self._clock = [0] * num_ranks
        self._coll_seq: Dict[Tuple[int, int], int] = {}  # (comm, rank) -> next seq

    @property
    def num_ranks(self) -> int:
        return self.trace.num_ranks

    def define_communicator(self, comm: int, members: Sequence[int]) -> None:
        """Register a sub-communicator (comm 0 is always MPI_COMM_WORLD)."""
        self.trace.communicators[comm] = list(members)

    def compute(self, rank: int, duration_ns: int) -> None:
        """Advance ``rank``'s clock by ``duration_ns`` of local computation."""
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        self._clock[rank] += int(duration_ns)

    def record(self, rank: int, call: str, duration_ns: int = 1000, **kwargs) -> MpiEvent:
        """Record an MPI call on ``rank`` lasting ``duration_ns``.

        Collective calls get an automatically increasing per-communicator
        sequence number so that the schedule generator can correlate them
        across ranks.
        """
        start = self._clock[rank]
        end = start + max(1, int(duration_ns))
        comm = kwargs.get("comm", 0)
        seq = 0
        if call in COLLECTIVE_CALLS:
            key = (comm, rank)
            seq = self._coll_seq.get(key, 0)
            self._coll_seq[key] = seq + 1
        event = MpiEvent(call=call, start_ns=start, end_ns=end, seq=seq, **kwargs)
        self.trace.add(rank, event)
        self._clock[rank] = end
        return event

    def finish(self) -> MpiTrace:
        """Return the completed trace."""
        return self.trace

"""Trace formats and tracers for the three supported application domains.

* :mod:`repro.tracers.mpi` — liballprof-style MPI traces (PMPI interception),
* :mod:`repro.tracers.nccl` — Nsight-Systems-style per-GPU, per-CUDA-stream
  kernel traces with NCCL annotations,
* :mod:`repro.tracers.storage` — SPC-format block-I/O traces plus a
  Financial-distribution-like synthetic generator.

On a real system these traces would be produced by instrumenting running
applications; here they are produced by the application models in
:mod:`repro.apps`, which emit records with exactly the same schema (see
DESIGN.md, substitution table).
"""

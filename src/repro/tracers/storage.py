"""SPC-format block-I/O traces and a Financial-like synthetic generator.

The paper traces block I/O with a bpftrace/eBPF tool and stores the result in
the SPC trace file format used by the UMass Trace Repository (§3.1.3); the
storage case study (Fig. 11) replays 5k operations drawn from the *Financial*
distribution of that repository.

An SPC trace record is ``ASU, LBA, size, opcode, timestamp`` — application
storage unit, logical block address, request size in bytes, ``r``/``w``, and
the request time in seconds.  This module provides:

* :class:`SpcRecord` / :class:`SpcTrace` — the format, with the standard
  comma-separated serialisation,
* :class:`FinancialWorkloadGenerator` — a synthetic generator matching the
  headline characteristics of the UMass Financial (OLTP) traces: small,
  write-dominated requests with heavy temporal burstiness,
* :func:`uniform_workload` — a simple uniform generator for ablations.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

SECTOR_BYTES = 512


@dataclass(frozen=True)
class SpcRecord:
    """One SPC trace record (one block-I/O command)."""

    asu: int
    lba: int
    size: int
    opcode: str
    timestamp: float

    def __post_init__(self) -> None:
        if self.asu < 0 or self.lba < 0:
            raise ValueError("asu and lba must be non-negative")
        if self.size <= 0:
            raise ValueError("request size must be positive")
        if self.opcode not in ("r", "w"):
            raise ValueError(f"opcode must be 'r' or 'w', got {self.opcode!r}")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")

    @property
    def is_read(self) -> bool:
        return self.opcode == "r"

    def to_line(self) -> str:
        return f"{self.asu},{self.lba},{self.size},{self.opcode},{self.timestamp:.6f}"

    @classmethod
    def from_line(cls, line: str) -> "SpcRecord":
        parts = line.strip().split(",")
        if len(parts) < 5:
            raise ValueError(f"malformed SPC record: {line!r}")
        return cls(
            asu=int(parts[0]),
            lba=int(parts[1]),
            size=int(parts[2]),
            opcode=parts[3].strip().lower(),
            timestamp=float(parts[4]),
        )


class SpcTrace:
    """An ordered collection of SPC records."""

    def __init__(self, records: Optional[Iterable[SpcRecord]] = None, name: str = "storage") -> None:
        self.name = name
        self.records: List[SpcRecord] = list(records) if records is not None else []

    def add(self, record: SpcRecord) -> None:
        if self.records and record.timestamp < self.records[-1].timestamp:
            raise ValueError("SPC records must be appended in timestamp order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def reads(self) -> List[SpcRecord]:
        return [r for r in self.records if r.is_read]

    def writes(self) -> List[SpcRecord]:
        return [r for r in self.records if not r.is_read]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    # ------------------------------------------------------------- serialisation
    def to_text(self) -> str:
        return "\n".join(r.to_line() for r in self.records) + ("\n" if self.records else "")

    @classmethod
    def from_text(cls, text: str, name: str = "storage") -> "SpcTrace":
        records = [SpcRecord.from_line(ln) for ln in text.splitlines() if ln.strip()]
        return cls(records, name=name)

    def to_file(self, path: str) -> int:
        data = self.to_text().encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def from_file(cls, path: str) -> "SpcTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_text(fh.read())

    def size_bytes(self) -> int:
        return len(self.to_text().encode("utf-8"))


class FinancialWorkloadGenerator:
    """Synthetic stand-in for the UMass *Financial* OLTP traces.

    The published Financial1/Financial2 traces are dominated by small
    (0.5–16 KiB) requests, are write-heavy (~75% writes in Financial1), touch
    a small number of ASUs with skewed popularity, and arrive in bursts.  The
    generator reproduces those headline properties:

    * request sizes: log-normal around 4 KiB, clamped to [512 B, 256 KiB],
      rounded to sectors,
    * opcode mix: ``write_fraction`` writes,
    * arrivals: a bursty process (exponential gaps within a burst, longer
      exponential gaps between bursts),
    * LBAs: Zipf-like popularity over a configurable number of hot regions.
    """

    def __init__(
        self,
        write_fraction: float = 0.75,
        mean_size_bytes: int = 4096,
        burst_length: int = 16,
        intra_burst_gap_us: float = 20.0,
        inter_burst_gap_us: float = 400.0,
        num_asus: int = 8,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if mean_size_bytes < SECTOR_BYTES:
            raise ValueError("mean_size_bytes must be at least one sector")
        if burst_length <= 0 or num_asus <= 0:
            raise ValueError("burst_length and num_asus must be positive")
        self.write_fraction = write_fraction
        self.mean_size_bytes = mean_size_bytes
        self.burst_length = burst_length
        self.intra_burst_gap_us = intra_burst_gap_us
        self.inter_burst_gap_us = inter_burst_gap_us
        self.num_asus = num_asus
        self.rng = np.random.default_rng(seed)

    def generate(self, num_operations: int, name: str = "financial-like") -> SpcTrace:
        """Generate ``num_operations`` SPC records."""
        if num_operations <= 0:
            raise ValueError("num_operations must be positive")
        rng = self.rng
        # sizes: log-normal around the mean, clamped, sector aligned
        sigma = 0.8
        mu = np.log(self.mean_size_bytes) - sigma * sigma / 2.0
        sizes = np.exp(rng.normal(mu, sigma, size=num_operations))
        sizes = np.clip(sizes, SECTOR_BYTES, 256 * 1024)
        sizes = (np.ceil(sizes / SECTOR_BYTES) * SECTOR_BYTES).astype(np.int64)

        is_write = rng.random(num_operations) < self.write_fraction

        # Zipf-like ASU popularity
        weights = 1.0 / np.arange(1, self.num_asus + 1)
        weights /= weights.sum()
        asus = rng.choice(self.num_asus, size=num_operations, p=weights)

        lbas = rng.integers(0, 1 << 30, size=num_operations)

        # bursty arrivals
        timestamps = np.empty(num_operations, dtype=np.float64)
        t = 0.0
        in_burst = 0
        for i in range(num_operations):
            if in_burst == 0:
                t += rng.exponential(self.inter_burst_gap_us) * 1e-6
                in_burst = int(rng.integers(1, self.burst_length + 1))
            else:
                t += rng.exponential(self.intra_burst_gap_us) * 1e-6
            in_burst -= 1
            timestamps[i] = t

        trace = SpcTrace(name=name)
        for i in range(num_operations):
            trace.add(
                SpcRecord(
                    asu=int(asus[i]),
                    lba=int(lbas[i]),
                    size=int(sizes[i]),
                    opcode="w" if is_write[i] else "r",
                    timestamp=float(timestamps[i]),
                )
            )
        return trace


def uniform_workload(
    num_operations: int,
    size_bytes: int = 8192,
    interarrival_us: float = 100.0,
    read_fraction: float = 0.5,
    seed: int = 0,
    name: str = "uniform",
) -> SpcTrace:
    """A plain uniform workload (fixed size, Poisson arrivals) for ablations."""
    rng = np.random.default_rng(seed)
    trace = SpcTrace(name=name)
    t = 0.0
    for i in range(num_operations):
        t += rng.exponential(interarrival_us) * 1e-6
        trace.add(
            SpcRecord(
                asu=0,
                lba=int(rng.integers(0, 1 << 30)),
                size=size_bytes,
                opcode="r" if rng.random() < read_fraction else "w",
                timestamp=t,
            )
        )
    return trace

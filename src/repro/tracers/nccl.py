"""Nsight-Systems-style GPU traces with NCCL annotations.

The paper profiles AI applications with ``nsys`` and an NVTX-annotated NCCL
build (§3.1.2, Stage 1).  The information the GOAL pipeline actually uses is,
per GPU and per CUDA stream, the ordered list of kernels with

* their start/end timestamps (to infer inter-kernel computation, Stage 2),
* for NCCL kernels: the collective type, byte count, communicator and peer
  (the NVTX annotations the authors added, Stage 3).

This module defines those records, a JSON-lines serialisation whose size
stands in for the "nsys report" sizes of Table 1, and the
:class:`NcclTracer` used by the AI application models in
:mod:`repro.apps.ai`.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence, Tuple

#: NCCL operations understood by the GOAL generator.
NCCL_COLLECTIVES = {
    "AllReduce",
    "Broadcast",
    "AllGather",
    "ReduceScatter",
    "AllToAll",
}
NCCL_P2P = {"Send", "Recv"}
NCCL_OPS = NCCL_COLLECTIVES | NCCL_P2P


@dataclass
class GpuKernel:
    """One kernel execution on one CUDA stream of one GPU.

    ``kind`` is ``"compute"`` for ordinary kernels and ``"nccl"`` for NCCL
    kernels.  NCCL kernels carry the operation name, byte count, communicator
    id and — for point-to-point operations — the peer GPU.
    """

    kind: str
    name: str
    start_ns: int
    end_ns: int
    op: Optional[str] = None
    size: int = 0
    comm: int = 0
    peer: Optional[int] = None
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "nccl"):
            raise ValueError(f"unknown kernel kind {self.kind!r}")
        if self.end_ns < self.start_ns:
            raise ValueError("kernel ends before it starts")
        if self.kind == "nccl":
            if self.op not in NCCL_OPS:
                raise ValueError(f"unknown NCCL op {self.op!r}")
            if self.size < 0:
                raise ValueError("NCCL op size must be non-negative")


@dataclass
class GpuStreamTrace:
    """Ordered kernel list of one CUDA stream on one GPU."""

    stream: int
    kernels: List[GpuKernel] = field(default_factory=list)

    def add(self, kernel: GpuKernel) -> None:
        if self.kernels and kernel.start_ns < self.kernels[-1].end_ns:
            raise ValueError(
                f"stream {self.stream}: kernel {kernel.name} starts before the previous one ended"
            )
        self.kernels.append(kernel)


@dataclass
class NsysReport:
    """Per-run nsys-like report: per GPU, per stream, kernel lists.

    Attributes
    ----------
    num_gpus:
        Number of GPUs profiled.
    gpus_per_node:
        How GPUs map onto nodes (used by Stage 4 grouping and recorded in the
        report header, as the real setup files do).
    communicators:
        Communicator id -> ordered list of member GPU ids.
    """

    num_gpus: int
    name: str = "ai-app"
    gpus_per_node: int = 4
    streams: List[Dict[int, GpuStreamTrace]] = field(default_factory=list)
    communicators: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if not self.streams:
            self.streams = [dict() for _ in range(self.num_gpus)]
        if len(self.streams) != self.num_gpus:
            raise ValueError("need one stream map per GPU")
        self.communicators.setdefault(0, list(range(self.num_gpus)))

    @property
    def num_nodes(self) -> int:
        return (self.num_gpus + self.gpus_per_node - 1) // self.gpus_per_node

    def stream(self, gpu: int, stream: int) -> GpuStreamTrace:
        """Get (creating if needed) the trace of ``stream`` on ``gpu``."""
        streams = self.streams[gpu]
        if stream not in streams:
            streams[stream] = GpuStreamTrace(stream=stream)
        return streams[stream]

    def num_kernels(self) -> int:
        return sum(len(s.kernels) for gpu in self.streams for s in gpu.values())

    def nccl_kernels(self, gpu: int) -> List[Tuple[int, GpuKernel]]:
        """All NCCL kernels of ``gpu`` as ``(stream, kernel)`` in time order."""
        out: List[Tuple[int, GpuKernel]] = []
        for stream_id, stream in self.streams[gpu].items():
            for k in stream.kernels:
                if k.kind == "nccl":
                    out.append((stream_id, k))
        out.sort(key=lambda sk: sk[1].start_ns)
        return out

    # ------------------------------------------------------------- serialisation
    def to_json(self) -> str:
        """Serialise to a JSON-lines string (header line + one line per kernel)."""
        lines = [
            json.dumps(
                {
                    "type": "header",
                    "name": self.name,
                    "num_gpus": self.num_gpus,
                    "gpus_per_node": self.gpus_per_node,
                    "communicators": {str(k): v for k, v in self.communicators.items()},
                }
            )
        ]
        for gpu, streams in enumerate(self.streams):
            for stream_id in sorted(streams):
                for k in streams[stream_id].kernels:
                    rec = {"type": "kernel", "gpu": gpu, "stream": stream_id}
                    rec.update(asdict(k))
                    lines.append(json.dumps(rec))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "NsysReport":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        header = json.loads(lines[0])
        if header.get("type") != "header":
            raise ValueError("not an nsys-like report (missing header line)")
        report = cls(
            num_gpus=header["num_gpus"],
            name=header.get("name", "ai-app"),
            gpus_per_node=header.get("gpus_per_node", 4),
        )
        report.communicators = {int(k): v for k, v in header.get("communicators", {}).items()}
        report.communicators.setdefault(0, list(range(report.num_gpus)))
        for line in lines[1:]:
            rec = json.loads(line)
            if rec.get("type") != "kernel":
                continue
            gpu, stream_id = rec.pop("gpu"), rec.pop("stream")
            rec.pop("type")
            report.stream(gpu, stream_id).add(GpuKernel(**rec))
        return report

    def to_file(self, path: str) -> int:
        data = self.to_json().encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def from_file(cls, path: str) -> "NsysReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def size_bytes(self) -> int:
        """Size of the serialisation (stand-in for the on-disk nsys report size)."""
        return len(self.to_json().encode("utf-8"))


class NcclTracer:
    """Builds an :class:`NsysReport` while an AI application model executes.

    The tracer keeps one clock per (GPU, stream); compute kernels and NCCL
    kernels advance it.  NCCL collectives get a per-communicator sequence
    number so Stage 3 can correlate the same collective across GPUs.
    """

    def __init__(self, num_gpus: int, gpus_per_node: int = 4, name: str = "ai-app") -> None:
        self.report = NsysReport(num_gpus=num_gpus, gpus_per_node=gpus_per_node, name=name)
        self._clock: Dict[Tuple[int, int], int] = {}
        self._coll_seq: Dict[Tuple[int, int], int] = {}  # (comm, gpu) -> next seq

    @property
    def num_gpus(self) -> int:
        return self.report.num_gpus

    def define_communicator(self, comm: int, members: Sequence[int]) -> None:
        self.report.communicators[comm] = list(members)

    def now(self, gpu: int, stream: int) -> int:
        return self._clock.get((gpu, stream), 0)

    def advance_to(self, gpu: int, stream: int, time_ns: int) -> None:
        """Move a stream clock forward to ``time_ns`` (idle gap, no kernel)."""
        key = (gpu, stream)
        if time_ns > self._clock.get(key, 0):
            self._clock[key] = time_ns

    def compute(self, gpu: int, stream: int, duration_ns: int, name: str = "compute_kernel") -> GpuKernel:
        """Record a compute kernel of ``duration_ns`` on ``(gpu, stream)``."""
        start = self.now(gpu, stream)
        end = start + max(1, int(duration_ns))
        kernel = GpuKernel(kind="compute", name=name, start_ns=start, end_ns=end)
        self.report.stream(gpu, stream).add(kernel)
        self._clock[(gpu, stream)] = end
        return kernel

    def nccl(
        self,
        gpu: int,
        stream: int,
        op: str,
        size: int,
        comm: int = 0,
        peer: Optional[int] = None,
        duration_ns: Optional[int] = None,
    ) -> GpuKernel:
        """Record an NCCL kernel on ``(gpu, stream)``.

        The duration defaults to a crude bandwidth model (it only affects the
        traced timestamps, not the generated schedule, mirroring how the real
        pipeline ignores traced NCCL durations).
        """
        if op not in NCCL_OPS:
            raise ValueError(f"unknown NCCL op {op!r}")
        start = self.now(gpu, stream)
        if duration_ns is None:
            duration_ns = 2000 + int(size * 0.01)
        end = start + max(1, int(duration_ns))
        seq = 0
        if op in NCCL_COLLECTIVES:
            key = (comm, gpu)
            seq = self._coll_seq.get(key, 0)
            self._coll_seq[key] = seq + 1
        kernel = GpuKernel(
            kind="nccl",
            name=f"nccl{op}Kernel",
            start_ns=start,
            end_ns=end,
            op=op,
            size=size,
            comm=comm,
            peer=peer,
            seq=seq,
        )
        self.report.stream(gpu, stream).add(kernel)
        self._clock[(gpu, stream)] = end
        return kernel

    def finish(self) -> NsysReport:
        return self.report

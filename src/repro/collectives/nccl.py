"""NCCL-style collective decomposition (Stage 3 of the paper's AI pipeline).

Unlike MPI collectives, NCCL schedules depend on the library's configuration
parameters (paper §3.1.2 Stage 3): the algorithm (``NCCL_ALGO`` — ring or
tree), the protocol (``NCCL_PROTO`` — Simple, LL or LL128) and the number of
channels (``NCCL_MAX_NCHANNELS``).  The data is striped across channels, each
channel is driven by one SM (modelled as one GOAL compute stream) and every
per-step transfer is further pipelined into protocol-sized chunks — the
behaviour illustrated by the paper's Fig. 4 where a 2 MB broadcast becomes
four sequential 0.5 MB sends.

Every function emits point-to-point GOAL ops into the context's builder and
returns a ``DepMap`` of exit handles per global rank, exactly like the MPI
algorithms in :mod:`repro.collectives.mpi`.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.collectives.context import CollectiveContext, DepMap

_MIN_MSG = 1

#: Default chunk size per protocol (bytes).  The Simple protocol moves large
#: chunks through FIFO buffers; LL/LL128 use small flagged lines, which we
#: model as smaller chunks plus a per-chunk latency overhead.
PROTOCOL_CHUNK_BYTES = {
    "Simple": 1 << 19,  # 512 KiB
    "LL": 1 << 15,      # 32 KiB
    "LL128": 1 << 17,   # 128 KiB
}

#: Effective bandwidth efficiency of each protocol (LL sends 50% flags).
PROTOCOL_EFFICIENCY = {
    "Simple": 1.0,
    "LL": 0.5,
    "LL128": 0.95,
}


@dataclass(frozen=True)
class NcclConfig:
    """NCCL tuning parameters that shape the decomposed schedule.

    Attributes
    ----------
    algorithm:
        ``"ring"`` or ``"tree"`` (``NCCL_ALGO``).
    protocol:
        ``"Simple"``, ``"LL"`` or ``"LL128"`` (``NCCL_PROTO``).
    nchannels:
        Number of channels (``NCCL_MAX_NCHANNELS``); the buffer is striped
        across channels and each channel occupies its own compute stream.
    chunk_bytes:
        Chunk granularity of the pipeline; defaults to the protocol's value.
    max_chunks_per_step:
        Safety cap on pipeline depth per ring step, to bound the number of
        GOAL vertices generated for very large buffers.
    """

    algorithm: str = "ring"
    protocol: str = "Simple"
    nchannels: int = 2
    chunk_bytes: Optional[int] = None
    max_chunks_per_step: int = 8

    def __post_init__(self) -> None:
        if self.algorithm not in ("ring", "tree"):
            raise ValueError(f"unknown NCCL algorithm {self.algorithm!r}")
        if self.protocol not in PROTOCOL_CHUNK_BYTES:
            raise ValueError(f"unknown NCCL protocol {self.protocol!r}")
        if self.nchannels <= 0:
            raise ValueError("nchannels must be positive")
        if self.max_chunks_per_step <= 0:
            raise ValueError("max_chunks_per_step must be positive")
        if self.chunk_bytes is not None and self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive when set")

    def effective_chunk_bytes(self) -> int:
        """Chunk granularity in bytes (the protocol default unless overridden)."""
        return self.chunk_bytes if self.chunk_bytes else PROTOCOL_CHUNK_BYTES[self.protocol]

    def effective_channels(self, size: int) -> int:
        """Channels actually used for a ``size``-byte collective.

        Degenerate collectives (zero bytes, or fewer bytes than channels)
        use as many channels as there are bytes — at least one — so a
        1-byte allreduce is a single 1-byte pipeline, not ``nchannels``
        phantom control messages per ring step.
        """
        if size < self.nchannels:
            return max(1, size)
        return self.nchannels

    def wire_size(self, payload: int) -> int:
        """Bytes on the wire for ``payload`` bytes of user data."""
        return max(_MIN_MSG, int(round(payload / PROTOCOL_EFFICIENCY[self.protocol])))


def _split(total: int, parts: int) -> List[int]:
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def _pieces(step_bytes: int, cfg: NcclConfig) -> List[int]:
    """Split one ring-step transfer into pipelined chunks."""
    if step_bytes <= 0:
        return [_MIN_MSG]
    chunk = cfg.effective_chunk_bytes()
    n = min(cfg.max_chunks_per_step, max(1, (step_bytes + chunk - 1) // chunk))
    return _split(step_bytes, n)


# ---------------------------------------------------------------------------
# ring algorithms
# ---------------------------------------------------------------------------
def allreduce(ctx: CollectiveContext, size: int, cfg: NcclConfig, deps: Optional[DepMap] = None) -> DepMap:
    """NCCL allreduce of ``size`` total bytes.

    ``ring``: per channel, a chunked ring reduce-scatter followed by a ring
    allgather.  ``tree``: per channel, a chunked reduce up a binomial tree and
    broadcast back down (NCCL's tree algorithm for latency-bound sizes).
    The buffer is striped over ``cfg.effective_channels(size)`` channels;
    emitted message sizes are wire bytes (payload scaled by the protocol's
    efficiency).  Returns the exit handle per global rank.
    """
    if ctx.size == 1:
        return dict(deps) if deps else {}
    if cfg.algorithm == "tree":
        return _tree_allreduce(ctx, size, cfg, deps)
    return _ring_collective(ctx, size, cfg, deps, reduce_pass=True, gather_pass=True)


def reduce_scatter(ctx: CollectiveContext, size: int, cfg: NcclConfig, deps: Optional[DepMap] = None) -> DepMap:
    """NCCL reduce-scatter (the reduce pass of the ring)."""
    if ctx.size == 1:
        return dict(deps) if deps else {}
    return _ring_collective(ctx, size, cfg, deps, reduce_pass=True, gather_pass=False)


def allgather(ctx: CollectiveContext, size: int, cfg: NcclConfig, deps: Optional[DepMap] = None) -> DepMap:
    """NCCL allgather of ``size`` total bytes (the gather pass of the ring)."""
    if ctx.size == 1:
        return dict(deps) if deps else {}
    return _ring_collective(ctx, size, cfg, deps, reduce_pass=False, gather_pass=True)


def _ring_collective(
    ctx: CollectiveContext,
    size: int,
    cfg: NcclConfig,
    deps: Optional[DepMap],
    reduce_pass: bool,
    gather_pass: bool,
) -> DepMap:
    n = ctx.size
    per_channel = _split(size, cfg.effective_channels(size))
    exits: Dict[int, List[int]] = {ctx.global_rank(r): [] for r in range(n)}

    for channel, channel_bytes in enumerate(per_channel):
        stream = ctx.cpu + channel
        base_tag = ctx.tags.next_base()
        step_bytes = _split(channel_bytes, n)  # one slice per ring position
        # per-rank serialisation point on this channel (one SM executes in order)
        last: List[Optional[int]] = [None] * n
        for r in range(n):
            handles = ctx.deps_of(deps, r)
            last[r] = handles[0] if handles else None

        passes = (1 if reduce_pass else 0) + (1 if gather_pass else 0)
        total_steps = passes * (n - 1)
        for step in range(total_steps):
            in_reduce = reduce_pass and step < (n - 1)
            tag_step = base_tag + step * (cfg.max_chunks_per_step + 1)
            new_last: List[Optional[int]] = [None] * n
            for r in range(n):
                dst = (r + 1) % n
                src = (r - 1) % n
                send_slice = (r - step) % n
                recv_slice = (r - step - 1) % n
                rb = ctx.rank_builder(r)
                prev = [last[r]] if last[r] is not None else []
                send_pieces = _pieces(step_bytes[send_slice], cfg)
                recv_pieces = _pieces(step_bytes[recv_slice], cfg)
                tail = None
                prev_piece: Optional[int] = None
                for p in range(max(len(send_pieces), len(recv_pieces))):
                    tag = tag_step + p
                    piece_reqs = list(prev)
                    if prev_piece is not None:
                        piece_reqs = [prev_piece]
                    ops = []
                    if p < len(send_pieces):
                        ops.append(
                            rb.send(
                                cfg.wire_size(send_pieces[p]),
                                dst=ctx.global_rank(dst),
                                tag=tag,
                                cpu=stream,
                                requires=piece_reqs,
                            )
                        )
                    if p < len(recv_pieces):
                        ops.append(
                            rb.recv(
                                cfg.wire_size(recv_pieces[p]),
                                src=ctx.global_rank(src),
                                tag=tag,
                                cpu=stream,
                                requires=piece_reqs,
                            )
                        )
                    tail = ops[0] if len(ops) == 1 else rb.join(ops, cpu=stream)
                    if in_reduce and ctx.reduce_ns_per_byte and p < len(recv_pieces):
                        tail = rb.calc(ctx.reduce_cost(recv_pieces[p]), cpu=stream, requires=[tail])
                    prev_piece = tail
                new_last[r] = tail
            last = new_last

        for r in range(n):
            if last[r] is not None:
                exits[ctx.global_rank(r)].append(last[r])

    return ctx.join(exits)


def broadcast(ctx: CollectiveContext, size: int, cfg: NcclConfig, root: int = 0, deps: Optional[DepMap] = None) -> DepMap:
    """NCCL ring broadcast: the root pushes chunks around the ring (Fig. 4).

    The buffer is striped over channels; within each channel it is cut into
    protocol-sized chunks that travel the ring back to back, each intermediate
    rank forwarding a chunk as soon as it has received it.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    per_channel = _split(size, cfg.effective_channels(size))
    exits: Dict[int, List[int]] = {ctx.global_rank(r): [] for r in range(n)}

    for channel, channel_bytes in enumerate(per_channel):
        stream = ctx.cpu + channel
        base_tag = ctx.tags.next_base()
        chunk = cfg.effective_chunk_bytes()
        nchunks = min(
            max(1, (channel_bytes + chunk - 1) // chunk),
            cfg.max_chunks_per_step * n,
        )
        chunks = _split(channel_bytes, nchunks)
        last: List[Optional[int]] = [None] * n
        for r in range(n):
            handles = ctx.deps_of(deps, r)
            last[r] = handles[0] if handles else None

        # ring order starting from the root
        order = [(root + i) % n for i in range(n)]
        for c, chunk_bytes in enumerate(chunks):
            tag = base_tag + c
            recv_handle: Dict[int, int] = {}
            for pos in range(n - 1):
                src = order[pos]
                dst = order[pos + 1]
                sb = ctx.rank_builder(src)
                db = ctx.rank_builder(dst)
                send_reqs: List[int] = []
                if last[src] is not None:
                    send_reqs.append(last[src])
                if pos > 0 and src in recv_handle:
                    send_reqs.append(recv_handle[src])
                s = sb.send(cfg.wire_size(chunk_bytes), dst=ctx.global_rank(dst), tag=tag, cpu=stream, requires=send_reqs)
                r_reqs = [last[dst]] if last[dst] is not None else []
                rcv = db.recv(cfg.wire_size(chunk_bytes), src=ctx.global_rank(src), tag=tag, cpu=stream, requires=r_reqs)
                last[src] = s
                last[dst] = rcv
                recv_handle[dst] = rcv
        for r in range(n):
            if last[r] is not None:
                exits[ctx.global_rank(r)].append(last[r])
    return ctx.join(exits)


def _tree_allreduce(ctx: CollectiveContext, size: int, cfg: NcclConfig, deps: Optional[DepMap]) -> DepMap:
    """Tree algorithm: chunked binomial reduce to rank 0, then broadcast down."""
    from repro.collectives import mpi as _mpi

    n = ctx.size
    per_channel = _split(size, cfg.effective_channels(size))
    exits: Dict[int, List[int]] = {ctx.global_rank(r): [] for r in range(n)}
    for channel, channel_bytes in enumerate(per_channel):
        sub_ctx = CollectiveContext(
            ctx.builder,
            ctx.ranks,
            tags=ctx.tags,
            reduce_ns_per_byte=ctx.reduce_ns_per_byte,
            copy_ns_per_byte=ctx.copy_ns_per_byte,
            cpu=ctx.cpu + channel,
        )
        wire = cfg.wire_size(channel_bytes)
        mid = _mpi.binomial_reduce(sub_ctx, wire, root=0, deps=deps)
        out = _mpi.binomial_bcast(sub_ctx, wire, root=0, deps=mid)
        for global_rank, handle in out.items():
            exits.setdefault(global_rank, []).append(handle)
    return ctx.join(exits)


# ---------------------------------------------------------------------------
# point-to-point and alltoall (pipeline / expert parallelism)
# ---------------------------------------------------------------------------
def send_recv_pair(
    ctx: CollectiveContext,
    src_comm_rank: int,
    dst_comm_rank: int,
    size: int,
    cfg: NcclConfig,
    deps: Optional[DepMap] = None,
) -> DepMap:
    """A chunked NCCL point-to-point transfer (ncclSend / ncclRecv pair)."""
    if src_comm_rank == dst_comm_rank:
        raise ValueError("send_recv_pair requires distinct ranks")
    base_tag = ctx.tags.next_base()
    src_global = ctx.global_rank(src_comm_rank)
    dst_global = ctx.global_rank(dst_comm_rank)
    sb = ctx.rank_builder(src_comm_rank)
    db = ctx.rank_builder(dst_comm_rank)
    pieces = _pieces(size, cfg)
    prev_s = ctx.deps_of(deps, src_comm_rank)
    prev_r = ctx.deps_of(deps, dst_comm_rank)
    s = r = None
    for p, piece in enumerate(pieces):
        tag = base_tag + p
        s = sb.send(cfg.wire_size(piece), dst=dst_global, tag=tag, cpu=ctx.cpu, requires=prev_s)
        r = db.recv(cfg.wire_size(piece), src=src_global, tag=tag, cpu=ctx.cpu, requires=prev_r)
        prev_s = [s]
        prev_r = [r]
    return {src_global: s, dst_global: r}


def alltoall(ctx: CollectiveContext, size_per_pair: int, cfg: NcclConfig, deps: Optional[DepMap] = None) -> DepMap:
    """All-to-all implemented as pairwise ncclSend/ncclRecv (expert parallelism)."""
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    exits: Dict[int, List[int]] = {ctx.global_rank(r): [] for r in range(n)}
    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None
    for k in range(1, n):
        tag = base_tag + k
        new_last: List[Optional[int]] = [None] * n
        for r in range(n):
            dst = (r + k) % n
            src = (r - k) % n
            rb = ctx.rank_builder(r)
            reqs = [last[r]] if last[r] is not None else []
            s = rb.send(cfg.wire_size(size_per_pair), dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu, requires=reqs)
            rcv = rb.recv(cfg.wire_size(size_per_pair), src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu, requires=reqs)
            new_last[r] = rb.join([s, rcv], cpu=ctx.cpu)
        last = new_last
    for r in range(n):
        if last[r] is not None:
            exits[ctx.global_rank(r)].append(last[r])
    return ctx.join(exits)

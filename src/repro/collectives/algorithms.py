"""The collective algorithm registry and its LogGOPS-cost autotuner.

This module mirrors the routing-strategy registry of
:mod:`repro.network.routing` for collectives: every algorithm the schedule
generators can substitute for a collective is registered as a
:class:`CollectiveAlgorithm` — its emit function, an analytic LogGOPS cost
model, and documentation metadata — under its collective kind
(``allreduce``, ``allgather``, ``reduce_scatter``, ``bcast``, ``barrier``,
``alltoall``).

Three entry points matter to callers:

* :func:`get_algorithm` / :func:`algorithm_names` — the explicit override
  path: schedule generators (``schedgen/mpi.py``, ``schedgen/nccl.py``),
  :func:`repro.sweep.collective_sweep` and the ``atlahs collectives`` CLI
  resolve algorithm names through it,
* :func:`select_algorithm` — the autotuner: evaluates every registered
  algorithm's analytic cost for a (collective, message size, group shape)
  and returns the cheapest, optionally aware of the topology's intra- vs
  inter-group latencies,
* :func:`build_collective_schedule` — emit one standalone collective as a
  :class:`~repro.goal.schedule.GoalSchedule`, the workhorse of sweeps,
  property tests and the documentation examples.

Cost model
----------
Costs are analytic LogGOPS estimates in nanoseconds (see
``docs/collectives.md`` for the per-algorithm formulas).  A communication
round of ``m`` bytes costs ``L + 2o + g + m*G`` where ``L`` is the wire
latency of the round's *scope*: hierarchical algorithms charge
``L_intra`` for intra-group rounds and ``L_inter`` for rounds that cross
group boundaries; flat algorithms always pay the scope of their widest
participant.  With no topology information all three latencies collapse to
the flat LogGOPS ``L`` and hierarchy only helps through round counts and
byte volumes.  The model intentionally ignores reduction compute and
congestion — it ranks algorithms, it does not predict finish times.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collectives import hierarchical as halgs
from repro.collectives import mpi as calgs
from repro.collectives.context import (
    CollectiveContext,
    DepMap,
    contiguous_groups,
    groups_from_topology,
)

Groups = Optional[List[List[int]]]


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CostModel:
    """LogGOPS parameters the autotuner prices algorithms with.

    Attributes
    ----------
    L:
        Flat wire latency in ns (used when a round's scope is unknown).
    o:
        Per-message CPU overhead in ns (charged twice per round: send + recv).
    g:
        Inter-message gap in ns.
    G:
        Gap per byte in ns/byte (inverse bandwidth).
    L_intra / L_inter:
        Wire latency of intra-group and inter-group rounds in ns; both
        default to ``L``.  Populate them from a topology with
        :meth:`from_loggops` to make the autotuner locality-aware.
    uplinks_per_group:
        Boundary capacity of a locality group in host-link units (e.g. 4.0
        on a 4:1-oversubscribed fat-tree ToR).  Inter-group rounds in which
        ``k`` ranks of a group transmit concurrently are slowed by
        ``max(1, k / uplinks_per_group)`` — the oversubscription penalty
        that makes hierarchical algorithms win on tapered fabrics.
        ``None`` disables the penalty.
    """

    L: float = 3700.0
    o: float = 200.0
    g: float = 5.0
    G: float = 0.04
    L_intra: Optional[float] = None
    L_inter: Optional[float] = None
    uplinks_per_group: Optional[float] = None

    @classmethod
    def from_loggops(
        cls,
        params,
        topology=None,
        groups: Groups = None,
        placement: Optional[Dict[int, int]] = None,
    ) -> "CostModel":
        """Build a cost model from :class:`~repro.network.config.LogGOPSParams`.

        When ``topology`` is given, ``L_intra`` / ``L_inter`` are taken
        from the propagation latency of a same-group and a cross-group host
        pair (the topology's path latencies replace the flat ``L``), and
        ``uplinks_per_group`` from the aggregate switch-to-switch bandwidth
        of the largest group's first-hop switch, in units of one host
        link.  The pairs come from ``groups`` (communicator-rank groups)
        mapped to hosts through ``placement`` (``{rank -> host}``, identity
        by default) when groups are given, else from the topology's own
        ``host_groups()``.
        """
        L_intra = L_inter = None
        uplinks = None
        if topology is not None:
            if groups:
                host_of = placement or {}
                host_groups = [
                    [host_of.get(r, r) for r in grp] for grp in groups
                ]
            else:
                host_groups = topology.host_groups()
            intra_pair: Optional[Tuple[int, int]] = None
            inter_pair: Optional[Tuple[int, int]] = None
            for grp in host_groups:
                if len(grp) >= 2 and grp[0] != grp[1] and intra_pair is None:
                    intra_pair = (grp[0], grp[1])
            if len(host_groups) >= 2 and host_groups[0][0] != host_groups[1][0]:
                inter_pair = (host_groups[0][0], host_groups[1][0])
            if intra_pair is not None:
                L_intra = float(topology.min_path_latency(*intra_pair))
            if inter_pair is not None:
                L_inter = float(topology.min_path_latency(*inter_pair))
                largest = max(host_groups, key=len)
                switch = topology.attachment(largest[0])
                host_bw = topology.links[topology.out_links(largest[0])[0]].bandwidth
                boundary_bw = sum(
                    topology.links[l].bandwidth
                    for l in topology.out_links(switch)
                    if not topology.is_host(topology.links[l].dst)
                )
                if host_bw > 0 and boundary_bw > 0:
                    uplinks = boundary_bw / host_bw
        return cls(
            L=float(params.L),
            o=float(params.o),
            g=float(params.g),
            G=float(params.G),
            L_intra=L_intra,
            L_inter=L_inter,
            uplinks_per_group=uplinks,
        )

    def inter_factor(self, concurrent: int) -> float:
        """Slowdown of an inter-group round with ``concurrent`` senders per group."""
        if not self.uplinks_per_group or concurrent <= self.uplinks_per_group:
            return 1.0
        return concurrent / self.uplinks_per_group

    def step(self, nbytes: float, scope: str = "flat", concurrent: int = 1) -> float:
        """Cost in ns of one communication round of ``nbytes`` bytes.

        ``scope`` is ``"flat"``, ``"intra"`` (within a locality group) or
        ``"inter"`` (crossing group boundaries); inter rounds additionally
        pay the oversubscription penalty for ``concurrent`` simultaneous
        senders per group (see :meth:`inter_factor`).
        """
        if scope == "intra":
            latency = self.L_intra if self.L_intra is not None else self.L
            factor = 1.0
        elif scope == "inter":
            latency = self.L_inter if self.L_inter is not None else self.L
            factor = self.inter_factor(concurrent)
        else:
            latency = self.L
            factor = 1.0
        return latency + 2.0 * self.o + self.g + nbytes * self.G * factor


def _group_shape(n: int, groups: Groups) -> Tuple[int, int]:
    """(max group size, group count) of a grouping, or ``(n, 1)`` when flat."""
    if not groups or len(groups) <= 1:
        return n, 1
    return max(len(g) for g in groups), len(groups)


def _intra_reach(groups: Groups) -> int:
    """Largest exchange distance still inside a (contiguous) locality group.

    Distance-``d`` exchanges of the doubling/halving algorithms stay inside
    a group when ``d`` is below the smallest group size; 0 when no usable
    grouping exists (every round prices as inter-group).
    """
    if not groups or len(groups) <= 1:
        return 0
    return min(len(g) for g in groups)


# -- per-algorithm analytic costs (size in bytes, n ranks, m = CostModel) ----
def _cost_ring_allreduce(size: float, n: int, m: CostModel, groups: Groups) -> float:
    # every step's latency is bounded by the boundary pairs; only one pair
    # per group crosses, so no oversubscription penalty
    if n == 1:
        return 0.0
    return 2.0 * (n - 1) * m.step(size / n, "inter")


def _exchange_rounds_cost(
    size_of_round, n: int, m: CostModel, groups: Groups, passes: int = 1
) -> float:
    """Shared cost of distance-doubling exchanges (RD, RHD, Bruck, barrier).

    ``size_of_round(d)`` gives the bytes exchanged at distance ``d``; rounds
    with ``d`` below the group size price as intra-group, the rest as
    inter-group with every group member transmitting concurrently.
    """
    reach = _intra_reach(groups)
    g, _ = _group_shape(n, groups)
    pow2 = 1 << (n.bit_length() - 1) if (n & (n - 1)) else n
    cost, d = 0.0, 1
    while d < pow2:
        nbytes = size_of_round(d)
        if d < reach:
            cost += passes * m.step(nbytes, "intra")
        else:
            cost += passes * m.step(nbytes, "inter", concurrent=g)
        d *= 2
    return cost


def _cost_recursive_doubling(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    fold = 0 if (n & (n - 1)) == 0 else 2
    return fold * m.step(size, "inter") + _exchange_rounds_cost(
        lambda d: size, n, m, groups
    )


def _cost_reduce_bcast(size: float, n: int, m: CostModel, groups: Groups) -> float:
    # binomial trees: at most one sender per group crosses in a round
    if n == 1:
        return 0.0
    return 2.0 * math.ceil(math.log2(n)) * m.step(size, "inter")


def _cost_rhd(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    pow2 = 1 << (n.bit_length() - 1)
    fold = 0 if pow2 == n else 2
    # halving pass + mirrored doubling pass share the per-distance sizes
    return fold * m.step(size, "inter") + _exchange_rounds_cost(
        lambda d: size * d / pow2, n, m, groups, passes=2
    )


def _cost_bucket(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    rows, cols = halgs.grid_shape(n)
    g, _ = _group_shape(n, groups)
    reach = _intra_reach(groups)
    # row rings are contiguous: intra when a row fits into a locality group
    row_scope = "intra" if 1 < cols <= reach else "inter"
    cost = 2.0 * (cols - 1) * m.step(size / cols, row_scope)
    # column rings stride by ``cols``: every member of a group transmits
    cost += 2.0 * (rows - 1) * m.step(size / (cols * rows), "inter", concurrent=min(g, cols))
    return cost


def _cost_hier_rs(size: float, n: int, m: CostModel, groups: Groups) -> float:
    g, num_groups = _group_shape(n, groups)
    if n == 1:
        return 0.0
    if num_groups == 1:
        return float("inf")
    cost = 2.0 * (g - 1) * m.step(size / g, "intra")
    # all g shard rings cross concurrently, but each moves only S/(g*Ng)
    cost += 2.0 * (num_groups - 1) * m.step(size / (g * num_groups), "inter", concurrent=g)
    return cost


def _cost_hier_leader(size: float, n: int, m: CostModel, groups: Groups) -> float:
    g, num_groups = _group_shape(n, groups)
    if n == 1:
        return 0.0
    if num_groups == 1:
        return float("inf")
    cost = 0.0
    if g > 1:
        cost += 2.0 * math.ceil(math.log2(g)) * m.step(size, "intra")
    # exactly one leader per group on the fabric: no oversubscription penalty
    cost += 2.0 * (num_groups - 1) * m.step(size / num_groups, "inter")
    return cost


def _cost_ring_allgather(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    return (n - 1) * m.step(size / n, "inter")


def _cost_bruck_allgather(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    g, _ = _group_shape(n, groups)
    reach = _intra_reach(groups)
    cost, dist = 0.0, 1
    while dist < n:
        nbytes = min(dist, n - dist) * size / n
        scope = "intra" if dist < reach else "inter"
        cost += m.step(nbytes, scope, concurrent=g if scope == "inter" else 1)
        dist *= 2
    return cost


def _cost_ring_reduce_scatter(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    return (n - 1) * m.step(size / n, "inter")


def _cost_binomial_bcast(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    return math.ceil(math.log2(n)) * m.step(size, "inter")


def _cost_scatter_allgather(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    cost, mask = 0.0, 1
    while mask < n:
        cost += m.step(size * mask / (2 * n), "inter")  # scatter level sizes halve
        mask *= 2
    return cost + (n - 1) * m.step(size / n, "inter")


def _cost_dissemination(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    return math.ceil(math.log2(n)) * m.step(1, "inter")


def _cost_pairwise_alltoall(size: float, n: int, m: CostModel, groups: Groups) -> float:
    if n == 1:
        return 0.0
    g, _ = _group_shape(n, groups)
    return (n - 1) * m.step(size, "inter", concurrent=g)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CollectiveAlgorithm:
    """One selectable decomposition of a collective operation.

    Attributes
    ----------
    name:
        Registry key, unique per ``collective``.
    collective:
        Kind it decomposes: ``allreduce``, ``allgather``,
        ``reduce_scatter``, ``bcast``, ``barrier`` or ``alltoall``.
    emit:
        ``emit(ctx, size, deps=None, **kwargs)`` — emits the point-to-point
        schedule into ``ctx.builder`` and returns a ``DepMap``.  ``size``
        is the collective's total buffer in bytes (per-pair bytes for
        ``alltoall``; ignored by ``barrier``); rooted collectives accept a
        ``root`` keyword.
    cost:
        ``cost(size, num_ranks, model, groups)`` — analytic LogGOPS cost in
        ns (``inf`` when the algorithm is inapplicable, e.g. a hierarchical
        algorithm without a usable grouping).
    cost_formula:
        Human-readable cost formula, rendered by the CLI and docs.
    description:
        One-line summary for listings.
    hierarchical:
        Whether :attr:`emit` requires ``ctx.groups``.
    """

    name: str
    collective: str
    emit: Callable[..., DepMap]
    cost: Callable[[float, int, CostModel, Groups], float]
    cost_formula: str
    description: str
    hierarchical: bool = False


#: ``{collective kind: {algorithm name: CollectiveAlgorithm}}`` in
#: registration order (the order listings and the autotuner iterate in).
COLLECTIVE_ALGORITHMS: Dict[str, Dict[str, CollectiveAlgorithm]] = {}


def register_collective_algorithm(algorithm: CollectiveAlgorithm) -> CollectiveAlgorithm:
    """Register ``algorithm``; raises :class:`ValueError` on duplicate names."""
    kind = COLLECTIVE_ALGORITHMS.setdefault(algorithm.collective, {})
    if algorithm.name in kind:
        raise ValueError(
            f"collective algorithm {algorithm.name!r} already registered for "
            f"{algorithm.collective!r}"
        )
    kind[algorithm.name] = algorithm
    return algorithm


def collective_names() -> List[str]:
    """Collective kinds with at least one registered algorithm (sorted)."""
    return sorted(COLLECTIVE_ALGORITHMS)


def algorithm_names(collective: str) -> List[str]:
    """Algorithm names registered for ``collective``, in registration order."""
    try:
        return list(COLLECTIVE_ALGORITHMS[collective])
    except KeyError:
        raise ValueError(
            f"unknown collective {collective!r}; registered: {collective_names()}"
        ) from None


def get_algorithm(collective: str, name: str) -> CollectiveAlgorithm:
    """Resolve one registered algorithm; raises :class:`ValueError` with the
    available names when ``name`` is unknown."""
    kinds = COLLECTIVE_ALGORITHMS.get(collective)
    if kinds is None:
        raise ValueError(
            f"unknown collective {collective!r}; registered: {collective_names()}"
        )
    try:
        return kinds[name]
    except KeyError:
        raise ValueError(
            f"unknown {collective} algorithm {name!r}; registered: "
            f"{', '.join(kinds)}"
        ) from None


# -- emit adapters for the flat algorithms (uniform registry signature) ------
def _emit_allgather_ring(ctx, size, deps=None, **kw):
    return calgs.ring_allgather(ctx, size, deps)


def _emit_barrier(ctx, size, deps=None, **kw):
    return calgs.dissemination_barrier(ctx, deps)


def _emit_alltoall(ctx, size, deps=None, **kw):
    return calgs.pairwise_alltoall(ctx, size, deps)


def _emit_reduce_scatter_ring(ctx, size, deps=None, **kw):
    return calgs.ring_reduce_scatter(ctx, size, deps)


register_collective_algorithm(CollectiveAlgorithm(
    name="ring", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: calgs.ring_allreduce(ctx, size, deps),
    cost=_cost_ring_allreduce,
    cost_formula="2(N-1) * (L_inter + 2o + g + (S/N)G)",
    description="bandwidth-optimal chunked ring (reduce-scatter + allgather passes)",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="recursive_doubling", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: calgs.recursive_doubling_allreduce(ctx, size, deps),
    cost=_cost_recursive_doubling,
    cost_formula="(ceil(log2 N) + 2[N not pow2]) * (L + 2o + g + S*G)",
    description="latency-optimal pairwise exchange of the full buffer",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="reduce_bcast", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: calgs.reduce_bcast_allreduce(ctx, size, deps),
    cost=_cost_reduce_bcast,
    cost_formula="2*ceil(log2 N) * (L + 2o + g + S*G)",
    description="binomial reduce to rank 0 followed by a binomial broadcast",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="recursive_halving_doubling", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: halgs.recursive_halving_doubling_allreduce(ctx, size, deps),
    cost=_cost_rhd,
    cost_formula="2*log2(P)*(L + 2o + g) + 2*((P-1)/P)*S*G (+ fold for non-pow2)",
    description="Rabenseifner: recursive-halving reduce-scatter + recursive-doubling allgather",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="bucket", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: halgs.bucket_allreduce(ctx, size, deps),
    cost=_cost_bucket,
    cost_formula="2(b-1)*(L + 2o + g + (S/b)G) + 2(a-1)*(L + 2o + g + (S/ab)G), a*b=N",
    description="bucket / 2D-ring allreduce over a near-square virtual grid",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="hier_rs", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: halgs.hierarchical_rs_allreduce(ctx, size, deps),
    cost=_cost_hier_rs,
    cost_formula="2(g-1)*(L_intra + 2o + gap + (S/g)G) + 2(Ng-1)*(L_inter + 2o + gap + (S/(g*Ng))G)",
    description="two-level: intra-group reduce-scatter/allgather, per-shard rings across groups",
    hierarchical=True,
))
register_collective_algorithm(CollectiveAlgorithm(
    name="hier_leader", collective="allreduce",
    emit=lambda ctx, size, deps=None, **kw: halgs.hierarchical_leader_allreduce(ctx, size, deps),
    cost=_cost_hier_leader,
    cost_formula="2*ceil(log2 g)*(L_intra + 2o + gap + S*G) + 2(Ng-1)*(L_inter + 2o + gap + (S/Ng)G)",
    description="two-level: binomial reduce/bcast within groups, leader ring across groups",
    hierarchical=True,
))

register_collective_algorithm(CollectiveAlgorithm(
    name="ring", collective="allgather",
    emit=_emit_allgather_ring,
    cost=_cost_ring_allgather,
    cost_formula="(N-1) * (L + 2o + g + (S/N)G)",
    description="ring allgather: per-rank blocks circulate once around the ring",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="bruck", collective="allgather",
    emit=lambda ctx, size, deps=None, **kw: halgs.bruck_allgather(ctx, size, deps),
    cost=_cost_bruck_allgather,
    cost_formula="sum_k (L + 2o + g + min(2^k, N-2^k)*(S/N)*G), k < ceil(log2 N)",
    description="Bruck allgather: doubling block exchange in ceil(log2 N) rounds",
))

register_collective_algorithm(CollectiveAlgorithm(
    name="ring", collective="reduce_scatter",
    emit=_emit_reduce_scatter_ring,
    cost=_cost_ring_reduce_scatter,
    cost_formula="(N-1) * (L + 2o + g + (S/N)G)",
    description="ring reduce-scatter: each rank ends owning one reduced chunk",
))

register_collective_algorithm(CollectiveAlgorithm(
    name="binomial", collective="bcast",
    emit=lambda ctx, size, deps=None, root=0, **kw: calgs.binomial_bcast(ctx, size, root=root, deps=deps),
    cost=_cost_binomial_bcast,
    cost_formula="ceil(log2 N) * (L + 2o + g + S*G)",
    description="binomial-tree broadcast (latency-optimal)",
))
register_collective_algorithm(CollectiveAlgorithm(
    name="scatter_allgather", collective="bcast",
    emit=lambda ctx, size, deps=None, root=0, **kw: halgs.scatter_allgather_bcast(ctx, size, root=root, deps=deps),
    cost=_cost_scatter_allgather,
    cost_formula="sum_k (L + 2o + g + (S*2^k/2N)G) + (N-1)*(L + 2o + g + (S/N)G)",
    description="van de Geijn: binomial scatter + ring allgather (bandwidth-optimal)",
))

register_collective_algorithm(CollectiveAlgorithm(
    name="dissemination", collective="barrier",
    emit=_emit_barrier,
    cost=_cost_dissemination,
    cost_formula="ceil(log2 N) * (L + 2o + g)",
    description="dissemination barrier: log-round 1-byte notifications",
))

register_collective_algorithm(CollectiveAlgorithm(
    name="pairwise", collective="alltoall",
    emit=_emit_alltoall,
    cost=_cost_pairwise_alltoall,
    cost_formula="(N-1) * (L + 2o + g + S_pair*G)",
    description="pairwise-exchange all-to-all (linear shift schedule)",
))


# ---------------------------------------------------------------------------
# the autotuner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmChoice:
    """Result of one :func:`select_algorithm` evaluation.

    Attributes
    ----------
    collective / size / num_ranks:
        The question that was asked (size in bytes).
    name:
        The cheapest applicable algorithm.
    cost_ns:
        Its analytic cost estimate in ns.
    costs:
        Every candidate's estimate (``inf`` = inapplicable), for reports.
    """

    collective: str
    size: int
    num_ranks: int
    name: str
    cost_ns: float
    costs: Dict[str, float] = field(default_factory=dict)


def select_algorithm(
    collective: str,
    size: int,
    num_ranks: int,
    params=None,
    topology=None,
    placement: Optional[Dict[int, int]] = None,
    groups: Groups = None,
    model: Optional[CostModel] = None,
) -> AlgorithmChoice:
    """Pick the cheapest registered algorithm under the LogGOPS cost model.

    Parameters
    ----------
    collective:
        Collective kind (``"allreduce"``, ``"allgather"``, ...).
    size:
        Message size in bytes (total buffer; per-pair bytes for
        ``alltoall``).
    num_ranks:
        Communicator size.
    params:
        :class:`~repro.network.config.LogGOPSParams` supplying L/o/g/G
        (defaults to the paper's AI-cluster values).
    topology / placement:
        Optional :class:`~repro.network.topology.base.Topology` (plus a
        ``{rank -> host}`` placement, identity by default).  Used twice:
        to derive locality ``groups`` when none are given, and to price
        intra- vs inter-group rounds with real path latencies.
    groups:
        Explicit locality partition in communicator ranks; overrides the
        topology-derived one.
    model:
        Pre-built :class:`CostModel`; overrides ``params``/``topology``.

    Returns
    -------
    AlgorithmChoice
        The winner plus every candidate's cost (ties break towards the
        earlier-registered algorithm).  Hierarchical algorithms are
        skipped (cost ``inf``) when no non-trivial grouping is available.
        This is the autotuner behind ``algorithm="auto"`` everywhere; pass
        an explicit name to any of those call sites to override it.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if size < 0:
        raise ValueError("size must be non-negative")
    if groups is None and topology is not None:
        groups = groups_from_topology(range(num_ranks), topology, placement)
    if model is None:
        if params is None:
            from repro.network.config import LogGOPSParams

            params = LogGOPSParams()
        model = CostModel.from_loggops(
            params, topology=topology, groups=groups, placement=placement
        )
    candidates = COLLECTIVE_ALGORITHMS.get(collective)
    if not candidates:
        raise ValueError(
            f"unknown collective {collective!r}; registered: {collective_names()}"
        )
    costs: Dict[str, float] = {}
    best_name, best_cost = None, float("inf")
    for name, alg in candidates.items():
        cost = alg.cost(float(size), num_ranks, model, groups)
        costs[name] = cost
        if cost < best_cost:
            best_name, best_cost = name, cost
    if best_name is None:  # all inf: single flat fallback
        best_name = next(iter(candidates))
        best_cost = costs[best_name]
    return AlgorithmChoice(
        collective=collective,
        size=size,
        num_ranks=num_ranks,
        name=best_name,
        cost_ns=best_cost,
        costs=costs,
    )


# ---------------------------------------------------------------------------
# standalone schedule construction (sweeps, tests, docs examples)
# ---------------------------------------------------------------------------
def build_collective_schedule(
    collective: str,
    algorithm: str,
    num_ranks: int,
    size: int,
    groups: Groups = None,
    reduce_ns_per_byte: float = 0.0,
    root: int = 0,
    name: Optional[str] = None,
):
    """Emit one standalone collective as a :class:`~repro.goal.schedule.GoalSchedule`.

    Parameters
    ----------
    collective / algorithm:
        Registry coordinates (see :func:`algorithm_names`); ``algorithm``
        may be ``"auto"`` to let :func:`select_algorithm` pick (flat model,
        using the given ``groups``).
    num_ranks:
        Communicator size (ranks are 0..num_ranks-1).
    size:
        Buffer size in bytes (per-pair for ``alltoall``, ignored by
        ``barrier``).
    groups:
        Locality partition for hierarchical algorithms (communicator
        ranks).
    reduce_ns_per_byte:
        Reduction cost inserted as ``calc`` vertices (ns per byte).
    root:
        Root rank for rooted collectives (``bcast``).
    name:
        Schedule name (defaults to ``"<collective>-<algorithm>-<N>"``).

    Returns
    -------
    GoalSchedule
        A validated-shape schedule ready for
        :func:`repro.scheduler.simulate`.
    """
    from repro.goal.builder import GoalBuilder

    if algorithm == "auto":
        algorithm = select_algorithm(collective, size, num_ranks, groups=groups).name
    alg = get_algorithm(collective, algorithm)
    builder = GoalBuilder(
        num_ranks, name=name or f"{collective}-{algorithm}-{num_ranks}"
    )
    ctx = CollectiveContext(
        builder,
        list(range(num_ranks)),
        reduce_ns_per_byte=reduce_ns_per_byte,
        groups=groups,
    )
    alg.emit(ctx, size, None, root=root)
    return builder.build()

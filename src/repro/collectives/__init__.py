"""Point-to-point decompositions of collective operations.

The paper's schedule generators never emit "collective" vertices: every MPI
or NCCL collective is substituted by its point-to-point algorithm (sends,
receives and reduction computation) during GOAL generation (§3.1.1 stage
"Schedgen" and §3.1.2 Stage 3).  This package implements those algorithms
once so that both the MPI and the NCCL generators share them.

Two families are provided:

* :mod:`repro.collectives.mpi` — classic MPI algorithms operating on whole
  buffers (ring, recursive doubling, binomial trees, dissemination barrier,
  pairwise all-to-all),
* :mod:`repro.collectives.nccl` — NCCL-style chunked ring/tree algorithms
  whose schedules depend on the protocol (Simple / LL / LL128), the number
  of channels and the chunk size, mirroring the behaviour described in the
  paper's Fig. 4,
* :mod:`repro.collectives.hierarchical` — topology-aware algorithms
  (recursive halving-doubling, bucket/2D-ring, two-level hierarchical
  variants over locality groups, Bruck allgather, van de Geijn broadcast),
* :mod:`repro.collectives.algorithms` — the :class:`CollectiveAlgorithm`
  registry tying the above together with an analytic LogGOPS autotuner
  (:func:`select_algorithm`) and standalone schedule construction
  (:func:`build_collective_schedule`).  See ``docs/collectives.md`` for
  the per-algorithm reference.

All algorithms operate on a :class:`~repro.collectives.context.CollectiveContext`
and return, per participating rank, the vertex handle that later operations
of that rank must depend on.
"""
from repro.collectives.context import (
    CollectiveContext,
    TagAllocator,
    contiguous_groups,
    groups_from_topology,
)
from repro.collectives import mpi, nccl, hierarchical
from repro.collectives.algorithms import (
    COLLECTIVE_ALGORITHMS,
    AlgorithmChoice,
    CollectiveAlgorithm,
    CostModel,
    algorithm_names,
    build_collective_schedule,
    collective_names,
    get_algorithm,
    register_collective_algorithm,
    select_algorithm,
)

__all__ = [
    "CollectiveContext",
    "TagAllocator",
    "contiguous_groups",
    "groups_from_topology",
    "mpi",
    "nccl",
    "hierarchical",
    "COLLECTIVE_ALGORITHMS",
    "AlgorithmChoice",
    "CollectiveAlgorithm",
    "CostModel",
    "algorithm_names",
    "build_collective_schedule",
    "collective_names",
    "get_algorithm",
    "register_collective_algorithm",
    "select_algorithm",
]

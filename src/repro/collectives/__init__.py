"""Point-to-point decompositions of collective operations.

The paper's schedule generators never emit "collective" vertices: every MPI
or NCCL collective is substituted by its point-to-point algorithm (sends,
receives and reduction computation) during GOAL generation (§3.1.1 stage
"Schedgen" and §3.1.2 Stage 3).  This package implements those algorithms
once so that both the MPI and the NCCL generators share them.

Two families are provided:

* :mod:`repro.collectives.mpi` — classic MPI algorithms operating on whole
  buffers (ring, recursive doubling, binomial trees, dissemination barrier,
  pairwise all-to-all),
* :mod:`repro.collectives.nccl` — NCCL-style chunked ring/tree algorithms
  whose schedules depend on the protocol (Simple / LL / LL128), the number
  of channels and the chunk size, mirroring the behaviour described in the
  paper's Fig. 4.

All algorithms operate on a :class:`~repro.collectives.context.CollectiveContext`
and return, per participating rank, the vertex handle that later operations
of that rank must depend on.
"""
from repro.collectives.context import CollectiveContext, TagAllocator
from repro.collectives import mpi, nccl

__all__ = ["CollectiveContext", "TagAllocator", "mpi", "nccl"]

"""Shared context for collective decomposition.

A :class:`CollectiveContext` bundles everything a collective algorithm needs
to emit its point-to-point schedule:

* the :class:`~repro.goal.builder.GoalBuilder` being populated,
* the ordered list of *global* rank ids forming the communicator (index in
  the list = rank within the communicator),
* a :class:`TagAllocator` producing collision-free message tags,
* cost parameters (reduction cost per byte, copy cost per byte) used to
  insert ``calc`` vertices where the algorithm performs local work.

Dependencies flow through ``DepMap`` dictionaries: ``{global_rank: vertex
handle}``.  Each algorithm takes the handles its first operations must wait
on and returns the handles subsequent operations should wait on.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.goal.builder import GoalBuilder, RankBuilder

DepMap = Dict[int, int]


class TagAllocator:
    """Hands out unique message-tag ranges.

    Every collective instance draws a fresh base tag; algorithms add small
    offsets (round numbers, chunk ids) below ``stride``.  This guarantees
    that two collectives — even identical ones executing concurrently on the
    same communicator — can never cross-match their messages under FIFO
    matching.
    """

    def __init__(self, start: int = 1, stride: int = 4096) -> None:
        if start < 0 or stride <= 0:
            raise ValueError("start must be >= 0 and stride positive")
        self._next = start
        self.stride = stride

    def next_base(self) -> int:
        """Return a fresh base tag and advance the allocator."""
        base = self._next
        self._next += self.stride
        return base


class CollectiveContext:
    """Execution context shared by all collective algorithms.

    Parameters
    ----------
    builder:
        The GOAL builder to emit operations into.
    ranks:
        Global rank ids of the communicator, in communicator order.
    tags:
        Tag allocator (a fresh one is created when omitted).
    reduce_ns_per_byte:
        Cost of combining one byte of data in a reduction (inserted as a
        ``calc`` after each received chunk that must be reduced).
    copy_ns_per_byte:
        Cost of a local copy (used by algorithms that stage data).
    cpu:
        Compute stream on which the collective's ops are placed.
    """

    def __init__(
        self,
        builder: GoalBuilder,
        ranks: Sequence[int],
        tags: Optional[TagAllocator] = None,
        reduce_ns_per_byte: float = 0.0,
        copy_ns_per_byte: float = 0.0,
        cpu: int = 0,
    ) -> None:
        if not ranks:
            raise ValueError("communicator must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError("communicator contains duplicate ranks")
        self.builder = builder
        self.ranks = list(ranks)
        self.tags = tags if tags is not None else TagAllocator()
        self.reduce_ns_per_byte = reduce_ns_per_byte
        self.copy_ns_per_byte = copy_ns_per_byte
        self.cpu = cpu

    # -- helpers ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.ranks)

    def rank_builder(self, comm_rank: int) -> RankBuilder:
        """Builder of the ``comm_rank``-th rank of the communicator."""
        return self.builder.rank(self.ranks[comm_rank])

    def global_rank(self, comm_rank: int) -> int:
        return self.ranks[comm_rank]

    def deps_of(self, deps: Optional[DepMap], comm_rank: int) -> List[int]:
        """Dependency handles (possibly empty) for a communicator rank."""
        if not deps:
            return []
        handle = deps.get(self.ranks[comm_rank])
        return [] if handle is None else [handle]

    def reduce_cost(self, nbytes: int) -> int:
        """Reduction ``calc`` cost for ``nbytes`` (0 when not configured)."""
        return int(round(self.reduce_ns_per_byte * nbytes))

    def copy_cost(self, nbytes: int) -> int:
        """Copy ``calc`` cost for ``nbytes`` (0 when not configured)."""
        return int(round(self.copy_ns_per_byte * nbytes))

    def join(self, handles_per_rank: Dict[int, List[int]]) -> DepMap:
        """Collapse several handles per global rank into one via dummy vertices.

        Ranks with a single handle keep it; ranks with several get a dummy
        join vertex.  Ranks with no handles are omitted from the result.
        """
        result: DepMap = {}
        for global_rank, handles in handles_per_rank.items():
            if not handles:
                continue
            if len(handles) == 1:
                result[global_rank] = handles[0]
            else:
                rb = self.builder.rank(global_rank)
                result[global_rank] = rb.join(handles, cpu=self.cpu)
        return result

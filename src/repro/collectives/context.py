"""Shared context for collective decomposition.

A :class:`CollectiveContext` bundles everything a collective algorithm needs
to emit its point-to-point schedule:

* the :class:`~repro.goal.builder.GoalBuilder` being populated,
* the ordered list of *global* rank ids forming the communicator (index in
  the list = rank within the communicator),
* a :class:`TagAllocator` producing collision-free message tags,
* cost parameters (reduction cost per byte, copy cost per byte) used to
  insert ``calc`` vertices where the algorithm performs local work.

Dependencies flow through ``DepMap`` dictionaries: ``{global_rank: vertex
handle}``.  Each algorithm takes the handles its first operations must wait
on and returns the handles subsequent operations should wait on.

Hierarchy metadata
------------------
A context optionally carries ``groups`` — a partition of the communicator
into *locality groups* (ranks sharing a node, a ToR switch, a dragonfly
router, ...).  Hierarchical algorithms (see
:mod:`repro.collectives.hierarchical`) split their communication into a
cheap intra-group phase and a narrow inter-group phase along this
partition; flat algorithms ignore it.  Groups are expressed in
*communicator* ranks (indices into ``ranks``) and are typically derived
from a placement with :func:`groups_from_topology` or
:func:`contiguous_groups`.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.goal.builder import GoalBuilder, RankBuilder

#: ``{global rank id -> vertex handle}`` — the exit vertex each rank's later
#: operations must depend on.
DepMap = Dict[int, int]


def contiguous_groups(size: int, group_size: int) -> List[List[int]]:
    """Partition ``size`` communicator ranks into contiguous locality groups.

    Parameters
    ----------
    size:
        Number of ranks in the communicator (must be positive).
    group_size:
        Ranks per group (must be positive).  The last group is smaller when
        ``group_size`` does not divide ``size``.

    Returns
    -------
    list of list of int
        Communicator-rank groups ``[[0..g-1], [g..2g-1], ...]`` — the
        natural hierarchy when ranks are packed onto nodes in order (e.g.
        consecutive GPU ids per node).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    return [
        list(range(start, min(start + group_size, size)))
        for start in range(0, size, group_size)
    ]


def groups_from_topology(
    ranks: Sequence[int],
    topology,
    placement: Optional[Dict[int, int]] = None,
) -> List[List[int]]:
    """Group a communicator's ranks by the first-hop switch of their host.

    Parameters
    ----------
    ranks:
        Global rank ids of the communicator, in communicator order.
    topology:
        A :class:`~repro.network.topology.base.Topology`; its
        :meth:`~repro.network.topology.base.Topology.host_groups` (hosts
        sharing a ToR / torus router / dragonfly router / Slim Fly router)
        define the locality unit.
    placement:
        Optional ``{global rank -> host id}`` mapping (e.g. from a
        :class:`~repro.placement.PlacementResult`).  Defaults to the
        identity: rank ``r`` runs on host ``r``.

    Returns
    -------
    list of list of int
        *Communicator-rank* groups (indices into ``ranks``), one group per
        first-hop switch that hosts at least one rank, in switch order.
        Suitable for :class:`CollectiveContext`'s ``groups`` parameter.
    """
    ranks = list(ranks)
    host_of = placement if placement is not None else {r: r for r in ranks}
    switch_groups = topology.host_groups()
    host_to_group: Dict[int, int] = {}
    for idx, hosts in enumerate(switch_groups):
        for h in hosts:
            host_to_group[h] = idx
    grouped: Dict[int, List[int]] = {}
    for comm_rank, global_rank in enumerate(ranks):
        host = host_of.get(global_rank, global_rank)
        if host not in host_to_group:
            raise ValueError(
                f"rank {global_rank} is placed on host {host}, which the "
                f"topology does not contain (num_hosts={topology.num_hosts})"
            )
        grouped.setdefault(host_to_group[host], []).append(comm_rank)
    return [grouped[idx] for idx in sorted(grouped)]


def project_groups(
    groups: Sequence[Sequence[int]], members: Sequence[int]
) -> List[List[int]]:
    """Project global-rank locality groups onto one communicator.

    Parameters
    ----------
    groups:
        Locality partition in *global* rank ids (e.g. ranks per node).
    members:
        Global rank ids of the communicator, in communicator order.

    Returns
    -------
    list of list of int
        *Communicator-rank* groups (indices into ``members``): each global
        group intersected with the communicator, empties dropped, and
        members outside every group appended as singleton groups — so the
        result always partitions the communicator and is directly usable
        as :class:`CollectiveContext`'s ``groups``.
    """
    index = {global_rank: i for i, global_rank in enumerate(members)}
    projected = [
        [index[r] for r in grp if r in index] for grp in groups
    ]
    projected = [g for g in projected if g]
    covered = {r for g in projected for r in g}
    projected.extend([i] for i in range(len(members)) if i not in covered)
    return projected


def validate_groups(groups: Sequence[Sequence[int]], size: int) -> List[List[int]]:
    """Check that ``groups`` is a partition of ``range(size)``; return a copy.

    Raises :class:`ValueError` on empty groups, out-of-range ranks,
    duplicates, or missing ranks.
    """
    result = [list(g) for g in groups]
    seen: List[int] = [r for g in result for r in g]
    if any(not g for g in result):
        raise ValueError("locality groups must be non-empty")
    if len(set(seen)) != len(seen):
        raise ValueError("locality groups contain duplicate ranks")
    if sorted(seen) != list(range(size)):
        raise ValueError(
            f"locality groups must partition all {size} communicator ranks; got {sorted(seen)}"
        )
    return result


class TagAllocator:
    """Hands out unique message-tag ranges.

    Every collective instance draws a fresh base tag; algorithms add small
    offsets (round numbers, chunk ids) below ``stride``.  This guarantees
    that two collectives — even identical ones executing concurrently on the
    same communicator — can never cross-match their messages under FIFO
    matching.
    """

    def __init__(self, start: int = 1, stride: int = 4096) -> None:
        if start < 0 or stride <= 0:
            raise ValueError("start must be >= 0 and stride positive")
        self._next = start
        self.stride = stride

    def next_base(self) -> int:
        """Return a fresh base tag and advance the allocator."""
        base = self._next
        self._next += self.stride
        return base


class CollectiveContext:
    """Execution context shared by all collective algorithms.

    Parameters
    ----------
    builder:
        The GOAL builder to emit operations into.
    ranks:
        Global rank ids of the communicator, in communicator order.
    tags:
        Tag allocator (a fresh one is created when omitted).
    reduce_ns_per_byte:
        Cost of combining one byte of data in a reduction (inserted as a
        ``calc`` after each received chunk that must be reduced).
    copy_ns_per_byte:
        Cost of a local copy (used by algorithms that stage data).
    cpu:
        Compute stream on which the collective's ops are placed.
    groups:
        Optional locality partition of the communicator, as a sequence of
        groups of *communicator* ranks (see :func:`contiguous_groups` /
        :func:`groups_from_topology`).  Hierarchical algorithms require it;
        flat algorithms ignore it.
    """

    def __init__(
        self,
        builder: GoalBuilder,
        ranks: Sequence[int],
        tags: Optional[TagAllocator] = None,
        reduce_ns_per_byte: float = 0.0,
        copy_ns_per_byte: float = 0.0,
        cpu: int = 0,
        groups: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if not ranks:
            raise ValueError("communicator must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError("communicator contains duplicate ranks")
        self.builder = builder
        self.ranks = list(ranks)
        self.tags = tags if tags is not None else TagAllocator()
        self.reduce_ns_per_byte = reduce_ns_per_byte
        self.copy_ns_per_byte = copy_ns_per_byte
        self.cpu = cpu
        self.groups = (
            validate_groups(groups, len(self.ranks)) if groups is not None else None
        )

    # -- helpers ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.ranks)

    def rank_builder(self, comm_rank: int) -> RankBuilder:
        """Builder of the ``comm_rank``-th rank of the communicator."""
        return self.builder.rank(self.ranks[comm_rank])

    def sub_context(
        self, comm_ranks: Sequence[int], cpu: Optional[int] = None
    ) -> "CollectiveContext":
        """Context of a sub-communicator over ``comm_ranks`` of this one.

        The sub-context shares this context's builder, tag allocator and
        cost parameters, so schedules it emits compose with (and never
        cross-match against) the parent's.  ``comm_ranks`` are ranks of
        *this* communicator; the sub-communicator orders them as given.
        Hierarchical algorithms use this to emit their intra-group and
        inter-group phases.
        """
        return CollectiveContext(
            self.builder,
            [self.ranks[r] for r in comm_ranks],
            tags=self.tags,
            reduce_ns_per_byte=self.reduce_ns_per_byte,
            copy_ns_per_byte=self.copy_ns_per_byte,
            cpu=self.cpu if cpu is None else cpu,
        )

    def global_rank(self, comm_rank: int) -> int:
        return self.ranks[comm_rank]

    def deps_of(self, deps: Optional[DepMap], comm_rank: int) -> List[int]:
        """Dependency handles (possibly empty) for a communicator rank."""
        if not deps:
            return []
        handle = deps.get(self.ranks[comm_rank])
        return [] if handle is None else [handle]

    def reduce_cost(self, nbytes: int) -> int:
        """Reduction ``calc`` cost for ``nbytes`` (0 when not configured)."""
        return int(round(self.reduce_ns_per_byte * nbytes))

    def copy_cost(self, nbytes: int) -> int:
        """Copy ``calc`` cost for ``nbytes`` (0 when not configured)."""
        return int(round(self.copy_ns_per_byte * nbytes))

    def join(self, handles_per_rank: Dict[int, List[int]]) -> DepMap:
        """Collapse several handles per global rank into one via dummy vertices.

        Ranks with a single handle keep it; ranks with several get a dummy
        join vertex.  Ranks with no handles are omitted from the result.
        """
        result: DepMap = {}
        for global_rank, handles in handles_per_rank.items():
            if not handles:
                continue
            if len(handles) == 1:
                result[global_rank] = handles[0]
            else:
                rb = self.builder.rank(global_rank)
                result[global_rank] = rb.join(handles, cpu=self.cpu)
        return result

"""Hierarchical and bandwidth-optimised collective algorithms.

This module extends the flat algorithm set of :mod:`repro.collectives.mpi`
with the algorithms real communication libraries switch to on large machines
(see ``docs/collectives.md`` for per-algorithm diagrams and cost formulas):

* :func:`recursive_halving_doubling_allreduce` — Rabenseifner's algorithm:
  a recursive-halving reduce-scatter followed by a recursive-doubling
  allgather.  Latency of the tree algorithms, bandwidth close to the ring.
* :func:`bucket_allreduce` — the bucket / 2D-ring allreduce: ranks form a
  near-square virtual grid; rings run along rows, then along columns over
  the scattered shards.  Cuts the ring's ``2(N-1)`` step count to
  ``2(a-1) + 2(b-1)`` for an ``a x b`` grid.
* :func:`hierarchical_rs_allreduce` — two-level allreduce over the
  context's locality groups: intra-group ring reduce-scatter, one
  inter-group ring per shard owner, intra-group ring allgather.  The shape
  NCCL/Horovod use across NVLink islands.
* :func:`hierarchical_leader_allreduce` — two-level allreduce for
  arbitrary group shapes: binomial reduce to a group leader, ring allreduce
  across leaders, binomial broadcast back.
* :func:`bruck_allgather` — Bruck's log-round allgather (latency-optimal
  for small contributions).
* :func:`scatter_allgather_bcast` — van de Geijn's large-message broadcast:
  binomial scatter plus ring allgather.

All functions follow the conventions of :mod:`repro.collectives.mpi`: sizes
are in bytes (the *total* buffer of the collective), emitted messages are
clamped to one byte, and each returns a ``DepMap`` of exit vertex handles
per participating global rank.

The hierarchical algorithms read the locality partition from
``ctx.groups`` (see :class:`~repro.collectives.context.CollectiveContext`)
and raise :class:`ValueError` when the context carries none — derive one
with :func:`~repro.collectives.context.groups_from_topology` or
:func:`~repro.collectives.context.contiguous_groups`.
"""
from __future__ import annotations

from typing import List, Optional

from repro.collectives import mpi as _mpi
from repro.collectives.context import CollectiveContext, DepMap, contiguous_groups

_MIN_MSG = 1


def _msg(size: int) -> int:
    """Clamp message sizes to at least one byte (backends need positive sizes)."""
    return max(_MIN_MSG, size)


def _initial_last(ctx: CollectiveContext, deps: Optional[DepMap]) -> List[Optional[int]]:
    """Per-communicator-rank entry handles (``None`` where a rank has none)."""
    last: List[Optional[int]] = [None] * ctx.size
    for r in range(ctx.size):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None
    return last


def _require_groups(ctx: CollectiveContext, algorithm: str) -> List[List[int]]:
    if ctx.groups is None:
        raise ValueError(
            f"{algorithm} is a hierarchical algorithm and needs locality groups; "
            "construct the CollectiveContext with groups= (see "
            "repro.collectives.context.groups_from_topology / contiguous_groups)"
        )
    return ctx.groups


# ---------------------------------------------------------------------------
# Rabenseifner: recursive halving reduce-scatter + recursive doubling allgather
# ---------------------------------------------------------------------------
def recursive_halving_doubling_allreduce(
    ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None
) -> DepMap:
    """Rabenseifner's allreduce of a ``size``-byte buffer.

    The power-of-two core runs ``log2(p)`` recursive-halving rounds (round
    at distance ``d`` exchanges ``size * d / p`` bytes and reduces them)
    followed by ``log2(p)`` recursive-doubling allgather rounds with the
    mirrored sizes, moving ``~2 * size * (p-1)/p`` bytes per rank in
    ``2 * log2(p)`` rounds.  Non-power-of-two communicators use the same
    fold-in/fold-out scheme as
    :func:`repro.collectives.mpi.recursive_doubling_allreduce`.

    Parameters
    ----------
    ctx:
        Collective context (communicator, builder, tags, costs).
    size:
        Total buffer bytes being reduced.
    deps:
        Entry dependencies per global rank.

    Returns
    -------
    DepMap
        Exit vertex handle per global rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    pow2 = 1
    while pow2 * 2 <= n:
        pow2 *= 2
    rem = n - pow2
    base_tag = ctx.tags.next_base()
    last = _initial_last(ctx, deps)

    def reqs(r: int) -> List[int]:
        return [last[r]] if last[r] is not None else []

    # fold-in: extra ranks contribute their whole buffer to a partner
    for extra in range(rem):
        a, b = pow2 + extra, extra
        tag = base_tag + extra
        s = ctx.rank_builder(a).send(_msg(size), dst=ctx.global_rank(b), tag=tag, cpu=ctx.cpu, requires=reqs(a))
        rcv = ctx.rank_builder(b).recv(_msg(size), src=ctx.global_rank(a), tag=tag, cpu=ctx.cpu, requires=reqs(b))
        last[a] = s
        tail = rcv
        if ctx.reduce_ns_per_byte:
            tail = ctx.rank_builder(b).calc(ctx.reduce_cost(size), cpu=ctx.cpu, requires=[rcv])
        last[b] = tail

    round_idx = 0

    def _exchange(distance: int, nbytes: int, reduce_recv: bool) -> None:
        nonlocal round_idx
        tag = base_tag + rem + round_idx
        new_last = list(last)
        for vr in range(pow2):
            partner = vr ^ distance
            if partner >= pow2:
                continue
            rb = ctx.rank_builder(vr)
            s = rb.send(_msg(nbytes), dst=ctx.global_rank(partner), tag=tag, cpu=ctx.cpu, requires=reqs(vr))
            rcv = rb.recv(_msg(nbytes), src=ctx.global_rank(partner), tag=tag, cpu=ctx.cpu, requires=reqs(vr))
            tail = rb.join([s, rcv], cpu=ctx.cpu)
            if reduce_recv and ctx.reduce_ns_per_byte:
                tail = rb.calc(ctx.reduce_cost(nbytes), cpu=ctx.cpu, requires=[tail])
            new_last[vr] = tail
        last[:] = new_last
        round_idx += 1

    # reduce-scatter by recursive halving: exchanged size halves each round
    d = pow2 // 2
    while d >= 1:
        _exchange(d, size * d // pow2, reduce_recv=True)
        d //= 2

    # allgather by recursive doubling: mirrored sizes, no reduction
    d = 1
    while d < pow2:
        _exchange(d, size * d // pow2, reduce_recv=False)
        d *= 2

    # fold-out: partners return the finished result to the extra ranks
    for extra in range(rem):
        a, b = extra, pow2 + extra
        tag = base_tag + rem + round_idx + extra
        s = ctx.rank_builder(a).send(_msg(size), dst=ctx.global_rank(b), tag=tag, cpu=ctx.cpu, requires=reqs(a))
        rcv = ctx.rank_builder(b).recv(_msg(size), src=ctx.global_rank(a), tag=tag, cpu=ctx.cpu, requires=reqs(b))
        last[a] = s
        last[b] = rcv

    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


# ---------------------------------------------------------------------------
# two-level core shared by the bucket and hierarchical allreduces
# ---------------------------------------------------------------------------
def _two_level_allreduce(
    ctx: CollectiveContext,
    size: int,
    groups: List[List[int]],
    deps: Optional[DepMap],
) -> DepMap:
    """Ring reduce-scatter per group, shard rings across groups, ring allgather.

    ``groups`` partition the communicator ranks.  Phase 2 forms one ring per
    member *position*: position ``j`` of every group that has one exchanges
    its shard (``~size / len(group)`` bytes) with the other groups.  Groups
    of unequal size simply skip the positions they lack.
    """
    groups = [list(g) for g in groups if g]
    exits: DepMap = dict(deps) if deps else {}

    # phase 1 — intra-group ring reduce-scatter (each member ends owning a shard)
    mid: DepMap = dict(exits)
    for grp in groups:
        if len(grp) == 1:
            continue
        out = _mpi.ring_reduce_scatter(ctx.sub_context(grp), size, deps)
        mid.update(out)

    # phase 2 — per shard position, a ring allreduce across the groups
    after: DepMap = dict(mid)
    if len(groups) > 1:
        max_g = max(len(g) for g in groups)
        for position in range(max_g):
            members = [grp[position] for grp in groups if len(grp) > position]
            if len(members) < 2:
                continue
            holders = [len(grp) for grp in groups if len(grp) > position]
            shard = max(1, size // max(holders))
            out = _mpi.ring_allreduce(ctx.sub_context(members), shard, mid)
            after.update(out)

    # phase 3 — intra-group ring allgather of the full buffer
    result: DepMap = dict(after)
    for grp in groups:
        if len(grp) == 1:
            continue
        out = _mpi.ring_allgather(ctx.sub_context(grp), size, after)
        result.update(out)
    return {gr: h for gr, h in result.items() if h is not None}


def bucket_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Bucket (2D-ring) allreduce over a near-square virtual grid.

    The communicator is cut into contiguous rows of ``cols = N // rows``
    ranks where ``rows`` is the largest divisor of ``N`` not exceeding
    ``sqrt(N)`` (see :func:`grid_shape`); rings then run along rows
    (reduce-scatter and allgather of ``size`` bytes) and along columns
    (allreduce of the ``size / cols`` shards).  A prime ``N`` degenerates
    to the flat ring.  The grid is *virtual*: unlike the hierarchical
    variants it ignores placement, trading locality for a regular shape.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    rows, cols = grid_shape(n)
    return _two_level_allreduce(ctx, size, contiguous_groups(n, cols), deps)


def grid_shape(n: int) -> tuple:
    """Near-square factorisation ``(rows, cols)`` of ``n`` with ``rows <= cols``.

    ``rows`` is the largest divisor of ``n`` not exceeding ``sqrt(n)``
    (1 when ``n`` is prime, making the bucket allreduce a flat ring).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rows = 1
    d = 1
    while d * d <= n:
        if n % d == 0:
            rows = d
        d += 1
    return rows, n // rows


def hierarchical_rs_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Two-level allreduce over the context's locality groups.

    Phase 1: ring reduce-scatter of ``size`` bytes inside every locality
    group, so each member owns one reduced shard (``~size / g`` bytes).
    Phase 2: member position ``j`` of every group runs a ring allreduce of
    its shard with position ``j`` of the other groups — only these shards
    cross the group boundary.  Phase 3: ring allgather of the full buffer
    inside every group.  Requires ``ctx.groups``; groups of unequal size
    skip the shard positions they lack.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    return _two_level_allreduce(ctx, size, _require_groups(ctx, "hier_rs"), deps)


def hierarchical_leader_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Leader-based two-level allreduce over the context's locality groups.

    Phase 1: binomial-tree reduce of the full ``size``-byte buffer to each
    group's first member (the *leader*).  Phase 2: ring allreduce of the
    full buffer across the leaders — one rank per group on the fabric.
    Phase 3: binomial broadcast from each leader back into its group.
    Works for any group shape (the Horovod hierarchical-allreduce layout);
    moves more intra-group bytes than :func:`hierarchical_rs_allreduce`
    but keeps exactly one fabric participant per group.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    groups = [list(g) for g in _require_groups(ctx, "hier_leader") if g]

    mid: DepMap = dict(deps) if deps else {}
    for grp in groups:
        if len(grp) == 1:
            continue
        out = _mpi.binomial_reduce(ctx.sub_context(grp), size, root=0, deps=deps)
        mid.update(out)

    after: DepMap = dict(mid)
    leaders = [grp[0] for grp in groups]
    if len(leaders) > 1:
        out = _mpi.ring_allreduce(ctx.sub_context(leaders), size, mid)
        after.update(out)

    result: DepMap = dict(after)
    for grp in groups:
        if len(grp) == 1:
            continue
        out = _mpi.binomial_bcast(ctx.sub_context(grp), size, root=0, deps=after)
        result.update(out)
    return {gr: h for gr, h in result.items() if h is not None}


# ---------------------------------------------------------------------------
# Bruck allgather and van de Geijn broadcast
# ---------------------------------------------------------------------------
def bruck_allgather(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Bruck's allgather of ``size`` total bytes in ``ceil(log2 N)`` rounds.

    In round ``k`` every rank sends the ``min(2^k, N - 2^k)`` blocks it has
    accumulated (``size / N`` bytes each) to rank ``r - 2^k`` and receives
    as many from rank ``r + 2^k``.  Latency-optimal for small per-rank
    contributions; the ring allgather moves the same bytes in ``N - 1``
    rounds but never sends a block twice.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    last = _initial_last(ctx, deps)
    k = 0
    dist = 1
    while dist < n:
        tag = base_tag + k
        nbytes = _msg(min(dist, n - dist) * size // n)
        new_last: List[Optional[int]] = [None] * n
        for r in range(n):
            dst = (r - dist) % n
            src = (r + dist) % n
            rb = ctx.rank_builder(r)
            reqs = [last[r]] if last[r] is not None else []
            s = rb.send(nbytes, dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu, requires=reqs)
            rcv = rb.recv(nbytes, src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu, requires=reqs)
            new_last[r] = rb.join([s, rcv], cpu=ctx.cpu)
        last = new_last
        dist *= 2
        k += 1
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def binomial_scatter(
    ctx: CollectiveContext, size: int, root: int = 0, deps: Optional[DepMap] = None
) -> DepMap:
    """Binomial-tree scatter: the root's ``size``-byte buffer is halved down the tree.

    In the round at offset ``mask`` (descending powers of two), virtual
    rank ``vr < mask`` sends the segment destined for virtual ranks
    ``[vr + mask, min(vr + 2*mask, N))`` — about ``size * mask / N`` bytes —
    to ``vr + mask``.  Total traffic ``~size`` at the root, halving at each
    tree level.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    chunks = _mpi._chunk_sizes(size, n)
    base_tag = ctx.tags.next_base()
    last = _initial_last(ctx, deps)

    def unrot(vr: int) -> int:
        return (vr + root) % n

    mask = 1
    while mask < n:
        mask <<= 1
    mask >>= 1
    round_idx = 0
    while mask >= 1:
        tag = base_tag + round_idx
        for vr in range(mask):
            peer = vr + mask
            if peer >= n:
                continue
            seg = _msg(sum(chunks[peer : min(peer + mask, n)]))
            src, dst = unrot(vr), unrot(peer)
            sb, db = ctx.rank_builder(src), ctx.rank_builder(dst)
            s = sb.send(
                seg, dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu,
                requires=[last[src]] if last[src] is not None else [],
            )
            rcv = db.recv(
                seg, src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu,
                requires=[last[dst]] if last[dst] is not None else [],
            )
            last[src] = s
            last[dst] = rcv
        mask >>= 1
        round_idx += 1
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def scatter_allgather_bcast(
    ctx: CollectiveContext, size: int, root: int = 0, deps: Optional[DepMap] = None
) -> DepMap:
    """van de Geijn broadcast: binomial scatter, then ring allgather.

    Bandwidth-optimal for large messages: every rank sends and receives
    ``~2 * size * (N-1)/N`` bytes instead of the binomial tree's
    ``size * log2(N)`` at the root's children, at the price of ``N - 1``
    extra latency-bound allgather rounds.
    """
    mid = binomial_scatter(ctx, size, root=root, deps=deps)
    return _mpi.ring_allgather(ctx, size, mid)

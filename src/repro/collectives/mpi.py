"""MPI-style collective algorithms decomposed into point-to-point GOAL ops.

These are the algorithms Schedgen substitutes for MPI collectives during
GOAL generation (paper §3.1.1).  Each function emits sends/receives (and
reduction ``calc`` vertices when the context defines a per-byte reduction
cost) into the context's builder and returns a ``DepMap`` with one handle
per participating global rank: the vertex all later operations of that rank
must depend on.

All byte counts refer to the full buffer size of the collective (``count *
datatype_size`` in MPI terms), except where a parameter name says
``per_rank`` / ``per_pair``.

Control messages (barriers, zero-byte collectives) are emitted as 1-byte
messages because the network backends model only positive-size messages.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from repro.collectives.context import CollectiveContext, DepMap

_MIN_MSG = 1


def _chunk_sizes(total: int, parts: int) -> List[int]:
    """Split ``total`` bytes into ``parts`` near-equal chunks (first chunks larger)."""
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def _msg(size: int) -> int:
    """Clamp message sizes to at least one byte."""
    return max(_MIN_MSG, size)


# ---------------------------------------------------------------------------
# point-to-point building blocks
# ---------------------------------------------------------------------------
def send_recv(
    ctx: CollectiveContext,
    src_comm_rank: int,
    dst_comm_rank: int,
    size: int,
    deps: Optional[DepMap] = None,
    tag: Optional[int] = None,
) -> DepMap:
    """A single matched send/recv pair between two communicator ranks.

    Parameters
    ----------
    ctx:
        Collective context (communicator, builder, tags, costs).
    src_comm_rank / dst_comm_rank:
        Communicator ranks of sender and receiver (must differ).
    size:
        Message size in bytes (clamped to 1 like all emitted messages).
    deps:
        Entry dependencies per global rank.
    tag:
        Explicit message tag; a fresh collision-free base is drawn from the
        context's allocator when omitted.

    Returns
    -------
    DepMap
        ``{sender global rank: send handle, receiver global rank: recv handle}``.
    """
    if src_comm_rank == dst_comm_rank:
        raise ValueError("send_recv requires distinct ranks")
    tag = ctx.tags.next_base() if tag is None else tag
    src_global = ctx.global_rank(src_comm_rank)
    dst_global = ctx.global_rank(dst_comm_rank)
    sb = ctx.rank_builder(src_comm_rank)
    rb = ctx.rank_builder(dst_comm_rank)
    s = sb.send(_msg(size), dst=dst_global, tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, src_comm_rank))
    r = rb.recv(_msg(size), src=src_global, tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, dst_comm_rank))
    return {src_global: s, dst_global: r}


# ---------------------------------------------------------------------------
# reduce-scatter / allgather rings (building blocks of the ring allreduce)
# ---------------------------------------------------------------------------
def ring_reduce_scatter(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Ring reduce-scatter of ``size`` total bytes.

    ``N - 1`` steps of ``size / N``-byte chunk exchanges (plus a reduction
    ``calc`` per received chunk when the context prices reductions); after
    the last step every rank owns one fully reduced chunk.  Returns the
    exit handle per global rank.
    """
    return _ring_passes(ctx, size, deps, passes=1, reduce_first_pass=True)


def ring_allgather(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Ring allgather of a buffer of ``size`` *total* bytes.

    Each rank contributes ``size / N`` bytes; chunks circulate around the
    ring for ``N - 1`` steps.  Returns the exit handle per global rank.
    """
    return _ring_passes(ctx, size, deps, passes=1, reduce_first_pass=False)


def ring_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Ring allreduce of ``size`` total bytes: reduce-scatter then allgather.

    This is the bandwidth-optimal algorithm used by both MPI libraries (for
    large messages) and NCCL's ring algorithm; every rank sends and receives
    ``2 * size * (N-1) / N`` bytes over ``2 * (N-1)`` steps.  Returns the
    exit handle per global rank.
    """
    return _ring_passes(ctx, size, deps, passes=2, reduce_first_pass=True)


def _ring_passes(
    ctx: CollectiveContext,
    size: int,
    deps: Optional[DepMap],
    passes: int,
    reduce_first_pass: bool,
) -> DepMap:
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    chunks = _chunk_sizes(size, n)
    base_tag = ctx.tags.next_base()
    # last completed vertex per communicator rank
    last: List[Optional[int]] = [None for _ in range(n)]
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None

    total_steps = passes * (n - 1)
    for step in range(total_steps):
        in_reduce_pass = reduce_first_pass and step < (n - 1)
        new_last: List[Optional[int]] = [None] * n
        for r in range(n):
            dst = (r + 1) % n
            src = (r - 1) % n
            # chunk indices follow the standard ring schedule
            send_chunk = (r - step) % n
            recv_chunk = (r - step - 1) % n
            tag = base_tag + step
            rb = ctx.rank_builder(r)
            reqs = [last[r]] if last[r] is not None else []
            s = rb.send(
                _msg(chunks[send_chunk]), dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu, requires=reqs
            )
            rcv = rb.recv(
                _msg(chunks[recv_chunk]), src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu, requires=reqs
            )
            tail = rb.join([s, rcv], cpu=ctx.cpu)
            if in_reduce_pass and ctx.reduce_ns_per_byte:
                tail = rb.calc(ctx.reduce_cost(chunks[recv_chunk]), cpu=ctx.cpu, requires=[tail])
            new_last[r] = tail
        last = new_last
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


# ---------------------------------------------------------------------------
# recursive doubling allreduce
# ---------------------------------------------------------------------------
def recursive_doubling_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Recursive-doubling allreduce of ``size`` bytes (latency-optimal).

    ``ceil(log2 N)`` rounds in which every rank exchanges the *full*
    ``size``-byte buffer with a partner at doubling distance.  Non-power-of-
    two communicator sizes use the standard fold: the first ``2 * r`` ranks
    pair up so that ``r`` extra ranks fold their data into a partner before
    the power-of-two exchange and receive the result after it.  Returns the
    exit handle per global rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    pow2 = 1
    while pow2 * 2 <= n:
        pow2 *= 2
    rem = n - pow2
    base_tag = ctx.tags.next_base()

    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None

    def reqs(r: int) -> List[int]:
        return [last[r]] if last[r] is not None else []

    # fold-in phase: extra ranks send their contribution to their partner
    for extra in range(rem):
        a = pow2 + extra  # extra rank
        b = extra  # partner inside the power-of-two group
        tag = base_tag + extra
        s = ctx.rank_builder(a).send(_msg(size), dst=ctx.global_rank(b), tag=tag, cpu=ctx.cpu, requires=reqs(a))
        rcv = ctx.rank_builder(b).recv(_msg(size), src=ctx.global_rank(a), tag=tag, cpu=ctx.cpu, requires=reqs(b))
        last[a] = s
        tail = rcv
        if ctx.reduce_ns_per_byte:
            tail = ctx.rank_builder(b).calc(ctx.reduce_cost(size), cpu=ctx.cpu, requires=[rcv])
        last[b] = tail

    # power-of-two exchange phase: in every round each rank both sends to and
    # receives from its partner; both ops depend only on the previous round.
    distance = 1
    round_idx = 0
    while distance < pow2:
        tag = base_tag + rem + round_idx
        new_last = list(last)
        for r in range(pow2):
            partner = r ^ distance
            if partner >= pow2:
                continue
            rb = ctx.rank_builder(r)
            s = rb.send(_msg(size), dst=ctx.global_rank(partner), tag=tag, cpu=ctx.cpu, requires=reqs(r))
            rcv = rb.recv(_msg(size), src=ctx.global_rank(partner), tag=tag, cpu=ctx.cpu, requires=reqs(r))
            tail = rb.join([s, rcv], cpu=ctx.cpu)
            if ctx.reduce_ns_per_byte:
                tail = rb.calc(ctx.reduce_cost(size), cpu=ctx.cpu, requires=[tail])
            new_last[r] = tail
        last = new_last
        distance *= 2
        round_idx += 1

    # fold-out phase: partners send the final result back to the extra ranks
    for extra in range(rem):
        a = extra
        b = pow2 + extra
        tag = base_tag + rem + round_idx + extra
        s = ctx.rank_builder(a).send(_msg(size), dst=ctx.global_rank(b), tag=tag, cpu=ctx.cpu, requires=reqs(a))
        rcv = ctx.rank_builder(b).recv(_msg(size), src=ctx.global_rank(a), tag=tag, cpu=ctx.cpu, requires=reqs(b))
        last[a] = s
        last[b] = rcv

    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


# ---------------------------------------------------------------------------
# binomial trees: bcast / reduce, and the composed allreduce
# ---------------------------------------------------------------------------
def binomial_bcast(ctx: CollectiveContext, size: int, root: int = 0, deps: Optional[DepMap] = None) -> DepMap:
    """Binomial-tree broadcast of ``size`` bytes from communicator rank ``root``.

    ``ceil(log2 N)`` rounds; the holder set doubles each round, every
    transfer moving the full buffer.  Returns the exit handle per global
    rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None

    # operate in a rotated space where root becomes virtual rank 0
    def unrot(r: int) -> int:
        return (r + root) % n

    # round with offset ``mask``: virtual ranks < mask already hold the data
    # and each forwards it to virtual rank ``vr + mask``.
    mask = 1
    round_idx = 0
    while mask < n:
        tag = base_tag + round_idx
        for vr in range(mask):
            peer = vr + mask
            if peer >= n:
                continue
            src, dst = unrot(vr), unrot(peer)
            sb = ctx.rank_builder(src)
            db = ctx.rank_builder(dst)
            s = sb.send(
                _msg(size), dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu,
                requires=[last[src]] if last[src] is not None else [],
            )
            rcv = db.recv(
                _msg(size), src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu,
                requires=[last[dst]] if last[dst] is not None else [],
            )
            last[src] = s
            last[dst] = rcv
        mask <<= 1
        round_idx += 1
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def binomial_reduce(ctx: CollectiveContext, size: int, root: int = 0, deps: Optional[DepMap] = None) -> DepMap:
    """Binomial-tree reduction of ``size`` bytes to communicator rank ``root``.

    The mirror of :func:`binomial_bcast`: children send the full buffer up
    the same virtual tree, parents insert a reduction ``calc`` per received
    buffer when the context prices reductions.  Returns the exit handle per
    global rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None

    def unrot(r: int) -> int:
        return (r + root) % n

    # reverse of the broadcast tree: children send towards the root
    mask = 1
    rounds: List[int] = []
    while mask < n:
        rounds.append(mask)
        mask <<= 1
    round_idx = 0
    for mask in reversed(rounds):
        tag = base_tag + round_idx
        for vr in range(mask):
            peer = vr + mask
            if peer >= n:
                continue
            # peer (child) sends to vr (parent)
            src, dst = unrot(peer), unrot(vr)
            sb = ctx.rank_builder(src)
            db = ctx.rank_builder(dst)
            s = sb.send(
                _msg(size), dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu,
                requires=[last[src]] if last[src] is not None else [],
            )
            rcv = db.recv(
                _msg(size), src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu,
                requires=[last[dst]] if last[dst] is not None else [],
            )
            last[src] = s
            tail = rcv
            if ctx.reduce_ns_per_byte:
                tail = db.calc(ctx.reduce_cost(size), cpu=ctx.cpu, requires=[rcv])
            last[dst] = tail
        round_idx += 1
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def reduce_bcast_allreduce(ctx: CollectiveContext, size: int, deps: Optional[DepMap] = None) -> DepMap:
    """Allreduce of ``size`` bytes: binomial reduce to rank 0, then broadcast.

    ``2 * ceil(log2 N)`` full-buffer rounds.  Returns the exit handle per
    global rank.
    """
    mid = binomial_reduce(ctx, size, root=0, deps=deps)
    return binomial_bcast(ctx, size, root=0, deps=mid)


# ---------------------------------------------------------------------------
# allgather / gather / scatter / alltoall / barrier
# ---------------------------------------------------------------------------
def linear_gather(ctx: CollectiveContext, size_per_rank: int, root: int = 0, deps: Optional[DepMap] = None) -> DepMap:
    """Linear gather: every non-root rank sends ``size_per_rank`` bytes to the root.

    ``N - 1`` concurrent transfers (distinct tags), serialised only by the
    root's NIC in the backends.  Returns the exit handle per global rank.
    """
    n = ctx.size
    base_tag = ctx.tags.next_base()
    result: Dict[int, List[int]] = {ctx.global_rank(r): list(ctx.deps_of(deps, r)) for r in range(n)}
    root_global = ctx.global_rank(root)
    rb_root = ctx.rank_builder(root)
    for r in range(n):
        if r == root:
            continue
        tag = base_tag + r
        sb = ctx.rank_builder(r)
        s = sb.send(_msg(size_per_rank), dst=root_global, tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, r))
        rcv = rb_root.recv(
            _msg(size_per_rank), src=ctx.global_rank(r), tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, root)
        )
        result[ctx.global_rank(r)].append(s)
        result[root_global].append(rcv)
    return ctx.join(result)


def linear_scatter(ctx: CollectiveContext, size_per_rank: int, root: int = 0, deps: Optional[DepMap] = None) -> DepMap:
    """Linear scatter: the root sends each rank its ``size_per_rank``-byte slice.

    The dual of :func:`linear_gather`.  Returns the exit handle per global
    rank.
    """
    n = ctx.size
    base_tag = ctx.tags.next_base()
    result: Dict[int, List[int]] = {ctx.global_rank(r): list(ctx.deps_of(deps, r)) for r in range(n)}
    root_global = ctx.global_rank(root)
    rb_root = ctx.rank_builder(root)
    for r in range(n):
        if r == root:
            continue
        tag = base_tag + r
        s = rb_root.send(
            _msg(size_per_rank), dst=ctx.global_rank(r), tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, root)
        )
        rcv = ctx.rank_builder(r).recv(
            _msg(size_per_rank), src=root_global, tag=tag, cpu=ctx.cpu, requires=ctx.deps_of(deps, r)
        )
        result[root_global].append(s)
        result[ctx.global_rank(r)].append(rcv)
    return ctx.join(result)


def pairwise_alltoall(ctx: CollectiveContext, size_per_pair: int, deps: Optional[DepMap] = None) -> DepMap:
    """Pairwise-exchange all-to-all: N-1 rounds, rank ``r`` exchanges with ``r xor/offset``.

    Uses the linear-shift schedule (round ``k``: send to ``(r+k) % N``,
    receive from ``(r-k) % N``), the common choice for large messages.
    ``size_per_pair`` is the bytes every rank sends to every *other* rank
    (``N - 1`` rounds, one exchange per rank per round).  Returns the exit
    handle per global rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None
    for k in range(1, n):
        tag = base_tag + k
        new_last: List[Optional[int]] = [None] * n
        for r in range(n):
            dst = (r + k) % n
            src = (r - k) % n
            rb = ctx.rank_builder(r)
            reqs = [last[r]] if last[r] is not None else []
            s = rb.send(_msg(size_per_pair), dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu, requires=reqs)
            rcv = rb.recv(_msg(size_per_pair), src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu, requires=reqs)
            new_last[r] = rb.join([s, rcv], cpu=ctx.cpu)
        last = new_last
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def dissemination_barrier(ctx: CollectiveContext, deps: Optional[DepMap] = None) -> DepMap:
    """Dissemination barrier: ``ceil(log2 N)`` rounds of 1-byte messages.

    Round ``k`` notifies the rank at distance ``2^k``; after the last round
    every rank transitively depends on every other.  Returns the exit
    handle per global rank.
    """
    n = ctx.size
    if n == 1:
        return dict(deps) if deps else {}
    base_tag = ctx.tags.next_base()
    last: List[Optional[int]] = [None] * n
    for r in range(n):
        handles = ctx.deps_of(deps, r)
        last[r] = handles[0] if handles else None
    k = 0
    dist = 1
    while dist < n:
        tag = base_tag + k
        new_last: List[Optional[int]] = [None] * n
        for r in range(n):
            dst = (r + dist) % n
            src = (r - dist) % n
            rb = ctx.rank_builder(r)
            reqs = [last[r]] if last[r] is not None else []
            s = rb.send(_MIN_MSG, dst=ctx.global_rank(dst), tag=tag, cpu=ctx.cpu, requires=reqs)
            rcv = rb.recv(_MIN_MSG, src=ctx.global_rank(src), tag=tag, cpu=ctx.cpu, requires=reqs)
            new_last[r] = rb.join([s, rcv], cpu=ctx.cpu)
        last = new_last
        dist *= 2
        k += 1
    return {ctx.global_rank(r): last[r] for r in range(n) if last[r] is not None}


def allgather(ctx: CollectiveContext, size_per_rank: int, deps: Optional[DepMap] = None) -> DepMap:
    """Allgather via the ring algorithm.

    ``size_per_rank`` is each rank's *contribution* in bytes (the gathered
    total is ``size_per_rank * N``, which is what :func:`ring_allgather`
    takes).  Returns the exit handle per global rank.
    """
    return ring_allgather(ctx, size_per_rank * ctx.size, deps)


# registry used by the MPI schedule generator ---------------------------------
ALLREDUCE_ALGORITHMS = {
    "ring": ring_allreduce,
    "recursive_doubling": recursive_doubling_allreduce,
    "reduce_bcast": reduce_bcast_allreduce,
}

BCAST_ALGORITHMS = {
    "binomial": binomial_bcast,
}

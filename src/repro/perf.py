"""Benchmark harness behind ``atlahs bench``: the repo's perf trajectory.

Runs a standard workload suite on both backends, measures wall-clock
seconds (best of ``repeats`` runs), executed events per second and peak
RSS, and writes the results to ``BENCH_<rev>.json``.  Committing one such
file per perf-relevant change gives the project a tracked baseline: every
future optimization (or regression) is judged against the recorded
numbers by :func:`compare_to_baseline`, and CI runs the quick variant of
the suite with a tolerant regression gate (see ``.github/workflows/
ci.yml``).

The suite:

* ``fig8_ai_lgs`` / ``fig8_ai_htsim`` — the paper's §5.2 simulator-runtime
  workload (Llama-7B data-parallel training trace) on each backend,
* ``alltoall_lgs`` — a send-dense collective front, the shape the LogGOPS
  batched/vectorized eager path targets,
* ``alltoall_htsim_adaptive`` — the packet backend under adaptive (UGAL)
  routing, exercising the cached route tables and the vectorized route
  costs,
* ``cotenant_2job_htsim`` — two all-to-all jobs merged by the co-tenancy
  engine onto a fragmented placement of an oversubscribed fat tree, with
  per-job attribution enabled (measures the multi-job merge plus the
  job-tagged stats path),
* ``faulted_alltoall_htsim`` — the all-to-all on a fat tree with a quarter
  of the core cables failed from time 0 (measures the alive-masked route
  tables and the per-packet fault checks of the forwarding loop),
* ``faulted_allreduce_htsim_sh2`` — a recursive-doubling allreduce on the
  two-shard conservative-window engine with a timed link flap mid-run
  (measures the barrier fault-epoch machinery: window clamping at epochs,
  the cross-shard re-pick sweep and boundary-route re-encoding),
* ``allreduce16k_lgs`` / ``allreduce16k_htsim`` — ROADMAP item 2's
  datacenter-scale acceptance case: a 16384-endpoint recursive-doubling
  allreduce on a 512-ToR fat tree, on each backend.  These two cases
  track *memory* as much as speed: they run with the default bounded
  route caches and structural synthesis, and their ``peak_rss_kb`` is
  gated in CI against the committed baseline (see docs/scaling.md).
  They are deliberately ordered last — ``ru_maxrss`` is a process-lifetime
  high-water mark, so only the largest cases' RSS numbers are meaningful,
* ``allreduce16k_htsim_sh4`` — the 16k-endpoint packet case again on the
  sharded conservative-window engine (``SimulationConfig.shards=4``, one
  worker process per shard); compared against ``allreduce16k_htsim`` this
  is the tracked speedup of the parallel engine, and its ``peak_rss_kb``
  additionally covers the shard workers via ``RUSAGE_CHILDREN``.

``--quick`` shrinks every case (used by the CI smoke job); quick numbers
are only comparable to other quick numbers.  The 16k-endpoint cases keep
their 16384 ranks in quick mode (scale is their point) and shrink only the
payload.

Use with a profiler (see ``docs/performance.md`` for the recipe)::

    PYTHONPATH=src python -m cProfile -s cumulative -m repro.cli bench --quick
"""
from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.network.config import LogGOPSParams, SimulationConfig
from repro.network.faults import LINK_DOWN, LINK_UP, FaultEvent, FaultSchedule
from repro.scheduler import GoalScheduler

#: Format version of the BENCH json files.
BENCH_FORMAT = 1


@dataclass(frozen=True)
class BenchCase:
    """One benchmark case: a schedule factory plus a backend configuration."""

    name: str
    backend: str
    make_schedule: Callable[[], object]
    config: SimulationConfig
    repeats: int = 3


def _fig8_schedule(quick: bool):
    """The paper's Fig. 8 simulator-runtime workload (Llama-7B DP training)."""
    from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
    from repro.schedgen import nccl_trace_to_goal

    if quick:
        model = llama_7b().scaled(0.05)
        par = ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=16)
    else:
        model = llama_7b().scaled(0.05)
        par = ParallelismConfig(tp=1, pp=1, dp=16, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=4, iterations=1).trace()
    return nccl_trace_to_goal(report, gpus_per_node=4)


def _alltoall_schedule(quick: bool):
    from repro.schedgen import all_to_all

    return all_to_all(8 if quick else 16, 1 << 14)


def _cotenant_schedule(quick: bool):
    """Two all-to-all jobs fragmented across an oversubscribed fat tree."""
    from repro.cluster import ClusterJob, build_cotenant_schedule
    from repro.schedgen import all_to_all

    ranks = 4 if quick else 8
    jobs = [
        ClusterJob(all_to_all(ranks, 1 << 16), name="jobA"),
        ClusterJob(all_to_all(ranks, 1 << 16), arrival_ns=10_000, name="jobB"),
    ]
    plan = build_cotenant_schedule(
        jobs, cluster_nodes=2 * ranks, strategy="fragmented", group_size=4
    )
    return plan.schedule


def _faulted_allreduce_schedule(quick: bool):
    """Recursive-doubling allreduce sized for the sharded fault-epoch case."""
    from repro.collectives import build_collective_schedule

    return build_collective_schedule(
        "allreduce",
        "recursive_doubling",
        16 if quick else 64,
        1 << 13 if quick else 1 << 15,
        name="faulted-allreduce",
    )


def _allreduce16k_schedule(quick: bool):
    """16384-endpoint recursive-doubling allreduce (ROADMAP item 2 acceptance).

    Recursive doubling costs ``N·log2(N)`` messages (~229k at 16k ranks) —
    tractable on both backends — while touching a fresh set of ~16k host
    pairs every round, which is exactly the access pattern the bounded LRU
    route caches must absorb.
    """
    from repro.collectives import build_collective_schedule

    return build_collective_schedule(
        "allreduce",
        "recursive_doubling",
        16384,
        64 if quick else 1024,
        name="allreduce16k",
    )


def default_suite(quick: bool = False) -> List[BenchCase]:
    """The standard bench suite (shrunk sizes when ``quick``)."""
    lgs_cfg = SimulationConfig(loggops=LogGOPSParams.ai_cluster())
    pkt_cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4)
    # 16k endpoints: 512 ToRs x 32 hosts, fully provisioned; message records
    # off (229k records would measure the recorder, not the route caches)
    scale_cfg = SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=32,
        loggops=LogGOPSParams.ai_cluster(),
        collect_message_records=False,
    )
    return [
        BenchCase(
            "fig8_ai_lgs", "lgs", lambda: _fig8_schedule(quick), lgs_cfg, repeats=5
        ),
        BenchCase(
            "fig8_ai_htsim", "htsim", lambda: _fig8_schedule(quick), pkt_cfg, repeats=3
        ),
        BenchCase(
            "alltoall_lgs", "lgs", lambda: _alltoall_schedule(quick), lgs_cfg, repeats=5
        ),
        BenchCase(
            "alltoall_htsim_adaptive",
            "htsim",
            lambda: _alltoall_schedule(quick),
            pkt_cfg.replace(routing="adaptive"),
            repeats=3,
        ),
        BenchCase(
            "cotenant_2job_htsim",
            "htsim",
            lambda: _cotenant_schedule(quick),
            pkt_cfg.replace(oversubscription=4.0, job_tag_stride=1 << 32),
            repeats=3,
        ),
        BenchCase(
            "faulted_alltoall_htsim",
            "htsim",
            lambda: _alltoall_schedule(quick),
            pkt_cfg.replace(faults=FaultSchedule(link_failure_rate=0.25)),
            repeats=3,
        ),
        # the sharded engine under a timed fault: the driver clamps windows
        # at the epoch, applies it at one barrier on every shard, and the
        # owners re-pick live flows (docs/scaling.md, v2 support matrix)
        BenchCase(
            "faulted_allreduce_htsim_sh2",
            "htsim",
            lambda: _faulted_allreduce_schedule(quick),
            pkt_cfg.replace(
                shards=2,
                faults=FaultSchedule(
                    events=(
                        FaultEvent(3_000, LINK_DOWN, "tor0->core0"),
                        FaultEvent(9_000, LINK_UP, "tor0->core0"),
                    )
                ),
            ),
            repeats=3,
        ),
        # keep the 16k-endpoint cases LAST: peak RSS is a process-lifetime
        # high-water mark, so their recorded numbers are only meaningful
        # when no later case can dominate them
        BenchCase(
            "allreduce16k_lgs",
            "lgs",
            lambda: _allreduce16k_schedule(quick),
            scale_cfg.replace(loggops_use_topology=True),
            repeats=1,
        ),
        BenchCase(
            "allreduce16k_htsim",
            "htsim",
            lambda: _allreduce16k_schedule(quick),
            scale_cfg,
            repeats=1,
        ),
        # the same case on the sharded engine (docs/scaling.md): 4 worker
        # processes advancing in conservative lookahead windows.  Ordered
        # after its serial twin so the committed baselines always pair the
        # two; its peak_rss_kb includes the workers (RUSAGE_CHILDREN).
        BenchCase(
            "allreduce16k_htsim_sh4",
            "htsim",
            lambda: _allreduce16k_schedule(quick),
            scale_cfg.replace(shards=4),
            repeats=1,
        ),
    ]


def _peak_rss_kb() -> Optional[int]:
    """Peak RSS in KiB (monotone high-water mark since process start).

    Reports ``max(RUSAGE_SELF, RUSAGE_CHILDREN)`` so memory allocated in
    pool workers — the sharded packet engine's shard processes, parallel
    sweeps — is visible to the CI peak-RSS gate.  ``RUSAGE_CHILDREN`` only
    covers *waited-for* children, so it is populated exactly when a worker
    pool has shut down (which every bench case's engine does before its
    measurement is read).  Baselines recorded before this fix measured
    ``RUSAGE_SELF`` alone; for single-process engines the two agree, and
    :func:`compare_to_baseline` therefore stays comparable across the
    change for every pre-existing case.
    """
    try:
        import resource

        own = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        children = int(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
        return max(own, children)
    except Exception:  # pragma: no cover - non-POSIX platforms
        return None


def run_case(case: BenchCase) -> Dict[str, object]:
    """Run one case ``case.repeats`` times; report the best repeat.

    Wall clock, executed-event count and finish time are recorded *per
    repeat*, and every reported number comes from the repeat with the best
    wall clock — pairing the best wall clock with some other repeat's event
    count would skew ``events_per_s`` whenever counts differ across repeats.
    """
    schedule = case.make_schedule()
    best: Optional[tuple] = None  # (wall_s, events, finish_ns)
    for _ in range(case.repeats):
        scheduler = GoalScheduler(
            schedule, backend=case.backend, config=case.config, validate=False
        )
        t0 = time.perf_counter()
        result = scheduler.run()
        wall = time.perf_counter() - t0
        events = scheduler.events_executed
        if best is None or wall < best[0]:
            best = (wall, events, result.finish_time_ns)
    best_wall, events, finish_ns = best
    return {
        "backend": case.backend,
        "wall_clock_s": round(best_wall, 6),
        "events": events,
        "events_per_s": round(events / best_wall) if events and best_wall else None,
        "finish_time_ns": finish_ns,
        "peak_rss_kb": _peak_rss_kb(),
        "repeats": case.repeats,
    }


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except Exception:  # pragma: no cover - git absent
        return "unknown"


def run_suite(
    quick: bool = False, cases: Optional[List[BenchCase]] = None
) -> Dict[str, object]:
    """Run the bench suite and return the full result document."""
    suite = cases if cases is not None else default_suite(quick)
    results = {case.name: run_case(case) for case in suite}
    return {
        "format": BENCH_FORMAT,
        "revision": git_revision(),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cases": results,
    }


def write_bench(results: Dict[str, object], output: Optional[str] = None) -> Path:
    """Write ``results`` to ``output`` (default ``BENCH_<rev>.json``)."""
    if output is None:
        suffix = "_quick" if results.get("quick") else ""
        output = f"BENCH_{results.get('revision', 'unknown')}{suffix}.json"
    path = Path(output)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str) -> Dict[str, object]:
    """Load a ``BENCH_*.json`` document."""
    return json.loads(Path(path).read_text())


@dataclass
class CaseComparison:
    """Wall-clock (and optionally peak-RSS) comparison of one case.

    RSS fields stay ``None`` when either side lacks ``peak_rss_kb`` (older
    baselines, non-POSIX platforms) or when no RSS threshold was requested;
    ``regressed`` then covers wall clock only.
    """

    name: str
    baseline_wall_s: float
    current_wall_s: float
    regressed: bool
    baseline_rss_kb: Optional[int] = None
    current_rss_kb: Optional[int] = None
    rss_regressed: bool = False

    @property
    def speedup(self) -> float:
        """How much faster the current run is (>1 means faster than baseline)."""
        if self.current_wall_s <= 0:
            return float("inf")
        return self.baseline_wall_s / self.current_wall_s

    @property
    def rss_ratio(self) -> Optional[float]:
        """Current peak RSS over baseline, or ``None`` when not compared."""
        if self.baseline_rss_kb is None or self.current_rss_kb is None:
            return None
        if self.baseline_rss_kb <= 0:
            return float("inf")
        return self.current_rss_kb / self.baseline_rss_kb


@dataclass
class BaselineComparison:
    """Result of comparing a bench run against a baseline document."""

    entries: List[CaseComparison] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseComparison]:
        return [e for e in self.entries if e.regressed or e.rss_regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float = 2.0,
    max_rss_regression: Optional[float] = None,
) -> BaselineComparison:
    """Compare wall clocks (and optionally peak RSS) against a baseline.

    A case *regresses* when its wall clock exceeds ``max_regression`` times
    the baseline's.  The default threshold of 2.0 is deliberately tolerant:
    it is meant to catch accidental algorithmic regressions in CI without
    flaking on machine noise, not to police single-digit percentages.
    Cases present on only one side are reported in ``missing`` and do not
    fail the comparison.

    When ``max_rss_regression`` is set (the CI memory gate uses 1.2, i.e.
    fail on >20% growth), a case additionally regresses when its
    ``peak_rss_kb`` exceeds that multiple of the baseline's.  RSS is a
    process-lifetime high-water mark, so the gate is meaningful only for
    the dominant (last-ordered, largest) cases of a suite; cases lacking
    RSS on either side are compared on wall clock alone.
    """
    if max_regression <= 0:
        raise ValueError("max_regression must be positive")
    if max_rss_regression is not None and max_rss_regression <= 0:
        raise ValueError("max_rss_regression must be positive")
    comparison = BaselineComparison()
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name in sorted(set(base_cases) | set(cur_cases)):
        if name not in base_cases or name not in cur_cases:
            comparison.missing.append(name)
            continue
        base_wall = float(base_cases[name]["wall_clock_s"])
        cur_wall = float(cur_cases[name]["wall_clock_s"])
        entry = CaseComparison(
            name=name,
            baseline_wall_s=base_wall,
            current_wall_s=cur_wall,
            regressed=cur_wall > max_regression * base_wall,
        )
        if max_rss_regression is not None:
            base_rss = base_cases[name].get("peak_rss_kb")
            cur_rss = cur_cases[name].get("peak_rss_kb")
            if base_rss is not None and cur_rss is not None:
                entry.baseline_rss_kb = int(base_rss)
                entry.current_rss_kb = int(cur_rss)
                entry.rss_regressed = (
                    entry.current_rss_kb > max_rss_regression * entry.baseline_rss_kb
                )
        comparison.entries.append(entry)
    return comparison

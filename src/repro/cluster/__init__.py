"""Multi-job co-tenancy: arrival schedules, shared-fabric simulation, per-job attribution.

:func:`~repro.cluster.engine.run_cotenant` is the main entry point; the
:class:`~repro.cluster.engine.ClusterJob` record describes one job (schedule
plus arrival time), and :func:`~repro.cluster.engine.build_cotenant_schedule`
exposes the merge step on its own.  The interference sweep over placement
strategies and topologies lives in :func:`repro.sweep.interference_sweep`.
"""
from repro.cluster.engine import (
    TAG_STRIDE,
    ClusterJob,
    CoTenancyResult,
    CoTenantPlan,
    JobOutcome,
    build_cotenant_schedule,
    run_cotenant,
)

__all__ = [
    "TAG_STRIDE",
    "ClusterJob",
    "CoTenancyResult",
    "CoTenantPlan",
    "JobOutcome",
    "build_cotenant_schedule",
    "run_cotenant",
]

"""The multi-job co-tenancy engine.

Takes N jobs — each a GOAL schedule plus an arrival time — and turns them
into **one** fabric-shared simulation:

1. every job is delayed to its arrival time
   (:func:`repro.goal.merge.delay_schedule`),
2. the jobs are placed onto the cluster's nodes by one of the
   :data:`repro.placement.PLACEMENT_STRATEGIES` (or explicit, possibly
   overlapping, per-job placements),
3. the placed schedules are merged into a single GOAL program
   (:func:`~repro.goal.merge.concatenate_schedules` for disjoint node sets,
   :func:`~repro.goal.merge.merge_onto_shared_nodes` when tenants share
   nodes),
4. the merged program runs on either backend with job attribution enabled:
   each job owns a disjoint tag window of :data:`TAG_STRIDE`, the backends
   attribute messages and per-link bytes to ``tag // TAG_STRIDE``, and the
   scheduler tracks per-job completion through an op→job mapping,
5. results are attributed back per job: completion time, runtime
   (completion − arrival), slowdown versus an *isolated* run of the same job
   under the same placement, and the per-link contention breakdown.

The engine composes the existing layers instead of duplicating them, so a
single job with arrival 0 produces a simulation **bit-identical** to the
plain single-job path (``tests/test_cluster_cotenancy.py`` locks this in on
both backends).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.goal.merge import (
    concatenate_schedules,
    delay_schedule,
    merge_onto_shared_nodes,
    remap_ranks,
)
from repro.goal.schedule import GoalSchedule
from repro.goal.validate import validate_schedule
from repro.network.backend import JobStats, SimulationResult
from repro.network.config import SimulationConfig
from repro.placement import JobRequest, PlacementResult, place_jobs
from repro.scheduler import simulate

#: Tag window assigned to each job by the co-tenancy merge.  Every message of
#: job *i* carries a tag in ``[i * TAG_STRIDE, (i+1) * TAG_STRIDE)``, which is
#: both what keeps cross-job message matching impossible and what lets the
#: backends attribute traffic to jobs without any extra plumbing.  The window
#: is deliberately wide (2**32): real MPI tracers encode communicator ids in
#: the high tag bits (LULESH's traces carry tags beyond 2**30), and
#: :func:`build_cotenant_schedule` rejects any job whose tags overflow the
#: window instead of silently cross-matching messages between jobs.
TAG_STRIDE = 1 << 32


@dataclass(frozen=True)
class ClusterJob:
    """One job of a co-tenant scenario: a GOAL schedule arriving at a time."""

    schedule: GoalSchedule
    arrival_ns: int = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival_ns < 0:
            raise ValueError(f"arrival_ns must be non-negative, got {self.arrival_ns}")

    @property
    def num_nodes(self) -> int:
        return self.schedule.num_ranks

    @property
    def label(self) -> str:
        return self.name or self.schedule.name


@dataclass
class CoTenantPlan:
    """A merged multi-job program ready to simulate.

    Attributes
    ----------
    schedule:
        The single fabric-shared GOAL program (arrival delays applied).
    placement:
        Which cluster nodes each job occupies.
    op_groups:
        Per rank, the owning job index of every op (scheduler group ids).
    jobs:
        The input jobs, in job (= tag window) order.
    shared:
        Whether tenants share nodes (multi-tenant DAG fusion) or occupy
        disjoint node sets.
    tag_stride:
        Tag window width; feed this to ``SimulationConfig.job_tag_stride``.
    """

    schedule: GoalSchedule
    placement: PlacementResult
    op_groups: List[List[int]]
    jobs: List[ClusterJob]
    shared: bool
    tag_stride: int = TAG_STRIDE


@dataclass
class JobOutcome:
    """Per-job attribution of one co-tenant simulation."""

    job: int
    name: str
    arrival_ns: int
    nodes: List[int]
    finish_ns: int
    runtime_ns: int
    isolated_runtime_ns: Optional[int] = None
    messages_delivered: int = 0
    bytes_delivered: int = 0
    link_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def slowdown(self) -> Optional[float]:
        """Co-tenant runtime over isolated runtime (>1 = interference)."""
        if not self.isolated_runtime_ns:
            return None
        return self.runtime_ns / self.isolated_runtime_ns


@dataclass
class CoTenancyResult:
    """Everything one co-tenant run produced, attributed per job."""

    outcomes: List[JobOutcome]
    result: SimulationResult
    plan: CoTenantPlan

    @property
    def strategy(self) -> str:
        return self.plan.placement.strategy

    def outcome(self, name: str) -> JobOutcome:
        """Look up a job's outcome by its label."""
        for out in self.outcomes:
            if out.name == name:
                return out
        raise KeyError(f"no job named {name!r}")

    def contended_links(self) -> Dict[str, Dict[str, int]]:
        """Links carrying traffic of two or more jobs: ``{link: {job: bytes}}``.

        The per-link contention breakdown of the run — on a healthy packed
        placement this is empty or confined to core links, while fragmented
        placements light up shared first-hop switches as well.
        """
        per_link: Dict[str, Dict[str, int]] = {}
        for out in self.outcomes:
            for link, byts in out.link_bytes.items():
                per_link.setdefault(link, {})[out.name] = byts
        return {
            link: jobs for link, jobs in per_link.items() if len(jobs) >= 2
        }


def _delayed_schedules(jobs: Sequence[ClusterJob]) -> List[GoalSchedule]:
    return [delay_schedule(job.schedule, job.arrival_ns) for job in jobs]


def _check_tags(jobs: Sequence[ClusterJob], tag_stride: int) -> None:
    for job in jobs:
        for rank in job.schedule.ranks:
            for op in rank.ops:
                if op.is_comm and op.tag >= tag_stride:
                    raise ValueError(
                        f"job {job.label!r} uses tag {op.tag} >= tag_stride "
                        f"{tag_stride}; raise tag_stride so job tag windows stay disjoint"
                    )


def _mappings_overlap(mappings: Sequence[Mapping[int, int]]) -> bool:
    seen: set = set()
    for mapping in mappings:
        for node in mapping.values():
            if node in seen:
                return True
            seen.add(node)
    return False


def build_cotenant_schedule(
    jobs: Sequence[ClusterJob],
    cluster_nodes: Optional[int] = None,
    strategy: str = "packed",
    placements: Optional[Sequence[Mapping[int, int]]] = None,
    shared: bool = False,
    tag_stride: int = TAG_STRIDE,
    stream_stride: int = 64,
    **strategy_kwargs,
) -> CoTenantPlan:
    """Place and merge ``jobs`` into one co-tenant GOAL program.

    Parameters
    ----------
    jobs:
        The jobs to co-locate; job index = tag window = attribution id.
    cluster_nodes:
        Cluster size; defaults to the sum of the jobs' rank counts.
    strategy:
        Placement strategy name (see
        :data:`repro.placement.PLACEMENT_STRATEGIES`); ignored when explicit
        ``placements`` are given.
    placements:
        Optional explicit ``{job rank -> cluster node}`` mapping per job.
        Overlapping node sets are allowed and switch the merge to
        multi-tenant DAG fusion.
    shared:
        Force multi-tenant fusion even for disjoint placements (tenants then
        share compute streams machinery rather than plain rank slots).
    tag_stride / stream_stride:
        Forwarded to the merge (tag window width, per-tenant compute-stream
        offset).
    strategy_kwargs:
        Extra arguments of the placement strategy (``seed``, ``topology``,
        ``group_size``, ...).
    """
    jobs = list(jobs)
    if not jobs:
        raise ValueError("need at least one job")
    if cluster_nodes is None:
        cluster_nodes = sum(job.num_nodes for job in jobs)
    _check_tags(jobs, tag_stride)

    if placements is not None:
        if len(placements) != len(jobs):
            raise ValueError(
                f"need exactly one placement per job "
                f"({len(placements)} placements for {len(jobs)} jobs)"
            )
        placement = PlacementResult(
            [dict(m) for m in placements], cluster_nodes, "explicit"
        )
        shared = shared or _mappings_overlap(placements)
    else:
        requests = [JobRequest(job.schedule, name=job.label) for job in jobs]
        placement = place_jobs(requests, cluster_nodes, strategy=strategy, **strategy_kwargs)

    delayed = _delayed_schedules(jobs)
    op_groups: List[List[int]] = [[] for _ in range(cluster_nodes)]
    if shared:
        merged = merge_onto_shared_nodes(
            delayed,
            placements=placement.mappings,
            num_ranks=cluster_nodes,
            tag_stride=tag_stride,
            stream_stride=stream_stride,
        )
        # fragments are appended per tenant in job order — mirror that walk
        for job_idx, (sched, mapping) in enumerate(zip(delayed, placement.mappings)):
            for rank in sched.ranks:
                op_groups[mapping[rank.rank]].extend([job_idx] * len(rank.ops))
    else:
        merged = concatenate_schedules(
            delayed,
            placements=placement.mappings,
            num_ranks=cluster_nodes,
            tag_stride=tag_stride,
        )
        for job_idx, (sched, mapping) in enumerate(zip(delayed, placement.mappings)):
            for rank in sched.ranks:
                op_groups[mapping[rank.rank]] = [job_idx] * len(rank.ops)
    return CoTenantPlan(
        schedule=merged,
        placement=placement,
        op_groups=op_groups,
        jobs=jobs,
        shared=shared,
        tag_stride=tag_stride,
    )


def _isolated_runtime(
    job: ClusterJob,
    mapping: Mapping[int, int],
    cluster_nodes: int,
    backend: str,
    config: SimulationConfig,
) -> int:
    """Runtime of ``job`` alone on the cluster, under its co-tenant placement.

    The job keeps its exact node positions (so topology locality is held
    constant and the slowdown isolates *contention*), but runs with no other
    job on the fabric and no arrival delay.
    """
    alone = remap_ranks(job.schedule, dict(mapping), num_ranks=cluster_nodes)
    result = simulate(alone, backend=backend, config=config, validate=False)
    return result.finish_time_ns


def run_cotenant(
    jobs: Sequence[ClusterJob],
    cluster_nodes: Optional[int] = None,
    strategy: str = "packed",
    backend: str = "htsim",
    config: Optional[SimulationConfig] = None,
    baseline: bool = True,
    placements: Optional[Sequence[Mapping[int, int]]] = None,
    shared: bool = False,
    validate: bool = True,
    tag_stride: int = TAG_STRIDE,
    stream_stride: int = 64,
    fault_free_baseline: bool = False,
    **strategy_kwargs,
) -> CoTenancyResult:
    """Simulate ``jobs`` sharing one fabric and attribute the results per job.

    Parameters
    ----------
    jobs, cluster_nodes, strategy, placements, shared, tag_stride,
    stream_stride, strategy_kwargs:
        See :func:`build_cotenant_schedule`.
    backend:
        ``"htsim"`` (packet-level; per-link contention includes queues, ECN
        and drops) or ``"lgs"`` (message-level).
    config:
        Base :class:`SimulationConfig`; its ``job_tag_stride`` is overridden
        to match the merge's tag windows.  A non-empty ``config.faults``
        schedule degrades the shared fabric for the co-tenant run and — by
        default — the isolated baselines too, so
        :attr:`JobOutcome.slowdown` isolates *contention on the degraded
        fabric* (see ``fault_free_baseline`` to attribute faults instead).
    baseline:
        Also simulate each job *alone* under the same placement and report
        per-job slowdown.  Costs one extra simulation per job; disable for
        large sweeps that only need co-tenant numbers.
    fault_free_baseline:
        Run the isolated baselines on a *healthy* fabric
        (``config.faults`` stripped) while the co-tenant run keeps the
        fault schedule.  Per-job slowdown then attributes the combined
        fault + contention degradation each tenant experiences.
    validate:
        Structurally validate the merged schedule before simulating.

    Group-aware strategies (``locality``, ``fragmented``) default their
    groups to the *simulated* topology's host groups (the config's fat-tree
    ToRs, torus routers, ...), so placement locality matches the fabric
    being simulated; pass ``topology=`` or ``group_size=`` to override.
    """
    cfg = config if config is not None else SimulationConfig()
    if (
        placements is None
        and "topology" not in strategy_kwargs
        and "group_size" not in strategy_kwargs
    ):
        import inspect

        from repro.network.topology import build_topology
        from repro.placement import PLACEMENT_STRATEGIES

        strategy_fn = PLACEMENT_STRATEGIES.get(strategy)
        if strategy_fn is not None and "topology" in inspect.signature(strategy_fn).parameters:
            resolved = (
                cluster_nodes
                if cluster_nodes is not None
                else sum(job.num_nodes for job in jobs)
            )
            strategy_kwargs["topology"] = build_topology(cfg, resolved)

    plan = build_cotenant_schedule(
        jobs,
        cluster_nodes=cluster_nodes,
        strategy=strategy,
        placements=placements,
        shared=shared,
        tag_stride=tag_stride,
        stream_stride=stream_stride,
        **strategy_kwargs,
    )
    cfg = cfg.replace(job_tag_stride=plan.tag_stride)
    if validate:
        validate_schedule(plan.schedule)
    result = simulate(
        plan.schedule,
        backend=backend,
        config=cfg,
        validate=False,
        op_groups=plan.op_groups,
    )

    # attribution keys by job label; disambiguate duplicates (two jobs built
    # from the same spec/schedule name) so per-link shares never collapse
    labels = [job.label for job in plan.jobs]
    if len(set(labels)) != len(labels):
        labels = [f"{label}#{idx}" for idx, label in enumerate(labels)]

    baseline_cfg = cfg
    if fault_free_baseline and cfg.faults:
        from repro.network.faults import FaultSchedule

        baseline_cfg = cfg.replace(faults=FaultSchedule())

    outcomes: List[JobOutcome] = []
    for job_idx, job in enumerate(plan.jobs):
        nodes = plan.placement.nodes_of_job(job_idx)
        # a degenerate job with no ops never completes anything: treat it as
        # finishing on arrival rather than reporting a negative runtime
        finish = result.group_finish_times_ns.get(job_idx, job.arrival_ns)
        stats = result.job_stats.get(job_idx, JobStats(job=job_idx))
        isolated = (
            _isolated_runtime(
                job, plan.placement.mappings[job_idx], plan.placement.cluster_nodes,
                backend, baseline_cfg,
            )
            if baseline
            else None
        )
        outcomes.append(
            JobOutcome(
                job=job_idx,
                name=labels[job_idx],
                arrival_ns=job.arrival_ns,
                nodes=nodes,
                finish_ns=finish,
                runtime_ns=finish - job.arrival_ns,
                isolated_runtime_ns=isolated,
                messages_delivered=stats.messages_delivered,
                bytes_delivered=stats.bytes_delivered,
                link_bytes=dict(stats.link_bytes),
            )
        )
    return CoTenancyResult(outcomes=outcomes, result=result, plan=plan)

"""Convergence metrics: time-to-recover and blackhole-loss summaries.

The control-plane subsystem (:mod:`repro.network.control_plane`) emits one
:class:`~repro.network.control_plane.ConvergenceRecord` per fault event; the
backends fold the worst window into ``NetworkStats.time_to_recover_ns`` and
count stale-forwarded losses as ``packets_blackholed``.  This module turns
those raw outputs into the summary metrics the resilience studies report —
the honest availability numbers ROADMAP item 4 asks for, which the oracle
model structurally cannot produce (its TTR is identically zero).

Metric definitions (also in ``docs/control_plane.md``):

* **time_to_recover_ns** — per event, the span from the fault instant to
  the moment the *last* reachable switch's local view absorbed it; the
  summary reports the worst and the mean over all events.
* **blackhole_fraction** — packets dropped by stale switches during
  convergence over all packets sent: the probability an injected packet
  died in a black hole rather than reaching its destination or a queue.
* **convergence_messages** — protocol messages the advertisement waves
  exchanged (flooding: one per alive directed switch edge per event;
  distance-vector: two), the control-plane load metric the property suite
  bounds.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.network.backend import NetworkStats
    from repro.network.control_plane import ConvergenceRecord


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate convergence behaviour of one simulation run.

    Attributes
    ----------
    events:
        Fault events that triggered an advertisement wave.
    worst_ttr_ns / mean_ttr_ns:
        Worst and mean per-event time-to-recover (0 when no event fired,
        and always 0 under the oracle control plane).
    convergence_messages:
        Total protocol messages exchanged by all waves.
    packets_blackholed:
        Packets dropped by stale switches during convergence windows.
    packets_sent:
        All packets injected by the run (the blackhole denominator).
    """

    events: int
    worst_ttr_ns: int
    mean_ttr_ns: float
    convergence_messages: int
    packets_blackholed: int
    packets_sent: int

    @property
    def blackhole_fraction(self) -> float:
        """Share of injected packets lost into black holes (0 when idle)."""
        if not self.packets_sent:
            return 0.0
        return self.packets_blackholed / self.packets_sent


def summarize_convergence(
    records: Sequence["ConvergenceRecord"], stats: "NetworkStats"
) -> ConvergenceSummary:
    """Summarize a backend's convergence report against its run statistics.

    ``records`` is a backend's ``convergence_report()`` (empty under the
    oracle control plane); ``stats`` the matching ``collect_stats()``
    output.  The message-level backend reports ``packets_sent == 0``, so
    its summaries carry TTR and message counts but a zero blackhole
    fraction — blackholes are a packet-level observable.
    """
    ttrs = [r.time_to_recover_ns for r in records]
    return ConvergenceSummary(
        events=len(records),
        worst_ttr_ns=max(ttrs) if ttrs else 0,
        mean_ttr_ns=sum(ttrs) / len(ttrs) if ttrs else 0.0,
        convergence_messages=sum(r.messages for r in records),
        packets_blackholed=stats.packets_blackholed,
        packets_sent=stats.packets_sent,
    )


def recovery_timeline(
    records: Sequence["ConvergenceRecord"],
) -> Sequence[tuple]:
    """``(event time, kind, converged-at, TTR)`` rows in event order.

    A plotting-friendly flat view of a run's convergence history (the
    fat-tree/dragonfly tables in ``docs/control_plane.md`` are rendered
    from these rows).
    """
    return tuple(
        (r.time_ns, r.kind, r.converged_at_ns, r.time_to_recover_ns)
        for r in sorted(records, key=lambda r: r.time_ns)
    )


__all__ = [
    "ConvergenceSummary",
    "recovery_timeline",
    "summarize_convergence",
]

"""Reference measurement harness (the ground-truth substitute).

The paper validates ATLAHS by comparing simulator predictions against
runtimes *measured* on real clusters (Alps and a CSCS test-bed).  Without
that hardware, this package produces the "measured" side of every validation
experiment by executing the same workload on an independent, higher-fidelity
reference configuration of the packet-level simulator with per-run compute
jitter — preserving the structure of the error analysis (see DESIGN.md,
substitution table).
"""
from repro.measurement.convergence import (
    ConvergenceSummary,
    recovery_timeline,
    summarize_convergence,
)
from repro.measurement.reference import (
    MeasurementResult,
    measure_reference_runtime,
    non_overlapped_compute_fraction,
    prediction_error,
)
from repro.measurement.serving import (
    RequestOutcome,
    ServingMetrics,
    SloSpec,
    compute_serving_metrics,
    percentile_nearest_rank,
)

__all__ = [
    "ConvergenceSummary",
    "recovery_timeline",
    "summarize_convergence",
    "MeasurementResult",
    "measure_reference_runtime",
    "non_overlapped_compute_fraction",
    "prediction_error",
    "RequestOutcome",
    "ServingMetrics",
    "SloSpec",
    "compute_serving_metrics",
    "percentile_nearest_rank",
]

"""Reference ("measured") runtime generation and error metrics.

:func:`measure_reference_runtime` replays a GOAL schedule on a *reference*
configuration — the packet-level backend with a fully provisioned fat tree,
per-message host overhead, and a small per-run computation-speed jitter — and
averages over ``trials`` runs, mirroring the paper's averaging over repeated
real executions.  The predictions produced by the cheaper configurations
(the LogGOPS backend, or the packet backend under study) are then compared
against this reference via :func:`prediction_error`, the signed relative
error annotated in red in the paper's Figs. 8 and 10.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.goal.schedule import GoalSchedule
from repro.network.config import SimulationConfig
from repro.scheduler import simulate


@dataclass
class MeasurementResult:
    """Outcome of the reference measurement of one workload.

    Attributes
    ----------
    runtime_ns:
        Mean simulated makespan over the trials.
    trial_runtimes_ns:
        Per-trial makespans.
    compute_fraction:
        Estimate of the non-overlapped computation share (the dark-blue
        portion of the paper's measured bars).
    """

    runtime_ns: float
    trial_runtimes_ns: List[float]
    compute_fraction: float

    @property
    def runtime_s(self) -> float:
        return self.runtime_ns / 1e9

    @property
    def communication_fraction(self) -> float:
        return 1.0 - self.compute_fraction


def non_overlapped_compute_fraction(schedule: GoalSchedule, runtime_ns: float) -> float:
    """Estimate which share of ``runtime_ns`` is pure (non-overlapped) computation.

    The estimate is the mean, over ranks, of the rank's serial computation on
    its busiest compute stream divided by the total runtime, clamped to
    [0, 1].  It is exact when computation never overlaps with communication
    on the same stream and underestimates slightly otherwise, which matches
    how the paper derives the quantity from traces.
    """
    if runtime_ns <= 0:
        return 0.0
    fractions = []
    for rank in schedule.ranks:
        per_stream = {}
        for op in rank.ops:
            if op.is_calc:
                per_stream[op.cpu] = per_stream.get(op.cpu, 0) + op.size
        busiest = max(per_stream.values(), default=0)
        fractions.append(min(1.0, busiest / runtime_ns))
    return float(np.mean(fractions)) if fractions else 0.0


def measure_reference_runtime(
    schedule: GoalSchedule,
    base_config: Optional[SimulationConfig] = None,
    trials: int = 3,
    compute_jitter: float = 0.01,
    seed: int = 1234,
    backend: str = "htsim",
) -> MeasurementResult:
    """Produce the "measured" runtime of a workload on the reference setup.

    Parameters
    ----------
    schedule:
        The GOAL workload.
    base_config:
        Reference network configuration; defaults to a fully provisioned fat
        tree with MPRDMA congestion control.
    trials:
        Independent repetitions (each with its own jittered compute speed).
    compute_jitter:
        Standard deviation of the per-trial relative computation-speed jitter.
    seed:
        Seed of the jitter sequence.
    backend:
        Reference backend (the packet-level backend by default).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = np.random.default_rng(seed)
    config = base_config or SimulationConfig(topology="fat_tree", oversubscription=1.0)

    runtimes: List[float] = []
    for trial in range(trials):
        factor = float(np.exp(rng.normal(0.0, compute_jitter)))
        jittered = _scale_computation(schedule, factor)
        result = simulate(jittered, backend=backend, config=config.replace(seed=config.seed + trial))
        runtimes.append(float(result.finish_time_ns))

    mean_runtime = float(np.mean(runtimes))
    compute_frac = non_overlapped_compute_fraction(schedule, mean_runtime)
    return MeasurementResult(
        runtime_ns=mean_runtime,
        trial_runtimes_ns=runtimes,
        compute_fraction=compute_frac,
    )


def _scale_computation(schedule: GoalSchedule, factor: float) -> GoalSchedule:
    """Return a copy of ``schedule`` with every calc duration scaled by ``factor``."""
    scaled = schedule.copy()
    for rank in scaled.ranks:
        for op in rank.ops:
            if op.is_calc and op.size:
                op.size = max(0, int(round(op.size * factor)))
    return scaled


def prediction_error(predicted_ns: float, measured_ns: float) -> float:
    """Signed relative prediction error (the red percentages of Figs. 8 and 10)."""
    if measured_ns <= 0:
        raise ValueError("measured runtime must be positive")
    return (predicted_ns - measured_ns) / measured_ns

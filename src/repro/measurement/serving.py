"""Serving-latency metrics: per-request SLO percentiles and goodput.

Translates a simulated inference run — an :class:`~repro.apps.inference.
InferencePlan` plus the :class:`~repro.network.backend.SimulationResult` it
produced — into the metrics an inference operator actually watches:

* **TTFT** (time to first token): first-token group finish minus the
  request's open-loop arrival time,
* **TPOT** (time per output token): mean inter-token gap over the decode
  phase, ``(completion - first_token) / (tokens - 1)`` for multi-token
  requests,
* **SLO percentiles** — p50/p99/p999 of both, computed with *nearest-rank*
  semantics (rank ``ceil(p/100 * n)``, 1-indexed) so small-sample behaviour
  is exact and pinned by unit tests rather than interpolation-dependent,
* **goodput** — requests per simulated second that met *all* their SLO
  deadlines; requests that miss a deadline still consume fabric and compute
  but do not count, which is what makes goodput saturate (and then fall)
  past the capacity knee while raw throughput keeps climbing.

The per-request timings come from the scheduler's op-group machinery
(``SimulationResult.group_finish_times_ns``): request ``i`` owns group
``2i`` (first-token recv at its frontend) and ``2i + 1`` (last-token recv).
Single-token requests emit only the first group; completion falls back to
the first-token time.
"""
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.inference import InferencePlan, Request
from repro.network.backend import SimulationResult

__all__ = [
    "SloSpec",
    "RequestOutcome",
    "ServingMetrics",
    "percentile_nearest_rank",
    "compute_serving_metrics",
]


def percentile_nearest_rank(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile: the ``ceil(pct/100 * n)``-th smallest sample.

    This is the classic operational definition (every reported value is an
    actual observation, never an interpolation), which keeps tail metrics
    honest at the small sample sizes a simulated sweep produces.  Raises
    :class:`ValueError` on an empty sample set — a percentile of nothing is
    a bug upstream, not a zero.
    """
    if not 0.0 < pct <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    if len(samples) == 0:
        raise ValueError("cannot take a percentile of zero samples")
    ordered = sorted(samples)
    rank = math.ceil(pct / 100.0 * len(ordered))  # 1-indexed
    return ordered[rank - 1]


@dataclass(frozen=True)
class SloSpec:
    """Per-request latency deadlines; ``None`` disables that check.

    ``ttft_ns`` bounds time-to-first-token, ``tpot_ns`` bounds the mean
    per-output-token latency.  A request is *good* iff it meets every
    enabled deadline.
    """

    ttft_ns: Optional[int] = 2_000_000_000
    tpot_ns: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("ttft_ns", "tpot_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"SloSpec.{name} must be positive, got {value}")


@dataclass(frozen=True)
class RequestOutcome:
    """One request's simulated timings and SLO verdict."""

    request: Request
    first_token_ns: int
    completion_ns: int
    ttft_ns: int
    tpot_ns: float
    slo_met: bool


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregated serving metrics for one simulated inference cell."""

    outcomes: List[RequestOutcome]
    ttft_percentiles_ns: Dict[str, float]
    tpot_percentiles_ns: Dict[str, float]
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    good_requests: int
    batch_occupancy: Dict[str, float] = field(default_factory=dict)

    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    def summary_row(self) -> Dict[str, float]:
        """Flat dict for tables/JSON output (CLI and sweeps)."""
        return {
            "requests": float(self.num_requests),
            "offered_rps": self.offered_rps,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "ttft_p50_ms": self.ttft_percentiles_ns["p50"] / 1e6,
            "ttft_p99_ms": self.ttft_percentiles_ns["p99"] / 1e6,
            "ttft_p999_ms": self.ttft_percentiles_ns["p999"] / 1e6,
            "tpot_p50_ms": self.tpot_percentiles_ns["p50"] / 1e6,
            "tpot_p99_ms": self.tpot_percentiles_ns["p99"] / 1e6,
            "mean_batch": self.batch_occupancy.get("mean_batch", 0.0),
        }


_PCTS = {"p50": 50.0, "p99": 99.0, "p999": 99.9}


def _percentile_table(samples: Sequence[float]) -> Dict[str, float]:
    return {name: percentile_nearest_rank(samples, pct) for name, pct in _PCTS.items()}


def compute_serving_metrics(
    plan: InferencePlan,
    result: SimulationResult,
    slo: Optional[SloSpec] = None,
) -> ServingMetrics:
    """Fold a simulation's group finish times into serving metrics.

    ``result`` must come from a ``simulate(..., op_groups=plan.op_groups)``
    call on ``plan.schedule``; the request groups are matched by id.
    """
    if slo is None:
        slo = SloSpec()
    gft = result.group_finish_times_ns
    outcomes: List[RequestOutcome] = []
    for req in plan.requests:
        if req.first_token_group not in gft:
            raise ValueError(
                f"request {req.id}: first-token group {req.first_token_group} "
                "missing from group_finish_times_ns — was the simulation run "
                "with op_groups=plan.op_groups?"
            )
        first = gft[req.first_token_group]
        completion = gft.get(req.completion_group, first)
        ttft = first - req.arrival_ns
        if req.decode_tokens > 1:
            tpot = (completion - first) / (req.decode_tokens - 1)
        else:
            tpot = 0.0
        good = True
        if slo.ttft_ns is not None and ttft > slo.ttft_ns:
            good = False
        if slo.tpot_ns is not None and tpot > slo.tpot_ns:
            good = False
        outcomes.append(
            RequestOutcome(
                request=req,
                first_token_ns=first,
                completion_ns=completion,
                ttft_ns=ttft,
                tpot_ns=tpot,
                slo_met=good,
            )
        )

    ttfts = [o.ttft_ns for o in outcomes]
    tpots = [o.tpot_ns for o in outcomes]
    horizon_s = result.finish_time_ns / 1e9 if result.finish_time_ns > 0 else 0.0
    good_requests = sum(1 for o in outcomes if o.slo_met)
    throughput = len(outcomes) / horizon_s if horizon_s > 0 else 0.0
    goodput = good_requests / horizon_s if horizon_s > 0 else 0.0
    return ServingMetrics(
        outcomes=outcomes,
        ttft_percentiles_ns=_percentile_table(ttfts) if ttfts else {},
        tpot_percentiles_ns=_percentile_table(tpots) if tpots else {},
        offered_rps=plan.offered_rps,
        throughput_rps=throughput,
        goodput_rps=goodput,
        good_requests=good_requests,
        batch_occupancy=plan.batch_occupancy(),
    )

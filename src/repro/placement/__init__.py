"""Job placement strategies and multi-job / multi-tenant composition."""
from repro.placement.strategies import (
    JobRequest,
    PlacementResult,
    packed_placement,
    random_placement,
    round_robin_placement,
    strided_placement,
    locality_placement,
    fragmented_placement,
    random_interleaved_placement,
    place_jobs,
    filter_strategy_kwargs,
    PLACEMENT_STRATEGIES,
)

__all__ = [
    "JobRequest",
    "PlacementResult",
    "packed_placement",
    "random_placement",
    "round_robin_placement",
    "strided_placement",
    "locality_placement",
    "fragmented_placement",
    "random_interleaved_placement",
    "place_jobs",
    "filter_strategy_kwargs",
    "PLACEMENT_STRATEGIES",
]

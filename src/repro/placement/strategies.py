"""Job placement strategies (the paper's §3.2 and Fig. 13 case study).

A *placement* assigns the ranks of each job to nodes of a shared cluster.
The paper contrasts two strategies on an oversubscribed fat tree:

* **Packed allocation** — nodes are assigned sequentially per job, keeping
  each job's communication local to as few ToR switches as possible,
* **Random allocation** — nodes are assigned without locality, spreading
  every job across the cluster and loading the oversubscribed core.

Additional strategies (round-robin across ToRs, strided,
:func:`fragmented_placement` — deliberate anti-locality for interference
studies — and :func:`random_interleaved_placement`) are provided for
ablations, and :func:`locality_placement` generalises packed allocation to
any topology: it packs each job into whole switch-attachment groups (ToRs on
a fat tree, routers on a dragonfly/torus/Slim Fly) using
:meth:`repro.network.topology.base.Topology.host_groups`, so intra-job
traffic stays on as few first-hop switches as possible regardless of the
interconnect.  :func:`place_jobs` turns a placement plus the jobs' GOAL
schedules into one combined multi-job schedule via
:func:`repro.goal.merge.concatenate_schedules`.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.goal.merge import concatenate_schedules
from repro.goal.schedule import GoalSchedule


@dataclass(frozen=True)
class JobRequest:
    """A job to place: its GOAL schedule and (implicitly) its node count."""

    schedule: GoalSchedule
    name: Optional[str] = None

    @property
    def num_nodes(self) -> int:
        return self.schedule.num_ranks

    @property
    def label(self) -> str:
        return self.name or self.schedule.name


@dataclass
class PlacementResult:
    """Outcome of placing several jobs on a cluster.

    Attributes
    ----------
    mappings:
        One ``{job rank -> cluster node}`` dict per job, in job order.
    cluster_nodes:
        Total nodes of the cluster.
    strategy:
        Name of the strategy that produced the placement.
    """

    mappings: List[Dict[int, int]]
    cluster_nodes: int
    strategy: str

    def merged_schedule(self, jobs: Sequence[JobRequest], name: Optional[str] = None) -> GoalSchedule:
        """Combine the jobs into one multi-job GOAL schedule under this placement."""
        return concatenate_schedules(
            [job.schedule for job in jobs],
            placements=self.mappings,
            num_ranks=self.cluster_nodes,
            name=name or f"multi-job-{self.strategy}",
        )

    def nodes_of_job(self, job_index: int) -> List[int]:
        """Cluster nodes assigned to ``job_index`` (in job-rank order)."""
        mapping = self.mappings[job_index]
        return [mapping[r] for r in sorted(mapping)]


def _require_capacity(jobs: Sequence[JobRequest], cluster_nodes: int) -> None:
    needed = sum(job.num_nodes for job in jobs)
    if needed > cluster_nodes:
        raise ValueError(f"jobs need {needed} nodes but the cluster only has {cluster_nodes}")


def packed_placement(jobs: Sequence[JobRequest], cluster_nodes: int) -> PlacementResult:
    """Assign nodes sequentially: job 0 gets nodes 0..n0-1, job 1 the next block, ..."""
    _require_capacity(jobs, cluster_nodes)
    mappings: List[Dict[int, int]] = []
    base = 0
    for job in jobs:
        mappings.append({r: base + r for r in range(job.num_nodes)})
        base += job.num_nodes
    return PlacementResult(mappings, cluster_nodes, "packed")


def random_placement(jobs: Sequence[JobRequest], cluster_nodes: int, seed: int = 0) -> PlacementResult:
    """Assign nodes uniformly at random without locality (paper's "Random Allocation")."""
    _require_capacity(jobs, cluster_nodes)
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(cluster_nodes))
    mappings: List[Dict[int, int]] = []
    cursor = 0
    for job in jobs:
        nodes = order[cursor : cursor + job.num_nodes]
        cursor += job.num_nodes
        mappings.append({r: int(nodes[r]) for r in range(job.num_nodes)})
    return PlacementResult(mappings, cluster_nodes, "random")


def round_robin_placement(
    jobs: Sequence[JobRequest], cluster_nodes: int, nodes_per_tor: int = 16
) -> PlacementResult:
    """Deal nodes to jobs ToR by ToR, interleaving jobs across racks."""
    _require_capacity(jobs, cluster_nodes)
    # visit nodes in an order that cycles across ToRs: node k of ToR 0, ToR 1, ...
    num_tors = (cluster_nodes + nodes_per_tor - 1) // nodes_per_tor
    order: List[int] = []
    for slot in range(nodes_per_tor):
        for tor in range(num_tors):
            node = tor * nodes_per_tor + slot
            if node < cluster_nodes:
                order.append(node)
    mappings: List[Dict[int, int]] = []
    cursor = 0
    for job in jobs:
        nodes = order[cursor : cursor + job.num_nodes]
        cursor += job.num_nodes
        mappings.append({r: nodes[r] for r in range(job.num_nodes)})
    return PlacementResult(mappings, cluster_nodes, "round_robin")


def strided_placement(jobs: Sequence[JobRequest], cluster_nodes: int, stride: int = 2) -> PlacementResult:
    """Assign every ``stride``-th node to the first job, interleaving the others."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    _require_capacity(jobs, cluster_nodes)
    order = [n for offset in range(stride) for n in range(offset, cluster_nodes, stride)]
    mappings: List[Dict[int, int]] = []
    cursor = 0
    for job in jobs:
        nodes = order[cursor : cursor + job.num_nodes]
        cursor += job.num_nodes
        mappings.append({r: nodes[r] for r in range(job.num_nodes)})
    return PlacementResult(mappings, cluster_nodes, "strided")


def locality_placement(
    jobs: Sequence[JobRequest],
    cluster_nodes: int,
    topology=None,
    group_size: int = 16,
) -> PlacementResult:
    """Pack jobs into whole switch-attachment groups of the topology.

    Parameters
    ----------
    topology:
        A :class:`~repro.network.topology.base.Topology`; its
        :meth:`~repro.network.topology.base.Topology.host_groups` define the
        locality unit (hosts sharing a ToR, torus router or Slim Fly
        router).  When omitted, contiguous blocks of ``group_size`` hosts
        are used instead.
    group_size:
        Fallback group width when no topology is given.

    Each job is placed into the first single group with enough free slots;
    jobs larger than any group spill over the fewest consecutive groups
    that can hold them.  On a fat tree this reduces to packed allocation;
    on a torus or Slim Fly it keeps every job on as few routers as the
    concentration allows.
    """
    _require_capacity(jobs, cluster_nodes)
    free: List[List[int]] = _build_groups(cluster_nodes, topology, group_size)
    mappings: List[Dict[int, int]] = []
    for job in jobs:
        nodes: List[int] = []
        # first single group that can hold the whole job
        target = next((g for g in free if len(g) >= job.num_nodes), None)
        if target is not None:
            nodes = target[: job.num_nodes]
            del target[: job.num_nodes]
        else:
            # spill over the fewest consecutive groups that can hold the job
            # (earliest such window on ties)
            best: Optional[Tuple[int, int]] = None  # (start, end) exclusive
            for start in range(len(free)):
                total = 0
                for end in range(start, len(free)):
                    total += len(free[end])
                    if total >= job.num_nodes:
                        if best is None or (end + 1 - start) < (best[1] - best[0]):
                            best = (start, end + 1)
                        break
            if best is None:
                raise ValueError(
                    f"job {job.label!r} needs {job.num_nodes} nodes but only "
                    f"{sum(len(g) for g in free)} remain free"
                )
            remaining = job.num_nodes
            for g in free[best[0] : best[1]]:
                take = min(remaining, len(g))
                nodes.extend(g[:take])
                del g[:take]
                remaining -= take
        mappings.append({r: nodes[r] for r in range(job.num_nodes)})
    return PlacementResult(mappings, cluster_nodes, "locality")


def _build_groups(cluster_nodes: int, topology, group_size: int) -> List[List[int]]:
    """Host groups from the topology, or contiguous ``group_size`` blocks."""
    if topology is not None:
        if topology.num_hosts != cluster_nodes:
            raise ValueError(
                f"topology has {topology.num_hosts} hosts but cluster_nodes is {cluster_nodes}"
            )
        return [list(g) for g in topology.host_groups()]
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    return [
        list(range(start, min(start + group_size, cluster_nodes)))
        for start in range(0, cluster_nodes, group_size)
    ]


def fragmented_placement(
    jobs: Sequence[JobRequest],
    cluster_nodes: int,
    topology=None,
    group_size: int = 16,
) -> PlacementResult:
    """Deliberate anti-locality: scatter each job across as many groups as possible.

    The dual of :func:`locality_placement` — every job's ranks are dealt one
    node per switch-attachment group, cycling over all groups, so intra-job
    traffic crosses first-hop switches (and the oversubscribed core, on a fat
    tree) as much as the cluster shape allows.  Deterministic, which makes it
    the clean "worst-case placement" arm of interference sweeps.
    """
    _require_capacity(jobs, cluster_nodes)
    free = _build_groups(cluster_nodes, topology, group_size)
    mappings: List[Dict[int, int]] = []
    for job in jobs:
        nodes: List[int] = []
        cursor = 0
        while len(nodes) < job.num_nodes:
            group = free[cursor % len(free)]
            if group:
                nodes.append(group.pop(0))
            cursor += 1
            if len(nodes) < job.num_nodes and not any(free):
                raise ValueError(
                    f"job {job.label!r} needs {job.num_nodes} nodes but the cluster ran out"
                )
        mappings.append({r: nodes[r] for r in range(job.num_nodes)})
    return PlacementResult(mappings, cluster_nodes, "fragmented")


def random_interleaved_placement(
    jobs: Sequence[JobRequest], cluster_nodes: int, seed: int = 0
) -> PlacementResult:
    """Shuffle the cluster and deal nodes to jobs round-robin.

    Unlike :func:`random_placement` (each job draws a contiguous slice of one
    permutation), the shuffled nodes are dealt to the jobs one at a time, so
    the jobs are interleaved through the whole permutation — every job is
    spread across the entire cluster and through every other job's nodes.
    """
    _require_capacity(jobs, cluster_nodes)
    rng = np.random.default_rng(seed)
    order = [int(n) for n in rng.permutation(cluster_nodes)]
    assigned: List[List[int]] = [[] for _ in jobs]
    cursor = 0
    while any(len(nodes) < job.num_nodes for nodes, job in zip(assigned, jobs)):
        for idx, job in enumerate(jobs):
            if len(assigned[idx]) < job.num_nodes:
                assigned[idx].append(order[cursor])
                cursor += 1
    mappings = [
        {r: nodes[r] for r in range(job.num_nodes)}
        for nodes, job in zip(assigned, jobs)
    ]
    return PlacementResult(mappings, cluster_nodes, "random_interleaved")


PLACEMENT_STRATEGIES: Dict[str, Callable[..., PlacementResult]] = {
    "packed": packed_placement,
    "random": random_placement,
    "round_robin": round_robin_placement,
    "strided": strided_placement,
    "locality": locality_placement,
    "fragmented": fragmented_placement,
    "random_interleaved": random_interleaved_placement,
}


def place_jobs(
    jobs: Sequence[JobRequest],
    cluster_nodes: int,
    strategy: str = "packed",
    **kwargs,
) -> PlacementResult:
    """Place ``jobs`` using the named strategy (see :data:`PLACEMENT_STRATEGIES`)."""
    try:
        fn = PLACEMENT_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown placement strategy {strategy!r}") from None
    return fn(jobs, cluster_nodes, **kwargs)


def filter_strategy_kwargs(strategy: str, kwargs: Dict[str, object]) -> Dict[str, object]:
    """Keep only the kwargs the named strategy's signature accepts.

    Grids and CLIs share one kwargs dict across heterogeneous strategies
    (``seed`` for the random ones, ``group_size``/``topology`` for the
    group-aware ones); this gives each strategy its slice.
    """
    import inspect

    try:
        fn = PLACEMENT_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown placement strategy {strategy!r}") from None
    accepted = inspect.signature(fn).parameters
    return {k: v for k, v in kwargs.items() if k in accepted}

"""ATLAHS reproduction: an application-centric network simulator toolchain.

The package mirrors the architecture of the ATLAHS paper (SC'25):

* :mod:`repro.goal` — the GOAL intermediate representation,
* :mod:`repro.tracers` / :mod:`repro.apps` — application models and the
  tracers that record them,
* :mod:`repro.schedgen` — converters from traces (and synthetic patterns) to
  GOAL schedules,
* :mod:`repro.collectives` — point-to-point decompositions of collective
  operations,
* :mod:`repro.scheduler` — the GOAL scheduler,
* :mod:`repro.network` — the message-level (LogGOPS) and packet-level
  (htsim-like) backends, topologies, and congestion control,
* :mod:`repro.placement` — job placement and multi-tenant merging,
* :mod:`repro.baselines` — the AstraSim/Chakra-like comparison baseline,
* :mod:`repro.core` — the high-level :class:`~repro.core.atlahs.Atlahs`
  facade tying the pipeline together.
"""

__version__ = "1.0.0"

from repro.goal import GoalBuilder, GoalSchedule, Op, OpType
from repro.network import LogGOPSParams, SimulationConfig
from repro.scheduler import GoalScheduler, simulate

__all__ = [
    "__version__",
    "GoalBuilder",
    "GoalSchedule",
    "Op",
    "OpType",
    "LogGOPSParams",
    "SimulationConfig",
    "GoalScheduler",
    "simulate",
]

"""High-level toolchain facade."""
from repro.core.atlahs import Atlahs, PipelineResult

__all__ = ["Atlahs", "PipelineResult"]

"""The :class:`Atlahs` facade: trace → GOAL → simulate pipelines in one call.

The individual packages (:mod:`repro.apps`, :mod:`repro.tracers`,
:mod:`repro.schedgen`, :mod:`repro.scheduler`, :mod:`repro.network`) can be
used directly; this facade wires the common end-to-end pipelines the paper's
evaluation exercises, and is what the examples and benchmarks use.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.ai import DlrmTrainer, LlmTrainer, ModelConfig, ParallelismConfig
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.baselines.astrasim import AstraSimBaseline, nsys_to_chakra
from repro.collectives.nccl import NcclConfig
from repro.goal.binary import encode_goal
from repro.goal.schedule import GoalSchedule
from repro.goal.validate import validate_schedule
from repro.network.backend import SimulationResult
from repro.network.config import LogGOPSParams, SimulationConfig
from repro.placement import JobRequest, place_jobs
from repro.schedgen import (
    mpi_trace_to_goal,
    nccl_trace_to_goal,
    storage_trace_to_goal,
)
from repro.schedgen.storage import DirectDriveConfig
from repro.scheduler import simulate
from repro.tracers.storage import SpcTrace


@dataclass
class PipelineResult:
    """Everything one end-to-end pipeline run produced.

    Attributes
    ----------
    schedule:
        The generated GOAL schedule.
    result:
        The simulation result (``None`` when only trace/GOAL generation was
        requested).
    trace_bytes:
        Size of the raw application trace serialisation (Table 1's "Trace"
        column), when a raw trace exists for the pipeline.
    goal_bytes:
        Size of the compact binary GOAL encoding (Table 1's "GOAL" column).
    extras:
        Pipeline-specific artefacts (e.g. the raw trace object, Chakra sizes).
    """

    schedule: GoalSchedule
    result: Optional[SimulationResult] = None
    trace_bytes: int = 0
    goal_bytes: int = 0
    extras: Dict[str, object] = field(default_factory=dict)


class Atlahs:
    """End-to-end pipelines of the toolchain.

    Parameters
    ----------
    config:
        Default :class:`SimulationConfig` used when a pipeline call does not
        supply its own.
    """

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # ----------------------------------------------------------------- generic
    def simulate_goal(
        self,
        schedule: GoalSchedule,
        backend: str = "lgs",
        config: Optional[SimulationConfig] = None,
        validate: bool = True,
    ) -> SimulationResult:
        """Replay an existing GOAL schedule on the chosen backend."""
        return simulate(schedule, backend=backend, config=config or self.config, validate=validate)

    # --------------------------------------------------------------------- HPC
    def run_hpc(
        self,
        app_name: str,
        run_config: HpcRunConfig,
        backend: str = "lgs",
        config: Optional[SimulationConfig] = None,
        compute_scale: float = 1.0,
        simulate_schedule: bool = True,
    ) -> PipelineResult:
        """Trace an HPC application model, convert to GOAL, and simulate it."""
        try:
            app = HPC_APPLICATIONS[app_name]
        except KeyError:
            raise ValueError(
                f"unknown HPC application {app_name!r}; available: {sorted(HPC_APPLICATIONS)}"
            ) from None
        trace = app.trace(run_config)
        schedule = mpi_trace_to_goal(trace, compute_scale=compute_scale)
        validate_schedule(schedule)
        sim_config = config or self.config.replace(loggops=LogGOPSParams.hpc_cluster())
        result = (
            simulate(schedule, backend=backend, config=sim_config, validate=False)
            if simulate_schedule
            else None
        )
        return PipelineResult(
            schedule=schedule,
            result=result,
            trace_bytes=trace.size_bytes(),
            goal_bytes=len(encode_goal(schedule)),
            extras={"trace": trace},
        )

    # ---------------------------------------------------------------------- AI
    def run_ai_training(
        self,
        model: ModelConfig,
        parallelism: ParallelismConfig,
        iterations: int = 2,
        gpus_per_node: int = 4,
        nccl_config: Optional[NcclConfig] = None,
        backend: str = "lgs",
        config: Optional[SimulationConfig] = None,
        compute_scale: float = 1.0,
        simulate_schedule: bool = True,
        seed: int = 0,
        collective_algorithm: Optional[str] = None,
    ) -> PipelineResult:
        """Trace an LLM-training model, run the 4-stage pipeline, and simulate it.

        ``collective_algorithm`` overrides Stage 3's collective
        decomposition with an algorithm from the
        :mod:`repro.collectives.algorithms` registry (e.g. ``"hier_rs"``
        for node-hierarchical allreduces, or ``"auto"`` for the LogGOPS
        autotuner); ``None`` keeps the NCCL chunked ring/tree path.
        """
        trainer = LlmTrainer(
            model, parallelism, gpus_per_node=gpus_per_node, iterations=iterations, seed=seed
        )
        report = trainer.trace()
        schedule = nccl_trace_to_goal(
            report,
            nccl_config=nccl_config,
            compute_scale=compute_scale,
            gpus_per_node=gpus_per_node,
            collective_algorithm=collective_algorithm,
        )
        validate_schedule(schedule)
        sim_config = config or self.config.replace(loggops=LogGOPSParams.ai_cluster())
        result = (
            simulate(schedule, backend=backend, config=sim_config, validate=False)
            if simulate_schedule
            else None
        )
        return PipelineResult(
            schedule=schedule,
            result=result,
            trace_bytes=report.size_bytes(),
            goal_bytes=len(encode_goal(schedule)),
            extras={"report": report, "iterations": iterations},
        )

    def run_dlrm(
        self,
        num_gpus: int,
        gpus_per_node: int = 4,
        iterations: int = 2,
        backend: str = "lgs",
        config: Optional[SimulationConfig] = None,
        simulate_schedule: bool = True,
    ) -> PipelineResult:
        """Trace the DLRM model and simulate it."""
        trainer = DlrmTrainer(num_gpus=num_gpus, gpus_per_node=gpus_per_node, iterations=iterations)
        report = trainer.trace()
        schedule = nccl_trace_to_goal(report, gpus_per_node=gpus_per_node)
        validate_schedule(schedule)
        result = (
            simulate(schedule, backend=backend, config=config or self.config, validate=False)
            if simulate_schedule
            else None
        )
        return PipelineResult(
            schedule=schedule,
            result=result,
            trace_bytes=report.size_bytes(),
            goal_bytes=len(encode_goal(schedule)),
            extras={"report": report},
        )

    def compare_with_astrasim(self, report, chakra_name: Optional[str] = None) -> Dict[str, object]:
        """Convert an NCCL trace to Chakra and run the AstraSim-like baseline.

        Returns the Chakra trace size and — when the baseline supports the
        workload — its predicted runtime and wall-clock simulation time.
        """
        chakra = nsys_to_chakra(report, name=chakra_name)
        out: Dict[str, object] = {"chakra_bytes": chakra.size_bytes(), "chakra": chakra}
        baseline = AstraSimBaseline()
        try:
            result = baseline.simulate(chakra)
        except Exception as exc:  # noqa: BLE001 - the failure reason is the result
            out["error"] = str(exc)
            return out
        out["finish_time_ns"] = result.finish_time_ns
        out["wall_clock_s"] = result.wall_clock_s
        return out

    # ----------------------------------------------------------------- storage
    def run_storage(
        self,
        trace: SpcTrace,
        direct_drive: Optional[DirectDriveConfig] = None,
        backend: str = "htsim",
        config: Optional[SimulationConfig] = None,
        simulate_schedule: bool = True,
    ) -> PipelineResult:
        """Replay an SPC block-I/O trace against the Direct Drive model."""
        dd = direct_drive or DirectDriveConfig()
        schedule = storage_trace_to_goal(trace, dd)
        validate_schedule(schedule)
        result = (
            simulate(schedule, backend=backend, config=config or self.config, validate=False)
            if simulate_schedule
            else None
        )
        return PipelineResult(
            schedule=schedule,
            result=result,
            trace_bytes=trace.size_bytes(),
            goal_bytes=len(encode_goal(schedule)),
            extras={"direct_drive": dd},
        )

    # --------------------------------------------------------------- inference
    def run_inference(
        self,
        num_requests: int = 64,
        rate_rps: float = 400.0,
        process: str = "poisson",
        tenants=None,
        cluster=None,
        slo=None,
        backend: str = "lgs",
        config: Optional[SimulationConfig] = None,
        seed: int = 0,
        **process_kwargs,
    ) -> PipelineResult:
        """Generate and simulate one inference-serving cell, with SLO metrics.

        Builds an open-loop serving workload via
        :func:`repro.apps.inference.build_inference_workload`, simulates it
        with per-request op groups, and folds the group finish times into
        :class:`repro.measurement.serving.ServingMetrics`.  The plan and the
        metrics ride in ``extras`` (``extras["plan"]``/``extras["metrics"]``).
        """
        from repro.apps.inference import build_inference_workload
        from repro.measurement.serving import compute_serving_metrics

        plan = build_inference_workload(
            num_requests=num_requests,
            rate_rps=rate_rps,
            process=process,
            tenants=tenants,
            cluster=cluster,
            seed=seed,
            **process_kwargs,
        )
        validate_schedule(plan.schedule)
        result = simulate(
            plan.schedule,
            backend=backend,
            config=config or self.config,
            validate=False,
            op_groups=plan.op_groups,
        )
        metrics = compute_serving_metrics(plan, result, slo=slo)
        return PipelineResult(
            schedule=plan.schedule,
            result=result,
            goal_bytes=len(encode_goal(plan.schedule)),
            extras={"plan": plan, "metrics": metrics},
        )

    # --------------------------------------------------------------- multi-job
    def run_cotenant(
        self,
        jobs,
        cluster_nodes: Optional[int] = None,
        strategy: str = "packed",
        backend: str = "htsim",
        config: Optional[SimulationConfig] = None,
        **kwargs,
    ):
        """Run several jobs concurrently on one fabric with per-job attribution.

        ``jobs`` are :class:`repro.cluster.ClusterJob` records (or plain
        :class:`GoalSchedule` objects, wrapped with arrival 0); returns a
        :class:`repro.cluster.CoTenancyResult` — see :mod:`repro.cluster`.
        """
        from repro.cluster import ClusterJob, run_cotenant

        jobs = [
            job if isinstance(job, ClusterJob) else ClusterJob(job) for job in jobs
        ]
        return run_cotenant(
            jobs,
            cluster_nodes=cluster_nodes,
            strategy=strategy,
            backend=backend,
            config=config or self.config,
            **kwargs,
        )

    def run_multi_job(
        self,
        schedules: Sequence[GoalSchedule],
        cluster_nodes: int,
        strategy: str = "packed",
        backend: str = "htsim",
        config: Optional[SimulationConfig] = None,
        **strategy_kwargs,
    ) -> PipelineResult:
        """Place several jobs on one cluster and simulate them together."""
        jobs = [JobRequest(schedule=s) for s in schedules]
        placement = place_jobs(jobs, cluster_nodes, strategy=strategy, **strategy_kwargs)
        merged = placement.merged_schedule(jobs)
        validate_schedule(merged)
        result = simulate(merged, backend=backend, config=config or self.config, validate=False)
        return PipelineResult(
            schedule=merged,
            result=result,
            goal_bytes=len(encode_goal(merged)),
            extras={"placement": placement},
        )

"""Command-line interface of the toolchain (``atlahs`` entry point).

Subcommands mirror the main pipelines:

* ``atlahs simulate FILE`` — replay a GOAL file (textual or binary) on a backend,
* ``atlahs hpc APP`` — trace + simulate one of the HPC application models,
* ``atlahs ai MODEL`` — trace + simulate an LLM-training workload,
* ``atlahs storage`` — generate a Financial-like workload and replay it
  against Direct Drive,
* ``atlahs synthetic PATTERN`` — run one of the synthetic microbenchmarks,
* ``atlahs cotenant JOB [JOB ...]`` — run several jobs concurrently on one
  fabric and attribute runtime/slowdown/contention per job (a job is a GOAL
  file or a ``pattern:ranks:size`` synthetic spec),
* ``atlahs faults WORKLOAD`` — replay a workload on a degraded fabric:
  link-failure-rate sweeps or explicit timed link/switch fault scenarios,
* ``atlahs inference`` — sweep an inference-serving workload (open-loop
  arrivals, prefill/decode phases, continuous batching) across offered
  request rates and report goodput plus TTFT/TPOT SLO percentiles,
* ``atlahs collectives`` — list/describe the collective algorithm registry,
  or sweep algorithms x topologies x sizes (``--sweep``; see
  ``docs/collectives.md``),
* ``atlahs topologies`` — list registered topologies and routing strategies,
* ``atlahs bench`` — run the performance suite and track ``BENCH_*.json``
  baselines (see ``docs/performance.md``).

Every simulation subcommand accepts the shared network flags
(``--backend``, ``--topology``, ``--routing``, topology shape parameters,
``--cc``, ``--seed``); ``topologies`` is a pure listing and takes none.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.ai import MODEL_PRESETS, ParallelismConfig
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.core import Atlahs
from repro.goal.binary import read_goal_binary
from repro.goal.parser import parse_goal_file
from repro.network.config import SimulationConfig
from repro.network.routing import ROUTING_STRATEGIES, routing_names
from repro.network.topology import TOPOLOGY_DESCRIPTIONS, topology_names
from repro.schedgen import all_to_all, incast, permutation, ring_allreduce_microbenchmark
from repro.schedgen.storage import DirectDriveConfig
from repro.tracers.storage import FinancialWorkloadGenerator


def _parse_dims(text: str) -> tuple:
    """Parse a comma-separated torus shape like ``"4,4"`` or ``"4,4,2"``."""
    try:
        dims = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid torus dims {text!r}; expected e.g. 4,4") from None
    if len(dims) not in (2, 3) or any(d < 2 for d in dims):
        raise argparse.ArgumentTypeError(
            f"torus dims must be 2 or 3 ring lengths, each >= 2 (e.g. 4,4 or 4,4,2); got {text!r}"
        )
    return dims


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("network")
    group.add_argument("--backend", choices=["lgs", "htsim"], default="lgs", help="network backend")
    group.add_argument(
        "--topology", choices=list(topology_names()), default="fat_tree", help="network topology"
    )
    group.add_argument(
        "--routing", choices=list(routing_names()), default="minimal", help="routing strategy"
    )
    group.add_argument("--nodes-per-tor", type=int, default=16, help="fat tree: hosts per ToR")
    group.add_argument(
        "--oversubscription", type=float, default=1.0, help="fat tree: ToR downlink:uplink ratio"
    )
    group.add_argument(
        "--fattree-planes", type=int, default=2,
        help="fat_tree_multiplane: number of drainable core planes",
    )
    group.add_argument(
        "--fattree-rails", type=int, default=4,
        help="fat_tree_rail: GPUs (rails) per server",
    )
    group.add_argument(
        "--torus-dims", type=_parse_dims, default=(4, 4), metavar="X,Y[,Z]",
        help="torus: ring length per dimension (e.g. 4,4 or 4,4,2)",
    )
    group.add_argument("--torus-hosts-per-node", type=int, default=1, help="torus: hosts per switch")
    group.add_argument(
        "--slimfly-q", type=int, default=5, help="slim fly: prime q = 1 mod 4 (5, 13, 17, ...)"
    )
    group.add_argument(
        "--slimfly-hosts-per-router", type=int, default=0,
        help="slim fly: hosts per router (0 = balanced concentration)",
    )
    group.add_argument(
        "--cc", choices=["mprdma", "swift", "dctcp", "ndp", "fixed"], default="mprdma",
        help="congestion control (packet backend)",
    )
    group.add_argument(
        "--route-cache-entries", type=int, default=16384,
        help="LRU budget per route-table cache (0 = unbounded; see docs/scaling.md)",
    )
    group.add_argument(
        "--shards", type=int, default=1,
        help="parallel shards for the packet backend (1 = single-process; "
        "requires --backend htsim; see docs/scaling.md for the "
        "conservative-window engine)",
    )
    group.add_argument(
        "--load-snapshot-ns", type=int, default=0,
        help="sharded adaptive routing: barrier load-snapshot cadence in ns "
        "(0 = auto: the topology's minimum link latency)",
    )
    group.add_argument("--seed", type=int, default=0, help="seed for stochastic choices")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    if args.shards > 1 and args.backend != "htsim":
        # the analytic LogGOPS backend has no packet events to shard; a
        # silently ignored --shards would misreport single-process runs as
        # parallel ones, so reject the combination up front
        raise SystemExit(
            f"--shards {args.shards} requires the packet backend: pass "
            f"--backend htsim (the {args.backend!r} backend is analytic "
            "and runs single-process)"
        )
    if args.load_snapshot_ns < 0:
        raise SystemExit(
            f"--load-snapshot-ns must be non-negative, got {args.load_snapshot_ns} "
            "(0 = auto: the topology's minimum link latency)"
        )
    return SimulationConfig(
        topology=args.topology,
        routing=args.routing,
        nodes_per_tor=args.nodes_per_tor,
        oversubscription=args.oversubscription,
        fattree_planes=args.fattree_planes,
        fattree_rails=args.fattree_rails,
        route_cache_entries=args.route_cache_entries,
        torus_dims=args.torus_dims,
        torus_hosts_per_node=args.torus_hosts_per_node,
        slimfly_q=args.slimfly_q,
        slimfly_hosts_per_router=args.slimfly_hosts_per_router,
        cc_algorithm=args.cc,
        shards=args.shards,
        load_snapshot_ns=args.load_snapshot_ns,
        seed=args.seed,
    )


def _print_result(name: str, result, extra: Optional[dict] = None) -> None:
    payload = {
        "workload": name,
        "backend": result.backend,
        "simulated_time_s": result.finish_time_s,
        "ops_completed": result.ops_completed,
        "messages": result.stats.messages_delivered,
        "bytes": result.stats.bytes_delivered,
        "packet_drops": result.stats.packets_dropped,
        "wall_clock_s": round(result.wall_clock_s, 3),
    }
    if extra:
        payload.update(extra)
    print(json.dumps(payload, indent=2))


def _read_goal_any(path: str):
    """Read a GOAL file, textual (.goal) or binary (.bin/.goalbin) by extension."""
    if path.endswith(".bin") or path.endswith(".goalbin"):
        return read_goal_binary(path)
    return parse_goal_file(path)


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Replay a GOAL file (textual .goal or binary .bin/.goalbin) on a backend."""
    schedule = _read_goal_any(args.goal_file)
    atlahs = Atlahs(_config_from_args(args))
    result = atlahs.simulate_goal(schedule, backend=args.backend)
    _print_result(schedule.name, result)
    return 0


def _cmd_hpc(args: argparse.Namespace) -> int:
    """Trace one of the HPC application models and simulate the GOAL schedule."""
    atlahs = Atlahs(_config_from_args(args))
    run = HpcRunConfig(
        num_ranks=args.ranks,
        iterations=args.iterations,
        cells_per_rank=args.cells_per_rank,
        scaling=args.scaling,
    )
    out = atlahs.run_hpc(args.app, run, backend=args.backend)
    _print_result(
        f"{args.app}-{args.ranks}",
        out.result,
        {"trace_bytes": out.trace_bytes, "goal_bytes": out.goal_bytes},
    )
    return 0


def _cmd_ai(args: argparse.Namespace) -> int:
    """Trace an LLM-training workload and simulate the GOAL schedule."""
    atlahs = Atlahs(_config_from_args(args))
    model = MODEL_PRESETS[args.model]().scaled(args.scale)
    par = ParallelismConfig(
        tp=args.tp, pp=args.pp, dp=args.dp, ep=args.ep,
        microbatches=args.microbatches, global_batch=args.batch,
    )
    out = atlahs.run_ai_training(
        model,
        par,
        iterations=args.iterations,
        gpus_per_node=args.gpus_per_node,
        backend=args.backend,
        collective_algorithm=args.collective_algorithm,
    )
    _print_result(
        f"{args.model} ({par.describe()})",
        out.result,
        {"trace_bytes": out.trace_bytes, "goal_bytes": out.goal_bytes, "gpus": par.num_gpus},
    )
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    """Generate a Financial-like workload and replay it against Direct Drive."""
    atlahs = Atlahs(_config_from_args(args))
    gen = FinancialWorkloadGenerator(seed=args.seed)
    trace = gen.generate(args.operations)
    out = atlahs.run_storage(trace, DirectDriveConfig(), backend=args.backend)
    mct = out.result.mct_statistics()
    _print_result(
        f"direct-drive-{args.operations}ops",
        out.result,
        {"mct_mean_us": mct["mean"] / 1e3, "mct_p99_us": mct["p99"] / 1e3, "mct_max_us": mct["max"] / 1e3},
    )
    return 0


def _cmd_synthetic(args: argparse.Namespace) -> int:
    """Run a synthetic microbenchmark (incast, permutation, alltoall, allreduce)."""
    atlahs = Atlahs(_config_from_args(args))
    size = args.message_size
    if args.pattern == "incast":
        schedule = incast(args.ranks, size)
    elif args.pattern == "permutation":
        schedule = permutation(args.ranks, size, seed=args.seed)
    elif args.pattern == "alltoall":
        schedule = all_to_all(args.ranks, size)
    else:
        schedule = ring_allreduce_microbenchmark(args.ranks, size)
    result = atlahs.simulate_goal(schedule, backend=args.backend)
    _print_result(f"{args.pattern}-{args.ranks}", result)
    return 0


def _load_job_schedule(spec: str):
    """Load one co-tenant job: a GOAL file path or a ``pattern:ranks:size`` spec.

    Synthetic specs (``incast:16:65536``, ``alltoall:8:4096``,
    ``permutation:8:1048576``, ``allreduce:8:1048576``) let multi-job runs be
    assembled without trace files on disk.
    """
    import os

    patterns = {
        "incast": incast,
        "permutation": permutation,
        "alltoall": all_to_all,
        "allreduce": ring_allreduce_microbenchmark,
    }
    if not os.path.exists(spec) and spec.count(":") == 2:
        pattern, ranks, size = spec.split(":")
        if pattern not in patterns:
            raise SystemExit(
                f"unknown synthetic pattern {pattern!r} in job spec {spec!r}; "
                f"expected one of {sorted(patterns)}"
            )
        try:
            schedule = patterns[pattern](int(ranks), int(size))
        except ValueError as exc:
            raise SystemExit(f"bad job spec {spec!r}: {exc}") from None
        schedule.name = spec
        return schedule
    try:
        return _read_goal_any(spec)
    except FileNotFoundError:
        raise SystemExit(
            f"job spec {spec!r} is neither an existing GOAL file nor a "
            f"pattern:ranks:size synthetic spec (e.g. alltoall:8:65536)"
        ) from None


def _cmd_cotenant(args: argparse.Namespace) -> int:
    """Run several jobs concurrently on one shared fabric with per-job attribution."""
    from repro.cluster import ClusterJob, run_cotenant
    from repro.placement import PLACEMENT_STRATEGIES, filter_strategy_kwargs

    schedules = [_load_job_schedule(spec) for spec in args.jobs]
    arrivals = [0] * len(schedules)
    if args.arrivals:
        try:
            parts = [int(a) for a in args.arrivals.split(",")]
        except ValueError:
            raise SystemExit(
                f"--arrivals must be comma-separated integers (ns), got {args.arrivals!r}"
            ) from None
        if len(parts) != len(schedules):
            raise SystemExit(
                f"--arrivals lists {len(parts)} times for {len(schedules)} jobs"
            )
        arrivals = parts
    try:
        jobs = [
            ClusterJob(schedule, arrival_ns=arrival)
            for schedule, arrival in zip(schedules, arrivals)
        ]
    except ValueError as exc:
        raise SystemExit(f"bad --arrivals: {exc}") from None

    strategies = [s.strip() for s in args.placement.split(",") if s.strip()]
    unknown = [s for s in strategies if s not in PLACEMENT_STRATEGIES]
    if unknown:
        raise SystemExit(
            f"unknown placement strategies {unknown}; "
            f"registered: {', '.join(sorted(PLACEMENT_STRATEGIES))}"
        )

    config = _config_from_args(args)
    strategy_kwargs = {}
    if args.group_size:
        strategy_kwargs["group_size"] = args.group_size
    strategy_kwargs["seed"] = args.seed
    payload = {
        "workload": f"cotenant-{len(jobs)}job",
        "backend": args.backend,
        "cluster_nodes": args.cluster_nodes or sum(j.num_nodes for j in jobs),
        "strategies": {},
    }
    for strategy in strategies:
        kwargs = filter_strategy_kwargs(strategy, strategy_kwargs)
        res = run_cotenant(
            jobs,
            cluster_nodes=args.cluster_nodes,
            strategy=strategy,
            backend=args.backend,
            config=config,
            baseline=not args.no_baseline,
            shared=args.shared,
            **kwargs,
        )
        contended = res.contended_links()
        top_links = sorted(
            contended.items(), key=lambda kv: -sum(kv[1].values())
        )[:5]
        payload["strategies"][strategy] = {
            "finish_time_ms": res.result.finish_time_ns / 1e6,
            "wall_clock_s": round(res.result.wall_clock_s, 3),
            "contended_links": len(contended),
            "top_contended_links": [
                {"link": link, "per_job_bytes": jobs_bytes}
                for link, jobs_bytes in top_links
            ],
            "jobs": [
                {
                    "job": out.name,
                    "arrival_ms": out.arrival_ns / 1e6,
                    "runtime_ms": out.runtime_ns / 1e6,
                    "isolated_runtime_ms": (
                        None
                        if out.isolated_runtime_ns is None
                        else out.isolated_runtime_ns / 1e6
                    ),
                    "slowdown": out.slowdown,
                    "messages": out.messages_delivered,
                    "bytes": out.bytes_delivered,
                }
                for out in res.outcomes
            ],
        }
    print(json.dumps(payload, indent=2))
    return 0


def _parse_fault_events(args: argparse.Namespace) -> List:
    """Parse the repeatable ``TARGET@TIME_NS`` fault-event flags."""
    from repro.network.faults import (
        LINK_DOWN,
        LINK_UP,
        SWITCH_DRAIN,
        SWITCH_UNDRAIN,
        FaultEvent,
    )

    flag_kinds = (
        ("--link-down", LINK_DOWN, args.link_down),
        ("--link-up", LINK_UP, args.link_up),
        ("--drain-switch", SWITCH_DRAIN, args.drain_switch),
        ("--undrain-switch", SWITCH_UNDRAIN, args.undrain_switch),
    )
    events = []
    for flag, kind, specs in flag_kinds:
        for spec in specs or ():
            target, sep, when = spec.rpartition("@")
            if not sep or not target:
                raise SystemExit(
                    f"bad {flag} spec {spec!r}; expected TARGET@TIME_NS "
                    f"(e.g. 'tor0->core1@50000')"
                )
            try:
                time_ns = int(when)
            except ValueError:
                raise SystemExit(
                    f"bad {flag} spec {spec!r}: time {when!r} is not an integer "
                    f"nanosecond value"
                ) from None
            if kind in (SWITCH_DRAIN, SWITCH_UNDRAIN):
                try:
                    target = int(target)
                except ValueError:
                    raise SystemExit(
                        f"bad {flag} spec {spec!r}: drain targets a switch "
                        f"device id (host count and up), got {target!r}"
                    ) from None
            try:
                events.append(FaultEvent(time_ns, kind, target))
            except ValueError as exc:
                raise SystemExit(f"bad {flag} spec {spec!r}: {exc}") from None
    return events


def _cmd_faults(args: argparse.Namespace) -> int:
    """Simulate a workload on a degraded fabric: failure-rate sweeps or explicit fault scenarios."""
    from repro.network.faults import FaultSchedule, NetworkPartitionError
    from repro.sweep import resilience_sweep

    from repro.network.control_plane import CONTROL_PLANES, control_plane_names

    schedule = _load_job_schedule(args.workload)
    control_planes = [c.strip() for c in args.control_plane.split(",") if c.strip()]
    if not control_planes:
        raise SystemExit("--control-plane lists no protocols")
    unknown_cp = [c for c in control_planes if c not in CONTROL_PLANES]
    if unknown_cp:
        raise SystemExit(
            f"unknown control plane(s) {unknown_cp}; "
            f"registered: {', '.join(control_plane_names())}"
        )
    if args.cp_propagation_ns < 0:
        raise SystemExit(
            f"--cp-propagation-ns must be non-negative, got {args.cp_propagation_ns}"
        )
    if args.cp_processing_ns < 0:
        raise SystemExit(
            f"--cp-processing-ns must be non-negative, got {args.cp_processing_ns}"
        )
    config = _config_from_args(args).replace(
        cp_propagation_ns=args.cp_propagation_ns,
        cp_processing_ns=args.cp_processing_ns,
    )
    events = _parse_fault_events(args)
    static = tuple(
        s.strip() for s in (args.fail_links.split(",") if args.fail_links else []) if s.strip()
    )

    if events or static:
        # explicit scenario: healthy baseline vs the described faults
        if len(control_planes) > 1:
            raise SystemExit(
                "--control-plane lists several protocols; an explicit fault "
                "scenario runs one (use the rate-sweep mode to compare them)"
            )
        try:
            faults = FaultSchedule(events=tuple(events), failed_links=static)
        except ValueError as exc:
            raise SystemExit(f"bad fault schedule: {exc}") from None
        atlahs = Atlahs(config)
        try:
            healthy = atlahs.simulate_goal(schedule, backend=args.backend)
            faulted = atlahs.simulate_goal(
                schedule,
                backend=args.backend,
                config=config.replace(faults=faults, control_plane=control_planes[0]),
            )
        except (ValueError, NetworkPartitionError) as exc:
            raise SystemExit(f"fault scenario failed: {exc}") from None
        payload = {
            "workload": schedule.name,
            "backend": faulted.backend,
            "control_plane": control_planes[0],
            "scenario": {
                "failed_links": list(static),
                "events": [
                    {"time_ns": ev.time_ns, "kind": ev.kind, "target": ev.target}
                    for ev in faults.sorted_events()
                ],
            },
            "healthy_time_ms": healthy.finish_time_ns / 1e6,
            "faulted_time_ms": faulted.finish_time_ns / 1e6,
            "slowdown": faulted.finish_time_ns / healthy.finish_time_ns,
            "packets_rerouted": faulted.stats.packets_rerouted,
            "packets_lost_to_faults": faulted.stats.packets_lost_to_faults,
            "packets_blackholed": faulted.stats.packets_blackholed,
            "time_to_recover_ns": faulted.stats.time_to_recover_ns,
            "packet_drops": faulted.stats.packets_dropped,
            "retransmissions": faulted.stats.retransmissions,
        }
        print(json.dumps(payload, indent=2))
        return 0

    # failure-rate sweep
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        raise SystemExit(
            f"--rates must be comma-separated fractions in [0, 1), got {args.rates!r}"
        ) from None
    if not rates:
        raise SystemExit("--rates lists no failure rates")
    routings = [r.strip() for r in args.routings.split(",") if r.strip()] or [args.routing]
    unknown = [r for r in routings if r not in ROUTING_STRATEGIES]
    if unknown:
        raise SystemExit(
            f"unknown routing strategies {unknown}; registered: {', '.join(routing_names())}"
        )
    if args.fail_time_ns is not None and args.fail_time_ns < 0:
        raise SystemExit(
            f"--fail-time-ns must be non-negative, got {args.fail_time_ns}"
        )
    try:
        entries = resilience_sweep(
            schedule,
            {args.topology: config},
            failure_rates=rates,
            routings=routings,
            backend=args.backend,
            failure_seed=args.failure_seed,
            control_planes=control_planes,
            fail_time_ns=args.fail_time_ns,
        )
    except ValueError as exc:
        raise SystemExit(f"bad resilience sweep: {exc}") from None
    except NetworkPartitionError as exc:
        raise SystemExit(
            f"failure rate partitions the fabric: {exc} "
            f"(lower the rate or change --failure-seed)"
        ) from None
    payload = {
        "workload": schedule.name,
        "backend": args.backend,
        "topology": args.topology,
        "failure_seed": args.failure_seed,
        "fail_time_ns": args.fail_time_ns,
        "cells": [
            {
                "routing": e.routing,
                "control_plane": e.control_plane,
                "failure_rate": e.failure_rate,
                "failed_links": e.failed_links,
                "finish_time_ms": e.finish_time_ms,
                "slowdown": e.slowdown,
                "packets_rerouted": e.packets_rerouted,
                "packets_lost_to_faults": e.packets_lost_to_faults,
                "packets_blackholed": e.packets_blackholed,
                "time_to_recover_ns": e.time_to_recover_ns,
                "packet_drops": e.packets_dropped,
            }
            for e in entries
        ],
    }
    print(json.dumps(payload, indent=2))
    return 0


def _parse_tenant_specs(text: str) -> List:
    """Parse a ``NAME:WEIGHT:PROMPT_TOKENS:DECODE_TOKENS`` tenant-mix list."""
    from repro.apps.inference import TenantSpec

    tenants = []
    for spec in text.split(","):
        spec = spec.strip()
        if not spec:
            continue
        parts = spec.split(":")
        if len(parts) != 4:
            raise SystemExit(
                f"bad tenant spec {spec!r}; expected "
                f"NAME:WEIGHT:PROMPT_TOKENS:DECODE_TOKENS (e.g. chat:3:128:32)"
            )
        name, weight, prompt, decode = parts
        try:
            tenants.append(
                TenantSpec(
                    name=name,
                    weight=float(weight),
                    prompt_tokens=int(prompt),
                    decode_tokens=int(decode),
                )
            )
        except ValueError as exc:
            raise SystemExit(f"bad tenant spec {spec!r}: {exc}") from None
    if not tenants:
        raise SystemExit("--tenants lists no tenants")
    seen = set()
    for tenant in tenants:
        if tenant.name in seen:
            raise SystemExit(f"duplicate tenant name {tenant.name!r} in --tenants")
        seen.add(tenant.name)
    return tenants


def _cmd_inference(args: argparse.Namespace) -> int:
    """Sweep an inference-serving workload across offered rates and report SLO percentiles."""
    from repro.apps.inference import (
        DEFAULT_TENANTS,
        ServingClusterConfig,
        arrival_process_names,
    )
    from repro.measurement.serving import SloSpec
    from repro.sweep import inference_sweep

    if args.process not in arrival_process_names():
        raise SystemExit(
            f"unknown arrival process {args.process!r}; "
            f"expected one of {', '.join(arrival_process_names())}"
        )
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        raise SystemExit(
            f"--rates must be comma-separated requests/s, got {args.rates!r}"
        ) from None
    if not rates:
        raise SystemExit("--rates lists no offered rates")
    bad = [r for r in rates if r <= 0]
    if bad:
        raise SystemExit(
            f"bad --rates: offered rates must be positive requests/s, got {bad}"
        )
    tenants = list(DEFAULT_TENANTS) if args.tenants is None else _parse_tenant_specs(args.tenants)
    try:
        cluster = ServingClusterConfig(
            frontends=args.frontends,
            prefill_ranks=args.prefill_ranks,
            decode_ranks=args.decode_ranks,
            max_batch=args.max_batch,
        )
    except ValueError as exc:
        raise SystemExit(f"bad serving cluster: {exc}") from None
    try:
        slo = SloSpec(ttft_ns=int(args.slo_ttft_ms * 1e6))
    except ValueError as exc:
        raise SystemExit(f"bad --slo-ttft-ms: {exc}") from None

    config = _config_from_args(args)
    try:
        entries = inference_sweep(
            rates,
            configs={args.topology: config},
            backend=args.backend,
            num_requests=args.requests,
            process=args.process,
            tenants=tenants,
            cluster=cluster,
            seed=args.seed,
            slo=slo,
            parallel=args.parallel,
        )
    except ValueError as exc:
        raise SystemExit(f"bad inference sweep: {exc}") from None
    payload = {
        "workload": f"inference-{args.process}-{args.requests}req",
        "backend": args.backend,
        "topology": args.topology,
        "process": args.process,
        "requests": args.requests,
        "tenants": [
            {
                "name": t.name,
                "weight": t.weight,
                "prompt_tokens": t.prompt_tokens,
                "decode_tokens": t.decode_tokens,
            }
            for t in tenants
        ],
        "nominal_capacity_rps": round(cluster.nominal_capacity_rps(tenants), 1),
        "slo_ttft_ms": args.slo_ttft_ms,
        "cells": [
            {
                "rate_rps": e.rate_rps,
                "offered_rps": round(e.offered_rps, 1),
                "throughput_rps": round(e.throughput_rps, 1),
                "goodput_rps": round(e.goodput_rps, 1),
                "good_requests": e.good_requests,
                "ttft_p50_ms": round(e.ttft_p50_ns / 1e6, 3),
                "ttft_p99_ms": round(e.ttft_p99_ns / 1e6, 3),
                "ttft_p999_ms": round(e.ttft_p999_ns / 1e6, 3),
                "tpot_p50_ms": round(e.tpot_p50_ns / 1e6, 3),
                "mean_batch": round(e.mean_batch, 2),
                "finish_time_ms": e.finish_time_ns / 1e6,
            }
            for e in entries
        ],
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_collectives(args: argparse.Namespace) -> int:
    """List, describe or sweep the collective algorithm registry (see docs/collectives.md)."""
    from repro.collectives import (
        COLLECTIVE_ALGORITHMS,
        algorithm_names,
        collective_names,
        get_algorithm,
    )

    if args.describe:
        collective = args.collective
        try:
            alg = get_algorithm(collective, args.describe)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        print(f"{alg.collective} / {alg.name}")
        print(f"  {alg.description}")
        print(f"  hierarchical: {'yes (needs locality groups)' if alg.hierarchical else 'no'}")
        print(f"  LogGOPS cost: {alg.cost_formula}")
        return 0

    if not args.sweep:
        print("collective algorithms (LogGOPS cost: S = bytes, N = ranks, g = group")
        print("size, Ng = groups; select with algorithm names below, or 'auto'):")
        for collective in collective_names():
            print(f"\n{collective}:")
            for name in algorithm_names(collective):
                alg = COLLECTIVE_ALGORITHMS[collective][name]
                marker = " [hierarchical]" if alg.hierarchical else ""
                print(f"  {name:28s} {alg.description}{marker}")
        print("\ndetails: atlahs collectives --describe NAME [--collective KIND]")
        print("compare: atlahs collectives --sweep [--topologies ...] [--sizes ...]")
        return 0

    # --sweep: algorithms x topologies x sizes comparison
    from repro.sweep import collective_sweep

    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        raise SystemExit(
            f"--sizes must be comma-separated byte counts, got {args.sizes!r}"
        ) from None
    if not sizes:
        raise SystemExit("--sizes lists no message sizes")
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    topologies = [t.strip() for t in args.topologies.split(",") if t.strip()]
    unknown = [t for t in topologies if t not in topology_names()]
    if unknown:
        raise SystemExit(
            f"unknown topologies {unknown}; registered: {', '.join(topology_names())}"
        )
    base = _config_from_args(args)
    configs = {t: base.replace(topology=t) for t in topologies}
    try:
        entries = collective_sweep(
            configs,
            num_ranks=args.ranks,
            sizes=sizes,
            algorithms=algorithms,
            collective=args.collective,
            backend=args.backend,
            parallel=args.parallel,
        )
    except ValueError as exc:
        raise SystemExit(f"bad collective sweep: {exc}") from None

    cells = [
        {
            "topology": e.topology,
            "algorithm": e.algorithm,
            "resolved": e.resolved,
            "size": e.size,
            "finish_time_us": round(e.finish_time_us, 1),
            "autotuner_pick": e.autotuner_pick,
            "messages": e.messages_delivered,
        }
        for e in entries
    ]
    winners = {}
    for e in entries:
        key = (e.topology, e.size)
        if key not in winners or e.finish_time_ns < winners[key].finish_time_ns:
            winners[key] = e
    payload = {
        "collective": args.collective,
        "num_ranks": args.ranks,
        "backend": args.backend,
        "cells": cells,
        "winners": [
            {
                "topology": topo,
                "size": size,
                "algorithm": best.resolved,
                "finish_time_us": round(best.finish_time_us, 1),
                "autotuner_pick": best.autotuner_pick,
            }
            for (topo, size), best in sorted(winners.items())
        ],
    }
    print(json.dumps(payload, indent=2))
    return 0


def _first_doc_line(obj) -> str:
    """First docstring line of ``obj``, or '' when it has none (e.g. -OO)."""
    lines = (getattr(obj, "__doc__", None) or "").strip().splitlines()
    return lines[0] if lines else ""


def _cmd_topologies(args: argparse.Namespace) -> int:
    """List registered topologies and routing strategies."""
    print("topologies:")
    for name in topology_names():
        print(f"  {name:15s} {TOPOLOGY_DESCRIPTIONS.get(name, '')}")
    print()
    print("routing strategies:")
    for name in routing_names():
        print(f"  {name:15s} {_first_doc_line(ROUTING_STRATEGIES[name])}")
    print()
    print("select with --topology NAME --routing NAME (any subcommand, both backends)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite, write BENCH_<rev>.json, compare to a baseline."""
    from repro.perf import (
        compare_to_baseline,
        default_suite,
        load_bench,
        run_suite,
        write_bench,
    )

    cases = None
    if args.cases:
        cases = [c for c in default_suite(args.quick) if args.cases in c.name]
        if not cases:
            known = ", ".join(c.name for c in default_suite(args.quick))
            print(f"error: --cases {args.cases!r} matches no case (have: {known})")
            return 2
    results = run_suite(quick=args.quick, cases=cases)
    rows = []
    for name, case in results["cases"].items():
        eps = case["events_per_s"]
        rows.append(
            f"  {name:28s} {case['wall_clock_s']*1e3:9.1f} ms   "
            f"{(str(eps) + ' ev/s') if eps else '-':>14s}   rss {case['peak_rss_kb']} KiB"
        )
    print(f"bench @ {results['revision']} (quick={results['quick']})")
    print("\n".join(rows))

    path = write_bench(results, args.output)
    print(f"\nwrote {path}")

    if args.baseline:
        comparison = compare_to_baseline(
            results,
            load_bench(args.baseline),
            max_regression=args.max_regression,
            max_rss_regression=args.max_rss_regression,
        )
        for entry in comparison.entries:
            marker = "REGRESSED" if entry.regressed else "ok"
            line = (
                f"  vs baseline {entry.name:28s} {entry.speedup:5.2f}x "
                f"({entry.baseline_wall_s*1e3:.1f} ms -> {entry.current_wall_s*1e3:.1f} ms)"
            )
            if entry.rss_ratio is not None:
                rss_marker = " RSS-REGRESSED" if entry.rss_regressed else ""
                line += (
                    f"  rss {entry.rss_ratio:4.2f}x "
                    f"({entry.baseline_rss_kb} -> {entry.current_rss_kb} KiB)"
                    f"{rss_marker}"
                )
            print(f"{line}  {marker}")
        for name in comparison.missing:
            print(f"  vs baseline {name:28s} (present on one side only, skipped)")
        if not comparison.ok:
            print(
                f"FAIL: {len(comparison.regressions)} case(s) regressed "
                f"(wall clock > {args.max_regression}x"
                + (
                    f" or peak RSS > {args.max_rss_regression}x"
                    if args.max_rss_regression
                    else ""
                )
                + f") vs {args.baseline}"
            )
            return 1
        print(f"baseline check passed (threshold {args.max_regression}x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="atlahs",
        description="ATLAHS reproduction: application-centric network simulation toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="replay a GOAL file", description=_first_doc_line(_cmd_simulate))
    p.add_argument("goal_file")
    _add_network_args(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "hpc",
        help="trace and simulate an HPC application model",
        description=_first_doc_line(_cmd_hpc),
    )
    p.add_argument("app", choices=sorted(HPC_APPLICATIONS))
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--iterations", type=int, default=5)
    p.add_argument("--cells-per-rank", type=int, default=32_000)
    p.add_argument("--scaling", choices=["weak", "strong"], default="weak")
    _add_network_args(p)
    p.set_defaults(func=_cmd_hpc)

    p = sub.add_parser(
        "ai",
        help="trace and simulate an LLM training workload",
        description=_first_doc_line(_cmd_ai),
    )
    p.add_argument("model", choices=sorted(MODEL_PRESETS))
    p.add_argument("--scale", type=float, default=0.05, help="model scale factor (1.0 = full size)")
    p.add_argument("--tp", type=int, default=1)
    p.add_argument("--pp", type=int, default=1)
    p.add_argument("--dp", type=int, default=8)
    p.add_argument("--ep", type=int, default=1)
    p.add_argument("--microbatches", type=int, default=2)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--gpus-per-node", type=int, default=4)
    p.add_argument(
        "--collective-algorithm",
        default=None,
        metavar="NAME",
        help="override the NCCL collective decomposition with a registry "
        "algorithm (e.g. hier_rs, recursive_halving_doubling) or 'auto'; "
        "see 'atlahs collectives'",
    )
    _add_network_args(p)
    p.set_defaults(func=_cmd_ai)

    p = sub.add_parser(
        "storage",
        help="replay a Financial-like workload against Direct Drive",
        description=_first_doc_line(_cmd_storage),
    )
    p.add_argument("--operations", type=int, default=1000)
    _add_network_args(p)
    p.set_defaults(func=_cmd_storage)

    p = sub.add_parser(
        "synthetic",
        help="run a synthetic microbenchmark",
        description=_first_doc_line(_cmd_synthetic),
    )
    p.add_argument("pattern", choices=["incast", "permutation", "alltoall", "allreduce"])
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--message-size", type=int, default=1 << 20)
    _add_network_args(p)
    p.set_defaults(func=_cmd_synthetic)

    p = sub.add_parser(
        "cotenant",
        help="run several jobs concurrently on one fabric (per-job attribution)",
        description=_first_doc_line(_cmd_cotenant),
    )
    p.add_argument(
        "jobs",
        nargs="+",
        metavar="JOB",
        help="GOAL file (.goal/.bin) or synthetic spec pattern:ranks:size "
        "(e.g. alltoall:8:65536)",
    )
    p.add_argument(
        "--arrivals",
        default=None,
        metavar="NS[,NS...]",
        help="per-job arrival times in ns (default: all 0)",
    )
    p.add_argument(
        "--cluster-nodes",
        type=int,
        default=None,
        help="cluster size (default: sum of the jobs' rank counts)",
    )
    p.add_argument(
        "--placement",
        default="packed",
        metavar="STRATEGY[,STRATEGY...]",
        help="placement strategies to run and compare (packed, fragmented, "
        "random, random_interleaved, round_robin, strided, locality)",
    )
    p.add_argument(
        "--group-size", type=int, default=0, help="locality/fragmented group width"
    )
    p.add_argument(
        "--shared",
        action="store_true",
        help="fuse tenants onto shared nodes (multi-tenant DAGs) instead of disjoint nodes",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the per-job isolated baseline runs (no slowdown column)",
    )
    _add_network_args(p)
    p.set_defaults(func=_cmd_cotenant)

    p = sub.add_parser(
        "faults",
        help="simulate a workload on a degraded fabric (failure sweeps, timed events)",
        description=_first_doc_line(_cmd_faults),
    )
    p.add_argument(
        "workload",
        metavar="WORKLOAD",
        help="GOAL file (.goal/.bin) or synthetic spec pattern:ranks:size "
        "(e.g. alltoall:16:65536)",
    )
    p.add_argument(
        "--rates",
        default="0,0.1,0.25",
        metavar="RATE[,RATE...]",
        help="link-failure rates to sweep (fraction of switch-to-switch cables)",
    )
    p.add_argument(
        "--routings",
        default="",
        metavar="NAME[,NAME...]",
        help="routing strategies to compare in the sweep (default: --routing)",
    )
    p.add_argument(
        "--failure-seed", type=int, default=0, help="seed of the random cable draw"
    )
    p.add_argument(
        "--control-plane",
        default="oracle",
        metavar="NAME[,NAME...]",
        help="route-convergence model(s): oracle (instantaneous, the legacy "
        "behavior), ls (link-state flooding), dv (distance-vector); a comma "
        "list adds a sweep axis",
    )
    p.add_argument(
        "--cp-propagation-ns",
        type=int,
        default=500,
        help="per-hop advertisement propagation delay of dv/ls (ns)",
    )
    p.add_argument(
        "--cp-processing-ns",
        type=int,
        default=100,
        help="per-switch advertisement processing cost of dv/ls (ns)",
    )
    p.add_argument(
        "--fail-time-ns",
        type=int,
        default=None,
        metavar="TIME_NS",
        help="sweep mode: fail the drawn cables at this time instead of "
        "time 0, exposing a convergence window under dv/ls",
    )
    p.add_argument(
        "--fail-links",
        default=None,
        metavar="NAME[,NAME...]",
        help="links down from time 0 (e.g. 'tor0->core1,core1->tor0'); "
        "switches an explicit scenario instead of a rate sweep",
    )
    p.add_argument(
        "--link-down", action="append", metavar="NAME@TIME_NS",
        help="timed link failure (repeatable)",
    )
    p.add_argument(
        "--link-up", action="append", metavar="NAME@TIME_NS",
        help="timed link recovery (repeatable)",
    )
    p.add_argument(
        "--drain-switch", action="append", metavar="DEVICE@TIME_NS",
        help="timed switch drain: every link of the switch fails (repeatable)",
    )
    p.add_argument(
        "--undrain-switch", action="append", metavar="DEVICE@TIME_NS",
        help="timed switch recovery (repeatable)",
    )
    _add_network_args(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "inference",
        help="sweep an inference-serving workload and report SLO percentiles",
        description=_first_doc_line(_cmd_inference),
    )
    p.add_argument("--requests", type=int, default=64, help="requests per cell")
    p.add_argument(
        "--rates",
        default="200,400,800",
        metavar="RPS[,RPS...]",
        help="offered request rates (requests/s) to sweep",
    )
    p.add_argument(
        "--process",
        default="poisson",
        metavar="NAME",
        help="arrival process: poisson, bursty or diurnal",
    )
    p.add_argument(
        "--tenants",
        default=None,
        metavar="NAME:WEIGHT:PROMPT:DECODE[,...]",
        help="tenant mix, e.g. 'chat:3:128:32,batch:1:512:8' "
        "(default: the built-in chat+summarize mix)",
    )
    p.add_argument("--frontends", type=int, default=1, help="frontend ranks")
    p.add_argument("--prefill-ranks", type=int, default=2, help="prefill ranks")
    p.add_argument("--decode-ranks", type=int, default=2, help="decode ranks")
    p.add_argument(
        "--max-batch", type=int, default=8, help="continuous-batching cap per decode rank"
    )
    p.add_argument(
        "--slo-ttft-ms",
        type=float,
        default=2000.0,
        help="TTFT deadline in ms for the goodput accounting",
    )
    p.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: serial)",
    )
    _add_network_args(p)
    p.set_defaults(func=_cmd_inference)

    p = sub.add_parser(
        "collectives",
        help="list/describe collective algorithms, or sweep them across topologies",
        description=_first_doc_line(_cmd_collectives),
    )
    p.add_argument(
        "--collective",
        default="allreduce",
        metavar="KIND",
        help="collective kind (allreduce, allgather, reduce_scatter, bcast, "
        "barrier, alltoall)",
    )
    p.add_argument(
        "--describe", default=None, metavar="NAME",
        help="print one algorithm's reference entry (pattern, cost formula)",
    )
    p.add_argument(
        "--sweep", action="store_true",
        help="simulate an algorithms x topologies x sizes grid and report winners",
    )
    p.add_argument(
        "--algorithms",
        default="ring,recursive_halving_doubling,bucket,hier_rs,auto",
        metavar="NAME[,NAME...]",
        help="algorithms to sweep ('auto' = per-cell LogGOPS autotuner pick)",
    )
    p.add_argument(
        "--topologies",
        default="fat_tree,dragonfly",
        metavar="NAME[,NAME...]",
        help="topology families to sweep (shape taken from the shared network flags)",
    )
    p.add_argument(
        "--sizes",
        default="262144,4194304",
        metavar="BYTES[,BYTES...]",
        help="message sizes in bytes (total buffer; per-pair for alltoall)",
    )
    p.add_argument("--ranks", type=int, default=32, help="communicator size")
    p.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: serial)",
    )
    _add_network_args(p)
    p.set_defaults(func=_cmd_collectives)

    p = sub.add_parser(
        "topologies",
        help="list registered topologies and routing strategies",
        description=_first_doc_line(_cmd_topologies),
    )
    p.set_defaults(func=_cmd_topologies)

    p = sub.add_parser(
        "bench",
        help="run the performance suite and track BENCH_*.json baselines",
        description=_first_doc_line(_cmd_bench),
    )
    p.add_argument("--quick", action="store_true", help="tiny workloads (CI smoke job)")
    p.add_argument(
        "--cases",
        default=None,
        help="only run cases whose name contains this substring "
        "(e.g. 'allreduce16k' for the scale cases alone)",
    )
    p.add_argument("--output", default=None, help="output path (default BENCH_<rev>.json)")
    p.add_argument("--baseline", default=None, help="baseline BENCH_*.json to compare against")
    p.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when a case's wall clock exceeds this multiple of the baseline",
    )
    p.add_argument(
        "--max-rss-regression",
        type=float,
        default=None,
        help="fail when a case's peak RSS exceeds this multiple of the baseline "
        "(requires a baseline recorded with RSS; 1.2 = the CI memory gate)",
    )
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Sweep APIs: topology x routing, collectives, co-tenancy and resilience grids.

:func:`topology_routing_sweep` runs one GOAL schedule across a grid of
topologies and routing strategies and collects runtime plus congestion
signals for each combination — the programmatic form of the paper's "same
workload, different interconnect" experiments, extended over the pluggable
routing subsystem.

:func:`interference_sweep` runs a *set of concurrent jobs* across a grid of
placement strategies and topology configurations through the co-tenancy
engine (:mod:`repro.cluster`), and reports per-job runtime, slowdown versus
an isolated run, and contention shares — the generalised form of the
paper's Fig. 13 placement case study.

:func:`resilience_sweep` runs one schedule across a workload x topology x
link-failure-rate grid (see :mod:`repro.network.faults`) and reports each
cell's runtime plus its slowdown against the healthy cell of the same
(topology, routing) — the degradation curves behind
``benchmarks/test_fig_resilience.py`` and ``atlahs faults``.  Random
failure draws are nested across rates for a fixed seed, so the curves are
monotone in the failed set, not just in expectation.

:func:`inference_sweep` runs the inference-serving workload family
(:mod:`repro.apps.inference`) across an offered-load grid and reports each
cell's serving metrics — goodput, SLO-percentile TTFT/TPOT and batch
occupancy — the engine behind ``atlahs inference`` and the goodput-knee /
p999-blow-up curves in ``benchmarks/test_fig_inference_slo.py``.

:func:`collective_sweep` runs one collective operation across an
algorithm x topology x message-size grid through the
:mod:`repro.collectives.algorithms` registry: every cell builds the
collective's GOAL schedule with the topology's locality groups (ranks
packed onto hosts in order), simulates it, and reports the finish time
next to what the LogGOPS autotuner would have picked — the engine behind
``atlahs collectives --sweep`` and the hierarchical-vs-flat comparisons
in ``docs/collectives.md``.

Typical use::

    from repro.sweep import default_topology_configs, topology_routing_sweep

    configs = default_topology_configs(schedule.num_ranks)
    entries = topology_routing_sweep(schedule, configs,
                                     routings=("minimal", "valiant", "adaptive"),
                                     backend="htsim", parallel=4)
    for e in entries:
        print(e.topology, e.routing, e.finish_time_ns, e.packets_dropped)

Parallel execution
------------------
``parallel=N`` runs the grid's cells on a :class:`concurrent.futures.
ProcessPoolExecutor` with ``N`` workers.  Results are *identical* to the
serial engine: every cell's configuration — including its seed — is
derived deterministically before any worker starts, each simulation owns
its private RNG seeded only from that configuration, and entries are
returned in grid order regardless of which worker finished first.
``tests/test_perf_determinism.py`` asserts the parallel/serial equality.
When worker processes cannot be spawned (restricted sandboxes, missing
``fork`` support), the sweep falls back to the serial engine with a
warning rather than failing.  Both sweeps share the same executor.

``examples/topology_comparison.py`` demonstrates the API on a small LLM
training workload; ``benchmarks/test_topology_routing_sweep.py`` uses it for
the oversubscription comparison, and
``benchmarks/test_cotenancy_interference.py`` drives the interference grid.
"""
from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.goal.schedule import GoalSchedule
from repro.network.config import SimulationConfig
from repro.scheduler import simulate


@dataclass(frozen=True)
class SweepEntry:
    """Result of one (topology, routing, backend) cell of a sweep."""

    topology: str
    routing: str
    backend: str
    finish_time_ns: int
    wall_clock_s: float
    messages_delivered: int
    packets_dropped: int
    packets_ecn_marked: int
    max_queue_bytes: int

    @property
    def finish_time_ms(self) -> float:
        return self.finish_time_ns / 1e6


def default_topology_configs(
    num_hosts: int, base: Optional[SimulationConfig] = None
) -> Dict[str, SimulationConfig]:
    """One ready-to-run config per topology family, sized to ``num_hosts``.

    Shape parameters carried by ``base`` (oversubscription, link speeds,
    buffer sizes, congestion control, ...) are preserved; only the knobs
    needed to *fit* ``num_hosts`` endpoints are adjusted:

    * ``fat_tree`` — fits any host count as-is,
    * ``fat_tree_multiplane`` — same, with the core tier split into the
      configured ``fattree_planes`` planes (clamped to the per-ToR uplink
      budget),
    * ``fat_tree_rail`` — rails shrink to the largest of {4, 2, 1} dividing
      ``num_hosts`` (every server must contribute one GPU per rail),
    * ``dragonfly`` — ``nodes_per_router`` grows to reach capacity,
    * ``torus`` — a near-square 2D torus over the configured
      ``torus_hosts_per_node``,
    * ``slimfly`` — ``hosts_per_router`` grows to reach capacity for the
      configured ``slimfly_q``.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    base = base if base is not None else SimulationConfig()

    df_radix = base.dragonfly_groups * base.dragonfly_routers_per_group
    df_nodes_per_router = max(
        base.dragonfly_nodes_per_router, math.ceil(num_hosts / df_radix)
    )

    torus_nodes = math.ceil(num_hosts / base.torus_hosts_per_node)
    side = max(2, math.ceil(math.sqrt(torus_nodes)))
    other = max(2, math.ceil(torus_nodes / side))

    sf_routers = 2 * base.slimfly_q * base.slimfly_q
    sf_hosts_per_router = max(1, math.ceil(num_hosts / sf_routers))

    rails = next(r for r in (base.fattree_rails, 4, 2, 1) if num_hosts % r == 0)
    uplinks = max(1, int(round(base.nodes_per_tor / base.oversubscription)))
    planes = max(1, min(base.fattree_planes, uplinks))

    return {
        "fat_tree": base.replace(topology="fat_tree"),
        "fat_tree_multiplane": base.replace(
            topology="fat_tree_multiplane", fattree_planes=planes
        ),
        "fat_tree_rail": base.replace(topology="fat_tree_rail", fattree_rails=rails),
        "dragonfly": base.replace(
            topology="dragonfly", dragonfly_nodes_per_router=df_nodes_per_router
        ),
        "torus": base.replace(topology="torus", torus_dims=(side, other)),
        "slimfly": base.replace(
            topology="slimfly", slimfly_hosts_per_router=sf_hosts_per_router
        ),
    }


def pool_fallback_errors() -> Tuple[type, ...]:
    """Exception types that mean "worker processes are unavailable here".

    Shared by the sweep executor and the sharded packet engine
    (:mod:`repro.network.packet.sharded`): both fall back to in-process
    execution when spawning — or talking to — pool workers fails for
    environmental reasons (sandboxed spawn, missing POSIX semaphores,
    OOM-killed workers, unpicklable work).  The sharded differential test
    grids lean on this fallback deliberately (it is exercised by
    ``tests/test_sharded_parity.py`` and produces identical results) to
    run 3–4 shard counts per cell without process spawn costs.
    """
    import pickle

    errors: List[type] = [NotImplementedError, OSError, pickle.PicklingError]
    try:
        from concurrent.futures import BrokenExecutor
    except (ImportError, NotImplementedError):
        pass
    else:
        errors.append(BrokenExecutor)  # workers died (sandboxed spawn, OOM, ...)
    return tuple(errors)


def _execute_cells(fn: Callable, cells: List, parallel: Optional[int]) -> List:
    """Map ``fn`` over ``cells``, optionally on a process pool.

    The shared sweep executor: grid-order results, per-cell deterministic
    inputs, graceful serial fallback when worker processes cannot be spawned.
    ``fn`` must be a module-level callable (workers pickle it by name).
    """
    if parallel is not None and parallel > 1 and len(cells) > 1:
        exc: Optional[BaseException] = None
        try:
            from concurrent.futures import ProcessPoolExecutor
        except (ImportError, NotImplementedError) as imp_exc:
            exc = imp_exc
        else:
            try:
                with ProcessPoolExecutor(max_workers=min(parallel, len(cells))) as pool:
                    return list(pool.map(fn, cells))
            except pool_fallback_errors() as pool_exc:
                exc = pool_exc
        warnings.warn(
            f"parallel sweep unavailable ({exc!r}); falling back to serial",
            RuntimeWarning,
            stacklevel=3,
        )
    return [fn(cell) for cell in cells]


def _run_cell(args: Tuple[GoalSchedule, str, str, SimulationConfig, str]) -> SweepEntry:
    """Simulate one sweep cell (module-level so worker processes can pickle it)."""
    schedule, label, routing, config, backend = args
    result = simulate(schedule, backend=backend, config=config)
    return SweepEntry(
        topology=label,
        routing=routing,
        backend=result.backend,
        finish_time_ns=result.finish_time_ns,
        wall_clock_s=result.wall_clock_s,
        messages_delivered=result.stats.messages_delivered,
        packets_dropped=result.stats.packets_dropped,
        packets_ecn_marked=result.stats.packets_ecn_marked,
        max_queue_bytes=result.stats.max_queue_bytes,
    )


def topology_routing_sweep(
    schedule: GoalSchedule,
    configs: Dict[str, SimulationConfig],
    routings: Sequence[str] = ("minimal", "valiant", "adaptive"),
    backend: str = "htsim",
    parallel: Optional[int] = None,
) -> List[SweepEntry]:
    """Simulate ``schedule`` for every (topology config) x (routing) cell.

    Parameters
    ----------
    schedule:
        The GOAL program to replay in every cell.
    configs:
        Mapping of topology label to the :class:`SimulationConfig` to use
        (see :func:`default_topology_configs`); the label is echoed into
        :attr:`SweepEntry.topology`.
    routings:
        Routing strategy names to apply to each config.
    backend:
        ``"htsim"`` (packet-level, reports congestion) or ``"lgs"``.
        Note that on ``"lgs"`` the routing axis only differentiates cells
        whose config routes through the topology (torus/slimfly by default;
        see :meth:`SimulationConfig.loggops_topology_enabled`) — flat-``L``
        cells return identical rows for every routing.  Pass configs with
        ``loggops_use_topology=True`` to compare routing on any topology.
    parallel:
        Number of worker processes; ``None``, ``0`` or ``1`` runs serially
        in-process.  Cells are independent simulations with per-cell seeds
        fixed up front, so the parallel engine returns entries identical to
        the serial one, in the same grid order.
    """
    cells = [
        (schedule, label, routing, config.replace(routing=routing), backend)
        for label, config in configs.items()
        for routing in routings
    ]
    return _execute_cells(_run_cell, cells, parallel)


@dataclass(frozen=True)
class CollectiveSweepEntry:
    """Result of one (topology, algorithm, size) cell of a collective sweep.

    Attributes
    ----------
    topology / collective / size / num_ranks / backend:
        The cell's coordinates (``size`` in bytes — the collective's total
        buffer, or bytes per pair for ``alltoall``).
    algorithm:
        The algorithm as requested (possibly ``"auto"``).
    resolved:
        The algorithm that actually ran (``algorithm`` unless ``"auto"``).
    autotuner_pick:
        What :func:`repro.collectives.select_algorithm` chooses for this
        cell's (size, topology, groups) — lets reports show where the
        autotuner agrees with the measured winner.
    finish_time_ns / wall_clock_s / messages_delivered / bytes_delivered:
        Simulation outcome of the cell (simulated ns, host seconds,
        delivered message count and payload bytes).
    """

    topology: str
    collective: str
    algorithm: str
    resolved: str
    autotuner_pick: str
    size: int
    num_ranks: int
    backend: str
    finish_time_ns: int
    wall_clock_s: float
    messages_delivered: int
    bytes_delivered: int

    @property
    def finish_time_us(self) -> float:
        """Finish time in microseconds."""
        return self.finish_time_ns / 1e3


def _run_collective_cell(args) -> CollectiveSweepEntry:
    """Simulate one collective cell (module-level so workers can pickle it)."""
    from repro.collectives import (
        build_collective_schedule,
        groups_from_topology,
        select_algorithm,
    )
    from repro.network.topology import build_topology

    collective, algorithm, label, config, size, num_ranks, backend = args
    topology = build_topology(config, num_ranks)
    groups = groups_from_topology(range(num_ranks), topology)
    choice = select_algorithm(
        collective, size, num_ranks,
        params=config.loggops, topology=topology, groups=groups,
    )
    resolved = choice.name if algorithm == "auto" else algorithm
    schedule = build_collective_schedule(
        collective, resolved, num_ranks, size, groups=groups,
        name=f"{collective}-{resolved}-{label}-{size}",
    )
    result = simulate(schedule, backend=backend, config=config)
    return CollectiveSweepEntry(
        topology=label,
        collective=collective,
        algorithm=algorithm,
        resolved=resolved,
        autotuner_pick=choice.name,
        size=size,
        num_ranks=num_ranks,
        backend=result.backend,
        finish_time_ns=result.finish_time_ns,
        wall_clock_s=result.wall_clock_s,
        messages_delivered=result.stats.messages_delivered,
        bytes_delivered=result.stats.bytes_delivered,
    )


def collective_sweep(
    configs: Dict[str, SimulationConfig],
    num_ranks: int,
    sizes: Sequence[int] = (16384, 262144, 4194304),
    algorithms: Sequence[str] = ("ring", "recursive_halving_doubling", "hier_rs"),
    collective: str = "allreduce",
    backend: str = "htsim",
    parallel: Optional[int] = None,
) -> List[CollectiveSweepEntry]:
    """Simulate ``collective`` for every (topology, algorithm, size) cell.

    Every cell emits a standalone schedule of the collective via
    :func:`repro.collectives.build_collective_schedule` — hierarchical
    algorithms use the topology's locality groups under the packed
    placement (rank ``r`` on host ``r``) — and simulates it on ``backend``.

    Parameters
    ----------
    configs:
        Mapping of topology label to :class:`SimulationConfig` (see
        :func:`default_topology_configs`).
    num_ranks:
        Communicator size; every config's topology must fit it.
    sizes:
        Message sizes in bytes (total buffer; per-pair for ``alltoall``).
    algorithms:
        Registry algorithm names for ``collective``; ``"auto"`` runs
        whatever the LogGOPS autotuner picks for each cell.  Unknown names
        raise :class:`ValueError` before any cell runs.
    collective:
        Collective kind (``"allreduce"``, ``"allgather"``, ...).
    backend / parallel:
        As for :func:`topology_routing_sweep`; cells run on the shared
        :func:`_execute_cells` executor (grid order — configs x algorithms
        x sizes — with per-cell deterministic inputs and serial fallback).
    """
    import dataclasses

    from repro.collectives import get_algorithm

    if num_ranks <= 1:
        raise ValueError("collective sweeps need at least 2 ranks")
    for name in algorithms:
        if name != "auto":
            get_algorithm(collective, name)  # validate early, raises ValueError

    # resolve "auto" up front (same derivation the cell performs) so an
    # auto cell that lands on an algorithm already in the grid reuses that
    # cell's simulation instead of re-running an identical schedule
    def _resolve(label, config, size):
        from repro.collectives import groups_from_topology, select_algorithm
        from repro.network.topology import build_topology

        topology = build_topology(config, num_ranks)
        groups = groups_from_topology(range(num_ranks), topology)
        return select_algorithm(
            collective, size, num_ranks,
            params=config.loggops, topology=topology, groups=groups,
        ).name

    grid = []  # (requested algorithm, unique-cell key) in grid order
    unique: Dict[Tuple[str, str, int], Tuple] = {}
    for label, config in configs.items():
        for algorithm in algorithms:
            for size in sizes:
                size = int(size)
                resolved = (
                    _resolve(label, config, size) if algorithm == "auto" else algorithm
                )
                key = (label, resolved, size)
                grid.append((algorithm, key))
                unique.setdefault(
                    key,
                    (collective, resolved, label, config, size, num_ranks, backend),
                )
    results = _execute_cells(_run_collective_cell, list(unique.values()), parallel)
    by_key = dict(zip(unique.keys(), results))
    return [
        dataclasses.replace(by_key[key], algorithm=algorithm)
        for algorithm, key in grid
    ]


@dataclass(frozen=True)
class InferenceSweepEntry:
    """Serving metrics of one (topology, offered-rate) inference cell."""

    topology: str
    backend: str
    process: str
    rate_rps: float
    offered_rps: float
    requests: int
    good_requests: int
    throughput_rps: float
    goodput_rps: float
    ttft_p50_ns: float
    ttft_p99_ns: float
    ttft_p999_ns: float
    tpot_p50_ns: float
    tpot_p99_ns: float
    mean_batch: float
    finish_time_ns: int
    wall_clock_s: float

    @property
    def ttft_p999_ms(self) -> float:
        return self.ttft_p999_ns / 1e6


def _run_inference_cell(args) -> InferenceSweepEntry:
    """Simulate one inference cell (module-level so workers can pickle it)."""
    from repro.apps.inference import build_inference_workload
    from repro.measurement.serving import compute_serving_metrics

    (
        label,
        config,
        backend,
        num_requests,
        rate,
        process,
        tenants,
        cluster,
        seed,
        slo,
        process_kwargs,
    ) = args
    plan = build_inference_workload(
        num_requests=num_requests,
        rate_rps=rate,
        process=process,
        tenants=tenants,
        cluster=cluster,
        seed=seed,
        **process_kwargs,
    )
    result = simulate(
        plan.schedule, backend=backend, config=config, op_groups=plan.op_groups
    )
    metrics = compute_serving_metrics(plan, result, slo=slo)
    return InferenceSweepEntry(
        topology=label,
        backend=result.backend,
        process=process,
        rate_rps=rate,
        offered_rps=metrics.offered_rps,
        requests=metrics.num_requests,
        good_requests=metrics.good_requests,
        throughput_rps=metrics.throughput_rps,
        goodput_rps=metrics.goodput_rps,
        ttft_p50_ns=metrics.ttft_percentiles_ns["p50"],
        ttft_p99_ns=metrics.ttft_percentiles_ns["p99"],
        ttft_p999_ns=metrics.ttft_percentiles_ns["p999"],
        tpot_p50_ns=metrics.tpot_percentiles_ns["p50"],
        tpot_p99_ns=metrics.tpot_percentiles_ns["p99"],
        mean_batch=metrics.batch_occupancy["mean_batch"],
        finish_time_ns=result.finish_time_ns,
        wall_clock_s=result.wall_clock_s,
    )


def inference_sweep(
    rates: Sequence[float],
    configs: Optional[Dict[str, SimulationConfig]] = None,
    backend: str = "lgs",
    num_requests: int = 64,
    process: str = "poisson",
    tenants=None,
    cluster=None,
    seed: int = 0,
    slo=None,
    parallel: Optional[int] = None,
    **process_kwargs,
) -> List[InferenceSweepEntry]:
    """Run the serving workload across a (topology config) x offered-rate grid.

    Every cell generates an open-loop serving workload at one offered rate
    via :func:`repro.apps.inference.build_inference_workload` (with a fixed
    ``seed``, so the *same request population* arrives faster or slower as
    the rate changes), simulates it with per-request op groups, and folds
    the group finish times into an :class:`InferenceSweepEntry` through
    :func:`repro.measurement.serving.compute_serving_metrics`.

    Parameters
    ----------
    rates:
        Offered request rates (requests/s), one cell group per rate.
    configs:
        Mapping of topology label to :class:`SimulationConfig`; defaults to
        a single ``{"fat_tree": SimulationConfig()}``.
    backend / parallel:
        As for :func:`topology_routing_sweep`; cells run on the shared
        :func:`_execute_cells` executor (grid order — configs x rates —
        with per-cell deterministic inputs and serial fallback).
    num_requests / process / tenants / cluster / seed / process_kwargs:
        Forwarded to :func:`~repro.apps.inference.build_inference_workload`.
    slo:
        Optional :class:`~repro.measurement.serving.SloSpec`; ``None`` uses
        the default TTFT deadline.
    """
    if not rates:
        raise ValueError("need at least one offered rate")
    if configs is None:
        configs = {"fat_tree": SimulationConfig()}
    cells = [
        (
            label,
            config,
            backend,
            num_requests,
            float(rate),
            process,
            tenants,
            cluster,
            seed,
            slo,
            process_kwargs,
        )
        for label, config in configs.items()
        for rate in rates
    ]
    return _execute_cells(_run_inference_cell, cells, parallel)


@dataclass(frozen=True)
class ResilienceEntry:
    """Result of one (topology, routing, control-plane, failure-rate) cell."""

    topology: str
    routing: str
    backend: str
    failure_rate: float
    failed_links: int
    finish_time_ns: int
    wall_clock_s: float
    messages_delivered: int
    packets_dropped: int
    packets_rerouted: int
    packets_lost_to_faults: int
    #: Finish time of the healthy (rate-0) cell of the same
    #: (topology, routing, control_plane) group; the denominator of
    #: :attr:`slowdown`.
    baseline_finish_ns: int = 0
    #: Convergence model of the cell (see repro.network.control_plane);
    #: "oracle" keeps the legacy instantaneous behaviour.
    control_plane: str = "oracle"
    #: Worst per-event convergence window of the cell (0 under oracle, and
    #: in static-only cells where no timed event fires).
    time_to_recover_ns: int = 0
    #: Packets lost into black holes during convergence (packet backend,
    #: dv/ls with timed events only).
    packets_blackholed: int = 0

    @property
    def slowdown(self) -> float:
        """Runtime over the healthy cell's runtime (>1 = fault degradation)."""
        if not self.baseline_finish_ns:
            return float("nan")
        return self.finish_time_ns / self.baseline_finish_ns

    @property
    def finish_time_ms(self) -> float:
        return self.finish_time_ns / 1e6


def _run_resilience_cell(args) -> ResilienceEntry:
    """Simulate one resilience cell (module-level so workers can pickle it)."""
    from repro.network.faults import FaultEvent, FaultSchedule, LINK_DOWN, random_failed_link_ids
    from repro.network.topology import build_topology

    schedule, label, routing, config, backend, rate, seed, failed, control_plane, fail_time_ns = args
    if fail_time_ns is None:
        faults = FaultSchedule(link_failure_rate=rate, failure_seed=seed)
    else:
        # timed mode: the same nested cable draw, but the links die at
        # fail_time_ns instead of time 0 — so dv/ls cells expose a real
        # convergence window (TTR, blackholes) rather than booting converged
        ids = random_failed_link_ids(
            build_topology(config, schedule.num_ranks), rate, seed
        )
        faults = FaultSchedule(
            events=tuple(FaultEvent(fail_time_ns, LINK_DOWN, i) for i in ids)
        )
    cell_config = config.replace(
        routing=routing, faults=faults, control_plane=control_plane
    )
    result = simulate(schedule, backend=backend, config=cell_config)
    return ResilienceEntry(
        topology=label,
        routing=routing,
        backend=result.backend,
        failure_rate=rate,
        failed_links=failed,
        finish_time_ns=result.finish_time_ns,
        wall_clock_s=result.wall_clock_s,
        messages_delivered=result.stats.messages_delivered,
        packets_dropped=result.stats.packets_dropped,
        packets_rerouted=result.stats.packets_rerouted,
        packets_lost_to_faults=result.stats.packets_lost_to_faults,
        control_plane=control_plane,
        time_to_recover_ns=result.stats.time_to_recover_ns,
        packets_blackholed=result.stats.packets_blackholed,
    )


def resilience_sweep(
    schedule: GoalSchedule,
    configs: Dict[str, SimulationConfig],
    failure_rates: Sequence[float] = (0.0, 0.1, 0.2),
    routings: Sequence[str] = ("minimal",),
    backend: str = "htsim",
    failure_seed: int = 0,
    parallel: Optional[int] = None,
    control_planes: Sequence[str] = ("oracle",),
    fail_time_ns: Optional[int] = None,
) -> List[ResilienceEntry]:
    """Simulate ``schedule`` for every (topology config) x routing x rate cell.

    Every cell runs with a :class:`~repro.network.faults.FaultSchedule`
    failing ``rate`` of the fabric's switch-to-switch cables from time 0,
    drawn with ``failure_seed``.  Draws are nested across rates (same seed),
    so within one (topology, routing) group a higher rate always fails a
    superset of the lower rate's cables.  Each entry carries the finish time
    of its group's *healthy* (rate 0) cell as the slowdown baseline; a 0.0
    rate is added to the grid when ``failure_rates`` omits it, so slowdowns
    always measure degradation against an intact fabric.

    Parameters mirror :func:`topology_routing_sweep`; cells run on the
    shared :func:`_execute_cells` executor (grid order, per-cell
    deterministic inputs, serial fallback).  Cells whose failure draw
    partitions a communicating pair raise
    :class:`~repro.network.faults.NetworkPartitionError` — pick rates that
    leave the fabric connected, or catch the error per scenario.

    ``control_planes`` adds a convergence-model axis (see
    :mod:`repro.network.control_plane`): every (topology, routing, rate)
    cell runs once per protocol, and entries carry the per-cell
    ``time_to_recover_ns`` and ``packets_blackholed`` columns.  With the
    default ``("oracle",)`` the grid and every result are exactly the
    pre-control-plane sweep.  ``fail_time_ns`` switches the fault model
    from static (cables down from time 0 — convergence-free by definition,
    the views boot converged) to timed: the same nested cable draw dies at
    ``fail_time_ns`` mid-run, which is what gives dv/ls cells a non-zero
    convergence window.
    """
    from repro.network.control_plane import CONTROL_PLANES
    from repro.network.faults import random_failed_link_ids
    from repro.network.topology import build_topology

    if not failure_rates:
        raise ValueError("need at least one failure rate")
    if not control_planes:
        raise ValueError("need at least one control plane")
    for cp in control_planes:
        if cp not in CONTROL_PLANES:
            raise ValueError(
                f"unknown control plane {cp!r} "
                f"(registered: {', '.join(sorted(CONTROL_PLANES))})"
            )
    if fail_time_ns is not None and fail_time_ns < 0:
        raise ValueError("fail_time_ns must be non-negative")
    rates = sorted({0.0} | {float(r) for r in failure_rates})
    # failed-link counts depend only on (topology config, rate, seed):
    # resolve them once per (label, rate) instead of once per cell
    failed_counts = {
        (label, rate): len(
            random_failed_link_ids(
                build_topology(config, schedule.num_ranks), rate, failure_seed
            )
        )
        for label, config in configs.items()
        for rate in rates
    }
    cells = [
        (
            schedule,
            label,
            routing,
            config,
            backend,
            rate,
            failure_seed,
            failed_counts[(label, rate)],
            control_plane,
            fail_time_ns,
        )
        for label, config in configs.items()
        for routing in routings
        for control_plane in control_planes
        for rate in rates
    ]
    entries: List[ResilienceEntry] = _execute_cells(_run_resilience_cell, cells, parallel)
    baselines = {
        (e.topology, e.routing, e.control_plane): e.finish_time_ns
        for e in entries
        if e.failure_rate == 0.0
    }
    import dataclasses

    return [
        dataclasses.replace(
            e, baseline_finish_ns=baselines[(e.topology, e.routing, e.control_plane)]
        )
        for e in entries
    ]


@dataclass(frozen=True)
class InterferenceEntry:
    """Per-job result of one (topology config, placement strategy) cell."""

    topology: str
    strategy: str
    backend: str
    job: str
    arrival_ns: int
    finish_time_ns: int
    runtime_ns: int
    isolated_runtime_ns: int
    messages_delivered: int
    bytes_delivered: int
    contended_link_count: int

    @property
    def slowdown(self) -> float:
        """Co-tenant runtime over isolated runtime (>1 = interference)."""
        if not self.isolated_runtime_ns:
            return float("nan")
        return self.runtime_ns / self.isolated_runtime_ns

    @property
    def runtime_ms(self) -> float:
        return self.runtime_ns / 1e6


def _run_interference_cell(args) -> List[InterferenceEntry]:
    """Simulate one (config, strategy) cell of an interference sweep."""
    from repro.cluster import run_cotenant
    from repro.placement import filter_strategy_kwargs

    jobs, label, strategy, config, backend, cluster_nodes, strategy_kwargs = args
    kwargs = filter_strategy_kwargs(strategy, strategy_kwargs)
    res = run_cotenant(
        jobs,
        cluster_nodes=cluster_nodes,
        strategy=strategy,
        backend=backend,
        config=config,
        **kwargs,
    )
    contended = res.contended_links()
    entries = []
    for out in res.outcomes:
        entries.append(
            InterferenceEntry(
                topology=label,
                strategy=strategy,
                backend=backend,
                job=out.name,
                arrival_ns=out.arrival_ns,
                finish_time_ns=out.finish_ns,
                runtime_ns=out.runtime_ns,
                isolated_runtime_ns=out.isolated_runtime_ns or 0,
                messages_delivered=out.messages_delivered,
                bytes_delivered=out.bytes_delivered,
                contended_link_count=sum(
                    1 for links in contended.values() if out.name in links
                ),
            )
        )
    return entries


def interference_sweep(
    jobs: Sequence,
    cluster_nodes: int,
    strategies: Sequence[str] = ("packed", "fragmented", "random"),
    configs: Optional[Dict[str, SimulationConfig]] = None,
    backend: str = "htsim",
    parallel: Optional[int] = None,
    **strategy_kwargs,
) -> List[InterferenceEntry]:
    """Run a jobs x placement x topology interference grid.

    Every cell simulates all ``jobs`` *concurrently* on one fabric through
    :func:`repro.cluster.run_cotenant` (including each job's isolated
    baseline under the same placement, so slowdowns are comparable across
    strategies), and yields one :class:`InterferenceEntry` per job.  Entries
    come back flattened in grid order: configs (insertion order) x
    strategies x jobs.

    Parameters
    ----------
    jobs:
        :class:`repro.cluster.ClusterJob` records (schedule + arrival time).
    cluster_nodes:
        Cluster size shared by every cell.
    strategies:
        Placement strategy names to compare.
    configs:
        Mapping of label to :class:`SimulationConfig` (one cell group per
        entry); defaults to a single ``{"fat_tree": SimulationConfig()}``.
    backend / parallel:
        As for :func:`topology_routing_sweep`.
    strategy_kwargs:
        Extra placement-strategy arguments applied to every cell (``seed``,
        ``group_size``, ...).
    """
    if configs is None:
        configs = {"fat_tree": SimulationConfig()}
    jobs = list(jobs)
    cells = [
        (jobs, label, strategy, config, backend, cluster_nodes, strategy_kwargs)
        for label, config in configs.items()
        for strategy in strategies
    ]
    nested = _execute_cells(_run_interference_cell, cells, parallel)
    return [entry for cell_entries in nested for entry in cell_entries]

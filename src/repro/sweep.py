"""Topology x routing sweep API.

Runs one GOAL schedule across a grid of topologies and routing strategies
and collects runtime plus congestion signals for each combination — the
programmatic form of the paper's "same workload, different interconnect"
experiments, extended over the pluggable routing subsystem.

Typical use::

    from repro.sweep import default_topology_configs, topology_routing_sweep

    configs = default_topology_configs(schedule.num_ranks)
    entries = topology_routing_sweep(schedule, configs,
                                     routings=("minimal", "valiant", "adaptive"),
                                     backend="htsim")
    for e in entries:
        print(e.topology, e.routing, e.finish_time_ns, e.packets_dropped)

``examples/topology_comparison.py`` demonstrates the API on a small LLM
training workload; ``benchmarks/test_topology_routing_sweep.py`` uses it for
the oversubscription comparison.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.goal.schedule import GoalSchedule
from repro.network.config import SimulationConfig
from repro.scheduler import simulate


@dataclass(frozen=True)
class SweepEntry:
    """Result of one (topology, routing, backend) cell of a sweep."""

    topology: str
    routing: str
    backend: str
    finish_time_ns: int
    wall_clock_s: float
    messages_delivered: int
    packets_dropped: int
    packets_ecn_marked: int
    max_queue_bytes: int

    @property
    def finish_time_ms(self) -> float:
        return self.finish_time_ns / 1e6


def default_topology_configs(
    num_hosts: int, base: Optional[SimulationConfig] = None
) -> Dict[str, SimulationConfig]:
    """One ready-to-run config per topology family, sized to ``num_hosts``.

    Shape parameters carried by ``base`` (oversubscription, link speeds,
    buffer sizes, congestion control, ...) are preserved; only the knobs
    needed to *fit* ``num_hosts`` endpoints are adjusted:

    * ``fat_tree`` — fits any host count as-is,
    * ``dragonfly`` — ``nodes_per_router`` grows to reach capacity,
    * ``torus`` — a near-square 2D torus over the configured
      ``torus_hosts_per_node``,
    * ``slimfly`` — ``hosts_per_router`` grows to reach capacity for the
      configured ``slimfly_q``.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    base = base if base is not None else SimulationConfig()

    df_radix = base.dragonfly_groups * base.dragonfly_routers_per_group
    df_nodes_per_router = max(
        base.dragonfly_nodes_per_router, math.ceil(num_hosts / df_radix)
    )

    torus_nodes = math.ceil(num_hosts / base.torus_hosts_per_node)
    side = max(2, math.ceil(math.sqrt(torus_nodes)))
    other = max(2, math.ceil(torus_nodes / side))

    sf_routers = 2 * base.slimfly_q * base.slimfly_q
    sf_hosts_per_router = max(1, math.ceil(num_hosts / sf_routers))

    return {
        "fat_tree": base.replace(topology="fat_tree"),
        "dragonfly": base.replace(
            topology="dragonfly", dragonfly_nodes_per_router=df_nodes_per_router
        ),
        "torus": base.replace(topology="torus", torus_dims=(side, other)),
        "slimfly": base.replace(
            topology="slimfly", slimfly_hosts_per_router=sf_hosts_per_router
        ),
    }


def topology_routing_sweep(
    schedule: GoalSchedule,
    configs: Dict[str, SimulationConfig],
    routings: Sequence[str] = ("minimal", "valiant", "adaptive"),
    backend: str = "htsim",
) -> List[SweepEntry]:
    """Simulate ``schedule`` for every (topology config) x (routing) cell.

    Parameters
    ----------
    schedule:
        The GOAL program to replay in every cell.
    configs:
        Mapping of topology label to the :class:`SimulationConfig` to use
        (see :func:`default_topology_configs`); the label is echoed into
        :attr:`SweepEntry.topology`.
    routings:
        Routing strategy names to apply to each config.
    backend:
        ``"htsim"`` (packet-level, reports congestion) or ``"lgs"``.
        Note that on ``"lgs"`` the routing axis only differentiates cells
        whose config routes through the topology (torus/slimfly by default;
        see :meth:`SimulationConfig.loggops_topology_enabled`) — flat-``L``
        cells return identical rows for every routing.  Pass configs with
        ``loggops_use_topology=True`` to compare routing on any topology.
    """
    entries: List[SweepEntry] = []
    for label, config in configs.items():
        for routing in routings:
            result = simulate(schedule, backend=backend, config=config.replace(routing=routing))
            entries.append(
                SweepEntry(
                    topology=label,
                    routing=routing,
                    backend=result.backend,
                    finish_time_ns=result.finish_time_ns,
                    wall_clock_s=result.wall_clock_s,
                    messages_delivered=result.stats.messages_delivered,
                    packets_dropped=result.stats.packets_dropped,
                    packets_ecn_marked=result.stats.packets_ecn_marked,
                    max_queue_bytes=result.stats.max_queue_bytes,
                )
            )
    return entries

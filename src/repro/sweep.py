"""Topology x routing sweep API.

Runs one GOAL schedule across a grid of topologies and routing strategies
and collects runtime plus congestion signals for each combination — the
programmatic form of the paper's "same workload, different interconnect"
experiments, extended over the pluggable routing subsystem.

Typical use::

    from repro.sweep import default_topology_configs, topology_routing_sweep

    configs = default_topology_configs(schedule.num_ranks)
    entries = topology_routing_sweep(schedule, configs,
                                     routings=("minimal", "valiant", "adaptive"),
                                     backend="htsim", parallel=4)
    for e in entries:
        print(e.topology, e.routing, e.finish_time_ns, e.packets_dropped)

Parallel execution
------------------
``parallel=N`` runs the grid's cells on a :class:`concurrent.futures.
ProcessPoolExecutor` with ``N`` workers.  Results are *identical* to the
serial engine: every cell's configuration — including its seed — is
derived deterministically before any worker starts, each simulation owns
its private RNG seeded only from that configuration, and entries are
returned in grid order regardless of which worker finished first.
``tests/test_perf_determinism.py`` asserts the parallel/serial equality.
When worker processes cannot be spawned (restricted sandboxes, missing
``fork`` support), the sweep falls back to the serial engine with a
warning rather than failing.

``examples/topology_comparison.py`` demonstrates the API on a small LLM
training workload; ``benchmarks/test_topology_routing_sweep.py`` uses it for
the oversubscription comparison.
"""
from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.goal.schedule import GoalSchedule
from repro.network.config import SimulationConfig
from repro.scheduler import simulate


@dataclass(frozen=True)
class SweepEntry:
    """Result of one (topology, routing, backend) cell of a sweep."""

    topology: str
    routing: str
    backend: str
    finish_time_ns: int
    wall_clock_s: float
    messages_delivered: int
    packets_dropped: int
    packets_ecn_marked: int
    max_queue_bytes: int

    @property
    def finish_time_ms(self) -> float:
        return self.finish_time_ns / 1e6


def default_topology_configs(
    num_hosts: int, base: Optional[SimulationConfig] = None
) -> Dict[str, SimulationConfig]:
    """One ready-to-run config per topology family, sized to ``num_hosts``.

    Shape parameters carried by ``base`` (oversubscription, link speeds,
    buffer sizes, congestion control, ...) are preserved; only the knobs
    needed to *fit* ``num_hosts`` endpoints are adjusted:

    * ``fat_tree`` — fits any host count as-is,
    * ``dragonfly`` — ``nodes_per_router`` grows to reach capacity,
    * ``torus`` — a near-square 2D torus over the configured
      ``torus_hosts_per_node``,
    * ``slimfly`` — ``hosts_per_router`` grows to reach capacity for the
      configured ``slimfly_q``.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    base = base if base is not None else SimulationConfig()

    df_radix = base.dragonfly_groups * base.dragonfly_routers_per_group
    df_nodes_per_router = max(
        base.dragonfly_nodes_per_router, math.ceil(num_hosts / df_radix)
    )

    torus_nodes = math.ceil(num_hosts / base.torus_hosts_per_node)
    side = max(2, math.ceil(math.sqrt(torus_nodes)))
    other = max(2, math.ceil(torus_nodes / side))

    sf_routers = 2 * base.slimfly_q * base.slimfly_q
    sf_hosts_per_router = max(1, math.ceil(num_hosts / sf_routers))

    return {
        "fat_tree": base.replace(topology="fat_tree"),
        "dragonfly": base.replace(
            topology="dragonfly", dragonfly_nodes_per_router=df_nodes_per_router
        ),
        "torus": base.replace(topology="torus", torus_dims=(side, other)),
        "slimfly": base.replace(
            topology="slimfly", slimfly_hosts_per_router=sf_hosts_per_router
        ),
    }


def _run_cell(args: Tuple[GoalSchedule, str, str, SimulationConfig, str]) -> SweepEntry:
    """Simulate one sweep cell (module-level so worker processes can pickle it)."""
    schedule, label, routing, config, backend = args
    result = simulate(schedule, backend=backend, config=config)
    return SweepEntry(
        topology=label,
        routing=routing,
        backend=result.backend,
        finish_time_ns=result.finish_time_ns,
        wall_clock_s=result.wall_clock_s,
        messages_delivered=result.stats.messages_delivered,
        packets_dropped=result.stats.packets_dropped,
        packets_ecn_marked=result.stats.packets_ecn_marked,
        max_queue_bytes=result.stats.max_queue_bytes,
    )


def topology_routing_sweep(
    schedule: GoalSchedule,
    configs: Dict[str, SimulationConfig],
    routings: Sequence[str] = ("minimal", "valiant", "adaptive"),
    backend: str = "htsim",
    parallel: Optional[int] = None,
) -> List[SweepEntry]:
    """Simulate ``schedule`` for every (topology config) x (routing) cell.

    Parameters
    ----------
    schedule:
        The GOAL program to replay in every cell.
    configs:
        Mapping of topology label to the :class:`SimulationConfig` to use
        (see :func:`default_topology_configs`); the label is echoed into
        :attr:`SweepEntry.topology`.
    routings:
        Routing strategy names to apply to each config.
    backend:
        ``"htsim"`` (packet-level, reports congestion) or ``"lgs"``.
        Note that on ``"lgs"`` the routing axis only differentiates cells
        whose config routes through the topology (torus/slimfly by default;
        see :meth:`SimulationConfig.loggops_topology_enabled`) — flat-``L``
        cells return identical rows for every routing.  Pass configs with
        ``loggops_use_topology=True`` to compare routing on any topology.
    parallel:
        Number of worker processes; ``None``, ``0`` or ``1`` runs serially
        in-process.  Cells are independent simulations with per-cell seeds
        fixed up front, so the parallel engine returns entries identical to
        the serial one, in the same grid order.
    """
    cells = [
        (schedule, label, routing, config.replace(routing=routing), backend)
        for label, config in configs.items()
        for routing in routings
    ]
    if parallel is not None and parallel > 1 and len(cells) > 1:
        import pickle

        exc: Optional[BaseException] = None
        try:
            from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        except (ImportError, NotImplementedError) as imp_exc:
            exc = imp_exc
        else:
            try:
                with ProcessPoolExecutor(max_workers=min(parallel, len(cells))) as pool:
                    return list(pool.map(_run_cell, cells))
            except (
                NotImplementedError,
                OSError,
                PermissionError,
                BrokenExecutor,  # workers died (sandboxed spawn, OOM-killed, ...)
                pickle.PicklingError,
            ) as pool_exc:
                exc = pool_exc
        warnings.warn(
            f"parallel sweep unavailable ({exc!r}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
    return [_run_cell(cell) for cell in cells]

"""Swift congestion control (sender-based, end-to-end delay driven).

Swift (Kumar et al., SIGCOMM'20) compares the measured end-to-end RTT against
a target delay and adjusts the window:

* RTT below target → additive increase (one packet per RTT, spread per ACK),
* RTT above target → multiplicative decrease proportional to the relative
  excess delay, bounded by ``max_mdf``, applied at most once per RTT.

Because Swift folds *all* queueing along the path into a single end-to-end
delay measurement, it cannot tell which hop is congested; the paper's Fig. 1
case study uses exactly this property to show a realistic AI workload where
Swift underperforms MPRDMA even though synthetic microbenchmarks show them
as equals.
"""
from __future__ import annotations

from repro.network.congestion.base import CongestionControl


class Swift(CongestionControl):
    """Delay-based AIMD with a fixed base-delay target."""

    #: Additive-increase gain in packets per RTT.
    ai: float = 1.0
    #: Multiplicative-decrease factor applied per unit of relative excess delay.
    beta: float = 0.8
    #: Upper bound on a single multiplicative decrease.
    max_mdf: float = 0.5
    #: Target delay as a multiple of the unloaded base RTT (the fabric
    #: component of Swift's target); keeping it conservative mirrors Swift's
    #: low-latency objective.
    target_factor: float = 1.25

    def __init__(self, mtu: int, initial_window_packets: int, base_rtt_ns: int) -> None:
        super().__init__(mtu, initial_window_packets, base_rtt_ns)
        self.target_delay_ns = max(1, int(self.target_factor * base_rtt_ns))
        self._last_decrease_rtt_count = 0
        self._acks_since_decrease = 0

    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        if rtt_ns <= self.target_delay_ns:
            # below target: additive increase (per-ACK share of one packet/RTT)
            self.cwnd += self.ai / max(self.cwnd, 1.0)
            self._acks_since_decrease += 1
        else:
            # above target: multiplicative decrease, paced to once per window
            self._acks_since_decrease += 1
            if self._acks_since_decrease >= self.cwnd:
                excess = (rtt_ns - self.target_delay_ns) / rtt_ns
                factor = max(1.0 - self.beta * excess, 1.0 - self.max_mdf)
                self.cwnd *= factor
                self._acks_since_decrease = 0
        self._clamp()

    def on_loss(self) -> None:
        self.cwnd *= 1.0 - self.max_mdf
        self._clamp()

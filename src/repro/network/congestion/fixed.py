"""Fixed-window "congestion control" (no reaction).

Keeps the initial window forever.  Used for calibration runs, ablations and
tests that need a congestion-oblivious packet-level baseline.
"""
from __future__ import annotations

from repro.network.congestion.base import CongestionControl


class FixedWindow(CongestionControl):
    """A static window; losses still collapse it to avoid livelock."""

    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        # deliberately no adaptation
        return

    def on_loss(self) -> None:
        # shrink to keep retransmissions from amplifying persistent overload
        self.cwnd = max(self.min_window, self.cwnd / 2.0)

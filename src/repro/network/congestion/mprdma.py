"""MPRDMA congestion control (sender-based, per-packet ECN reaction).

MPRDMA (Lu et al., NSDI'18) reacts to ECN marks on a per-packet basis, "akin
to DCTCP but operating on a per-packet basis" (paper §6.1):

* every acknowledgement carrying an ECN mark shrinks the window by half a
  packet,
* every unmarked acknowledgement grows the window additively by ``1/cwnd``
  packets (one packet per round trip),
* a detected loss collapses the window to the minimum.

This is the congestion control the paper uses for every validation run of
the htsim backend.
"""
from __future__ import annotations

from repro.network.congestion.base import CongestionControl


class MPRDMA(CongestionControl):
    """Per-packet ECN AIMD."""

    #: Multiplicative-ish decrease applied per marked ACK, in packets.
    decrease_per_mark: float = 0.5
    #: Additive increase per unmarked ACK is ``increase_gain / cwnd`` packets.
    increase_gain: float = 1.0

    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        if ecn_marked:
            self.cwnd -= self.decrease_per_mark
        else:
            self.cwnd += self.increase_gain / max(self.cwnd, 1.0)
        self._clamp()

    def on_loss(self) -> None:
        self.cwnd = self.min_window

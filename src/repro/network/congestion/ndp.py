"""NDP: receiver-driven transport with packet trimming and pull pacing.

NDP (Handley et al., SIGCOMM'17) differs structurally from the sender-based
algorithms:

* the sender blasts its *initial window* at line rate without waiting for
  feedback,
* switches *trim* data packets to headers instead of dropping them when a
  queue overflows, so the receiver learns about every packet that was sent,
* all further transmissions (retransmissions of trimmed packets and new
  data) are clocked by *pull* credits that the receiver emits, paced at its
  own link rate.

Because the pull pacer only protects the receiver's downlink, congestion in
the network core — e.g. on oversubscribed ToR→core uplinks — is invisible to
it; the paper's Fig. 11 storage case study shows exactly this failure mode.

The mechanics (trimming, NACKs, the per-host pull pacer) live in the packet
backend; this class only carries NDP's identity and tuning parameters, and
reports ``receiver_driven = True`` so the backend switches modes.
"""
from __future__ import annotations

from repro.network.congestion.base import CongestionControl


class NDPReceiverDriven(CongestionControl):
    """Marker/parameter object for receiver-driven NDP flows."""

    receiver_driven = True

    #: Size in bytes of a trimmed header (and of pull/NACK control packets).
    header_size: int = 64

    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        # Sender-side window is irrelevant after the initial window: pulls
        # clock transmissions.  Nothing to adapt.
        return

    def on_loss(self) -> None:
        # Losses surface as trims/NACKs handled by the pull loop.
        return

"""Congestion-control algorithms for the packet-level backend.

The paper's case studies compare four classes of algorithms:

* :class:`~repro.network.congestion.mprdma.MPRDMA` — sender-based, per-packet
  ECN reaction (the baseline CC used for all validation runs),
* :class:`~repro.network.congestion.swift.Swift` — sender-based, end-to-end
  delay-driven (Fig. 1's case study shows its weakness on multi-hop
  congestion),
* :class:`~repro.network.congestion.dctcp.DCTCP` — sender-based, ECN fraction
  per window,
* :class:`~repro.network.congestion.ndp.NDPReceiverDriven` — receiver-driven
  (packet trimming + pull pacing), whose behaviour under ToR→core
  oversubscription is the subject of the storage case study (Fig. 11),
* :class:`~repro.network.congestion.fixed.FixedWindow` — a no-op control used
  for calibration and ablations.

Sender-based algorithms expose a common window interface
(:class:`~repro.network.congestion.base.CongestionControl`); NDP is flagged
via :attr:`receiver_driven` and handled specially by the packet backend.
"""
from repro.network.congestion.base import CongestionControl
from repro.network.congestion.mprdma import MPRDMA
from repro.network.congestion.swift import Swift
from repro.network.congestion.dctcp import DCTCP
from repro.network.congestion.ndp import NDPReceiverDriven
from repro.network.congestion.fixed import FixedWindow

_ALGORITHMS = {
    "mprdma": MPRDMA,
    "swift": Swift,
    "dctcp": DCTCP,
    "ndp": NDPReceiverDriven,
    "fixed": FixedWindow,
}


def create_congestion_control(name: str, mtu: int, initial_window_packets: int, base_rtt_ns: int) -> CongestionControl:
    """Instantiate the congestion-control algorithm ``name``.

    Parameters
    ----------
    name:
        One of ``mprdma``, ``swift``, ``dctcp``, ``ndp``, ``fixed``.
    mtu:
        Packet payload size in bytes (window arithmetic is in packets of this
        size).
    initial_window_packets:
        Initial congestion window.
    base_rtt_ns:
        Unloaded round-trip time of the flow's path, used by delay-based
        algorithms as their target baseline.
    """
    try:
        cls = _ALGORITHMS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown congestion control algorithm {name!r}") from None
    return cls(mtu=mtu, initial_window_packets=initial_window_packets, base_rtt_ns=base_rtt_ns)


__all__ = [
    "CongestionControl",
    "MPRDMA",
    "Swift",
    "DCTCP",
    "NDPReceiverDriven",
    "FixedWindow",
    "create_congestion_control",
]

"""Common interface of window-based congestion-control algorithms.

The packet backend keeps one instance per flow.  The window is maintained in
(fractional) packets of ``mtu`` bytes; the backend queries
:meth:`CongestionControl.can_send` before injecting a new packet and feeds
back one :meth:`on_ack` per acknowledged data packet and one :meth:`on_loss`
per detected loss (timeout or trim-NACK).
"""
from __future__ import annotations


class CongestionControl:
    """Base class: a fixed window that subclasses adapt on feedback."""

    #: Receiver-driven algorithms (NDP) bypass the sender window entirely once
    #: the initial window has been sent; the backend checks this flag.
    receiver_driven: bool = False

    #: Minimum congestion window in packets.
    min_window: float = 1.0

    def __init__(self, mtu: int, initial_window_packets: int, base_rtt_ns: int) -> None:
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        if initial_window_packets <= 0:
            raise ValueError("initial_window_packets must be positive")
        if base_rtt_ns < 0:
            raise ValueError("base_rtt_ns must be non-negative")
        self.mtu = mtu
        self.base_rtt_ns = base_rtt_ns
        self.cwnd = float(initial_window_packets)
        self.initial_window_packets = initial_window_packets

    # -- queries -------------------------------------------------------------
    def window_bytes(self) -> int:
        """Current congestion window in bytes."""
        return int(self.cwnd * self.mtu)

    def can_send(self, inflight_bytes: int) -> bool:
        """True when another MTU-sized packet fits in the window."""
        return inflight_bytes + self.mtu <= self.window_bytes() or inflight_bytes == 0

    # -- feedback ------------------------------------------------------------
    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        """Per-acknowledgement feedback; the base class does nothing."""

    def on_loss(self) -> None:
        """A loss (timeout or NACK) was detected; the base class does nothing."""

    # -- helpers for subclasses -----------------------------------------------
    def _clamp(self) -> None:
        if self.cwnd < self.min_window:
            self.cwnd = self.min_window

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cwnd={self.cwnd:.2f} pkts)"

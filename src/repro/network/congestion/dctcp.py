"""DCTCP congestion control (ECN-fraction based, per-window reaction).

DCTCP maintains an exponentially weighted estimate ``alpha`` of the fraction
of acknowledgements carrying ECN marks and, once per window, reduces the
congestion window by ``alpha / 2``.  Unmarked windows grow additively by one
packet per RTT.  Included both as a recognisable reference point and as the
"per-window" contrast to MPRDMA's per-packet reaction.
"""
from __future__ import annotations

from repro.network.congestion.base import CongestionControl


class DCTCP(CongestionControl):
    """Classic DCTCP window adaptation."""

    #: EWMA gain for the marking-fraction estimate.
    g: float = 1.0 / 16.0

    def __init__(self, mtu: int, initial_window_packets: int, base_rtt_ns: int) -> None:
        super().__init__(mtu, initial_window_packets, base_rtt_ns)
        self.alpha = 0.0
        self._acks_in_window = 0
        self._marks_in_window = 0

    def on_ack(self, acked_bytes: int, ecn_marked: bool, rtt_ns: int) -> None:
        self._acks_in_window += 1
        if ecn_marked:
            self._marks_in_window += 1
        # additive increase spread over the window
        self.cwnd += 1.0 / max(self.cwnd, 1.0)
        if self._acks_in_window >= self.cwnd:
            frac = self._marks_in_window / self._acks_in_window
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac
            if self._marks_in_window:
                self.cwnd *= 1.0 - self.alpha / 2.0
            self._acks_in_window = 0
            self._marks_in_window = 0
        self._clamp()

    def on_loss(self) -> None:
        self.cwnd /= 2.0
        self._clamp()

"""Message-level network backend based on the LogGOPS model.

This backend reproduces the LogGOPSim substrate the paper builds on: every
message is charged analytically with the LogGOPS parameters

* ``o`` — CPU overhead at sender and receiver (plus ``O`` per byte),
* ``g`` — NIC gap between consecutive messages at an endpoint,
* ``G`` — gap per byte (inverse bandwidth),
* ``L`` — wire latency,
* ``S`` — eager/rendezvous threshold.

Endpoint NICs are modelled as serial resources, so incast at a receiver
serialises at rate ``1/G``; the network core itself is contention-free,
which is exactly the approximation whose limits the paper's §6.2 explores
(the packet backend removes it).

Timing of an eager message (``size <= S``)::

    cpu_start  = max(ready, cpu_free[rank, stream])
    cpu_end    = cpu_start + o + size*O        (send op completes locally here)
    inj_start  = max(cpu_end, send_nic_free[rank])
    send_nic_free[rank] = inj_start + g + size*G
    recv_start = max(inj_start + L, recv_nic_free[dst])
    arrival    = recv_start + size*G
    recv_nic_free[dst] = arrival + g

The matching receive completes after an additional ``o`` charged on its own
compute stream, no earlier than both its posting time and the arrival.

Rendezvous messages (``size > S``) additionally wait for the matching
receive to be posted and pay one extra ``L`` for the handshake before the
transfer starts; the send op completes at message arrival rather than
locally.

Topology-aware latency
----------------------
When :meth:`SimulationConfig.loggops_topology_enabled` is true (the default
for the path-diverse ``torus`` and ``slimfly`` topologies), the flat ``L``
is replaced per message by the propagation latency of the route the
configured :class:`~repro.network.routing.RoutingStrategy` selects — a
hop-count/diameter model — and the rendezvous handshake likewise pays the
minimal-path latency.  The backend feeds the strategy cumulative bytes
routed over each link as its load signal, so adaptive routing steers around
links that earlier messages loaded even though this backend has no queues.
"""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.network.backend import (
    CompletionCallback,
    MessageRecord,
    NetworkBackend,
    NetworkStats,
    OpCompletion,
)
from repro.network.config import SimulationConfig
from repro.network.events import EventQueue
from repro.network.host import HostCompute
from repro.network.matching import MessageMatcher
from repro.network.routing import create_routing
from repro.network.topology import build_topology


class _PendingRecv:
    """Bookkeeping for a posted receive waiting for its message."""

    __slots__ = ("op_id", "rank", "stream", "post_time", "size")

    def __init__(self, op_id: int, rank: int, stream: int, post_time: int, size: int) -> None:
        self.op_id = op_id
        self.rank = rank
        self.stream = stream
        self.post_time = post_time
        self.size = size


class _Arrival:
    """Bookkeeping for a message that arrived before its receive was posted."""

    __slots__ = ("arrival_time", "size")

    def __init__(self, arrival_time: int, size: int) -> None:
        self.arrival_time = arrival_time
        self.size = size


class _PendingRendezvous:
    """A rendezvous send waiting for its matching receive to be posted."""

    __slots__ = ("op_id", "rank", "dst", "tag", "stream", "size", "sender_ready", "post_time")

    def __init__(
        self, op_id: int, rank: int, dst: int, tag: int, stream: int, size: int, sender_ready: int, post_time: int
    ) -> None:
        self.op_id = op_id
        self.rank = rank
        self.dst = dst
        self.tag = tag
        self.stream = stream
        self.size = size
        self.sender_ready = sender_ready
        self.post_time = post_time


class LogGOPSBackend(NetworkBackend):
    """LogGOPS message-level simulator implementing the unified backend API."""

    name = "lgs"

    def __init__(self) -> None:
        self._configured = False

    # ------------------------------------------------------------------ setup
    def setup(self, num_ranks: int, config: SimulationConfig) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.config = config
        self.params = config.loggops
        self.events = EventQueue()
        self.host = HostCompute()
        self.matcher = MessageMatcher()
        self._send_nic_free: List[int] = [0] * num_ranks
        self._recv_nic_free: List[int] = [0] * num_ranks
        # topology-aware wire latency (hop-count model); see module docstring
        self.topology = None
        self.routing = None
        self._link_bytes: Dict[int, int] = {}
        if config.loggops_topology_enabled():
            self.topology = build_topology(config, num_ranks)
            self.routing = create_routing(
                config.routing, self.topology, np.random.default_rng(config.seed)
            )
        # channel -> list of rendezvous sends awaiting a receive (FIFO)
        self._pending_rndv: Dict[Tuple[int, int, int], List[_PendingRendezvous]] = {}
        # channel -> list of receive post times available for rendezvous matching
        self._rndv_recv_posts: Dict[Tuple[int, int, int], List[_PendingRecv]] = {}
        self.stats = NetworkStats()
        self.records: List[MessageRecord] = []
        self.rank_finish: List[int] = [0] * num_ranks
        self._on_complete: Optional[CompletionCallback] = None
        self._configured = True

    def _require_setup(self) -> None:
        if not self._configured:
            raise RuntimeError("backend used before setup() was called")

    # ----------------------------------------------------------------- issuing
    def issue_calc(self, rank: int, stream: int, duration_ns: int, op_id: int, ready_time: int) -> None:
        self._require_setup()
        start, end = self.host.reserve(rank, stream, ready_time, duration_ns)
        self.events.schedule(end, self._complete_op, (rank, op_id))

    def issue_send(
        self, rank: int, dst: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        self._require_setup()
        self.events.schedule(ready_time, self._start_send, (rank, dst, size, tag, stream, op_id))

    def issue_recv(
        self, rank: int, src: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        self._require_setup()
        self.events.schedule(ready_time, self._post_recv, (rank, src, size, tag, stream, op_id))

    # --------------------------------------------------------------- internals
    def _cpu_cost(self, size: int) -> int:
        p = self.params
        return int(round(p.o + size * p.O))

    def _start_send(self, time: int, payload: Any) -> None:
        rank, dst, size, tag, stream, op_id = payload
        p = self.params
        cpu_start, cpu_end = self.host.reserve(rank, stream, time, self._cpu_cost(size))

        if size <= p.S or p.S == 0:
            # Eager protocol: transfer proceeds regardless of the receive.
            arrival = self._transfer(rank, dst, size, cpu_end)
            self.events.schedule(cpu_end, self._complete_op, (rank, op_id))
            self._deliver(rank, dst, size, tag, post_time=cpu_start, arrival=arrival)
        else:
            # Rendezvous: wait for the matching receive before transferring.
            channel = (rank, dst, tag)
            waiting = self._rndv_recv_posts.get(channel)
            if waiting:
                recv = waiting.pop(0)
                if not waiting:
                    del self._rndv_recv_posts[channel]
                self._start_rendezvous_transfer(
                    op_id, rank, dst, size, tag, stream, cpu_end, cpu_start, recv
                )
            else:
                self._pending_rndv.setdefault(channel, []).append(
                    _PendingRendezvous(op_id, rank, dst, tag, stream, size, cpu_end, cpu_start)
                )

    def _wire_latency(self, src: int, dst: int, size: int) -> int:
        """Wire latency for one message: flat ``L``, or the routed path's
        propagation delay when topology-aware latency is enabled."""
        if self.routing is None:
            return self.params.L
        route = self.routing.select_route(
            src, dst, size, lambda link: self._link_bytes.get(link, 0)
        )
        latency = 0
        for link in route:
            self._link_bytes[link] = self._link_bytes.get(link, 0) + size
            latency += self.topology.links[link].latency
        return latency

    def _transfer(self, src: int, dst: int, size: int, sender_ready: int) -> int:
        """Charge NIC resources for one message and return its arrival time."""
        p = self.params
        wire_bytes_ns = int(round(size * p.G))
        inj_start = max(sender_ready, self._send_nic_free[src])
        self._send_nic_free[src] = inj_start + p.g + wire_bytes_ns
        recv_start = max(inj_start + self._wire_latency(src, dst, size), self._recv_nic_free[dst])
        arrival = recv_start + wire_bytes_ns
        self._recv_nic_free[dst] = arrival + p.g
        return arrival

    def _deliver(self, src: int, dst: int, size: int, tag: int, post_time: int, arrival: int) -> None:
        """Schedule the arrival of an eager message and run matching at that time."""

        def on_arrival(time: int, _payload: Any) -> None:
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += size
            if self.config.collect_message_records:
                self.records.append(MessageRecord(src, dst, size, tag, post_time, time))
            matched = self.matcher.post_arrival(src, dst, tag, _Arrival(time, size))
            if matched is not None:
                self._complete_recv(matched, time)

        self.events.schedule(arrival, on_arrival, None)

    def _post_recv(self, time: int, payload: Any) -> None:
        rank, src, size, tag, stream, op_id = payload
        p = self.params
        recv = _PendingRecv(op_id, rank, stream, time, size)

        if size > p.S and p.S != 0:
            # Rendezvous path: the receive may unblock a waiting send.
            channel = (src, rank, tag)
            pending = self._pending_rndv.get(channel)
            if pending:
                send = pending.pop(0)
                if not pending:
                    del self._pending_rndv[channel]
                self._start_rendezvous_transfer(
                    send.op_id, send.rank, send.dst, send.size, send.tag, send.stream,
                    send.sender_ready, send.post_time, recv,
                )
                return
            self._rndv_recv_posts.setdefault(channel, []).append(recv)
            return

        matched = self.matcher.post_recv(src, rank, tag, recv)
        if matched is not None:
            self._complete_recv(recv, matched.arrival_time)

    def _start_rendezvous_transfer(
        self,
        send_op_id: int,
        src: int,
        dst: int,
        size: int,
        tag: int,
        send_stream: int,
        sender_ready: int,
        sender_post_time: int,
        recv: _PendingRecv,
    ) -> None:
        """Run the rendezvous handshake and transfer once both sides are ready."""
        # the handshake control message pays the topology's minimal path
        # latency in topology-aware mode, the flat L otherwise (consistent
        # with the data transfer's _wire_latency)
        if self.topology is not None:
            handshake_latency = self.topology.min_path_latency(dst, src)
        else:
            handshake_latency = self.params.L
        handshake_done = max(sender_ready, recv.post_time + handshake_latency)
        arrival = self._transfer(src, dst, size, handshake_done)
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += size
        if self.config.collect_message_records:
            self.records.append(MessageRecord(src, dst, size, tag, sender_post_time, arrival))
        # The send op completes when the transfer completes (sender blocks).
        self.events.schedule(arrival, self._complete_op, (src, send_op_id))
        self._complete_recv(recv, arrival)

    def _complete_recv(self, recv: _PendingRecv, arrival_time: int) -> None:
        """Charge the receiver-side overhead and report the recv op complete."""
        earliest = max(arrival_time, recv.post_time)
        _, end = self.host.reserve(recv.rank, recv.stream, earliest, self._cpu_cost(recv.size))
        self.events.schedule(end, self._complete_op, (recv.rank, recv.op_id))

    def _complete_op(self, time: int, payload: Any) -> None:
        rank, op_id = payload
        if time > self.rank_finish[rank]:
            self.rank_finish[rank] = time
        if self._on_complete is not None:
            self._on_complete(OpCompletion(time, rank, op_id))

    # -------------------------------------------------------------------- run
    def run(self, on_complete: CompletionCallback) -> int:
        self._require_setup()
        self._on_complete = on_complete
        final = self.events.run()
        return final

    def now(self) -> int:
        self._require_setup()
        return self.events.now

    def collect_stats(self) -> NetworkStats:
        self._require_setup()
        return self.stats

    def collect_message_records(self) -> List[MessageRecord]:
        self._require_setup()
        return self.records

    # ---------------------------------------------------------------- queries
    def link_loads(self) -> Dict[str, int]:
        """Cumulative bytes routed over each link (topology-aware mode only)."""
        if self.topology is None:
            return {}
        return {
            self.topology.links[link].name: load
            for link, load in sorted(self._link_bytes.items())
        }

    def unmatched_state(self) -> Dict[str, int]:
        """Diagnostics about unmatched communication at the end of a run.

        A correct schedule drains everything; non-zero counts indicate a
        deadlocked or mismatched GOAL program.
        """
        return {
            "pending_recvs": self.matcher.pending_recv_count(),
            "unexpected_messages": self.matcher.pending_arrival_count(),
            "pending_rendezvous_sends": sum(len(v) for v in self._pending_rndv.values()),
            "pending_rendezvous_recvs": sum(len(v) for v in self._rndv_recv_posts.values()),
        }

"""Message-level network backend based on the LogGOPS model.

This backend reproduces the LogGOPSim substrate the paper builds on: every
message is charged analytically with the LogGOPS parameters

* ``o`` — CPU overhead at sender and receiver (plus ``O`` per byte),
* ``g`` — NIC gap between consecutive messages at an endpoint,
* ``G`` — gap per byte (inverse bandwidth),
* ``L`` — wire latency,
* ``S`` — eager/rendezvous threshold.

Endpoint NICs are modelled as serial resources, so incast at a receiver
serialises at rate ``1/G``; the network core itself is contention-free,
which is exactly the approximation whose limits the paper's §6.2 explores
(the packet backend removes it).

Timing of an eager message (``size <= S``)::

    cpu_start  = max(ready, cpu_free[rank, stream])
    cpu_end    = cpu_start + o + size*O        (send op completes locally here)
    inj_start  = max(cpu_end, send_nic_free[rank])
    send_nic_free[rank] = inj_start + g + size*G
    recv_start = max(inj_start + L, recv_nic_free[dst])
    arrival    = recv_start + size*G
    recv_nic_free[dst] = arrival + g

The matching receive completes after an additional ``o`` charged on its own
compute stream, no earlier than both its posting time and the arrival.

Rendezvous messages (``size > S``) additionally wait for the matching
receive to be posted and pay one extra ``L`` for the handshake before the
transfer starts; the send op completes at message arrival rather than
locally.

Hot path
--------
Two exact optimizations keep the per-message cost low
(``SimulationConfig.loggops_batching``, on by default):

* runs of ``send`` events with the same timestamp — the shape every
  collective produces — are popped together and their eager timing
  recurrence is evaluated with numpy across the whole batch whenever the
  batch is *dependency-free* (each sender rank and each destination appears
  at most once, so no ``max``-chain couples two members); coupled or
  rendezvous batches fall back to the per-message path, member by member,
  in the exact event order,
* arrivals are scheduled as a method plus a tuple payload instead of a
  closure per message, and the per-message CPU cost short-circuits to the
  integer ``o`` when ``O == 0``.

Disabling the flag replays every send through the per-message path;
simulated results are bit-identical either way (see
``tests/test_perf_determinism.py``).

Topology-aware latency
----------------------
When :meth:`SimulationConfig.loggops_topology_enabled` is true (the default
for the path-diverse ``torus`` and ``slimfly`` topologies), the flat ``L``
is replaced per message by the propagation latency of the route the
configured :class:`~repro.network.routing.RoutingStrategy` selects — a
hop-count/diameter model — and the rendezvous handshake likewise pays the
minimal-path latency.  The backend feeds the strategy cumulative bytes
routed over each link as its load signal, so adaptive routing steers around
links that earlier messages loaded even though this backend has no queues.
"""
from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.network.backend import (
    CompletionCallback,
    JobStats,
    MessageRecord,
    NetworkBackend,
    NetworkStats,
    assemble_job_stats,
)
from repro.network.config import SimulationConfig
from repro.network.events import EventQueue
from repro.network.faults import LINK_DOWN, SWITCH_DRAIN, NetworkPartitionError
from repro.network.host import HostCompute
from repro.network.matching import MessageMatcher
from repro.network.routing import create_routing
from repro.network.topology import build_topology


class _PendingRecv:
    """Bookkeeping for a posted receive waiting for its message."""

    __slots__ = ("op_id", "rank", "stream", "post_time", "size")

    def __init__(self, op_id: int, rank: int, stream: int, post_time: int, size: int) -> None:
        self.op_id = op_id
        self.rank = rank
        self.stream = stream
        self.post_time = post_time
        self.size = size


class _Arrival:
    """Bookkeeping for a message that arrived before its receive was posted."""

    __slots__ = ("arrival_time", "size")

    def __init__(self, arrival_time: int, size: int) -> None:
        self.arrival_time = arrival_time
        self.size = size


class _PendingRendezvous:
    """A rendezvous send waiting for its matching receive to be posted."""

    __slots__ = ("op_id", "rank", "dst", "tag", "stream", "size", "sender_ready", "post_time")

    def __init__(
        self, op_id: int, rank: int, dst: int, tag: int, stream: int, size: int, sender_ready: int, post_time: int
    ) -> None:
        self.op_id = op_id
        self.rank = rank
        self.dst = dst
        self.tag = tag
        self.stream = stream
        self.size = size
        self.sender_ready = sender_ready
        self.post_time = post_time


class LogGOPSBackend(NetworkBackend):
    """LogGOPS message-level simulator implementing the unified backend API."""

    name = "lgs"

    def __init__(self) -> None:
        self._configured = False

    # ------------------------------------------------------------------ setup
    def setup(self, num_ranks: int, config: SimulationConfig) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.config = config
        self.params = config.loggops
        self.events = EventQueue()
        self.host = HostCompute()
        self.matcher = MessageMatcher()
        self._send_nic_free: List[int] = [0] * num_ranks
        self._recv_nic_free: List[int] = [0] * num_ranks
        self._batching = config.loggops_batching
        # one stable bound-method object for send events: accessing
        # self._start_send creates a fresh bound method each time, so the
        # batch loop's identity check must compare against this single
        # reference (tests assert batching actually engages)
        self._start_send_cb = self._start_send
        # CPU cost fast path: with O == 0 the per-message cost is just o
        self._o_int = int(round(self.params.o))
        # topology-aware wire latency (hop-count model); see module docstring
        self.topology = None
        self.routing = None
        self._link_bytes: Optional[np.ndarray] = None
        if config.loggops_topology_enabled():
            self.topology = build_topology(config, num_ranks)
            self.topology.set_route_cache_budget(config.route_cache_entries)
            self.topology.use_synthesis = config.route_synthesis
            self.routing = create_routing(
                config.routing,
                self.topology,
                np.random.default_rng(config.seed),
                use_cache=config.route_caching,
            )
            # cumulative bytes routed per link, indexed by link id — the
            # load signal handed to the routing strategy as an array view
            self._link_bytes = np.zeros(len(self.topology.links), dtype=np.int64)
        # fault injection (see repro.network.faults): faults degrade this
        # backend through a capacity factor gamma — the surviving fraction of
        # fabric bandwidth over the switch-to-switch links (or all links on
        # switchless topologies) — which inflates the per-byte serialisation
        # term of every transfer by 1/gamma.  In topology-aware mode the
        # same failed-link state also filters per-message route selection.
        # A topology is built here even in flat-L mode, purely to resolve
        # link references and account capacity; it never affects latency.
        self._faults = config.faults
        self._faults_enabled = bool(self._faults)
        self._gamma = 1.0
        if self._faults_enabled:
            fault_topo = self.topology
            if fault_topo is None:
                fault_topo = build_topology(config, num_ranks)
                fault_topo.set_route_cache_budget(config.route_cache_entries)
                fault_topo.use_synthesis = config.route_synthesis
            self._fault_topology = fault_topo
            domain = [
                link.link_id
                for link in fault_topo.links
                if not (fault_topo.is_host(link.src) or fault_topo.is_host(link.dst))
            ] or [link.link_id for link in fault_topo.links]
            self._fault_domain = domain
            # healthy capacity is captured before degradations are applied,
            # so a derated link counts as lost capacity
            self._domain_total_bw = sum(
                fault_topo.links[i].bandwidth for i in domain
            )
            for link_id, factor in self._faults.static_degradations(fault_topo).items():
                fault_topo.degrade_link(link_id, factor)
            static = self._faults.static_failed_ids(fault_topo)
            if static:
                fault_topo.fail_links(static)
            self._recompute_gamma()
            for time_ns, kind, ids in self._faults.resolved_events(fault_topo):
                self.events.schedule(time_ns, self._apply_fault, (kind, ids))
        # control-plane convergence (see repro.network.control_plane): under
        # "oracle" gamma steps instantaneously at each fault event (the
        # legacy behaviour, bit-identical).  Under "dv"/"ls" the analytic
        # counterpart of stale-table forwarding is a capacity-derate *ramp*:
        # gamma starts below its post-convergence value at the event (down:
        # the stale fraction of traffic is wasted into the failed region;
        # up: the restored capacity is invisible to stale switches) and
        # steps toward the true value as each learn-time group of switches
        # converges.  Created after static failures so views boot converged.
        self._cp = None
        self._gamma_gen = 0
        self.convergence_events: List = []
        if config.control_plane != "oracle" and self._faults_enabled:
            from repro.network.control_plane import create_control_plane

            self._cp = create_control_plane(
                config.control_plane,
                self._fault_topology,
                propagation_delay_ns=config.cp_propagation_ns,
                processing_delay_ns=config.cp_processing_ns,
            )
        # multi-job attribution (observational only; see SimulationConfig).
        # Per-link attribution needs routed paths, so it is collected only in
        # topology-aware mode; message counts are collected in either mode.
        self._job_stride = config.job_tag_stride
        self._job_msgs: Dict[int, List[int]] = {}
        self._job_link_bytes: Dict[int, np.ndarray] = {}
        # channel -> list of rendezvous sends awaiting a receive (FIFO)
        self._pending_rndv: Dict[Tuple[int, int, int], List[_PendingRendezvous]] = {}
        # channel -> list of receive post times available for rendezvous matching
        self._rndv_recv_posts: Dict[Tuple[int, int, int], List[_PendingRecv]] = {}
        self.stats = NetworkStats()
        self.records: List[MessageRecord] = []
        self.rank_finish: List[int] = [0] * num_ranks
        self._on_complete: Optional[CompletionCallback] = None
        self._configured = True

    def _require_setup(self) -> None:
        if not self._configured:
            raise RuntimeError("backend used before setup() was called")

    # ----------------------------------------------------------------- issuing
    def issue_calc(self, rank: int, stream: int, duration_ns: int, op_id: int, ready_time: int) -> None:
        # inlined HostCompute.reserve — one call frame and one tuple less on
        # the single hottest path of calc-dominated workloads
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        host = self.host
        free = host._free_at
        key = (rank, stream)
        start = free.get(key, 0)
        if start < ready_time:
            start = ready_time
        end = start + duration_ns
        free[key] = end
        if duration_ns:
            busy = host.busy_ns
            busy[rank] = busy.get(rank, 0) + duration_ns
        # inlined EventQueue.schedule (end >= ready_time >= now by
        # construction, so the past-check cannot fire)
        events = self.events
        heapq.heappush(events._heap, (end, 0, events._seq, self._complete_op, (rank, op_id)))
        events._seq += 1

    def issue_send(
        self, rank: int, dst: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        events = self.events
        heapq.heappush(
            events._heap,
            (ready_time, 0, events._seq, self._start_send_cb, (rank, dst, size, tag, stream, op_id)),
        )
        events._seq += 1

    def issue_recv(
        self, rank: int, src: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        events = self.events
        heapq.heappush(
            events._heap,
            (ready_time, 0, events._seq, self._post_recv, (rank, src, size, tag, stream, op_id)),
        )
        events._seq += 1

    # ------------------------------------------------------------------ faults
    def _recompute_gamma(self) -> None:
        """Refresh the surviving-capacity factor after a fault-state change."""
        topo = self._fault_topology
        failed = topo._failed_links
        alive_bw = sum(
            topo.links[i].bandwidth for i in self._fault_domain if i not in failed
        )
        gamma = alive_bw / self._domain_total_bw if self._domain_total_bw else 0.0
        if gamma <= 0.0:
            raise NetworkPartitionError(
                "fault schedule removed all fabric capacity: every "
                f"link of the capacity domain ({len(self._fault_domain)} links) "
                "is down"
            )
        self._gamma = gamma

    def _apply_fault(self, time: int, payload: Tuple[str, List[int]]) -> None:
        """Apply one timed fault event: flip link state, refresh gamma.

        In topology-aware mode the failed-link state is shared with the
        routing strategy, so subsequent messages also route around the
        failure (or raise the partition error when no route survives).
        """
        kind, ids = payload
        topo = self._fault_topology
        gamma_old = self._gamma
        if kind in (LINK_DOWN, SWITCH_DRAIN):
            topo.fail_links(ids)
        else:
            topo.restore_links(ids)
        self._recompute_gamma()
        cp = self._cp
        if cp is None:
            return
        # convergent control plane: ramp gamma to its new truth across the
        # event's learn-time groups instead of stepping instantaneously
        gamma_new = self._gamma
        record, learn = cp.originate(time, kind, ids)
        self.convergence_events.append(record)
        if kind in (LINK_DOWN, SWITCH_DRAIN):
            # during convergence, the stale share of traffic is injected
            # toward the failed region and wasted, so effective capacity
            # dips *below* the degraded steady state before recovering
            start = gamma_new * (gamma_new / gamma_old)
        else:
            # restored capacity is invisible to stale switches
            start = gamma_old
        self._gamma = start
        self._gamma_gen += 1
        gen = self._gamma_gen
        if not learn:
            self._gamma = gamma_new
            return
        counts: Dict[int, int] = {}
        for t in learn.values():
            counts[t] = counts.get(t, 0) + 1
        total = len(learn)
        cum = 0
        for t in sorted(counts):
            group = tuple(sw for sw, lt in learn.items() if lt == t)
            cum += counts[t]
            # the final step lands exactly on gamma_new (no float residue)
            target = (
                gamma_new if cum == total else start + (gamma_new - start) * cum / total
            )
            self.events.schedule(
                t, self._cp_gamma_step, (target, gen, kind, tuple(ids), group)
            )

    def _cp_gamma_step(self, time: int, payload) -> None:
        """One learn-time group converges: views absorb the event, gamma steps.

        Steps carry the generation of the fault event that scheduled them; a
        later event supersedes the ramp (new generation), so stale steps are
        dropped instead of clobbering the newer ramp.
        """
        target, gen, kind, ids, switches = payload
        self._cp.apply(switches, kind, ids)
        if gen == self._gamma_gen:
            self._gamma = target

    # --------------------------------------------------------------- internals
    def _cpu_cost(self, size: int) -> int:
        p = self.params
        if p.O == 0.0:
            return self._o_int
        return int(round(p.o + size * p.O))

    def _start_send(self, time: int, payload: Any) -> None:
        rank, dst, size, tag, stream, op_id = payload
        p = self.params
        cpu_start, cpu_end = self.host.reserve(rank, stream, time, self._cpu_cost(size))

        if size <= p.S or p.S == 0:
            # Eager protocol: transfer proceeds regardless of the receive.
            arrival = self._transfer(rank, dst, size, cpu_end, tag)
            self.events.schedule(cpu_end, self._complete_op, (rank, op_id))
            self.events.schedule(arrival, self._on_arrival, (rank, dst, size, tag, cpu_start))
        else:
            # Rendezvous: wait for the matching receive before transferring.
            channel = (rank, dst, tag)
            waiting = self._rndv_recv_posts.get(channel)
            if waiting:
                recv = waiting.pop(0)
                if not waiting:
                    del self._rndv_recv_posts[channel]
                self._start_rendezvous_transfer(
                    op_id, rank, dst, size, tag, stream, cpu_end, cpu_start, recv
                )
            else:
                self._pending_rndv.setdefault(channel, []).append(
                    _PendingRendezvous(op_id, rank, dst, tag, stream, size, cpu_end, cpu_start)
                )

    def _wire_latency(self, src: int, dst: int, size: int, tag: int = 0) -> int:
        """Wire latency for one message: flat ``L``, or the routed path's
        propagation delay when topology-aware latency is enabled."""
        if self.routing is None:
            return self.params.L
        loads = self._link_bytes
        route = self.routing.select_route(src, dst, size, loads)
        for link in route:
            loads[link] += size
        if self._job_stride:
            jlb = self._job_link_bytes
            job = tag // self._job_stride
            arr = jlb.get(job)
            if arr is None:
                arr = jlb[job] = np.zeros(len(self.topology.links), dtype=np.int64)
            for link in route:
                arr[link] += size
        return self.topology.route_latency(route)

    def _transfer(self, src: int, dst: int, size: int, sender_ready: int, tag: int = 0) -> int:
        """Charge NIC resources for one message and return its arrival time.

        Under an active fault schedule the per-byte serialisation is
        inflated by the degraded-capacity factor (``G / gamma``); with the
        fabric fully up (``gamma == 1``) the arithmetic is exactly the
        healthy expression.
        """
        p = self.params
        if self._gamma != 1.0:
            wire_bytes_ns = int(round(size * p.G / self._gamma))
        else:
            wire_bytes_ns = int(round(size * p.G))
        inj_start = max(sender_ready, self._send_nic_free[src])
        self._send_nic_free[src] = inj_start + p.g + wire_bytes_ns
        recv_start = max(inj_start + self._wire_latency(src, dst, size, tag), self._recv_nic_free[dst])
        arrival = recv_start + wire_bytes_ns
        self._recv_nic_free[dst] = arrival + p.g
        return arrival

    def _on_arrival(self, time: int, payload: Tuple[int, int, int, int, int]) -> None:
        """An eager message fully arrived; record it and run matching."""
        src, dst, size, tag, post_time = payload
        stats = self.stats
        stats.messages_delivered += 1
        stats.bytes_delivered += size
        if self._job_stride:
            per_job = self._job_msgs.setdefault(tag // self._job_stride, [0, 0])
            per_job[0] += 1
            per_job[1] += size
        if self.config.collect_message_records:
            self.records.append(MessageRecord(src, dst, size, tag, post_time, time))
        matched = self.matcher.post_arrival(src, dst, tag, _Arrival(time, size))
        if matched is not None:
            self._complete_recv(matched, time)

    def _post_recv(self, time: int, payload: Any) -> None:
        rank, src, size, tag, stream, op_id = payload
        p = self.params
        recv = _PendingRecv(op_id, rank, stream, time, size)

        if size > p.S and p.S != 0:
            # Rendezvous path: the receive may unblock a waiting send.
            channel = (src, rank, tag)
            pending = self._pending_rndv.get(channel)
            if pending:
                send = pending.pop(0)
                if not pending:
                    del self._pending_rndv[channel]
                self._start_rendezvous_transfer(
                    send.op_id, send.rank, send.dst, send.size, send.tag, send.stream,
                    send.sender_ready, send.post_time, recv,
                )
                return
            self._rndv_recv_posts.setdefault(channel, []).append(recv)
            return

        matched = self.matcher.post_recv(src, rank, tag, recv)
        if matched is not None:
            self._complete_recv(recv, matched.arrival_time)

    def _start_rendezvous_transfer(
        self,
        send_op_id: int,
        src: int,
        dst: int,
        size: int,
        tag: int,
        send_stream: int,
        sender_ready: int,
        sender_post_time: int,
        recv: _PendingRecv,
    ) -> None:
        """Run the rendezvous handshake and transfer once both sides are ready."""
        # the handshake control message pays the topology's minimal path
        # latency in topology-aware mode, the flat L otherwise (consistent
        # with the data transfer's _wire_latency)
        if self.topology is not None:
            if self.topology.faulty:
                handshake_latency = int(self.topology.alive_table(dst, src).latency[0])
            else:
                handshake_latency = self.topology.min_path_latency(dst, src)
        else:
            handshake_latency = self.params.L
        handshake_done = max(sender_ready, recv.post_time + handshake_latency)
        arrival = self._transfer(src, dst, size, handshake_done, tag)
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += size
        if self._job_stride:
            per_job = self._job_msgs.setdefault(tag // self._job_stride, [0, 0])
            per_job[0] += 1
            per_job[1] += size
        if self.config.collect_message_records:
            self.records.append(MessageRecord(src, dst, size, tag, sender_post_time, arrival))
        # The send op completes when the transfer completes (sender blocks).
        self.events.schedule(arrival, self._complete_op, (src, send_op_id))
        self._complete_recv(recv, arrival)

    def _complete_recv(self, recv: _PendingRecv, arrival_time: int) -> None:
        """Charge the receiver-side overhead and report the recv op complete."""
        earliest = max(arrival_time, recv.post_time)
        _, end = self.host.reserve(recv.rank, recv.stream, earliest, self._cpu_cost(recv.size))
        self.events.schedule(end, self._complete_op, (recv.rank, recv.op_id))

    def _complete_op(self, time: int, payload: Any) -> None:
        rank, op_id = payload
        if time > self.rank_finish[rank]:
            self.rank_finish[rank] = time
        on_complete = self._on_complete
        if on_complete is not None:
            on_complete(time, rank, op_id)

    # -------------------------------------------------------------------- run
    def run(self, on_complete: CompletionCallback) -> int:
        self._require_setup()
        self._on_complete = on_complete
        if not self._batching:
            return self.events.run()
        return self._run_batched()

    def _run_batched(self) -> int:
        """Event loop that pops same-time runs of sends as one batch.

        Collectives issue whole fronts of sends with identical ready times;
        popping the run in one go lets :meth:`_start_send_batch` evaluate
        the eager LogGOPS recurrence with numpy across the batch.  Only
        *consecutive* same-time send events are grouped, so the global
        event order — and therefore every timing — is exactly that of the
        one-event-at-a-time loop.
        """
        events = self.events
        heap = events._heap
        pop = heapq.heappop
        start_send = self._start_send_cb
        executed = 0
        while heap:
            entry = pop(heap)
            time = entry[0]
            events._now = time
            callback = entry[3]
            if (
                callback is start_send
                and heap
                and heap[0][0] == time
                and heap[0][3] is start_send
            ):
                batch = [entry[4]]
                append = batch.append
                while heap and heap[0][0] == time and heap[0][3] is start_send:
                    append(pop(heap)[4])
                executed += len(batch)
                self._start_send_batch(time, batch)
                continue
            callback(time, entry[4])
            executed += 1
        events.executed += executed
        return events._now

    def _start_send_batch(self, time: int, payloads: List[Any]) -> None:
        """Process a same-time run of sends, vectorizing when dependency-free.

        The numpy path requires flat-``L`` mode (no per-message routing), a
        purely eager batch, and no intra-batch coupling: each sender rank
        and each destination at most once, so none of the ``max``-chains
        (CPU stream, sender NIC, receiver NIC) links two members.  Anything
        else replays the exact per-message path in event order.
        """
        p = self.params
        n = len(payloads)
        if (
            n >= 4
            and self.routing is None
            and not self._faults_enabled  # gamma may change mid-run
            and (p.S == 0 or all(pl[2] <= p.S for pl in payloads))
        ):
            ranks = [pl[0] for pl in payloads]
            dsts = [pl[1] for pl in payloads]
            if len(set(ranks)) == n and len(set(dsts)) == n:
                self._eager_batch_vectorized(time, payloads)
                return
        start_send = self._start_send
        for payload in payloads:
            start_send(time, payload)

    def _eager_batch_vectorized(self, time: int, payloads: List[Any]) -> None:
        """Numpy evaluation of the eager recurrence for a decoupled batch.

        Mirrors ``_start_send`` + ``_transfer`` element-wise: identical
        float operations (``round`` and ``np.rint`` both round half-even)
        and identical state write-back, so results are bit-equal to the
        scalar path.
        """
        p = self.params
        host_free = self.host._free_at
        busy = self.host.busy_ns
        send_free = self._send_nic_free
        recv_free = self._recv_nic_free

        sizes = np.array([pl[2] for pl in payloads], dtype=np.int64)
        if p.O != 0.0:
            costs = np.rint(p.o + sizes * p.O).astype(np.int64)
        else:
            costs = np.full(len(payloads), self._o_int, dtype=np.int64)
        wire = np.rint(sizes * p.G).astype(np.int64)
        cpu_free = np.array(
            [host_free.get((pl[0], pl[4]), 0) for pl in payloads], dtype=np.int64
        )
        cpu_start = np.maximum(cpu_free, time)
        cpu_end = cpu_start + costs
        snd = np.array([send_free[pl[0]] for pl in payloads], dtype=np.int64)
        inj = np.maximum(cpu_end, snd)
        new_snd = inj + p.g + wire
        rcv = np.array([recv_free[pl[1]] for pl in payloads], dtype=np.int64)
        recv_start = np.maximum(inj + p.L, rcv)
        arrival = recv_start + wire
        new_rcv = arrival + p.g

        schedule = self.events.schedule
        complete = self._complete_op
        on_arrival = self._on_arrival
        for i, (rank, dst, size, tag, stream, op_id) in enumerate(payloads):
            end = int(cpu_end[i])
            host_free[(rank, stream)] = end
            cost = int(costs[i])
            if cost:
                busy[rank] = busy.get(rank, 0) + cost
            send_free[rank] = int(new_snd[i])
            recv_free[dst] = int(new_rcv[i])
            schedule(end, complete, (rank, op_id))
            schedule(int(arrival[i]), on_arrival, (rank, dst, size, tag, int(cpu_start[i])))

    def now(self) -> int:
        self._require_setup()
        return self.events.now

    def collect_stats(self) -> NetworkStats:
        self._require_setup()
        if self.convergence_events:
            self.stats.time_to_recover_ns = max(
                r.time_to_recover_ns for r in self.convergence_events
            )
        topo = self.topology
        if topo is None:
            topo = getattr(self, "_fault_topology", None)
        if topo is not None:
            cache = topo.route_cache_stats()
            self.stats.route_cache_hits = cache["hits"]
            self.stats.route_cache_misses = cache["misses"]
            self.stats.route_cache_evictions = cache["evictions"]
        return self.stats

    def convergence_report(self) -> List:
        """Per-fault-event :class:`~repro.network.control_plane.ConvergenceRecord` list.

        Empty under ``control_plane="oracle"`` and whenever no timed fault
        event fired (mirrors the packet backend's report).
        """
        self._require_setup()
        return self.convergence_events

    def collect_message_records(self) -> List[MessageRecord]:
        self._require_setup()
        return self.records

    def per_job_stats(self) -> Dict[int, JobStats]:
        self._require_setup()
        if not self._job_stride:
            return {}
        links = self.topology.links if self.topology is not None else []
        return assemble_job_stats(self._job_msgs, self._job_link_bytes, links)

    # ---------------------------------------------------------------- queries
    def link_loads(self) -> Dict[str, int]:
        """Cumulative bytes routed over each link (topology-aware mode only)."""
        if self.topology is None:
            return {}
        return {
            self.topology.links[link].name: int(load)
            for link, load in enumerate(self._link_bytes)
            if load
        }

    def unmatched_state(self) -> Dict[str, int]:
        """Diagnostics about unmatched communication at the end of a run.

        A correct schedule drains everything; non-zero counts indicate a
        deadlocked or mismatched GOAL program.
        """
        return {
            "pending_recvs": self.matcher.pending_recv_count(),
            "unexpected_messages": self.matcher.pending_arrival_count(),
            "pending_rendezvous_sends": sum(len(v) for v in self._pending_rndv.values()),
            "pending_rendezvous_recvs": sum(len(v) for v in self._rndv_recv_posts.values()),
        }

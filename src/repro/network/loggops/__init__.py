"""Message-level LogGOPS backend (the LogGOPSim substrate)."""
from repro.network.loggops.backend import LogGOPSBackend

__all__ = ["LogGOPSBackend"]

"""Control-plane convergence models: routing that heals over time.

The fault subsystem (:mod:`repro.network.faults`) flips link state at exact
simulated instants, and the routing layer historically consumed that state
as *oracle knowledge*: the cycle a link died, every flow was silently handed
a perfect alternate path.  Real fabrics do not work that way — the switches
adjacent to a failure detect it, originate withdrawals/advertisements, and
every other switch keeps forwarding on **stale tables** until the wave
reaches it.  Traffic entering the stale region falls into a black hole (or a
transient loop) and is lost until either the source's first-hop switch
reconverges or a retransmission timeout fires.

This module models that window explicitly.  A :class:`ControlPlane` gives
every switch a *local routing view* — the set of links it currently believes
failed — and, per fault event, computes when each switch *learns* of the
change by propagating an advertisement wave hop-by-hop over the surviving
switch graph with a configurable per-hop ``propagation_delay_ns`` plus a
per-switch ``processing_delay_ns``.  Two protocol families ship, registered
in :data:`CONTROL_PLANES` exactly like routing strategies in
:data:`~repro.network.routing.ROUTING_STRATEGIES`:

* ``"ls"`` (:class:`LinkStateControlPlane`) — link-state flooding: the
  switches adjacent to the event originate an LSA that floods outward; each
  hop costs one propagation delay plus one processing delay, and every
  reached switch re-floods exactly once per event (sequence numbers kill
  duplicates), so the message count is bounded by the alive directed
  switch-to-switch edge count,
* ``"dv"`` (:class:`DistanceVectorControlPlane`) — distance-vector: a
  switch only re-advertises after a full vector exchange with the upstream
  neighbour (withdraw + poisoned-reverse reply), so each hop of the wave
  costs **two** propagation+processing rounds and the message bound doubles.
  Split horizon with poisoned reverse keeps the wave loop-free, which is
  what the property suite's bounded-message assertion checks,
* ``"oracle"`` (:class:`OracleControlPlane`) — the legacy instantaneous
  model: every switch learns at the event time, zero messages, zero
  time-to-recover.  ``SimulationConfig.control_plane`` defaults to it, and
  both backends keep their pre-control-plane code paths bit-identical under
  it (regression-locked the same way ``packet_batching`` is).

Each event yields a :class:`ConvergenceRecord` whose
``time_to_recover_ns`` is the span from the event to the instant the last
reachable switch's view caught up.  The packet backend drops packets that a
stale switch forwards into the failed region and counts them as
``packets_blackholed``; the LogGOPS backend ramps its capacity derate across
the same window instead of stepping it instantaneously (see
``docs/control_plane.md``).

Overlapping waves for the *same* link resolve in event order (identical
origins give identical wave shapes, so a later event's learn times dominate
an earlier one's at every switch); waves for disjoint links commute because
views are reference-counted like the topology's own failed-link state.

Because a wave is a pure function of (topology, protocol, fault event) —
it never reads traffic state — the sharded packet engine replays it
identically on every shard's full-topology replica: per-switch learn times,
``time_to_recover_ns``, ``packets_blackholed`` and the record list are
bit-identical between ``shards=1`` and any shard count (see
``docs/scaling.md``).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple, Type

from repro.network.faults import LINK_DOWN, SWITCH_DRAIN

if TYPE_CHECKING:  # avoid importing numpy-heavy topology at module import
    from repro.network.topology.base import Topology


@dataclass(frozen=True)
class ConvergenceRecord:
    """Bookkeeping for one fault event's convergence wave.

    Attributes
    ----------
    time_ns:
        When the fault event fired.
    kind:
        The fault event kind (``link_down`` / ``link_up`` / drains).
    link_ids:
        The resolved link ids the event flipped.
    converged_at_ns:
        When the last reachable switch's local view caught up with the
        event (equals ``time_ns`` for the oracle protocol).
    messages:
        Protocol messages exchanged by the wave (0 for the oracle).
    protocol:
        Name of the control plane that produced the record.
    """

    time_ns: int
    kind: str
    link_ids: Tuple[int, ...]
    converged_at_ns: int
    messages: int
    protocol: str

    @property
    def time_to_recover_ns(self) -> int:
        """Convergence window: last stale switch's catch-up minus event time."""
        return self.converged_at_ns - self.time_ns


class ControlPlane:
    """Base class: per-switch routing views plus a learn-time wave model.

    Parameters
    ----------
    topology:
        The :class:`~repro.network.topology.base.Topology` whose switches
        hold views.  Views are initialised to the topology's *current*
        failed-link state, so a control plane created after static failures
        are applied starts converged (switches boot with the truth).
    propagation_delay_ns:
        Wire delay of one advertisement hop between adjacent switches.
    processing_delay_ns:
        Per-switch cost to process an update and recompute its table (also
        charged at the originating switches as detection/recompute time).
    """

    name = "base"
    #: True when fault visibility is instantaneous (no convergence window).
    instantaneous = False
    #: Vector-exchange rounds one wave hop costs (1 = flooding; the
    #: distance-vector protocol pays a withdraw + poisoned-reverse reply).
    rounds_per_hop = 1

    def __init__(
        self,
        topology: "Topology",
        propagation_delay_ns: int = 500,
        processing_delay_ns: int = 100,
    ) -> None:
        if propagation_delay_ns < 0 or processing_delay_ns < 0:
            raise ValueError("control-plane delays must be non-negative")
        self.topology = topology
        self.propagation_delay_ns = int(propagation_delay_ns)
        self.processing_delay_ns = int(processing_delay_ns)
        # directed switch-to-switch adjacency: switch -> [(link_id, neighbor)]
        self._adjacency: Dict[int, List[Tuple[int, int]]] = {}
        for link in topology.links:
            if topology.is_host(link.src) or topology.is_host(link.dst):
                continue
            self._adjacency.setdefault(link.src, []).append((link.link_id, link.dst))
            self._adjacency.setdefault(link.dst, [])
        # single-switch fabrics have no switch-to-switch edge; the lone
        # switch (every host's attachment) still holds a view
        for dev in range(topology.num_hosts, topology.num_devices):
            self._adjacency.setdefault(dev, [])
        # local views: believed-failed link ids, reference-counted exactly
        # like Topology._failed_links so overlapping causes compose
        initial = dict(topology._failed_links)
        self._views: Dict[int, Dict[int, int]] = {
            sw: dict(initial) for sw in self._adjacency
        }
        self._view_keys: Dict[int, frozenset] = {}
        #: Total protocol messages exchanged over the control plane's life.
        self.messages_total = 0

    # -- protocol hook -------------------------------------------------------
    def _hop_cost(self) -> int:
        """Cost of advancing the wave one switch hop."""
        return self.rounds_per_hop * (
            self.propagation_delay_ns + self.processing_delay_ns
        )

    # -- wave computation ----------------------------------------------------
    def _origin_switches(self, link_ids: Sequence[int]) -> List[int]:
        """Switch endpoints of the flipped links (they detect the event)."""
        topology = self.topology
        origins: List[int] = []
        seen: Set[int] = set()
        for link_id in link_ids:
            link = topology.links[link_id]
            for dev in (link.src, link.dst):
                if not topology.is_host(dev) and dev not in seen:
                    seen.add(dev)
                    origins.append(dev)
        return origins

    def learn_times(
        self, origins: Sequence[int], event_time: int
    ) -> Tuple[Dict[int, int], int]:
        """Per-switch learn times of one advertisement wave, plus messages.

        The wave is a breadth-first expansion from ``origins`` over the
        *surviving* switch graph (advertisements cannot cross a link that is
        currently down — the failure being advertised included).  Every
        reached switch learns at ``event_time + processing + level *
        hop_cost`` and re-advertises exactly once, so the message count is
        ``rounds_per_hop`` per alive out-edge of every reached switch —
        bounded, never looping (the property suite locks this in).
        Switches cut off from every origin are absent from the result: they
        can never learn, and no traffic can reach the failed region through
        them either.
        """
        topology = self.topology
        failed = topology._failed_links
        hop_cost = self._hop_cost()
        base = event_time + self.processing_delay_ns
        learn: Dict[int, int] = {}
        messages = 0
        frontier = [sw for sw in origins if sw in self._adjacency]
        for sw in frontier:
            learn[sw] = base
        level = 0
        while frontier:
            level += 1
            nxt: List[int] = []
            for sw in frontier:
                for link_id, neighbor in self._adjacency[sw]:
                    if link_id in failed:
                        continue
                    messages += self.rounds_per_hop
                    if neighbor not in learn:
                        learn[neighbor] = base + level * hop_cost
                        nxt.append(neighbor)
            frontier = nxt
        return learn, messages

    def originate(
        self, event_time: int, kind: str, link_ids: Sequence[int]
    ) -> Tuple[ConvergenceRecord, Dict[int, int]]:
        """Originate advertisements for one fault event.

        Returns the event's :class:`ConvergenceRecord` and the per-switch
        learn times the caller schedules view updates (and route re-picks)
        at.  Call *after* the topology's link state has been flipped, so the
        wave propagates over the post-event surviving graph.
        """
        origins = self._origin_switches(link_ids)
        learn, messages = self.learn_times(origins, event_time)
        self.messages_total += messages
        converged = max(learn.values()) if learn else event_time
        record = ConvergenceRecord(
            time_ns=event_time,
            kind=kind,
            link_ids=tuple(link_ids),
            converged_at_ns=converged,
            messages=messages,
            protocol=self.name,
        )
        return record, learn

    # -- view maintenance ----------------------------------------------------
    def apply(self, switches: Sequence[int], kind: str, link_ids: Sequence[int]) -> None:
        """Update the local views of ``switches`` with one learned event."""
        fail = kind in (LINK_DOWN, SWITCH_DRAIN)
        unique = set(link_ids)
        for sw in switches:
            view = self._views.get(sw)
            if view is None:
                continue
            for link_id in unique:
                count = view.get(link_id, 0)
                if fail:
                    view[link_id] = count + 1
                elif count > 1:
                    view[link_id] = count - 1
                elif count == 1:
                    del view[link_id]
            self._view_keys.pop(sw, None)

    def view_key(self, switch: int) -> frozenset:
        """The switch's believed-failed link ids as a memoized frozenset."""
        key = self._view_keys.get(switch)
        if key is None:
            key = frozenset(self._views.get(switch, ()))
            self._view_keys[switch] = key
        return key

    def knows(self, switch: int, route: Tuple[int, ...], hop: int, mask) -> bool:
        """Whether ``switch`` knows the first dead link on ``route[hop:]``.

        The packet backend calls this at the forwarding point where a
        packet's remaining hops cross failed links: a switch that has
        learned of the failure repairs locally (like the oracle), one that
        has not forwards into the black hole.
        """
        view = self._views.get(switch)
        if view is None:
            return True
        for link in route[hop:]:
            if not mask[link]:
                return link in view
        return True

    def converged(self) -> bool:
        """True when every switch's view equals the topology's failed set."""
        truth = self.topology.failed_links
        return all(self.view_key(sw) == truth for sw in self._views)


class OracleControlPlane(ControlPlane):
    """Instantaneous fault visibility: the legacy (pre-convergence) model."""

    name = "oracle"
    instantaneous = True

    def learn_times(
        self, origins: Sequence[int], event_time: int
    ) -> Tuple[Dict[int, int], int]:
        return {sw: event_time for sw in self._adjacency}, 0


class LinkStateControlPlane(ControlPlane):
    """Link-state flooding (OSPF-style LSAs): one round per wave hop."""

    name = "ls"
    rounds_per_hop = 1


class DistanceVectorControlPlane(ControlPlane):
    """Distance-vector with split horizon: two rounds per wave hop.

    A DV speaker cannot re-advertise a withdrawn route until the full
    vector exchange with its upstream neighbour completes (withdraw plus the
    poisoned-reverse reply), so the wave advances at half the flooding speed
    and exchanges twice the messages — the classic convergence gap between
    the two protocol families, reproduced here as a factor-two hop cost.
    """

    name = "dv"
    rounds_per_hop = 2


CONTROL_PLANES: Dict[str, Type[ControlPlane]] = {
    OracleControlPlane.name: OracleControlPlane,
    LinkStateControlPlane.name: LinkStateControlPlane,
    DistanceVectorControlPlane.name: DistanceVectorControlPlane,
}


def register_control_plane(cls: Type[ControlPlane]) -> Type[ControlPlane]:
    """Register a protocol class under ``cls.name`` (usable as a decorator)."""
    CONTROL_PLANES[cls.name] = cls
    return cls


def control_plane_names() -> Tuple[str, ...]:
    """Names of all registered control-plane protocols (sorted)."""
    return tuple(sorted(CONTROL_PLANES))


def create_control_plane(
    name: str,
    topology: "Topology",
    propagation_delay_ns: int = 500,
    processing_delay_ns: int = 100,
) -> ControlPlane:
    """Construct the registered protocol ``name`` bound to a topology."""
    try:
        cls = CONTROL_PLANES[name]
    except KeyError:
        raise ValueError(
            f"unknown control plane {name!r} "
            f"(registered: {', '.join(control_plane_names())})"
        ) from None
    return cls(
        topology,
        propagation_delay_ns=propagation_delay_ns,
        processing_delay_ns=processing_delay_ns,
    )


__all__ = [
    "CONTROL_PLANES",
    "ControlPlane",
    "ConvergenceRecord",
    "DistanceVectorControlPlane",
    "LinkStateControlPlane",
    "OracleControlPlane",
    "control_plane_names",
    "create_control_plane",
    "register_control_plane",
]

"""Network simulation backends and substrates.

This package contains everything below the GOAL scheduler:

* :mod:`repro.network.backend` — the unified backend API (the paper's
  ``ATLAHS_API``: ``simulationSetup`` / ``send`` / ``recv`` / ``calc`` /
  ``eventOver``) plus result/statistics containers,
* :mod:`repro.network.loggops` — the message-level LogGOPS backend
  (the LogGOPSim substrate),
* :mod:`repro.network.packet` — the packet-level backend (the htsim
  substrate) with queues, ECN, drops and congestion control,
* :mod:`repro.network.congestion` — congestion-control algorithms
  (MPRDMA, Swift, DCTCP, NDP, fixed window),
* :mod:`repro.network.topology` — network topologies (fat trees with
  configurable oversubscription, dragonfly, 2D/3D torus, Slim Fly, single
  switch),
* :mod:`repro.network.routing` — pluggable routing strategies (minimal/ECMP,
  Valiant, UGAL-style adaptive) applied on top of any topology,
* :mod:`repro.network.faults` — fault injection: degraded fabrics, timed
  link/switch failure events, and the partition error both backends raise
  when no route survives,
* :mod:`repro.network.control_plane` — route-convergence models (oracle /
  link-state flooding / distance-vector): per-switch routing views that heal
  hop-by-hop after fault events, with time-to-recover and blackhole
  accounting.
"""
from repro.network.config import LogGOPSParams, SimulationConfig
from repro.network.control_plane import (
    CONTROL_PLANES,
    ControlPlane,
    ConvergenceRecord,
    control_plane_names,
    create_control_plane,
)
from repro.network.faults import (
    FaultEvent,
    FaultSchedule,
    NetworkPartitionError,
)
from repro.network.backend import (
    NetworkBackend,
    OpCompletion,
    SimulationResult,
    MessageRecord,
    NetworkStats,
    create_backend,
)
from repro.network.routing import (
    ROUTING_STRATEGIES,
    RoutingStrategy,
    create_routing,
    routing_names,
)

__all__ = [
    "LogGOPSParams",
    "SimulationConfig",
    "CONTROL_PLANES",
    "ControlPlane",
    "ConvergenceRecord",
    "control_plane_names",
    "create_control_plane",
    "FaultEvent",
    "FaultSchedule",
    "NetworkPartitionError",
    "NetworkBackend",
    "OpCompletion",
    "SimulationResult",
    "MessageRecord",
    "NetworkStats",
    "create_backend",
    "ROUTING_STRATEGIES",
    "RoutingStrategy",
    "create_routing",
    "routing_names",
]

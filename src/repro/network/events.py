"""Discrete-event machinery shared by both simulation backends.

A minimal binary-heap event queue with a *canonical* ordering: entries are
keyed on ``(time, klass, a, b)`` where same-time events sort by event class
first and by a class-specific key within it:

* klass 0 — ordinary handler events (completions, flow setup, timeouts,
  pacer ticks, fault applications and control-plane convergence
  "switch-learn" events, ...), ordered by insertion sequence,
* klass 1 — packet deliveries, ordered by ``(departure time, link id)``,
* klass 2 — legacy transmission-completion bookkeeping, ordered by link id.

The class-specific keys are physical properties of the simulated network
rather than artifacts of when an engine happened to push the event, which
makes the order of same-timestamp events — and therefore whole simulations —
*engine-invariant*: the batched link engine (one delivery event per packet,
scheduled at enqueue time) and the legacy engine (per-transmission events,
deliveries scheduled at departure time) pop the exact same event sequence.
That invariance is what lets ``SimulationConfig.packet_batching`` be an
exact A/B toggle (see ``tests/test_perf_determinism.py``).

The queue stores flat tuples rather than event objects; in the hot
per-packet path this avoids one attribute lookup and one allocation per
event (see the hpc-parallel guides on keeping inner loops allocation-light).
"""
from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

EventCallback = Callable[[int, Any], None]

# entry layouts: handler/finish events are (time, klass, key, callback,
# payload); deliveries carry their two-part key: (time, 1, depart, link_id,
# callback, payload)
_Entry = Tuple[int, ...]


class EventQueue:
    """Deterministic discrete-event queue with integer-nanosecond timestamps."""

    __slots__ = ("_heap", "_seq", "_now", "executed")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._now = 0
        #: Events executed so far (by :meth:`run` or a backend's own loop);
        #: the bench harness reports this as events/sec.
        self.executed = 0

    @property
    def now(self) -> int:
        """Current simulation time (the timestamp of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def empty(self) -> bool:
        return not self._heap

    def schedule(self, time: int, callback: EventCallback, payload: Any = None) -> None:
        """Schedule ``callback(time, payload)`` at simulation time ``time``.

        Same-time handler events run in insertion order, before any
        same-time delivery.  Scheduling in the past (before the current
        time) is a logic error in a discrete-event simulation and raises
        ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ns before current time {self._now} ns"
            )
        heapq.heappush(self._heap, (int(time), 0, self._seq, callback, payload))
        self._seq += 1

    def schedule_delivery(
        self, time: int, depart: int, link_id: int, callback: EventCallback, payload: Any
    ) -> None:
        """Schedule a packet delivery, canonically keyed by ``(depart, link_id)``.

        ``depart`` is the instant the packet left its link's transmitter;
        per link departures are strictly increasing, so the key is unique
        and identical no matter which engine computed it.  Like
        :meth:`schedule`, delivery times must not lie in the past —
        ``pop()`` would silently move the simulation clock backwards.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule delivery (link {link_id}) at {time} ns "
                f"before current time {self._now} ns"
            )
        heapq.heappush(self._heap, (int(time), 1, depart, link_id, callback, payload))

    def schedule_finish(
        self, time: int, link_id: int, callback: EventCallback, payload: Any
    ) -> None:
        """Schedule a transmission-completion (legacy engine bookkeeping).

        Runs after every same-time handler and delivery event, which is
        exactly when the batched engine's lazy occupancy ledger retires a
        departed packet — keeping both engines' occupancy views aligned.
        Past-time scheduling raises like the other entry kinds.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule transmission-finish (link {link_id}) at "
                f"{time} ns before current time {self._now} ns"
            )
        heapq.heappush(self._heap, (int(time), 2, link_id, callback, payload))

    def schedule_after(self, delay: int, callback: EventCallback, payload: Any = None) -> None:
        """Schedule an event ``delay`` ns after the current time."""
        self.schedule(self._now + int(delay), callback, payload)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[int, EventCallback, Any]:
        """Pop and return the next ``(time, callback, payload)``; advances the clock."""
        entry = heapq.heappop(self._heap)
        self._now = entry[0]
        return entry[0], entry[-2], entry[-1]

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            Stop (without executing) events scheduled after this time.
        max_events:
            Safety valve against runaway simulations: at most ``max_events``
            events execute, and ``RuntimeError`` is raised if more remain.

        Returns
        -------
        int
            The simulation time after the last executed event.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        if until is None and max_events is None:
            # hot path: no limit checks inside the loop
            while heap:
                entry = pop(heap)
                time = entry[0]
                self._now = time
                entry[-2](time, entry[-1])
                executed += 1
            self.executed += executed
            return self._now
        while heap:
            if until is not None and heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                self.executed += executed
                raise RuntimeError(
                    f"event limit exceeded ({max_events} events); "
                    "simulation is likely livelocked"
                )
            entry = pop(heap)
            time = entry[0]
            self._now = time
            entry[-2](time, entry[-1])
            executed += 1
        self.executed += executed
        return self._now

"""Discrete-event machinery shared by both simulation backends.

A minimal binary-heap event queue keyed on ``(time, sequence)``.  The
sequence number breaks ties deterministically in insertion order, which makes
whole simulations reproducible for a fixed seed — a requirement of the
validation benchmarks.

The queue stores ``(time, seq, callback, payload)`` tuples rather than event
objects; in the hot per-packet path this avoids one attribute lookup and one
allocation per event (see the hpc-parallel guides on keeping inner loops
allocation-light).
"""
from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

EventCallback = Callable[[int, Any], None]


class EventQueue:
    """Deterministic discrete-event queue with integer-nanosecond timestamps."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventCallback, Any]] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Current simulation time (the timestamp of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def empty(self) -> bool:
        return not self._heap

    def schedule(self, time: int, callback: EventCallback, payload: Any = None) -> None:
        """Schedule ``callback(time, payload)`` at simulation time ``time``.

        Scheduling in the past (before the current time) is a logic error in
        a discrete-event simulation and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ns before current time {self._now} ns"
            )
        heapq.heappush(self._heap, (int(time), self._seq, callback, payload))
        self._seq += 1

    def schedule_after(self, delay: int, callback: EventCallback, payload: Any = None) -> None:
        """Schedule an event ``delay`` ns after the current time."""
        self.schedule(self._now + int(delay), callback, payload)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[int, EventCallback, Any]:
        """Pop and return the next ``(time, callback, payload)``; advances the clock."""
        time, _, callback, payload = heapq.heappop(self._heap)
        self._now = time
        return time, callback, payload

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains (or a limit is hit).

        Parameters
        ----------
        until:
            Stop (without executing) events scheduled after this time.
        max_events:
            Safety valve against runaway simulations: at most ``max_events``
            events execute, and ``RuntimeError`` is raised if more remain.

        Returns
        -------
        int
            The simulation time after the last executed event.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"event limit exceeded ({max_events} events); "
                    "simulation is likely livelocked"
                )
            time, _, callback, payload = heapq.heappop(self._heap)
            self._now = time
            callback(time, payload)
            executed += 1
        return self._now

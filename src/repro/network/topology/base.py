"""Topology base classes: devices, links and route lookup.

Devices are integer ids.  Hosts occupy ``0 .. num_hosts - 1``; switches use
ids at and above ``num_hosts``.  Links are directed — a full-duplex cable is
modelled as two links — because each direction has its own output queue.

Routes are precomputed per ``(source ToR/switch layout)`` by the concrete
topology classes and returned as tuples of link ids; the packet backend
attaches one queue per link.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid a hard numpy dependency at import time
    import numpy as np


def pick_route(candidates: Sequence[Tuple[int, ...]], rng: "np.random.Generator") -> Tuple[int, ...]:
    """Uniform random choice among candidate routes.

    Consumes randomness only when there is a real choice (more than one
    candidate), which fixed-seed reproducibility tests rely on.
    """
    if len(candidates) == 1:
        return candidates[0]
    return candidates[int(rng.integers(len(candidates)))]


class RouteTable:
    """Precomputed candidate-route table for one ``(src, dst)`` host pair.

    Built lazily by :meth:`Topology.route_table` and memoized, so routing
    strategies stop re-deriving candidate tuples (and their per-link sums)
    once per message.  Besides the candidate tuples themselves the table
    carries flat numpy views used by the vectorized UGAL cost:

    * ``hops`` — path length per candidate,
    * ``latency`` — summed propagation latency per candidate (ns),
    * ``links_flat`` / ``offsets`` — CSR layout of the candidates' link ids,
      so per-candidate queued-bytes sums are one gather + ``reduceat``.
    """

    __slots__ = ("candidates", "hops", "latency", "links_flat", "offsets")

    def __init__(self, candidates: Tuple[Tuple[int, ...], ...], links: Sequence[Link]) -> None:
        import numpy as np

        self.candidates = candidates
        self.hops = np.array([len(r) for r in candidates], dtype=np.int64)
        self.latency = np.array(
            [sum(links[l].latency for l in r) for r in candidates], dtype=np.int64
        )
        self.links_flat = np.array(
            [l for r in candidates for l in r], dtype=np.intp
        )
        offsets = np.zeros(len(candidates) + 1, dtype=np.intp)
        np.cumsum(self.hops, out=offsets[1:])
        self.offsets = offsets

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass(frozen=True)
class Link:
    """A directed link between two devices.

    Attributes
    ----------
    link_id:
        Dense index of this link (also indexes the packet backend's queues).
    src / dst:
        Device ids of the transmitting and receiving ends.
    bandwidth:
        Bytes per nanosecond.
    latency:
        Propagation delay in nanoseconds.
    name:
        Human-readable name used in statistics (e.g. ``"tor0->core1"``).
    """

    link_id: int
    src: int
    dst: int
    bandwidth: float
    latency: int
    name: str


class Topology:
    """Base class: a device/link graph plus host-to-host route lookup."""

    def __init__(self, num_hosts: int) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.num_hosts = num_hosts
        self.links: List[Link] = []
        self._out_links: Dict[int, List[int]] = {}
        self.num_devices = num_hosts
        # lazily built per-pair candidate tables and per-route latency sums
        self._route_tables: Dict[Tuple[int, int], RouteTable] = {}
        self._route_latency: Dict[Tuple[int, ...], int] = {}
        # fault state (see repro.network.faults): failure counts per link id
        # (a link can be failed by several overlapping causes — a static
        # failure plus a drain of either endpoint — and stays down until
        # every cause is restored), a monotone epoch bumped on every change,
        # and per-epoch memoized alive-filtered route tables.  ``faulty``
        # stays False for the lifetime of a healthy topology, so the
        # no-fault hot paths pay a single attribute read.
        self.faulty = False
        self._failed_links: Dict[int, int] = {}
        self._fault_epoch = 0
        self._alive_mask = None  # numpy bool array, built lazily
        self._alive_tables: Dict[Tuple[int, int], Tuple[int, RouteTable]] = {}
        # control-plane views: per-(pair, believed-failed set) filtered
        # tables (see repro.network.control_plane).  Keyed by the view's
        # frozenset, so entries never go stale — a switch whose view changes
        # simply reads a different key.
        self._view_tables: Dict[Tuple[int, int, frozenset], RouteTable] = {}

    # -- construction helpers (used by subclasses) ---------------------------
    def _new_device(self) -> int:
        dev = self.num_devices
        self.num_devices += 1
        return dev

    def _add_link(self, src: int, dst: int, bandwidth: float, latency: int, name: str) -> int:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be non-negative")
        link_id = len(self.links)
        self.links.append(Link(link_id, src, dst, bandwidth, latency, name))
        self._out_links.setdefault(src, []).append(link_id)
        return link_id

    def _add_duplex(self, a: int, b: int, bandwidth: float, latency: int, name_ab: str, name_ba: str) -> Tuple[int, int]:
        return (
            self._add_link(a, b, bandwidth, latency, name_ab),
            self._add_link(b, a, bandwidth, latency, name_ba),
        )

    # -- queries -------------------------------------------------------------
    def is_host(self, device: int) -> bool:
        return 0 <= device < self.num_hosts

    def out_links(self, device: int) -> List[int]:
        """Link ids leaving ``device``."""
        return self._out_links.get(device, [])

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """All candidate routes (tuples of link ids) from ``src_host`` to ``dst_host``.

        Subclasses must override.  ``src_host == dst_host`` is invalid: GOAL
        validation rejects self-messages before they reach the backend.
        """
        raise NotImplementedError

    def route_table(self, src_host: int, dst_host: int) -> RouteTable:
        """Memoized :class:`RouteTable` of the pair's minimal candidates.

        The table is built from :meth:`routes` on first use and cached for
        the lifetime of the topology; candidate order is preserved exactly,
        so strategies that tie-break with a shared RNG consume the same
        random stream whether they read the cache or call :meth:`routes`
        directly.
        """
        key = (src_host, dst_host)
        table = self._route_tables.get(key)
        if table is None:
            table = RouteTable(tuple(self.routes(src_host, dst_host)), self.links)
            self._route_tables[key] = table
        return table

    def route_latency(self, route: Tuple[int, ...]) -> int:
        """Memoized propagation latency (ns) summed along ``route``."""
        latency = self._route_latency.get(route)
        if latency is None:
            links = self.links
            latency = sum(links[l].latency for l in route)
            self._route_latency[route] = latency
        return latency

    # -- fault state (see repro.network.faults) ------------------------------
    def fail_links(self, link_ids: Sequence[int]) -> None:
        """Mark ``link_ids`` failed: routing stops offering routes over them.

        Failures are reference-counted per link, so a link failed by two
        overlapping causes (say, drains of both its endpoint switches) only
        comes back up once both causes are restored.  Duplicates within one
        call count once.
        """
        failed = self._failed_links
        changed = False
        for link_id in set(link_ids):
            count = failed.get(link_id, 0)
            failed[link_id] = count + 1
            if count == 0:
                changed = True
        if changed:
            self._fault_change()

    def restore_links(self, link_ids: Sequence[int]) -> None:
        """Undo one failure cause of each link (no-op for healthy links).

        A link stays down while any other cause still holds it failed.
        """
        failed = self._failed_links
        changed = False
        for link_id in set(link_ids):
            count = failed.get(link_id, 0)
            if count > 1:
                failed[link_id] = count - 1
            elif count == 1:
                del failed[link_id]
                changed = True
        if changed:
            self._fault_change()

    def _fault_change(self) -> None:
        self._fault_epoch += 1
        self.faulty = bool(self._failed_links)
        self._alive_mask = None

    @property
    def failed_links(self) -> frozenset:
        """Ids of the currently failed links."""
        return frozenset(self._failed_links)

    def alive_mask(self) -> Optional["np.ndarray"]:
        """Per-link alive flags, or ``None`` while every link is up.

        The mask is rebuilt lazily after a fault-state change and shared by
        every caller until the next change, so per-packet checks are array
        reads, not set lookups.
        """
        if not self.faulty:
            return None
        mask = self._alive_mask
        if mask is None:
            import numpy as np

            mask = np.ones(len(self.links), dtype=bool)
            mask[list(self._failed_links)] = False
            self._alive_mask = mask
        return mask

    def route_alive(self, route: Tuple[int, ...]) -> bool:
        """Whether every link of ``route`` is currently up."""
        if not self.faulty:
            return True
        failed = self._failed_links
        return not any(link in failed for link in route)

    def alive_table(self, src_host: int, dst_host: int) -> RouteTable:
        """Like :meth:`route_table`, filtered to candidates that survive faults.

        Returns the full table while the fabric is healthy.  With failed
        links, a filtered :class:`RouteTable` (candidate order preserved) is
        built once per (pair, fault epoch) and memoized until the next
        fault-state change — the "cached-route invalidation" the packet
        backend relies on.  Raises
        :class:`~repro.network.faults.NetworkPartitionError` when no
        candidate survives.
        """
        full = self.route_table(src_host, dst_host)
        if not self.faulty:
            return full
        key = (src_host, dst_host)
        cached = self._alive_tables.get(key)
        if cached is not None and cached[0] == self._fault_epoch:
            return cached[1]
        failed = self._failed_links
        alive = tuple(
            route
            for route in full.candidates
            if not any(link in failed for link in route)
        )
        if not alive:
            from repro.network.faults import NetworkPartitionError

            names = sorted(self.links[l].name for l in failed)
            raise NetworkPartitionError(
                f"no surviving route from host {src_host} to host {dst_host}: "
                f"all {len(full.candidates)} candidate route(s) cross failed links "
                f"(failed: {', '.join(names)})"
            )
        if len(alive) == len(full.candidates):
            table = full
        else:
            table = RouteTable(alive, self.links)
        self._alive_tables[key] = (self._fault_epoch, table)
        return table

    def view_table(self, src_host: int, dst_host: int, believed_failed: frozenset) -> RouteTable:
        """Like :meth:`alive_table`, filtered by a *believed*-failed link set.

        Used by the control plane (see :mod:`repro.network.control_plane`):
        a source whose first-hop switch holds a stale routing view selects
        routes as if ``believed_failed`` were the truth — the selected route
        may well cross a link that is actually down (that packet black-holes
        at the stale switch).  Tables are memoized per
        ``(pair, believed set)``; a view that believes the pair partitioned
        falls back to the truth-alive table *uncached* (it depends on the
        live fault epoch), modelling a switch that keeps its last usable
        route rather than dropping at the source.
        """
        full = self.route_table(src_host, dst_host)
        if not believed_failed:
            return full
        key = (src_host, dst_host, believed_failed)
        table = self._view_tables.get(key)
        if table is not None:
            return table
        alive = tuple(
            route
            for route in full.candidates
            if not any(link in believed_failed for link in route)
        )
        if not alive:
            return self.alive_table(src_host, dst_host)
        if len(alive) == len(full.candidates):
            table = full
        else:
            table = RouteTable(alive, self.links)
        self._view_tables[key] = table
        return table

    def degrade_link(self, link_id: int, capacity_factor: float) -> None:
        """Scale a link's bandwidth by ``capacity_factor`` (static degradation).

        Must be applied before backends derive per-link state (queues, route
        tables with latency sums are unaffected — only bandwidth changes);
        both backends apply degradations during ``setup`` right after the
        topology is built.
        """
        if not (0.0 < capacity_factor <= 1.0):
            raise ValueError(
                f"capacity factor must be in (0, 1], got {capacity_factor}"
            )
        import dataclasses

        link = self.links[link_id]
        self.links[link_id] = dataclasses.replace(
            link, bandwidth=link.bandwidth * capacity_factor
        )

    def valiant_routes(
        self, src_host: int, dst_host: int, rng: "np.random.Generator", count: int = 4
    ) -> Sequence[Tuple[int, ...]]:
        """Non-minimal (Valiant) candidate routes via random intermediates.

        The base implementation composes minimal routes through up to
        ``count`` random intermediate *hosts*; topologies whose structure
        offers a natural intermediate switch (torus routers, Slim Fly
        routers) override this to avoid descending to a host NIC mid-path.
        Returns an empty sequence when no intermediate exists (fewer than
        three hosts), in which case callers fall back to minimal routing.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        if self.num_hosts <= 2:
            return ()
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(self.num_hosts))
            while via == src_host or via == dst_host:
                via = int(rng.integers(self.num_hosts))
            leg1 = pick_route(self.routes(src_host, via), rng)
            leg2 = pick_route(self.routes(via, dst_host), rng)
            candidates.append(leg1 + leg2)
        return tuple(candidates)

    def _valiant_via_routers(
        self,
        src_host: int,
        dst_host: int,
        rng: "np.random.Generator",
        count: int,
        num_routers: int,
        router_of,
        router_paths,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Compose Valiant candidates through random intermediate *routers*.

        Shared by switch-centric topologies (torus, Slim Fly) that expose a
        router-level path function.  Requires the subclass's ``_host_up`` /
        ``_host_down`` link maps; ``router_of(host)`` names the attachment
        router and ``router_paths(r1, r2)`` returns the minimal router-level
        path candidates between two routers.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        r1 = router_of(src_host)
        r2 = router_of(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(num_routers))
            while via == r1 or via == r2:
                via = int(rng.integers(num_routers))
            leg1 = pick_route(router_paths(r1, via), rng)
            leg2 = pick_route(router_paths(via, r2), rng)
            candidates.append((up,) + leg1 + leg2 + (down,))
        return tuple(candidates)

    def attachment(self, host: int) -> int:
        """Device id of the switch ``host`` injects into (its first-hop switch)."""
        if not self.is_host(host):
            raise ValueError(f"{host} is not a host")
        out = self.out_links(host)
        if not out:
            raise ValueError(f"host {host} has no uplink")
        return self.links[out[0]].dst

    def host_groups(self) -> List[List[int]]:
        """Hosts grouped by first-hop switch, in switch-id order.

        This is the locality unit placement strategies should pack jobs
        into: traffic between hosts of one group never leaves their shared
        switch.
        """
        groups: Dict[int, List[int]] = {}
        for h in range(self.num_hosts):
            groups.setdefault(self.attachment(h), []).append(h)
        return [groups[sw] for sw in sorted(groups)]

    def min_path_latency(self, src_host: int, dst_host: int) -> int:
        """Propagation latency along the first candidate route (ns)."""
        table = self.route_table(src_host, dst_host)
        return int(table.latency[0])

    def describe(self) -> Dict[str, object]:
        """Summary of the topology (device/link counts) for reports."""
        return {
            "class": type(self).__name__,
            "num_hosts": self.num_hosts,
            "num_devices": self.num_devices,
            "num_links": len(self.links),
        }

    # -- invariants (used by tests) --------------------------------------------
    def validate_route(self, route: Tuple[int, ...], src: int, dst: int) -> None:
        """Assert one route starts at ``src``, ends at ``dst`` and is contiguous."""
        if not route:
            raise AssertionError(f"empty route {src}->{dst}")
        if self.links[route[0]].src != src:
            raise AssertionError(f"route {src}->{dst} does not start at source")
        if self.links[route[-1]].dst != dst:
            raise AssertionError(f"route {src}->{dst} does not end at destination")
        for a, b in zip(route, route[1:]):
            if self.links[a].dst != self.links[b].src:
                raise AssertionError(f"route {src}->{dst} is not contiguous at links {a},{b}")

    def check_routes(self) -> None:
        """Verify the structural route invariants of the whole topology.

        Every candidate route must start at the source host, end at the
        destination host, and chain contiguously through the link graph.
        Candidate sets must additionally be *reverse-symmetric*:

        * every hop of every candidate must have a reverse-direction twin
          link, so the mirrored device path is realizable (cables are full
          duplex — reachability, and therefore fault behaviour, cannot
          silently differ by direction),
        * ``dst -> src`` must offer as many candidates as ``src -> dst``,
          with the same multiset of hop counts (dimension-order tie-breaks
          may mirror a path onto a rotated twin, so exact path-set equality
          is deliberately not required).

        Violations raise ``AssertionError`` naming the offending
        ``(src, dst, route)`` (or the asymmetric pair).
        """
        reverse_exists = {(link.src, link.dst) for link in self.links}
        for src in range(self.num_hosts):
            for dst in range(self.num_hosts):
                if src == dst:
                    continue
                forward = self.routes(src, dst)
                for route in forward:
                    self.validate_route(route, src, dst)
                    for link_id in route:
                        link = self.links[link_id]
                        if (link.dst, link.src) not in reverse_exists:
                            raise AssertionError(
                                f"route candidates are not reverse-symmetric: "
                                f"(src={src}, dst={dst}, route={route}) traverses "
                                f"link {link_id} ({link.name}) which has no "
                                f"reverse-direction twin {link.dst}->{link.src}"
                            )
                backward = self.routes(dst, src)
                if sorted(len(r) for r in forward) != sorted(len(r) for r in backward):
                    raise AssertionError(
                        f"route candidates are not reverse-symmetric: "
                        f"(src={src}, dst={dst}) offers "
                        f"{len(forward)} candidate(s) with hop counts "
                        f"{sorted(len(r) for r in forward)} but ({dst}, {src}) offers "
                        f"{len(backward)} with {sorted(len(r) for r in backward)} "
                        f"(first offending route: {forward[0]})"
                    )

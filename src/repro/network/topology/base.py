"""Topology base classes: devices, links and route lookup.

Devices are integer ids.  Hosts occupy ``0 .. num_hosts - 1``; switches use
ids at and above ``num_hosts``.  Links are directed — a full-duplex cable is
modelled as two links — because each direction has its own output queue.

Routes are precomputed per ``(source ToR/switch layout)`` by the concrete
topology classes and returned as tuples of link ids; the packet backend
attaches one queue per link.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid a hard numpy dependency at import time
    import numpy as np


def pick_route(candidates: Sequence[Tuple[int, ...]], rng: "np.random.Generator") -> Tuple[int, ...]:
    """Uniform random choice among candidate routes.

    Consumes randomness only when there is a real choice (more than one
    candidate), which fixed-seed reproducibility tests rely on.
    """
    if len(candidates) == 1:
        return candidates[0]
    return candidates[int(rng.integers(len(candidates)))]


class RouteTable:
    """Precomputed candidate-route table for one ``(src, dst)`` host pair.

    Built lazily by :meth:`Topology.route_table` and memoized, so routing
    strategies stop re-deriving candidate tuples (and their per-link sums)
    once per message.  Besides the candidate tuples themselves the table
    carries flat numpy views used by the vectorized UGAL cost:

    * ``hops`` — path length per candidate,
    * ``latency`` — summed propagation latency per candidate (ns),
    * ``links_flat`` / ``offsets`` — CSR layout of the candidates' link ids,
      so per-candidate queued-bytes sums are one gather + ``reduceat``.
    """

    __slots__ = ("candidates", "hops", "latency", "links_flat", "offsets")

    def __init__(self, candidates: Tuple[Tuple[int, ...], ...], links: Sequence[Link]) -> None:
        import numpy as np

        self.candidates = candidates
        self.hops = np.array([len(r) for r in candidates], dtype=np.int64)
        self.latency = np.array(
            [sum(links[l].latency for l in r) for r in candidates], dtype=np.int64
        )
        self.links_flat = np.array(
            [l for r in candidates for l in r], dtype=np.intp
        )
        offsets = np.zeros(len(candidates) + 1, dtype=np.intp)
        np.cumsum(self.hops, out=offsets[1:])
        self.offsets = offsets

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass(frozen=True)
class Link:
    """A directed link between two devices.

    Attributes
    ----------
    link_id:
        Dense index of this link (also indexes the packet backend's queues).
    src / dst:
        Device ids of the transmitting and receiving ends.
    bandwidth:
        Bytes per nanosecond.
    latency:
        Propagation delay in nanoseconds.
    name:
        Human-readable name used in statistics (e.g. ``"tor0->core1"``).
    """

    link_id: int
    src: int
    dst: int
    bandwidth: float
    latency: int
    name: str


class Topology:
    """Base class: a device/link graph plus host-to-host route lookup."""

    def __init__(self, num_hosts: int) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.num_hosts = num_hosts
        self.links: List[Link] = []
        self._out_links: Dict[int, List[int]] = {}
        self.num_devices = num_hosts
        # lazily built per-pair candidate tables and per-route latency sums
        self._route_tables: Dict[Tuple[int, int], RouteTable] = {}
        self._route_latency: Dict[Tuple[int, ...], int] = {}

    # -- construction helpers (used by subclasses) ---------------------------
    def _new_device(self) -> int:
        dev = self.num_devices
        self.num_devices += 1
        return dev

    def _add_link(self, src: int, dst: int, bandwidth: float, latency: int, name: str) -> int:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be non-negative")
        link_id = len(self.links)
        self.links.append(Link(link_id, src, dst, bandwidth, latency, name))
        self._out_links.setdefault(src, []).append(link_id)
        return link_id

    def _add_duplex(self, a: int, b: int, bandwidth: float, latency: int, name_ab: str, name_ba: str) -> Tuple[int, int]:
        return (
            self._add_link(a, b, bandwidth, latency, name_ab),
            self._add_link(b, a, bandwidth, latency, name_ba),
        )

    # -- queries -------------------------------------------------------------
    def is_host(self, device: int) -> bool:
        return 0 <= device < self.num_hosts

    def out_links(self, device: int) -> List[int]:
        """Link ids leaving ``device``."""
        return self._out_links.get(device, [])

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """All candidate routes (tuples of link ids) from ``src_host`` to ``dst_host``.

        Subclasses must override.  ``src_host == dst_host`` is invalid: GOAL
        validation rejects self-messages before they reach the backend.
        """
        raise NotImplementedError

    def route_table(self, src_host: int, dst_host: int) -> RouteTable:
        """Memoized :class:`RouteTable` of the pair's minimal candidates.

        The table is built from :meth:`routes` on first use and cached for
        the lifetime of the topology; candidate order is preserved exactly,
        so strategies that tie-break with a shared RNG consume the same
        random stream whether they read the cache or call :meth:`routes`
        directly.
        """
        key = (src_host, dst_host)
        table = self._route_tables.get(key)
        if table is None:
            table = RouteTable(tuple(self.routes(src_host, dst_host)), self.links)
            self._route_tables[key] = table
        return table

    def route_latency(self, route: Tuple[int, ...]) -> int:
        """Memoized propagation latency (ns) summed along ``route``."""
        latency = self._route_latency.get(route)
        if latency is None:
            links = self.links
            latency = sum(links[l].latency for l in route)
            self._route_latency[route] = latency
        return latency

    def valiant_routes(
        self, src_host: int, dst_host: int, rng: "np.random.Generator", count: int = 4
    ) -> Sequence[Tuple[int, ...]]:
        """Non-minimal (Valiant) candidate routes via random intermediates.

        The base implementation composes minimal routes through up to
        ``count`` random intermediate *hosts*; topologies whose structure
        offers a natural intermediate switch (torus routers, Slim Fly
        routers) override this to avoid descending to a host NIC mid-path.
        Returns an empty sequence when no intermediate exists (fewer than
        three hosts), in which case callers fall back to minimal routing.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        if self.num_hosts <= 2:
            return ()
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(self.num_hosts))
            while via == src_host or via == dst_host:
                via = int(rng.integers(self.num_hosts))
            leg1 = pick_route(self.routes(src_host, via), rng)
            leg2 = pick_route(self.routes(via, dst_host), rng)
            candidates.append(leg1 + leg2)
        return tuple(candidates)

    def _valiant_via_routers(
        self,
        src_host: int,
        dst_host: int,
        rng: "np.random.Generator",
        count: int,
        num_routers: int,
        router_of,
        router_paths,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Compose Valiant candidates through random intermediate *routers*.

        Shared by switch-centric topologies (torus, Slim Fly) that expose a
        router-level path function.  Requires the subclass's ``_host_up`` /
        ``_host_down`` link maps; ``router_of(host)`` names the attachment
        router and ``router_paths(r1, r2)`` returns the minimal router-level
        path candidates between two routers.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        r1 = router_of(src_host)
        r2 = router_of(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(num_routers))
            while via == r1 or via == r2:
                via = int(rng.integers(num_routers))
            leg1 = pick_route(router_paths(r1, via), rng)
            leg2 = pick_route(router_paths(via, r2), rng)
            candidates.append((up,) + leg1 + leg2 + (down,))
        return tuple(candidates)

    def attachment(self, host: int) -> int:
        """Device id of the switch ``host`` injects into (its first-hop switch)."""
        if not self.is_host(host):
            raise ValueError(f"{host} is not a host")
        out = self.out_links(host)
        if not out:
            raise ValueError(f"host {host} has no uplink")
        return self.links[out[0]].dst

    def host_groups(self) -> List[List[int]]:
        """Hosts grouped by first-hop switch, in switch-id order.

        This is the locality unit placement strategies should pack jobs
        into: traffic between hosts of one group never leaves their shared
        switch.
        """
        groups: Dict[int, List[int]] = {}
        for h in range(self.num_hosts):
            groups.setdefault(self.attachment(h), []).append(h)
        return [groups[sw] for sw in sorted(groups)]

    def min_path_latency(self, src_host: int, dst_host: int) -> int:
        """Propagation latency along the first candidate route (ns)."""
        table = self.route_table(src_host, dst_host)
        return int(table.latency[0])

    def describe(self) -> Dict[str, object]:
        """Summary of the topology (device/link counts) for reports."""
        return {
            "class": type(self).__name__,
            "num_hosts": self.num_hosts,
            "num_devices": self.num_devices,
            "num_links": len(self.links),
        }

    # -- invariants (used by tests) --------------------------------------------
    def validate_route(self, route: Tuple[int, ...], src: int, dst: int) -> None:
        """Assert one route starts at ``src``, ends at ``dst`` and is contiguous."""
        if not route:
            raise AssertionError(f"empty route {src}->{dst}")
        if self.links[route[0]].src != src:
            raise AssertionError(f"route {src}->{dst} does not start at source")
        if self.links[route[-1]].dst != dst:
            raise AssertionError(f"route {src}->{dst} does not end at destination")
        for a, b in zip(route, route[1:]):
            if self.links[a].dst != self.links[b].src:
                raise AssertionError(f"route {src}->{dst} is not contiguous at links {a},{b}")

    def check_routes(self) -> None:
        """Verify that every route starts at the source host, ends at the
        destination host, and chains contiguously through the link graph."""
        for src in range(self.num_hosts):
            for dst in range(self.num_hosts):
                if src == dst:
                    continue
                for route in self.routes(src, dst):
                    self.validate_route(route, src, dst)

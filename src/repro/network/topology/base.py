"""Topology base classes: devices, links and route lookup.

Devices are integer ids.  Hosts occupy ``0 .. num_hosts - 1``; switches use
ids at and above ``num_hosts``.  Links are directed — a full-duplex cable is
modelled as two links — because each direction has its own output queue.

Routes are computed per host pair by the concrete topology classes and
returned as tuples of link ids; the packet backend attaches one queue per
link.  Regular topologies additionally provide *structural synthesis*
(:meth:`Topology.synthesized_routes`): candidates derived from coordinates
in closed form, so route lookup needs no per-pair precomputation at all.

Derived per-pair state (route tables, alive/view-filtered tables, latency
sums) lives in bounded LRU caches — an unbounded memo is O(N²) in hosts and
does not survive datacenter-scale runs (see docs/scaling.md).
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid a hard numpy dependency at import time
    import numpy as np

#: Default LRU budget (entries) for each per-pair route cache.  Sized so
#: every workload at ≤128 ranks is fully cached (128² = 16384 pairs) while a
#: 16k-endpoint run stays within a few hundred MB of table memory.
DEFAULT_ROUTE_CACHE_BUDGET = 16384


#: Sentinel distinguishing "absent" from "cached None" in LruCache.get.
_MISS = object()


class LruCache:
    """Bounded least-recently-used mapping for per-pair route memos.

    A ``budget`` of 0 (or negative) disables eviction — the cache degrades
    to a plain memo, which is the pre-bounded behaviour and the A/B
    reference for determinism tests.  Hit/miss/eviction counters feed
    :meth:`Topology.route_cache_stats` and ultimately ``NetworkStats``.
    """

    __slots__ = ("budget", "hits", "misses", "evictions", "_data")

    def __init__(self, budget: int = DEFAULT_ROUTE_CACHE_BUDGET) -> None:
        self.budget = budget
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key, default=None):
        """Return the cached value (marking it most-recent) or ``default``.

        Lookup misses are detected with a private sentinel rather than by
        comparing against ``None``, so a key whose cached value is
        legitimately ``None`` still counts as a hit (and keeps its LRU
        recency) instead of being re-missed — and rebuilt — on every
        lookup.
        """
        data = self._data
        value = data.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert ``key`` as most-recent, evicting LRU entries over budget."""
        data = self._data
        data[key] = value
        data.move_to_end(key)
        budget = self.budget
        if budget > 0:
            while len(data) > budget:
                data.popitem(last=False)
                self.evictions += 1

    def set_budget(self, budget: int) -> None:
        """Change the budget, trimming LRU entries if the cache shrank."""
        self.budget = budget
        if budget > 0:
            data = self._data
            while len(data) > budget:
                data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


def pick_route(candidates: Sequence[Tuple[int, ...]], rng: "np.random.Generator") -> Tuple[int, ...]:
    """Uniform random choice among candidate routes.

    Consumes randomness only when there is a real choice (more than one
    candidate), which fixed-seed reproducibility tests rely on.
    """
    if len(candidates) == 1:
        return candidates[0]
    return candidates[int(rng.integers(len(candidates)))]


class RouteTable:
    """Precomputed candidate-route table for one ``(src, dst)`` host pair.

    Built lazily by :meth:`Topology.route_table` and memoized, so routing
    strategies stop re-deriving candidate tuples (and their per-link sums)
    once per message.  Besides the candidate tuples themselves the table
    carries flat numpy views used by the vectorized UGAL cost:

    * ``hops`` — path length per candidate,
    * ``latency`` — summed propagation latency per candidate (ns),
    * ``links_flat`` / ``offsets`` — CSR layout of the candidates' link ids,
      so per-candidate queued-bytes sums are one gather + ``reduceat``.
    """

    __slots__ = ("candidates", "hops", "latency", "links_flat", "offsets")

    def __init__(self, candidates: Tuple[Tuple[int, ...], ...], links: Sequence[Link]) -> None:
        import numpy as np

        self.candidates = candidates
        self.hops = np.array([len(r) for r in candidates], dtype=np.int64)
        self.latency = np.array(
            [sum(links[l].latency for l in r) for r in candidates], dtype=np.int64
        )
        self.links_flat = np.array(
            [l for r in candidates for l in r], dtype=np.intp
        )
        offsets = np.zeros(len(candidates) + 1, dtype=np.intp)
        np.cumsum(self.hops, out=offsets[1:])
        self.offsets = offsets

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass(frozen=True)
class Link:
    """A directed link between two devices.

    Attributes
    ----------
    link_id:
        Dense index of this link (also indexes the packet backend's queues).
    src / dst:
        Device ids of the transmitting and receiving ends.
    bandwidth:
        Bytes per nanosecond.
    latency:
        Propagation delay in nanoseconds.
    name:
        Human-readable name used in statistics (e.g. ``"tor0->core1"``).
    """

    link_id: int
    src: int
    dst: int
    bandwidth: float
    latency: int
    name: str


class Topology:
    """Base class: a device/link graph plus host-to-host route lookup."""

    def __init__(self, num_hosts: int) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.num_hosts = num_hosts
        self.links: List[Link] = []
        self._out_links: Dict[int, List[int]] = {}
        self.num_devices = num_hosts
        # Structural synthesis toggle: when True (default) route tables are
        # built from :meth:`synthesized_routes`; when False, from the
        # enumeration reference :meth:`routes`.  Both must be bit-identical
        # (check_routes / tests/test_route_synthesis.py enforce it).
        self.use_synthesis = True
        # Lazily built per-pair candidate tables and per-route latency sums,
        # all bounded LRU caches — the per-pair key space is O(N²) in hosts.
        self.route_cache_budget = DEFAULT_ROUTE_CACHE_BUDGET
        self._route_tables = LruCache()
        self._route_latency = LruCache()
        # fault state (see repro.network.faults): failure counts per link id
        # (a link can be failed by several overlapping causes — a static
        # failure plus a drain of either endpoint — and stays down until
        # every cause is restored), a monotone epoch bumped on every change,
        # and alive-filtered route tables evicted wholesale at each epoch
        # change.  ``faulty`` stays False for the lifetime of a healthy
        # topology, so the no-fault hot paths pay a single attribute read.
        self.faulty = False
        self._failed_links: Dict[int, int] = {}
        self._fault_epoch = 0
        self._alive_mask = None  # numpy bool array, built lazily
        # bumped by every per-link state change (faults *and* degradations);
        # lazily derived link-state views key off it for invalidation
        self.link_state_version = 0
        self._alive_tables = LruCache()
        # control-plane views: per-(pair, believed-failed set) filtered
        # tables (see repro.network.control_plane).  Evicted wholesale on
        # every true fault-epoch change: the partition fallback below bakes
        # the live truth into an entry, and long convergence runs would
        # otherwise accumulate stale believed-sets without bound.
        self._view_tables = LruCache()
        # caches included in the configurable budget; subclasses append
        # their own per-pair memos (e.g. torus DOR path cache).  The first
        # three also feed the hit/miss/eviction stats.
        self._stat_caches: List[LruCache] = [
            self._route_tables,
            self._alive_tables,
            self._view_tables,
        ]
        self._bounded_caches: List[LruCache] = [
            self._route_tables,
            self._alive_tables,
            self._view_tables,
            self._route_latency,
        ]

    # -- construction helpers (used by subclasses) ---------------------------
    def _new_device(self) -> int:
        dev = self.num_devices
        self.num_devices += 1
        return dev

    def _add_link(self, src: int, dst: int, bandwidth: float, latency: int, name: str) -> int:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be non-negative")
        link_id = len(self.links)
        self.links.append(Link(link_id, src, dst, bandwidth, latency, name))
        self._out_links.setdefault(src, []).append(link_id)
        return link_id

    def _add_duplex(self, a: int, b: int, bandwidth: float, latency: int, name_ab: str, name_ba: str) -> Tuple[int, int]:
        return (
            self._add_link(a, b, bandwidth, latency, name_ab),
            self._add_link(b, a, bandwidth, latency, name_ba),
        )

    # -- queries -------------------------------------------------------------
    def is_host(self, device: int) -> bool:
        return 0 <= device < self.num_hosts

    def out_links(self, device: int) -> List[int]:
        """Link ids leaving ``device``."""
        return self._out_links.get(device, [])

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """All candidate routes (tuples of link ids) from ``src_host`` to ``dst_host``.

        Subclasses must override.  ``src_host == dst_host`` is invalid: GOAL
        validation rejects self-messages before they reach the backend.
        """
        raise NotImplementedError

    def synthesized_routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Candidate routes computed structurally from coordinates.

        Regular topologies (fat tree family, torus, dragonfly) override this
        with closed-form link-id arithmetic so a candidate set costs O(path
        length) to produce and nothing to store — the foundation of
        datacenter-scale route lookup.  The result must be *bit-identical*
        to :meth:`routes` (same candidates, same order); ``check_routes``
        and the differential suite enforce this.  The base implementation
        simply defers to :meth:`routes`.
        """
        return self.routes(src_host, dst_host)

    def route_table(self, src_host: int, dst_host: int) -> RouteTable:
        """Lazily built, LRU-cached :class:`RouteTable` of the pair's candidates.

        The table is built from :meth:`synthesized_routes` (or from the
        :meth:`routes` enumeration reference when synthesis is disabled) on
        first use and kept in a bounded LRU cache — see
        :meth:`set_route_cache_budget`.  Candidate order is preserved
        exactly, so strategies that tie-break with a shared RNG consume the
        same random stream whether they read the cache or call
        :meth:`routes` directly, and regardless of evictions.
        """
        key = (src_host, dst_host)
        table = self._route_tables.get(key)
        if table is None:
            source = self.synthesized_routes if self.use_synthesis else self.routes
            table = RouteTable(tuple(source(src_host, dst_host)), self.links)
            self._route_tables.put(key, table)
        return table

    def route_latency(self, route: Tuple[int, ...]) -> int:
        """LRU-cached propagation latency (ns) summed along ``route``."""
        latency = self._route_latency.get(route)
        if latency is None:
            links = self.links
            latency = sum(links[l].latency for l in route)
            self._route_latency.put(route, latency)
        return latency

    def min_link_latency(self) -> int:
        """Minimum propagation latency (ns) over every link of the fabric.

        A property of the topology alone — independent of any shard
        partition — which is what makes it a safe default cadence for the
        sharded engine's load snapshots (shard-count-invariant results).
        """
        return min(link.latency for link in self.links)

    # -- cache management (see docs/scaling.md) ------------------------------
    def set_route_cache_budget(self, budget: int) -> None:
        """Bound every per-pair route cache to ``budget`` entries (0 = unbounded).

        Applies to the route/alive/view table caches, the per-route latency
        memo, and any subclass-registered per-pair memo (e.g. the torus DOR
        path cache).  Shrinking trims least-recently-used entries
        immediately.  Eviction never changes results — evicted tables are
        rebuilt bit-identically on the next lookup.
        """
        self.route_cache_budget = budget
        for cache in self._bounded_caches:
            cache.set_budget(budget)

    def route_cache_stats(self) -> Dict[str, int]:
        """Aggregate hit/miss/eviction counters across the route-table caches.

        ``entries`` counts live entries across *all* bounded caches (the
        memory-relevant number); hits/misses/evictions cover the three
        route-table caches that back :meth:`route_table`,
        :meth:`alive_table` and :meth:`view_table`.
        """
        return {
            "hits": sum(c.hits for c in self._stat_caches),
            "misses": sum(c.misses for c in self._stat_caches),
            "evictions": sum(c.evictions for c in self._stat_caches),
            "entries": sum(len(c) for c in self._bounded_caches),
        }

    # -- fault state (see repro.network.faults) ------------------------------
    def fail_links(self, link_ids: Sequence[int]) -> None:
        """Mark ``link_ids`` failed: routing stops offering routes over them.

        Failures are reference-counted per link, so a link failed by two
        overlapping causes (say, drains of both its endpoint switches) only
        comes back up once both causes are restored.  Duplicates within one
        call count once.
        """
        failed = self._failed_links
        changed = False
        for link_id in set(link_ids):
            count = failed.get(link_id, 0)
            failed[link_id] = count + 1
            if count == 0:
                changed = True
        if changed:
            self._fault_change()

    def restore_links(self, link_ids: Sequence[int]) -> None:
        """Undo one failure cause of each link (no-op for healthy links).

        A link stays down while any other cause still holds it failed.
        """
        failed = self._failed_links
        changed = False
        for link_id in set(link_ids):
            count = failed.get(link_id, 0)
            if count > 1:
                failed[link_id] = count - 1
            elif count == 1:
                del failed[link_id]
                changed = True
        if changed:
            self._fault_change()

    def _fault_change(self) -> None:
        self._fault_epoch += 1
        self.faulty = bool(self._failed_links)
        # Per-fault-epoch eviction: alive tables are only valid for the
        # epoch they were filtered under, and view tables may embed the
        # live-truth fallback — both are dropped wholesale so a long
        # FaultSchedule cannot accumulate stale entries.
        self._alive_tables.clear()
        self._view_tables.clear()
        self._link_state_change()

    def _link_state_change(self) -> None:
        """Invalidate lazily derived per-link state (mask, version-keyed views).

        Called on every fault transition *and* on non-fault link mutations
        such as :meth:`degrade_link`, so consumers that key off
        ``link_state_version`` (or hold the numpy alive mask) never read a
        stale view of the link array.
        """
        self._alive_mask = None
        self.link_state_version += 1

    @property
    def failed_links(self) -> frozenset:
        """Ids of the currently failed links."""
        return frozenset(self._failed_links)

    def alive_mask(self) -> Optional["np.ndarray"]:
        """Per-link alive flags, or ``None`` while every link is up.

        The mask is rebuilt lazily after a fault-state change and shared by
        every caller until the next change, so per-packet checks are array
        reads, not set lookups.
        """
        if not self.faulty:
            return None
        mask = self._alive_mask
        if mask is None:
            import numpy as np

            mask = np.ones(len(self.links), dtype=bool)
            mask[list(self._failed_links)] = False
            self._alive_mask = mask
        return mask

    def route_alive(self, route: Tuple[int, ...]) -> bool:
        """Whether every link of ``route`` is currently up."""
        if not self.faulty:
            return True
        failed = self._failed_links
        return not any(link in failed for link in route)

    def alive_table(self, src_host: int, dst_host: int) -> RouteTable:
        """Like :meth:`route_table`, filtered to candidates that survive faults.

        Returns the full table while the fabric is healthy.  With failed
        links, a filtered :class:`RouteTable` (candidate order preserved) is
        built lazily per pair and LRU-cached; every fault-state change
        evicts the whole cache (see :meth:`_fault_change`) — the
        "cached-route invalidation" the packet backend relies on.  Raises
        :class:`~repro.network.faults.NetworkPartitionError` when no
        candidate survives.
        """
        full = self.route_table(src_host, dst_host)
        if not self.faulty:
            return full
        key = (src_host, dst_host)
        table = self._alive_tables.get(key)
        if table is not None:
            return table
        failed = self._failed_links
        alive = tuple(
            route
            for route in full.candidates
            if not any(link in failed for link in route)
        )
        if not alive:
            raise self._partition_error(src_host, dst_host, full)
        if len(alive) == len(full.candidates):
            table = full
        else:
            table = RouteTable(alive, self.links)
        self._alive_tables.put(key, table)
        return table

    def _partition_error(self, src_host: int, dst_host: int, full: RouteTable):
        """Build the :class:`NetworkPartitionError` for a fully dead pair.

        At datacenter scale "all N candidates cross failed links" is not
        actionable by itself, so the message also carries the fault epoch
        and the surviving-candidate count per hop prefix — how many
        candidates are still alive through their first ``k`` hops — which
        localizes the cut (e.g. all candidates alive through 1 hop but dead
        at 2 means the uplink tier, not the NIC, is severed).  Failed-link
        names are capped to keep 16k-host reports readable.
        """
        from repro.network.faults import NetworkPartitionError

        failed = self._failed_links
        max_hops = max(len(route) for route in full.candidates)
        prefix_parts = []
        for k in range(1, max_hops + 1):
            surviving = sum(
                1
                for route in full.candidates
                if not any(link in failed for link in route[:k])
            )
            prefix_parts.append(f"{surviving} alive through hop {k}")
        names = sorted(self.links[l].name for l in failed)
        shown = names[:12]
        more = len(names) - len(shown)
        suffix = f", +{more} more" if more > 0 else ""
        return NetworkPartitionError(
            f"no surviving route from host {src_host} to host {dst_host} "
            f"at fault epoch {self._fault_epoch}: "
            f"all {len(full.candidates)} candidate route(s) cross failed links; "
            f"surviving candidates by hop prefix: {'; '.join(prefix_parts)} "
            f"(failed: {', '.join(shown)}{suffix})"
        )

    def view_table(self, src_host: int, dst_host: int, believed_failed: frozenset) -> RouteTable:
        """Like :meth:`alive_table`, filtered by a *believed*-failed link set.

        Used by the control plane (see :mod:`repro.network.control_plane`):
        a source whose first-hop switch holds a stale routing view selects
        routes as if ``believed_failed`` were the truth — the selected route
        may well cross a link that is actually down (that packet black-holes
        at the stale switch).  Tables are LRU-cached per
        ``(pair, believed set)`` and evicted wholesale on every true
        fault-epoch change, so convergence runs with many advertisement
        waves stay bounded.  A view that believes the pair partitioned
        falls back to the truth-alive table *uncached* (it depends on the
        live fault epoch), modelling a switch that keeps its last usable
        route rather than dropping at the source.
        """
        full = self.route_table(src_host, dst_host)
        if not believed_failed:
            return full
        key = (src_host, dst_host, believed_failed)
        table = self._view_tables.get(key)
        if table is not None:
            return table
        alive = tuple(
            route
            for route in full.candidates
            if not any(link in believed_failed for link in route)
        )
        if not alive:
            return self.alive_table(src_host, dst_host)
        if len(alive) == len(full.candidates):
            table = full
        else:
            table = RouteTable(alive, self.links)
        self._view_tables.put(key, table)
        return table

    def degrade_link(self, link_id: int, capacity_factor: float) -> None:
        """Scale a link's bandwidth by ``capacity_factor`` (static degradation).

        Must be applied before backends derive per-link state (queues, route
        tables with latency sums are unaffected — only bandwidth changes);
        both backends apply degradations during ``setup`` right after the
        topology is built.
        """
        if not (0.0 < capacity_factor <= 1.0):
            raise ValueError(
                f"capacity factor must be in (0, 1], got {capacity_factor}"
            )
        import dataclasses

        link = self.links[link_id]
        self.links[link_id] = dataclasses.replace(
            link, bandwidth=link.bandwidth * capacity_factor
        )
        self._link_state_change()

    def valiant_routes(
        self, src_host: int, dst_host: int, rng: "np.random.Generator", count: int = 4
    ) -> Sequence[Tuple[int, ...]]:
        """Non-minimal (Valiant) candidate routes via random intermediates.

        The base implementation composes minimal routes through up to
        ``count`` random intermediate *hosts*; topologies whose structure
        offers a natural intermediate switch (torus routers, Slim Fly
        routers) override this to avoid descending to a host NIC mid-path.
        Returns an empty sequence when no intermediate exists (fewer than
        three hosts), in which case callers fall back to minimal routing.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        if self.num_hosts <= 2:
            return ()
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(self.num_hosts))
            while via == src_host or via == dst_host:
                via = int(rng.integers(self.num_hosts))
            leg1 = pick_route(self.routes(src_host, via), rng)
            leg2 = pick_route(self.routes(via, dst_host), rng)
            candidates.append(leg1 + leg2)
        return tuple(candidates)

    def _valiant_via_routers(
        self,
        src_host: int,
        dst_host: int,
        rng: "np.random.Generator",
        count: int,
        num_routers: int,
        router_of,
        router_paths,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Compose Valiant candidates through random intermediate *routers*.

        Shared by switch-centric topologies (torus, Slim Fly) that expose a
        router-level path function.  Requires the subclass's ``_host_up`` /
        ``_host_down`` link maps; ``router_of(host)`` names the attachment
        router and ``router_paths(r1, r2)`` returns the minimal router-level
        path candidates between two routers.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        r1 = router_of(src_host)
        r2 = router_of(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        candidates: List[Tuple[int, ...]] = []
        for _ in range(count):
            via = int(rng.integers(num_routers))
            while via == r1 or via == r2:
                via = int(rng.integers(num_routers))
            leg1 = pick_route(router_paths(r1, via), rng)
            leg2 = pick_route(router_paths(via, r2), rng)
            candidates.append((up,) + leg1 + leg2 + (down,))
        return tuple(candidates)

    def attachment(self, host: int) -> int:
        """Device id of the switch ``host`` injects into (its first-hop switch)."""
        if not self.is_host(host):
            raise ValueError(f"{host} is not a host")
        out = self.out_links(host)
        if not out:
            raise ValueError(f"host {host} has no uplink")
        return self.links[out[0]].dst

    def host_groups(self) -> List[List[int]]:
        """Hosts grouped by first-hop switch, in switch-id order.

        This is the locality unit placement strategies should pack jobs
        into: traffic between hosts of one group never leaves their shared
        switch.
        """
        groups: Dict[int, List[int]] = {}
        for h in range(self.num_hosts):
            groups.setdefault(self.attachment(h), []).append(h)
        return [groups[sw] for sw in sorted(groups)]

    def min_path_latency(self, src_host: int, dst_host: int) -> int:
        """Propagation latency along the first candidate route (ns)."""
        table = self.route_table(src_host, dst_host)
        return int(table.latency[0])

    def describe(self) -> Dict[str, object]:
        """Summary of the topology (device/link counts) for reports."""
        return {
            "class": type(self).__name__,
            "num_hosts": self.num_hosts,
            "num_devices": self.num_devices,
            "num_links": len(self.links),
        }

    # -- invariants (used by tests) --------------------------------------------
    def validate_route(self, route: Tuple[int, ...], src: int, dst: int) -> None:
        """Assert one route starts at ``src``, ends at ``dst`` and is contiguous."""
        if not route:
            raise AssertionError(f"empty route {src}->{dst}")
        if self.links[route[0]].src != src:
            raise AssertionError(f"route {src}->{dst} does not start at source")
        if self.links[route[-1]].dst != dst:
            raise AssertionError(f"route {src}->{dst} does not end at destination")
        for a, b in zip(route, route[1:]):
            if self.links[a].dst != self.links[b].src:
                raise AssertionError(f"route {src}->{dst} is not contiguous at links {a},{b}")

    def check_routes(self) -> None:
        """Verify the structural route invariants of the whole topology.

        Every candidate route must start at the source host, end at the
        destination host, and chain contiguously through the link graph.
        Structurally synthesized candidates (:meth:`synthesized_routes`)
        must be bit-identical — same tuples, same order — to the
        :meth:`routes` enumeration reference.  Candidate sets must
        additionally be *reverse-symmetric*:

        * every hop of every candidate must have a reverse-direction twin
          link, so the mirrored device path is realizable (cables are full
          duplex — reachability, and therefore fault behaviour, cannot
          silently differ by direction),
        * ``dst -> src`` must offer as many candidates as ``src -> dst``,
          with the same multiset of hop counts (dimension-order tie-breaks
          may mirror a path onto a rotated twin, so exact path-set equality
          is deliberately not required).

        Violations raise ``AssertionError`` naming the offending
        ``(src, dst, route)`` (or the asymmetric pair).
        """
        reverse_exists = {(link.src, link.dst) for link in self.links}
        for src in range(self.num_hosts):
            for dst in range(self.num_hosts):
                if src == dst:
                    continue
                forward = self.routes(src, dst)
                synthesized = tuple(self.synthesized_routes(src, dst))
                if synthesized != tuple(forward):
                    raise AssertionError(
                        f"synthesized routes diverge from the enumeration "
                        f"reference for (src={src}, dst={dst}): "
                        f"synthesized={synthesized} enumerated={tuple(forward)}"
                    )
                for route in forward:
                    self.validate_route(route, src, dst)
                    for link_id in route:
                        link = self.links[link_id]
                        if (link.dst, link.src) not in reverse_exists:
                            raise AssertionError(
                                f"route candidates are not reverse-symmetric: "
                                f"(src={src}, dst={dst}, route={route}) traverses "
                                f"link {link_id} ({link.name}) which has no "
                                f"reverse-direction twin {link.dst}->{link.src}"
                            )
                backward = self.routes(dst, src)
                if sorted(len(r) for r in forward) != sorted(len(r) for r in backward):
                    raise AssertionError(
                        f"route candidates are not reverse-symmetric: "
                        f"(src={src}, dst={dst}) offers "
                        f"{len(forward)} candidate(s) with hop counts "
                        f"{sorted(len(r) for r in forward)} but ({dst}, {src}) offers "
                        f"{len(backward)} with {sorted(len(r) for r in backward)} "
                        f"(first offending route: {forward[0]})"
                    )

"""Network topologies for the packet-level backend.

A topology is a directed multigraph of *devices* (hosts and switches) and
*links* (each with its own bandwidth, latency and output queue).  The packet
backend asks the topology for the candidate routes between two hosts and
load-balances across them (ECMP).

Available topologies:

* :class:`~repro.network.topology.single.SingleSwitchTopology` — every host
  attached to one non-blocking switch,
* :class:`~repro.network.topology.fattree.FatTreeTopology` — two-level fat
  tree with a configurable ToR→core oversubscription ratio (the topology used
  throughout the paper's evaluation),
* :class:`~repro.network.topology.dragonfly.DragonflyTopology` — the Alps-style
  dragonfly used for AI trace collection.
"""
from repro.network.topology.base import Link, Topology
from repro.network.topology.single import SingleSwitchTopology
from repro.network.topology.fattree import FatTreeTopology
from repro.network.topology.dragonfly import DragonflyTopology


def build_topology(config, num_hosts: int) -> Topology:
    """Construct the topology described by ``config`` for ``num_hosts`` hosts.

    Parameters
    ----------
    config:
        A :class:`repro.network.config.SimulationConfig`.
    num_hosts:
        Number of simulated endpoints (GOAL ranks).
    """
    if config.topology == "single_switch":
        return SingleSwitchTopology(
            num_hosts,
            bandwidth=config.link_bandwidth,
            latency=config.link_latency,
        )
    if config.topology == "fat_tree":
        return FatTreeTopology(
            num_hosts,
            nodes_per_tor=config.nodes_per_tor,
            oversubscription=config.oversubscription,
            bandwidth=config.link_bandwidth,
            latency=config.link_latency,
        )
    if config.topology == "dragonfly":
        return DragonflyTopology(
            num_hosts,
            groups=config.dragonfly_groups,
            routers_per_group=config.dragonfly_routers_per_group,
            nodes_per_router=config.dragonfly_nodes_per_router,
            bandwidth=config.link_bandwidth,
            latency=config.link_latency,
        )
    raise ValueError(f"unknown topology {config.topology!r}")


__all__ = [
    "Link",
    "Topology",
    "SingleSwitchTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "build_topology",
]

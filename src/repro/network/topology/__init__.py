"""Network topologies and their route candidates.

A topology is a directed multigraph of *devices* (hosts and switches) and
*links* (each with its own bandwidth, latency and output queue).  Backends
ask the topology for the candidate routes between two hosts and hand them to
a :mod:`repro.network.routing` strategy, which picks the route each message
takes (ECMP over minimal candidates, Valiant, or UGAL-style adaptive).

Available topologies (see :data:`TOPOLOGY_BUILDERS`):

* :class:`~repro.network.topology.single.SingleSwitchTopology` — every host
  attached to one non-blocking switch,
* :class:`~repro.network.topology.fattree.FatTreeTopology` — two-level fat
  tree with a configurable ToR→core oversubscription ratio (the topology used
  throughout the paper's evaluation),
* :class:`~repro.network.topology.fattree.MultiPlaneFatTreeTopology` — fat
  tree whose core tier is split into independently drainable planes,
* :class:`~repro.network.topology.fattree.RailOptimizedFatTreeTopology` —
  rail-optimized fat tree (GPU ``k`` of every server on the rail-``k``
  switch of its pod),
* :class:`~repro.network.topology.dragonfly.DragonflyTopology` — the Alps-style
  dragonfly used for AI trace collection,
* :class:`~repro.network.topology.torus.TorusTopology` — 2D/3D wrap-around
  torus with dimension-order routing,
* :class:`~repro.network.topology.slimfly.SlimFlyTopology` — diameter-2
  MMS-graph Slim Fly.

New topologies register through :func:`register_topology`; the name then
becomes valid for ``SimulationConfig.topology`` and the CLI ``--topology``
flag, and shows up in ``atlahs topologies``.
"""
from typing import Callable, Dict, Tuple

from repro.network.topology.base import Link, LruCache, RouteTable, Topology
from repro.network.topology.single import SingleSwitchTopology
from repro.network.topology.fattree import (
    FatTreeTopology,
    MultiPlaneFatTreeTopology,
    RailOptimizedFatTreeTopology,
)
from repro.network.topology.dragonfly import DragonflyTopology
from repro.network.topology.torus import TorusTopology
from repro.network.topology.slimfly import SlimFlyTopology

# name -> builder(config, num_hosts); config is a SimulationConfig (duck-typed
# to avoid an import cycle with repro.network.config).
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Topology]] = {}
TOPOLOGY_DESCRIPTIONS: Dict[str, str] = {}


def register_topology(name: str, builder: Callable[..., Topology], description: str = "") -> None:
    """Register ``builder(config, num_hosts)`` under ``name``."""
    TOPOLOGY_BUILDERS[name] = builder
    TOPOLOGY_DESCRIPTIONS[name] = description


def unregister_topology(name: str) -> None:
    """Remove a registered topology (both builder and description)."""
    TOPOLOGY_BUILDERS.pop(name, None)
    TOPOLOGY_DESCRIPTIONS.pop(name, None)


def topology_names() -> Tuple[str, ...]:
    """Names of all registered topologies (sorted)."""
    return tuple(sorted(TOPOLOGY_BUILDERS))


register_topology(
    "single_switch",
    lambda config, num_hosts: SingleSwitchTopology(
        num_hosts,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="every host on one non-blocking crossbar switch",
)
register_topology(
    "fat_tree",
    lambda config, num_hosts: FatTreeTopology(
        num_hosts,
        nodes_per_tor=config.nodes_per_tor,
        oversubscription=config.oversubscription,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="two-level fat tree with configurable ToR-to-core oversubscription",
)
register_topology(
    "fat_tree_multiplane",
    lambda config, num_hosts: MultiPlaneFatTreeTopology(
        num_hosts,
        nodes_per_tor=config.nodes_per_tor,
        planes=config.fattree_planes,
        oversubscription=config.oversubscription,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="fat tree with the core tier split into drainable planes",
)
register_topology(
    "fat_tree_rail",
    lambda config, num_hosts: RailOptimizedFatTreeTopology(
        num_hosts,
        rails=config.fattree_rails,
        nodes_per_tor=config.nodes_per_tor,
        oversubscription=config.oversubscription,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="rail-optimized fat tree: GPU k of every server on rail-k switch",
)
register_topology(
    "dragonfly",
    lambda config, num_hosts: DragonflyTopology(
        num_hosts,
        groups=config.dragonfly_groups,
        routers_per_group=config.dragonfly_routers_per_group,
        nodes_per_router=config.dragonfly_nodes_per_router,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="groups of routers with all-to-all global links (Alps-style)",
)
register_topology(
    "torus",
    lambda config, num_hosts: TorusTopology(
        num_hosts,
        dims=config.torus_dims,
        hosts_per_node=config.torus_hosts_per_node,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="2D/3D wrap-around torus with dimension-order routing",
)
register_topology(
    "slimfly",
    lambda config, num_hosts: SlimFlyTopology(
        num_hosts,
        q=config.slimfly_q,
        hosts_per_router=config.slimfly_hosts_per_router,
        bandwidth=config.link_bandwidth,
        latency=config.link_latency,
    ),
    description="diameter-2 MMS-graph Slim Fly (q prime, q = 1 mod 4)",
)


def build_topology(config, num_hosts: int) -> Topology:
    """Construct the topology described by ``config`` for ``num_hosts`` hosts.

    Parameters
    ----------
    config:
        A :class:`repro.network.config.SimulationConfig`.
    num_hosts:
        Number of simulated endpoints (GOAL ranks).
    """
    try:
        builder = TOPOLOGY_BUILDERS[config.topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {config.topology!r} (registered: {', '.join(topology_names())})"
        ) from None
    return builder(config, num_hosts)


__all__ = [
    "Link",
    "LruCache",
    "RouteTable",
    "Topology",
    "SingleSwitchTopology",
    "FatTreeTopology",
    "MultiPlaneFatTreeTopology",
    "RailOptimizedFatTreeTopology",
    "DragonflyTopology",
    "TorusTopology",
    "SlimFlyTopology",
    "TOPOLOGY_BUILDERS",
    "TOPOLOGY_DESCRIPTIONS",
    "register_topology",
    "unregister_topology",
    "topology_names",
    "build_topology",
]

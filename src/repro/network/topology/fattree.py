"""Two-level fat-tree (leaf/spine) topology with configurable oversubscription.

This is the topology used throughout the paper's evaluation and case studies:
hosts attach to ToR (leaf) switches; every ToR connects to every core (spine)
switch.  The oversubscription ratio is the ratio between the aggregate
downlink bandwidth of a ToR (``nodes_per_tor`` host links) and its aggregate
uplink bandwidth (``num_cores`` core links):

* ``oversubscription = 1`` — fully provisioned: as many uplinks as hosts per
  ToR (paper's "No Oversubscription"),
* ``oversubscription = 4`` — four hosts share one uplink (paper Fig. 12/13),
* ``oversubscription = 8`` — eight hosts share one uplink (paper Fig. 11).

Traffic between hosts under the same ToR never touches the core; inter-ToR
traffic is ECMP-balanced over all core switches.
"""
from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.network.topology.base import Topology


class FatTreeTopology(Topology):
    """Two-level fat tree.

    Parameters
    ----------
    num_hosts:
        Number of endpoints.
    nodes_per_tor:
        Hosts attached to each ToR switch.
    oversubscription:
        Downlink:uplink bandwidth ratio per ToR (>= 1).  The number of core
        switches (= uplinks per ToR) is
        ``max(1, round(nodes_per_tor / oversubscription))``.
    bandwidth / latency:
        Applied to every link (host links and core links alike), matching the
        uniform-speed fat trees used in the paper.
    """

    def __init__(
        self,
        num_hosts: int,
        nodes_per_tor: int = 16,
        oversubscription: float = 1.0,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        super().__init__(num_hosts)
        if nodes_per_tor <= 0:
            raise ValueError("nodes_per_tor must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        self.nodes_per_tor = nodes_per_tor
        self.num_tors = self._num_tors()
        self.num_cores = max(1, int(round(nodes_per_tor / oversubscription)))
        self.oversubscription = nodes_per_tor / self.num_cores

        self.tor_switches: List[int] = [self._new_device() for _ in range(self.num_tors)]
        self.core_switches: List[int] = [self._new_device() for _ in range(self.num_cores)]

        # host <-> ToR links
        self._host_up: Dict[int, int] = {}
        self._host_down: Dict[int, int] = {}
        for h in range(num_hosts):
            tor = self.tor_switches[self.tor_of(h)]
            up, down = self._add_duplex(
                h, tor, bandwidth, latency, f"host{h}->tor{self.tor_of(h)}", f"tor{self.tor_of(h)}->host{h}"
            )
            self._host_up[h] = up
            self._host_down[h] = down

        # ToR <-> core links
        self._tor_up: Dict[Tuple[int, int], int] = {}
        self._tor_down: Dict[Tuple[int, int], int] = {}
        for t in range(self.num_tors):
            for c in range(self.num_cores):
                up, down = self._add_duplex(
                    self.tor_switches[t],
                    self.core_switches[c],
                    bandwidth,
                    latency,
                    f"tor{t}->core{c}",
                    f"core{c}->tor{t}",
                )
                self._tor_up[(t, c)] = up
                self._tor_down[(t, c)] = down

    def _num_tors(self) -> int:
        """ToR count; the rail-optimized variant overrides (pods × rails)."""
        return math.ceil(self.num_hosts / self.nodes_per_tor)

    def tor_of(self, host: int) -> int:
        """Index of the ToR switch ``host`` is attached to."""
        return host // self.nodes_per_tor

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Enumeration reference: candidates read from the built link maps."""
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        src_tor = self.tor_of(src_host)
        dst_tor = self.tor_of(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        if src_tor == dst_tor:
            return ((up, down),)
        return tuple(
            (up, self._tor_up[(src_tor, c)], self._tor_down[(dst_tor, c)], down)
            for c in range(self.num_cores)
        )

    def synthesized_routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Structural synthesis: link ids in closed form from coordinates.

        Link ids follow directly from construction order — host duplex pairs
        first in host order (uplink ``2h``, downlink ``2h + 1``), then
        ToR–core duplex pairs nested ToR-major (uplink
        ``2·num_hosts + 2·(t·num_cores + c)``, downlink one above) — so no
        per-pair state is consulted at all.  Shared by the multi-plane and
        rail-optimized variants, which keep the same construction order and
        only reshape ``tor_of`` / the core tier.
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        up = 2 * src_host
        down = 2 * dst_host + 1
        src_tor = self.tor_of(src_host)
        dst_tor = self.tor_of(dst_host)
        if src_tor == dst_tor:
            return ((up, down),)
        num_cores = self.num_cores
        core_base = 2 * self.num_hosts
        src_up = core_base + 2 * src_tor * num_cores
        dst_down = core_base + 2 * dst_tor * num_cores + 1
        return tuple(
            (up, src_up + 2 * c, dst_down + 2 * c, down) for c in range(num_cores)
        )

    def core_uplinks(self, tor: int) -> List[int]:
        """Link ids of the uplinks of ToR ``tor`` (useful for drop statistics)."""
        return [self._tor_up[(tor, c)] for c in range(self.num_cores)]

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "num_tors": self.num_tors,
                "num_cores": self.num_cores,
                "nodes_per_tor": self.nodes_per_tor,
                "oversubscription": self.oversubscription,
            }
        )
        return d


class MultiPlaneFatTreeTopology(FatTreeTopology):
    """Fat tree whose core tier is split into independent planes.

    Real AI clusters deploy the spine as several parallel *planes* that can
    be drained, upgraded, or lost as a unit.  Each ToR spreads its uplinks
    evenly over the planes: with ``planes`` planes the core tier holds
    ``planes × cores_per_plane`` switches, where ``cores_per_plane`` is the
    per-ToR uplink budget (``round(nodes_per_tor / oversubscription)``)
    divided by ``planes``.  Core switch ``c`` belongs to plane
    ``c // cores_per_plane``; :meth:`plane_links` names every ToR–core link
    of one plane so a `FaultSchedule` can take a whole plane down.

    Routing is unchanged from the base fat tree — ECMP over all surviving
    cores — so losing one plane degrades bisection by ``1/planes`` instead
    of partitioning anything.
    """

    def __init__(
        self,
        num_hosts: int,
        nodes_per_tor: int = 16,
        planes: int = 2,
        oversubscription: float = 1.0,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        if planes <= 0:
            raise ValueError("planes must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        total_uplinks = max(1, int(round(nodes_per_tor / oversubscription)))
        cores_per_plane = max(1, total_uplinks // planes)
        if planes * cores_per_plane > nodes_per_tor:
            raise ValueError(
                f"planes ({planes}) exceed the per-ToR uplink budget "
                f"({total_uplinks} uplinks at oversubscription "
                f"{oversubscription} with {nodes_per_tor} nodes per ToR)"
            )
        self.planes = planes
        self.cores_per_plane = cores_per_plane
        super().__init__(
            num_hosts,
            nodes_per_tor=nodes_per_tor,
            oversubscription=nodes_per_tor / (planes * cores_per_plane),
            bandwidth=bandwidth,
            latency=latency,
        )

    def plane_of_core(self, core_index: int) -> int:
        """Plane that core switch ``core_index`` belongs to."""
        return core_index // self.cores_per_plane

    def plane_cores(self, plane: int) -> List[int]:
        """Core switch indices of ``plane``."""
        if not (0 <= plane < self.planes):
            raise ValueError(f"plane must be in [0, {self.planes}), got {plane}")
        start = plane * self.cores_per_plane
        return list(range(start, start + self.cores_per_plane))

    def plane_links(self, plane: int) -> List[int]:
        """Every ToR–core link id (both directions) of ``plane``.

        Failing exactly these links models draining or losing the plane.
        """
        links: List[int] = []
        for t in range(self.num_tors):
            for c in self.plane_cores(plane):
                links.append(self._tor_up[(t, c)])
                links.append(self._tor_down[(t, c)])
        return links

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update({"planes": self.planes, "cores_per_plane": self.cores_per_plane})
        return d


class RailOptimizedFatTreeTopology(FatTreeTopology):
    """Rail-optimized fat tree for GPU servers.

    Hosts are GPUs: server ``s`` owns hosts ``s·rails .. s·rails+rails-1``,
    and GPU ``k`` ("rail ``k``") of every server in a pod attaches to the
    pod's rail-``k`` ToR switch.  Same-rail traffic inside a pod therefore
    stays one switch away regardless of server — the layout NCCL-style
    collectives assume — while cross-rail or cross-pod traffic climbs to the
    shared core tier.

    ``nodes_per_tor`` keeps its base meaning as hosts per ToR, which here
    equals servers per pod (each server contributes one GPU per rail
    switch).  ``num_hosts`` must be divisible by ``rails``.
    """

    def __init__(
        self,
        num_hosts: int,
        rails: int = 4,
        nodes_per_tor: int = 16,
        oversubscription: float = 1.0,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        if rails <= 0:
            raise ValueError("rails must be positive")
        if num_hosts % rails != 0:
            raise ValueError(
                f"num_hosts ({num_hosts}) must be divisible by rails ({rails}): "
                f"every server contributes one GPU per rail"
            )
        self.rails = rails
        self.servers_per_pod = nodes_per_tor
        self.num_pods = max(1, math.ceil((num_hosts // rails) / nodes_per_tor))
        super().__init__(
            num_hosts,
            nodes_per_tor=nodes_per_tor,
            oversubscription=oversubscription,
            bandwidth=bandwidth,
            latency=latency,
        )

    def _num_tors(self) -> int:
        return self.num_pods * self.rails

    def server_of(self, host: int) -> int:
        """Server that GPU ``host`` belongs to."""
        return host // self.rails

    def rail_of(self, host: int) -> int:
        """Rail (GPU index within its server) of ``host``."""
        return host % self.rails

    def pod_of(self, host: int) -> int:
        """Pod of ``host``'s server."""
        return self.server_of(host) // self.servers_per_pod

    def tor_of(self, host: int) -> int:
        """Rail switch of ``host``: pod-major, rail-minor."""
        server, rail = divmod(host, self.rails)
        return (server // self.servers_per_pod) * self.rails + rail

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "rails": self.rails,
                "num_pods": self.num_pods,
                "servers_per_pod": self.servers_per_pod,
            }
        )
        return d

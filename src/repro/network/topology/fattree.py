"""Two-level fat-tree (leaf/spine) topology with configurable oversubscription.

This is the topology used throughout the paper's evaluation and case studies:
hosts attach to ToR (leaf) switches; every ToR connects to every core (spine)
switch.  The oversubscription ratio is the ratio between the aggregate
downlink bandwidth of a ToR (``nodes_per_tor`` host links) and its aggregate
uplink bandwidth (``num_cores`` core links):

* ``oversubscription = 1`` — fully provisioned: as many uplinks as hosts per
  ToR (paper's "No Oversubscription"),
* ``oversubscription = 4`` — four hosts share one uplink (paper Fig. 12/13),
* ``oversubscription = 8`` — eight hosts share one uplink (paper Fig. 11).

Traffic between hosts under the same ToR never touches the core; inter-ToR
traffic is ECMP-balanced over all core switches.
"""
from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.network.topology.base import Topology


class FatTreeTopology(Topology):
    """Two-level fat tree.

    Parameters
    ----------
    num_hosts:
        Number of endpoints.
    nodes_per_tor:
        Hosts attached to each ToR switch.
    oversubscription:
        Downlink:uplink bandwidth ratio per ToR (>= 1).  The number of core
        switches (= uplinks per ToR) is
        ``max(1, round(nodes_per_tor / oversubscription))``.
    bandwidth / latency:
        Applied to every link (host links and core links alike), matching the
        uniform-speed fat trees used in the paper.
    """

    def __init__(
        self,
        num_hosts: int,
        nodes_per_tor: int = 16,
        oversubscription: float = 1.0,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        super().__init__(num_hosts)
        if nodes_per_tor <= 0:
            raise ValueError("nodes_per_tor must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        self.nodes_per_tor = nodes_per_tor
        self.num_tors = math.ceil(num_hosts / nodes_per_tor)
        self.num_cores = max(1, int(round(nodes_per_tor / oversubscription)))
        self.oversubscription = nodes_per_tor / self.num_cores

        self.tor_switches: List[int] = [self._new_device() for _ in range(self.num_tors)]
        self.core_switches: List[int] = [self._new_device() for _ in range(self.num_cores)]

        # host <-> ToR links
        self._host_up: Dict[int, int] = {}
        self._host_down: Dict[int, int] = {}
        for h in range(num_hosts):
            tor = self.tor_switches[self.tor_of(h)]
            up, down = self._add_duplex(
                h, tor, bandwidth, latency, f"host{h}->tor{self.tor_of(h)}", f"tor{self.tor_of(h)}->host{h}"
            )
            self._host_up[h] = up
            self._host_down[h] = down

        # ToR <-> core links
        self._tor_up: Dict[Tuple[int, int], int] = {}
        self._tor_down: Dict[Tuple[int, int], int] = {}
        for t in range(self.num_tors):
            for c in range(self.num_cores):
                up, down = self._add_duplex(
                    self.tor_switches[t],
                    self.core_switches[c],
                    bandwidth,
                    latency,
                    f"tor{t}->core{c}",
                    f"core{c}->tor{t}",
                )
                self._tor_up[(t, c)] = up
                self._tor_down[(t, c)] = down

        # route cache: (src_tor, dst_tor) -> tuple of (uplink, downlink) pairs
        self._inter_tor_cache: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}

    def tor_of(self, host: int) -> int:
        """Index of the ToR switch ``host`` is attached to."""
        return host // self.nodes_per_tor

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        src_tor = self.tor_of(src_host)
        dst_tor = self.tor_of(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        if src_tor == dst_tor:
            return ((up, down),)
        key = (src_tor, dst_tor)
        middles = self._inter_tor_cache.get(key)
        if middles is None:
            middles = tuple(
                (self._tor_up[(src_tor, c)], self._tor_down[(dst_tor, c)])
                for c in range(self.num_cores)
            )
            self._inter_tor_cache[key] = middles
        return tuple((up, mid_up, mid_down, down) for mid_up, mid_down in middles)

    def core_uplinks(self, tor: int) -> List[int]:
        """Link ids of the uplinks of ToR ``tor`` (useful for drop statistics)."""
        return [self._tor_up[(tor, c)] for c in range(self.num_cores)]

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "num_tors": self.num_tors,
                "num_cores": self.num_cores,
                "nodes_per_tor": self.nodes_per_tor,
                "oversubscription": self.oversubscription,
            }
        )
        return d

"""Single non-blocking switch topology.

Every host attaches to one crossbar switch with a full-duplex link.  This is
the simplest congestion-capable topology (incast still congests the
destination's downlink) and the default for unit tests and microbenchmarks.
"""
from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.network.topology.base import Topology


class SingleSwitchTopology(Topology):
    """``num_hosts`` hosts connected to a single switch."""

    def __init__(self, num_hosts: int, bandwidth: float = 25.0, latency: int = 500) -> None:
        super().__init__(num_hosts)
        self.switch = self._new_device()
        self._up: Dict[int, int] = {}
        self._down: Dict[int, int] = {}
        for h in range(num_hosts):
            up, down = self._add_duplex(
                h,
                self.switch,
                bandwidth,
                latency,
                f"host{h}->switch",
                f"switch->host{h}",
            )
            self._up[h] = up
            self._down[h] = down

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        return ((self._up[src_host], self._down[dst_host]),)

"""Dragonfly topology (groups of routers with all-to-all global links).

The Alps system on which the paper's AI traces were collected uses a
Dragonfly interconnect.  This implementation models the canonical
three-level structure:

* each *router* hosts ``nodes_per_router`` endpoints,
* routers within a *group* are fully connected (local links),
* every pair of groups is connected by at least one *global* link; global
  links are distributed round-robin over the routers of each group.

Routing is minimal: ``src router -> (router owning the global link) ->
global link -> (peer router) -> dst router``, collapsing hops that coincide.
When several global links connect two groups, each yields one ECMP candidate.
"""
from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.network.topology.base import Topology


class DragonflyTopology(Topology):
    """Dragonfly with ``groups`` groups of ``routers_per_group`` routers."""

    def __init__(
        self,
        num_hosts: int,
        groups: int = 4,
        routers_per_group: int = 4,
        nodes_per_router: int = 4,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        super().__init__(num_hosts)
        if groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        if routers_per_group < 1 or nodes_per_router < 1:
            raise ValueError("routers_per_group and nodes_per_router must be positive")
        capacity = groups * routers_per_group * nodes_per_router
        if num_hosts > capacity:
            raise ValueError(
                f"num_hosts {num_hosts} exceeds dragonfly capacity {capacity} "
                f"({groups} groups x {routers_per_group} routers x {nodes_per_router} nodes)"
            )
        self.groups = groups
        self.routers_per_group = routers_per_group
        self.nodes_per_router = nodes_per_router

        # routers[g][r] -> device id
        self.routers: List[List[int]] = [
            [self._new_device() for _ in range(routers_per_group)] for _ in range(groups)
        ]

        self._host_up: Dict[int, int] = {}
        self._host_down: Dict[int, int] = {}
        for h in range(num_hosts):
            g, r, _ = self._locate(h)
            router = self.routers[g][r]
            up, down = self._add_duplex(
                h, router, bandwidth, latency, f"host{h}->r{g}.{r}", f"r{g}.{r}->host{h}"
            )
            self._host_up[h] = up
            self._host_down[h] = down

        # local links: full mesh within each group
        self._local: Dict[Tuple[int, int, int], int] = {}  # (group, src_r, dst_r) -> link
        for g in range(groups):
            for a in range(routers_per_group):
                for b in range(routers_per_group):
                    if a == b:
                        continue
                    link = self._add_link(
                        self.routers[g][a],
                        self.routers[g][b],
                        bandwidth,
                        latency,
                        f"r{g}.{a}->r{g}.{b}",
                    )
                    self._local[(g, a, b)] = link

        # global links: one full-duplex cable per unordered group pair,
        # attached round-robin to routers.  Both directions connect the same
        # two routers, as a physical cable does — Topology.check_routes
        # verifies this reverse symmetry for every topology.
        self._global: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        # value: list of (src_router_idx, dst_router_idx, link_id)
        pair_counter = 0
        for ga in range(groups):
            for gb in range(ga + 1, groups):
                src_r = pair_counter % routers_per_group
                dst_r = (pair_counter + 1) % routers_per_group
                fwd, rev = self._add_duplex(
                    self.routers[ga][src_r],
                    self.routers[gb][dst_r],
                    bandwidth,
                    latency,
                    f"g{ga}.r{src_r}->g{gb}.r{dst_r}",
                    f"g{gb}.r{dst_r}->g{ga}.r{src_r}",
                )
                self._global.setdefault((ga, gb), []).append((src_r, dst_r, fwd))
                self._global.setdefault((gb, ga), []).append((dst_r, src_r, rev))
                pair_counter += 1

    def _locate(self, host: int) -> Tuple[int, int, int]:
        """Return (group, router-in-group, slot) of ``host``."""
        per_group = self.routers_per_group * self.nodes_per_router
        g = host // per_group
        rem = host % per_group
        return g, rem // self.nodes_per_router, rem % self.nodes_per_router

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Enumeration reference: candidates read from the built link maps."""
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        sg, sr, _ = self._locate(src_host)
        dg, dr, _ = self._locate(dst_host)
        up = self._host_up[src_host]
        down = self._host_down[dst_host]

        if sg == dg:
            if sr == dr:
                return ((up, down),)
            return ((up, self._local[(sg, sr, dr)], down),)

        candidates: List[Tuple[int, ...]] = []
        for gsrc_r, gdst_r, glink in self._global[(sg, dg)]:
            hops: List[int] = [up]
            if sr != gsrc_r:
                hops.append(self._local[(sg, sr, gsrc_r)])
            hops.append(glink)
            if gdst_r != dr:
                hops.append(self._local[(dg, gdst_r, dr)])
            hops.append(down)
            candidates.append(tuple(hops))
        return tuple(candidates)

    def synthesized_routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Structural synthesis: link ids in closed form from coordinates.

        Construction order fixes every link id: host duplex pairs first
        (uplink ``2h``, downlink ``2h + 1``), then the per-group local full
        meshes in (group, src, dst) order — ``R·(R-1)`` links per group —
        then one duplex global cable per unordered group pair in row-major
        pair order, attached round-robin (pair ``p`` lands on router
        ``p mod R`` of the lower group and ``(p+1) mod R`` of the higher).
        """
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        R = self.routers_per_group
        sg, sr, _ = self._locate(src_host)
        dg, dr, _ = self._locate(dst_host)
        up = 2 * src_host
        down = 2 * dst_host + 1
        local_base = 2 * self.num_hosts
        per_group = R * (R - 1)

        def local(g: int, a: int, b: int) -> int:
            return local_base + g * per_group + a * (R - 1) + (b if b < a else b - 1)

        if sg == dg:
            if sr == dr:
                return ((up, down),)
            return ((up, local(sg, sr, dr), down),)

        ga, gb = (sg, dg) if sg < dg else (dg, sg)
        pair = ga * self.groups - ga * (ga + 1) // 2 + (gb - ga - 1)
        a_r = pair % R  # cable endpoint in the lower-numbered group
        b_r = (pair + 1) % R  # cable endpoint in the higher-numbered group
        global_base = local_base + self.groups * per_group
        if sg < dg:
            gsrc_r, gdst_r, glink = a_r, b_r, global_base + 2 * pair
        else:
            gsrc_r, gdst_r, glink = b_r, a_r, global_base + 2 * pair + 1
        hops: List[int] = [up]
        if sr != gsrc_r:
            hops.append(local(sg, sr, gsrc_r))
        hops.append(glink)
        if gdst_r != dr:
            hops.append(local(dg, gdst_r, dr))
        hops.append(down)
        return (tuple(hops),)

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "groups": self.groups,
                "routers_per_group": self.routers_per_group,
                "nodes_per_router": self.nodes_per_router,
            }
        )
        return d

"""k-ary n-dimensional torus topology (2D/3D wrap-around mesh).

Tori are the workhorse of HPC interconnects (Blue Gene, the K computer,
Fugaku's Tofu is a 6D variant): every switch sits at a lattice coordinate
and connects to its two neighbours in each dimension, with wrap-around links
closing every ring.  ``hosts_per_node`` endpoints attach to each switch.

Routing:

* **minimal / dimension-order (DOR)** — correct one dimension at a time
  along the shorter wrap direction.  Every permutation of the dimension
  order yields a distinct minimal path, so :meth:`routes` returns all
  unique permutations as ECMP/adaptive candidates (2 for 2D, up to 6 for
  3D).
* **Valiant** — :meth:`valiant_routes` bounces through a random intermediate
  *router* (not a host): DOR to the intermediate, then DOR to the
  destination, which is the classical torus load-balancing scheme.

Ties in wrap direction (distance exactly half the ring) resolve to the
positive direction, keeping routes deterministic.
"""
from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro.network.topology.base import Topology


class TorusTopology(Topology):
    """``dims`` wrap-around grid of switches with ``hosts_per_node`` hosts each.

    Parameters
    ----------
    num_hosts:
        Number of endpoints; must fit in ``prod(dims) * hosts_per_node``.
    dims:
        Ring length per dimension, e.g. ``(4, 4)`` for a 4x4 2D torus or
        ``(4, 4, 2)`` for 3D.  Each dimension must be at least 2.
    hosts_per_node:
        Endpoints attached to each torus switch.
    bandwidth / latency:
        Applied uniformly to host links and inter-switch links.
    """

    def __init__(
        self,
        num_hosts: int,
        dims: Tuple[int, ...] = (4, 4),
        hosts_per_node: int = 1,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        super().__init__(num_hosts)
        dims = tuple(int(d) for d in dims)
        if len(dims) not in (2, 3):
            raise ValueError(f"torus must be 2D or 3D, got dims={dims}")
        if any(d < 2 for d in dims):
            raise ValueError(f"every torus dimension must be >= 2, got dims={dims}")
        if hosts_per_node <= 0:
            raise ValueError("hosts_per_node must be positive")
        self.dims = dims
        self.hosts_per_node = hosts_per_node
        self.num_nodes = 1
        for d in dims:
            self.num_nodes *= d
        capacity = self.num_nodes * hosts_per_node
        if num_hosts > capacity:
            raise ValueError(
                f"num_hosts {num_hosts} exceeds torus capacity {capacity} "
                f"({'x'.join(map(str, dims))} nodes x {hosts_per_node} hosts)"
            )

        self.routers: List[int] = [self._new_device() for _ in range(self.num_nodes)]

        self._host_up: Dict[int, int] = {}
        self._host_down: Dict[int, int] = {}
        for h in range(num_hosts):
            node = h // hosts_per_node
            coords = self._coords(node)
            up, down = self._add_duplex(
                h,
                self.routers[node],
                bandwidth,
                latency,
                f"host{h}->t{coords}",
                f"t{coords}->host{h}",
            )
            self._host_up[h] = up
            self._host_down[h] = down

        # torus links: (node, dim, sign) -> link id.  A ring of length 2 has
        # one neighbour in both directions, so both signs share one link.
        self._dim_link: Dict[Tuple[int, int, int], int] = {}
        for node in range(self.num_nodes):
            coords = self._coords(node)
            for dim, size in enumerate(dims):
                for sign in (1, -1):
                    if sign == -1 and size == 2:
                        self._dim_link[(node, dim, -1)] = self._dim_link[(node, dim, 1)]
                        continue
                    nbr_coords = list(coords)
                    nbr_coords[dim] = (coords[dim] + sign) % size
                    nbr = self._index(tuple(nbr_coords))
                    link = self._add_link(
                        self.routers[node],
                        self.routers[nbr],
                        bandwidth,
                        latency,
                        f"t{coords}->t{tuple(nbr_coords)}",
                    )
                    self._dim_link[(node, dim, sign)] = link

        # (src_node, dst_node) -> unique DOR router paths over all dim
        # orders, bounded LRU: the key space is O(nodes²)
        from repro.network.topology.base import LruCache

        self._path_cache = LruCache()
        self._bounded_caches.append(self._path_cache)

    # -- coordinate helpers ---------------------------------------------------
    def _index(self, coords: Tuple[int, ...]) -> int:
        idx = 0
        for size, c in zip(reversed(self.dims), reversed(coords)):
            idx = idx * size + c
        return idx

    def _coords(self, node: int) -> Tuple[int, ...]:
        coords = []
        for size in self.dims:
            coords.append(node % size)
            node //= size
        return tuple(coords)

    def node_of(self, host: int) -> int:
        """Torus node index ``host`` is attached to."""
        return host // self.hosts_per_node

    # -- routing --------------------------------------------------------------
    def _dor_path(self, src_node: int, dst_node: int, order: Sequence[int]) -> Tuple[int, ...]:
        """Dimension-order route between two switches, visiting dims in ``order``."""
        coords = list(self._coords(src_node))
        target = self._coords(dst_node)
        hops: List[int] = []
        for dim in order:
            size = self.dims[dim]
            delta = (target[dim] - coords[dim]) % size
            if delta == 0:
                continue
            if delta <= size - delta:
                sign, steps = 1, delta
            else:
                sign, steps = -1, size - delta
            for _ in range(steps):
                node = self._index(tuple(coords))
                hops.append(self._dim_link[(node, dim, sign)])
                coords[dim] = (coords[dim] + sign) % size
        return tuple(hops)

    def _synthesize_router_paths(self, src_node: int, dst_node: int) -> Tuple[Tuple[int, ...], ...]:
        """Unique DOR paths over all dimension orders, computed on demand.

        Pure coordinate arithmetic against the O(links) ``_dim_link`` map —
        no per-pair state, so this is the structural-synthesis primitive.
        """
        seen = set()
        paths: List[Tuple[int, ...]] = []
        for order in itertools.permutations(range(len(self.dims))):
            path = self._dor_path(src_node, dst_node, order)
            if path not in seen:
                seen.add(path)
                paths.append(path)
        return tuple(paths)

    def _router_paths(self, src_node: int, dst_node: int) -> Tuple[Tuple[int, ...], ...]:
        key = (src_node, dst_node)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self._synthesize_router_paths(src_node, dst_node)
            self._path_cache.put(key, cached)
        return cached

    def _host_routes(
        self, src_host: int, dst_host: int, router_paths
    ) -> Sequence[Tuple[int, ...]]:
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        src_node = self.node_of(src_host)
        dst_node = self.node_of(dst_host)
        if src_node == dst_node:
            return ((up, down),)
        return tuple((up,) + path + (down,) for path in router_paths(src_node, dst_node))

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Enumeration reference: DOR candidates via the bounded path cache."""
        return self._host_routes(src_host, dst_host, self._router_paths)

    def synthesized_routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        """Structural synthesis: DOR candidates recomputed from coordinates."""
        return self._host_routes(src_host, dst_host, self._synthesize_router_paths)

    def valiant_routes(self, src_host, dst_host, rng, count: int = 4):
        if self.num_nodes <= 2:
            return super().valiant_routes(src_host, dst_host, rng, count)
        return self._valiant_via_routers(
            src_host, dst_host, rng, count, self.num_nodes, self.node_of, self._router_paths
        )

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "dims": self.dims,
                "hosts_per_node": self.hosts_per_node,
                "num_nodes": self.num_nodes,
            }
        )
        return d

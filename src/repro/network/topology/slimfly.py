"""Slim Fly topology (McKay–Miller–Širáň graphs, diameter 2).

Slim Fly (Besta & Hoefler, SC'14) arranges routers as an MMS graph: a
near-optimal solution to the degree/diameter problem that connects
``2 * q^2`` routers of radix ``(3q - 1) / 2`` with network diameter 2 —
lower cost and latency than fat trees of comparable size.

This implementation uses the prime-field MMS construction for primes
``q ≡ 1 (mod 4)`` (q = 5, 13, 17, 29, ...):

* routers form two blocks of ``q^2``: A-routers ``(0, x, y)`` and
  B-routers ``(1, m, c)`` with ``x, y, m, c ∈ Z_q``,
* with ``ξ`` a primitive root mod q, ``X`` = even powers of ξ (the
  quadratic residues) and ``X'`` = odd powers,
* ``(0, x, y) ~ (0, x, y')``  iff  ``y - y' ∈ X``,
* ``(1, m, c) ~ (1, m, c')``  iff  ``c - c' ∈ X'``,
* ``(0, x, y) ~ (1, m, c)``   iff  ``y = m·x + c  (mod q)``.

Because ``q ≡ 1 (mod 4)``, ``-1`` is a quadratic residue, so ``X = -X``
and ``X' = -X'`` and the adjacency is symmetric.  Every router reaches
every other in at most two hops.

Routing:

* **minimal** — the direct link when adjacent, otherwise one candidate per
  common neighbour (the diameter-2 property guarantees at least one),
* **Valiant** — :meth:`valiant_routes` bounces through a random intermediate
  *router*, the scheme the Slim Fly paper pairs with UGAL to spread
  adversarial traffic over the abundant path diversity.
"""
from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.network.topology.base import Topology


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in range(2, int(math.isqrt(n)) + 1):
        if n % p == 0:
            return False
    return True


def _primitive_root(q: int) -> int:
    """Smallest primitive root modulo the prime ``q`` (brute force)."""
    order = q - 1
    prime_factors = set()
    n = order
    p = 2
    while p * p <= n:
        while n % p == 0:
            prime_factors.add(p)
            n //= p
        p += 1
    if n > 1:
        prime_factors.add(n)
    for g in range(2, q):
        if all(pow(g, order // f, q) != 1 for f in prime_factors):
            return g
    raise ValueError(f"no primitive root mod {q}")  # unreachable for prime q


class SlimFlyTopology(Topology):
    """MMS-graph Slim Fly over the prime field ``Z_q``.

    Parameters
    ----------
    num_hosts:
        Number of endpoints; must fit in ``2 * q^2 * hosts_per_router``.
    q:
        A prime with ``q ≡ 1 (mod 4)`` (5, 13, 17, 29, ...).  The network
        has ``2 * q^2`` routers of network radix ``(3q - 1) / 2``.
    hosts_per_router:
        Endpoints per router; 0 (the default) selects the paper's balanced
        concentration ``ceil(radix / 2)``.
    bandwidth / latency:
        Applied uniformly to host links and router-router links.
    """

    def __init__(
        self,
        num_hosts: int,
        q: int = 5,
        hosts_per_router: int = 0,
        bandwidth: float = 25.0,
        latency: int = 500,
    ) -> None:
        super().__init__(num_hosts)
        if not _is_prime(q) or q % 4 != 1:
            raise ValueError(
                f"slimfly q must be a prime with q % 4 == 1 (5, 13, 17, 29, ...), got {q}"
            )
        self.q = q
        self.network_radix = (3 * q - 1) // 2
        if hosts_per_router < 0:
            raise ValueError("hosts_per_router must be non-negative")
        self.hosts_per_router = hosts_per_router or (self.network_radix + 1) // 2
        self.num_routers = 2 * q * q
        capacity = self.num_routers * self.hosts_per_router
        if num_hosts > capacity:
            raise ValueError(
                f"num_hosts {num_hosts} exceeds slimfly capacity {capacity} "
                f"({self.num_routers} routers x {self.hosts_per_router} hosts)"
            )

        self.routers: List[int] = [self._new_device() for _ in range(self.num_routers)]

        self._host_up: Dict[int, int] = {}
        self._host_down: Dict[int, int] = {}
        for h in range(num_hosts):
            r = h // self.hosts_per_router
            up, down = self._add_duplex(
                h, self.routers[r], bandwidth, latency, f"host{h}->sf{r}", f"sf{r}->host{h}"
            )
            self._host_up[h] = up
            self._host_down[h] = down

        # generator sets: even and odd powers of a primitive root mod q
        xi = _primitive_root(q)
        powers = [pow(xi, i, q) for i in range(q - 1)]
        x_even = frozenset(powers[0::2])
        x_odd = frozenset(powers[1::2])

        # router adjacency (router index -> {neighbour index: link id})
        self._adj: List[Dict[int, int]] = [dict() for _ in range(self.num_routers)]

        def a_index(x: int, y: int) -> int:
            return x * q + y

        def b_index(m: int, c: int) -> int:
            return q * q + m * q + c

        def connect(r1: int, r2: int) -> None:
            if r2 in self._adj[r1]:
                return
            self._adj[r1][r2] = self._add_link(
                self.routers[r1], self.routers[r2], bandwidth, latency, f"sf{r1}->sf{r2}"
            )
            self._adj[r2][r1] = self._add_link(
                self.routers[r2], self.routers[r1], bandwidth, latency, f"sf{r2}->sf{r1}"
            )

        for x in range(q):
            for y in range(q):
                for yp in range(y + 1, q):
                    if (y - yp) % q in x_even:
                        connect(a_index(x, y), a_index(x, yp))
        for m in range(q):
            for c in range(q):
                for cp in range(c + 1, q):
                    if (c - cp) % q in x_odd:
                        connect(b_index(m, c), b_index(m, cp))
        for x in range(q):
            for y in range(q):
                for m in range(q):
                    c = (y - m * x) % q
                    connect(a_index(x, y), b_index(m, c))

        # (src_router, dst_router) -> tuple of router-level paths (<= 2
        # hops), bounded LRU: the key space is O(routers²)
        from repro.network.topology.base import LruCache

        self._path_cache = LruCache()
        self._bounded_caches.append(self._path_cache)

    def router_of(self, host: int) -> int:
        """Router index ``host`` is attached to."""
        return host // self.hosts_per_router

    # -- routing --------------------------------------------------------------
    def _router_paths(self, r1: int, r2: int) -> Tuple[Tuple[int, ...], ...]:
        """All minimal router-level paths between two routers (1 or 2 hops)."""
        key = (r1, r2)
        cached = self._path_cache.get(key)
        if cached is None:
            direct = self._adj[r1].get(r2)
            if direct is not None:
                cached = ((direct,),)
            else:
                cached = tuple(
                    (via_link, self._adj[via][r2])
                    for via, via_link in self._adj[r1].items()
                    if r2 in self._adj[via]
                )
                if not cached:
                    raise AssertionError(
                        f"MMS graph violated diameter 2 between routers {r1} and {r2}"
                    )
            self._path_cache.put(key, cached)
        return cached

    def routes(self, src_host: int, dst_host: int) -> Sequence[Tuple[int, ...]]:
        if src_host == dst_host:
            raise ValueError("no route from a host to itself")
        up = self._host_up[src_host]
        down = self._host_down[dst_host]
        r1 = self.router_of(src_host)
        r2 = self.router_of(dst_host)
        if r1 == r2:
            return ((up, down),)
        return tuple((up,) + path + (down,) for path in self._router_paths(r1, r2))

    def valiant_routes(self, src_host, dst_host, rng, count: int = 4):
        return self._valiant_via_routers(
            src_host, dst_host, rng, count, self.num_routers, self.router_of, self._router_paths
        )

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d.update(
            {
                "q": self.q,
                "num_routers": self.num_routers,
                "network_radix": self.network_radix,
                "hosts_per_router": self.hosts_per_router,
            }
        )
        return d

"""Pluggable routing strategies shared by the simulation backends.

A :class:`RoutingStrategy` turns the *candidate* routes a topology exposes
into the single route a message actually takes.  Both backends consult the
strategy once per message at injection time (the packet backend source-routes
every packet of a flow along the chosen route; the message-level backend uses
the chosen route's propagation latency in place of a flat ``L``), which makes
the adaptive strategy a UGAL-style *injection-time* decision rather than a
per-hop one.

Three strategies ship with the toolchain:

* :class:`MinimalRouting` — ECMP over the topology's minimal candidates
  (the behaviour the backends hard-wired before this module existed),
* :class:`ValiantRouting` — Valiant load balancing: bounce through a random
  intermediate, trading path length for load uniformity on adversarial
  traffic,
* :class:`AdaptiveRouting` — UGAL-style choice between the best minimal and
  the best Valiant candidate, weighted by current link load x path length.

Strategies are registered in :data:`ROUTING_STRATEGIES` and constructed via
:func:`create_routing`; ``SimulationConfig.routing`` selects one by name.
Link load is supplied by the backend as a callable ``link_id -> queued
bytes`` (the packet backend reports live queue occupancy; the LogGOPS
backend reports cumulative bytes routed over each link).
"""
from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Type

import numpy as np

from repro.network.topology.base import Topology, pick_route

Route = Tuple[int, ...]
LinkLoadFn = Callable[[int], int]


class RoutingStrategy:
    """Base class: selects one route per message from a topology's candidates.

    Parameters
    ----------
    topology:
        The :class:`~repro.network.topology.base.Topology` to route on.
    rng:
        Shared ``numpy`` generator (tie-breaking and random intermediates).
    """

    name = "base"

    def __init__(self, topology: Topology, rng: np.random.Generator) -> None:
        self.topology = topology
        self.rng = rng

    def select_route(
        self, src: int, dst: int, size: int = 0, link_load: Optional[LinkLoadFn] = None
    ) -> Route:
        """Return the route (tuple of link ids) a ``size``-byte message takes.

        ``link_load`` maps a link id to its current load in bytes; strategies
        that ignore congestion may disregard it.
        """
        raise NotImplementedError

    # -- helpers shared by subclasses ---------------------------------------
    def _pick(self, candidates: Sequence[Route]) -> Route:
        """Uniform random choice, consuming randomness only on real choices."""
        return pick_route(candidates, self.rng)

    def _route_cost(self, route: Route, link_load: Optional[LinkLoadFn]) -> int:
        """UGAL cost of a candidate: (1 + queued bytes along it) x hops."""
        load = 0 if link_load is None else sum(link_load(l) for l in route)
        return (1 + load) * len(route)


class MinimalRouting(RoutingStrategy):
    """ECMP over the topology's minimal candidate routes."""

    name = "minimal"

    def select_route(
        self, src: int, dst: int, size: int = 0, link_load: Optional[LinkLoadFn] = None
    ) -> Route:
        return self._pick(self.topology.routes(src, dst))


class ValiantRouting(RoutingStrategy):
    """Valiant load balancing: minimal route to a random intermediate, then on.

    Topologies override :meth:`~repro.network.topology.base.Topology.
    valiant_routes` to bounce through an intermediate *switch* where that is
    natural (torus, Slim Fly); the base implementation composes minimal
    routes through a random intermediate host.  Pairs with no non-minimal
    candidate (e.g. two hosts on a single switch) fall back to minimal.
    """

    name = "valiant"

    def __init__(self, topology: Topology, rng: np.random.Generator, count: int = 4) -> None:
        super().__init__(topology, rng)
        self.count = count

    def select_route(
        self, src: int, dst: int, size: int = 0, link_load: Optional[LinkLoadFn] = None
    ) -> Route:
        candidates = self.topology.valiant_routes(src, dst, self.rng, count=self.count)
        if not candidates:
            return self._pick(self.topology.routes(src, dst))
        return self._pick(candidates)


class AdaptiveRouting(RoutingStrategy):
    """UGAL-style adaptive routing.

    Compares the least-cost minimal candidate against the least-cost Valiant
    candidate, where cost is ``(1 + queued bytes along the route) x hops``,
    and takes the minimal route on ties — so an idle network routes
    minimally and a congested one spills onto non-minimal paths exactly when
    the detour is cheaper than the queueing.
    """

    name = "adaptive"

    def __init__(self, topology: Topology, rng: np.random.Generator, count: int = 2) -> None:
        super().__init__(topology, rng)
        self.count = count

    def select_route(
        self, src: int, dst: int, size: int = 0, link_load: Optional[LinkLoadFn] = None
    ) -> Route:
        minimal = self.topology.routes(src, dst)
        # random choice among cost-tied minimal candidates keeps ECMP
        # spreading alive when loads are equal (e.g. at an idle start)
        costs = [self._route_cost(r, link_load) for r in minimal]
        min_cost = min(costs)
        best_min = self._pick([r for r, c in zip(minimal, costs) if c == min_cost])
        if link_load is None:
            return best_min
        valiant = self.topology.valiant_routes(src, dst, self.rng, count=self.count)
        if not valiant:
            return best_min
        best_val = min(valiant, key=lambda r: self._route_cost(r, link_load))
        if self._route_cost(best_val, link_load) < min_cost:
            return best_val
        return best_min


ROUTING_STRATEGIES: Dict[str, Type[RoutingStrategy]] = {
    MinimalRouting.name: MinimalRouting,
    ValiantRouting.name: ValiantRouting,
    AdaptiveRouting.name: AdaptiveRouting,
}


def register_routing(cls: Type[RoutingStrategy]) -> Type[RoutingStrategy]:
    """Register a strategy class under ``cls.name`` (usable as a decorator)."""
    ROUTING_STRATEGIES[cls.name] = cls
    return cls


def routing_names() -> Tuple[str, ...]:
    """Names of all registered routing strategies (sorted)."""
    return tuple(sorted(ROUTING_STRATEGIES))


def create_routing(name: str, topology: Topology, rng: np.random.Generator, **kwargs) -> RoutingStrategy:
    """Construct the registered strategy ``name`` bound to a topology."""
    try:
        cls = ROUTING_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing strategy {name!r} (registered: {', '.join(routing_names())})"
        ) from None
    return cls(topology, rng, **kwargs)

"""Pluggable routing strategies shared by the simulation backends.

A :class:`RoutingStrategy` turns the *candidate* routes a topology exposes
into the single route a message actually takes.  Both backends consult the
strategy once per message at injection time (the packet backend source-routes
every packet of a flow along the chosen route; the message-level backend uses
the chosen route's propagation latency in place of a flat ``L``), which makes
the adaptive strategy a UGAL-style *injection-time* decision rather than a
per-hop one.

Three strategies ship with the toolchain:

* :class:`MinimalRouting` — ECMP over the topology's minimal candidates
  (the behaviour the backends hard-wired before this module existed),
* :class:`ValiantRouting` — Valiant load balancing: bounce through a random
  intermediate, trading path length for load uniformity on adversarial
  traffic,
* :class:`AdaptiveRouting` — UGAL-style choice between the best minimal and
  the best Valiant candidate, weighted by current link load x path length.

Strategies are registered in :data:`ROUTING_STRATEGIES` and constructed via
:func:`create_routing`; ``SimulationConfig.routing`` selects one by name.

Link load is supplied by the backend either as a numpy array indexed by link
id (the fast path: the packet backend exposes queue occupancy as an array
view, the LogGOPS backend an array of cumulative bytes routed) or, for
backward compatibility, as a callable ``link_id -> queued bytes``.

Fault awareness
---------------
When the topology carries failed links (see :mod:`repro.network.faults`),
every strategy filters its candidates — minimal and Valiant alike — through
the topology's alive-masked route tables, and a pair left with no surviving
candidate raises :class:`~repro.network.faults.NetworkPartitionError`.  On a
healthy fabric the filter is a single boolean read, and the selected routes
(and RNG consumption) are exactly those of the pre-fault code paths.

Hot path
--------
Strategies read the topology's lazily built, LRU-bounded
:class:`~repro.network.topology.base.RouteTable` caches instead of
rebuilding the candidate tuples per message, and the UGAL cost of all
candidates is evaluated in one numpy gather + ``reduceat`` instead of one
Python call per link per candidate.  Both optimizations are exact:
candidate order and RNG consumption are unchanged, so results are
bit-identical to the legacy scalar path
(``SimulationConfig.route_caching=False``), which the determinism tests
verify.  Cache eviction is equally invisible here — an evicted table is
rebuilt bit-identically (from structural synthesis or the enumeration
reference, per ``SimulationConfig.route_synthesis``) on the next lookup,
so strategies never observe cache state (see docs/scaling.md).
"""
from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.network.topology.base import Topology, pick_route

Route = Tuple[int, ...]
#: Link load as a numpy array indexed by link id, or a ``link_id -> bytes``
#: callable (legacy form).
LinkLoad = Union["np.ndarray", Callable[[int], int]]


class RoutingStrategy:
    """Base class: selects one route per message from a topology's candidates.

    Parameters
    ----------
    topology:
        The :class:`~repro.network.topology.base.Topology` to route on.
    rng:
        Shared ``numpy`` generator (tie-breaking and random intermediates).
    use_cache:
        Read candidates through the topology's memoized route tables
        (default).  ``False`` re-derives candidates per call — the legacy
        behaviour, kept for A/B determinism tests.
    """

    name = "base"

    #: Whether :meth:`select_route` consults ``link_load``; backends skip
    #: building the load view for strategies that never read it.
    needs_link_load = False

    def __init__(
        self, topology: Topology, rng: np.random.Generator, use_cache: bool = True
    ) -> None:
        self.topology = topology
        self.rng = rng
        self.use_cache = use_cache

    def select_route(
        self,
        src: int,
        dst: int,
        size: int = 0,
        link_load: Optional[LinkLoad] = None,
        view: Optional[frozenset] = None,
    ) -> Route:
        """Return the route (tuple of link ids) a ``size``-byte message takes.

        ``link_load`` maps a link id to its current load in bytes (array or
        callable); strategies that ignore congestion may disregard it.
        ``view``, when given, is the source's first-hop switch's *believed*
        failed-link set (control-plane convergence: the selection filters by
        the stale belief instead of the topology's true fault state, so the
        chosen route may cross an actually-dead link).  ``None`` — the only
        value ever passed outside ``control_plane="dv"|"ls"`` runs — keeps
        selection and RNG consumption bit-identical to the legacy paths.
        """
        raise NotImplementedError

    # -- helpers shared by subclasses ---------------------------------------
    def _candidates(
        self, src: int, dst: int, view: Optional[frozenset] = None
    ) -> Sequence[Route]:
        """Minimal candidates of the pair (cached unless ``use_cache=False``).

        On a faulty fabric (failed links present) the candidates are read
        through the topology's alive-filtered tables regardless of the cache
        setting — candidate order is preserved, and a fully disconnected
        pair raises :class:`~repro.network.faults.NetworkPartitionError`.
        With a control-plane ``view`` the believed-failed filter replaces
        the truth filter (see :meth:`Topology.view_table`).
        """
        topology = self.topology
        if view is not None:
            return topology.view_table(src, dst, view).candidates
        if topology.faulty:
            return topology.alive_table(src, dst).candidates
        if self.use_cache:
            return topology.route_table(src, dst).candidates
        return topology.routes(src, dst)

    def _alive_valiant(
        self, src: int, dst: int, count: int, view: Optional[frozenset] = None
    ) -> Sequence[Route]:
        """Valiant candidates filtered to routes that survive current faults.

        With a control-plane ``view`` the filter is the believed-failed set
        instead of the truth.
        """
        topology = self.topology
        candidates = topology.valiant_routes(src, dst, self.rng, count=count)
        if not candidates:
            return candidates
        if view is not None:
            filtered = tuple(
                r for r in candidates if not any(link in view for link in r)
            )
            # a view that kills every detour keeps the unfiltered set (the
            # caller falls back to minimal candidates if those also vanish)
            return filtered if filtered else ()
        if topology.faulty:
            candidates = tuple(r for r in candidates if topology.route_alive(r))
        return candidates

    def _pick(self, candidates: Sequence[Route]) -> Route:
        """Uniform random choice, consuming randomness only on real choices."""
        return pick_route(candidates, self.rng)

    def _route_cost(self, route: Route, link_load: Optional[LinkLoad]) -> int:
        """UGAL cost of a candidate: (1 + queued bytes along it) x hops."""
        if link_load is None:
            load = 0
        elif callable(link_load):
            load = sum(link_load(l) for l in route)
        else:
            load = sum(int(link_load[l]) for l in route)
        return (1 + load) * len(route)


class MinimalRouting(RoutingStrategy):
    """ECMP over the topology's minimal candidate routes."""

    name = "minimal"

    def select_route(
        self,
        src: int,
        dst: int,
        size: int = 0,
        link_load: Optional[LinkLoad] = None,
        view: Optional[frozenset] = None,
    ) -> Route:
        return self._pick(self._candidates(src, dst, view))


class ValiantRouting(RoutingStrategy):
    """Valiant load balancing: minimal route to a random intermediate, then on.

    Topologies override :meth:`~repro.network.topology.base.Topology.
    valiant_routes` to bounce through an intermediate *switch* where that is
    natural (torus, Slim Fly); the base implementation composes minimal
    routes through a random intermediate host.  Pairs with no non-minimal
    candidate (e.g. two hosts on a single switch) fall back to minimal.
    """

    name = "valiant"

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        count: int = 4,
        use_cache: bool = True,
    ) -> None:
        super().__init__(topology, rng, use_cache=use_cache)
        self.count = count

    def select_route(
        self,
        src: int,
        dst: int,
        size: int = 0,
        link_load: Optional[LinkLoad] = None,
        view: Optional[frozenset] = None,
    ) -> Route:
        candidates = self._alive_valiant(src, dst, self.count, view)
        if not candidates:
            return self._pick(self._candidates(src, dst, view))
        return self._pick(candidates)


class AdaptiveRouting(RoutingStrategy):
    """UGAL-style adaptive routing.

    Compares the least-cost minimal candidate against the least-cost Valiant
    candidate, where cost is ``(1 + queued bytes along the route) x hops``,
    and takes the minimal route on ties — so an idle network routes
    minimally and a congested one spills onto non-minimal paths exactly when
    the detour is cheaper than the queueing.

    With an array ``link_load`` and route caching enabled, the cost of every
    minimal candidate is evaluated in a single numpy gather over the route
    table's CSR link index — one ``reduceat`` per decision instead of one
    ``link_load`` call per link per candidate per message.

    Under the sharded packet engine (``SimulationConfig.shards > 1``) the
    live ``link_load`` array is replaced by **barrier load snapshots**
    merged from all shards on a fixed cadence
    (``SimulationConfig.load_snapshot_ns``; ``0`` = auto: the topology's
    minimum link latency).  Decisions then read a slightly stale global
    view — a documented approximation whose semantics depend only on the
    cadence, never on the shard layout, so sharded runs stay bit-identical
    across shard counts (see ``docs/scaling.md``).
    """

    name = "adaptive"
    needs_link_load = True

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        count: int = 2,
        use_cache: bool = True,
    ) -> None:
        super().__init__(topology, rng, use_cache=use_cache)
        self.count = count

    def select_route(
        self,
        src: int,
        dst: int,
        size: int = 0,
        link_load: Optional[LinkLoad] = None,
        view: Optional[frozenset] = None,
    ) -> Route:
        if self.use_cache and not callable(link_load):
            return self._select_vectorized(src, dst, link_load, view)
        return self._select_scalar(src, dst, link_load, view)

    # -- legacy scalar path (use_cache=False, or callable link loads) --------
    def _select_scalar(
        self,
        src: int,
        dst: int,
        link_load: Optional[LinkLoad],
        view: Optional[frozenset] = None,
    ) -> Route:
        minimal = self._candidates(src, dst, view)
        # random choice among cost-tied minimal candidates keeps ECMP
        # spreading alive when loads are equal (e.g. at an idle start)
        costs = [self._route_cost(r, link_load) for r in minimal]
        min_cost = min(costs)
        best_min = self._pick([r for r, c in zip(minimal, costs) if c == min_cost])
        if link_load is None:
            return best_min
        valiant = self._alive_valiant(src, dst, self.count, view)
        if not valiant:
            return best_min
        best_val = min(valiant, key=lambda r: self._route_cost(r, link_load))
        if self._route_cost(best_val, link_load) < min_cost:
            return best_val
        return best_min

    # -- vectorized path (route table + array loads) -------------------------
    def _select_vectorized(
        self,
        src: int,
        dst: int,
        loads: Optional["np.ndarray"],
        view: Optional[frozenset] = None,
    ) -> Route:
        topology = self.topology
        if view is not None:
            table = topology.view_table(src, dst, view)
        elif topology.faulty:
            table = topology.alive_table(src, dst)
        else:
            table = topology.route_table(src, dst)
        candidates = table.candidates
        if loads is None:
            route_loads = np.zeros(len(candidates), dtype=np.int64)
        else:
            route_loads = np.add.reduceat(loads[table.links_flat], table.offsets[:-1])
        costs = (1 + route_loads) * table.hops
        min_cost = int(costs.min())
        tied = [candidates[i] for i in np.nonzero(costs == min_cost)[0]]
        best_min = self._pick(tied)
        if loads is None:
            return best_min
        valiant = self._alive_valiant(src, dst, self.count, view)
        if not valiant:
            return best_min
        # first minimum, matching the scalar path's min(..., key=...)
        val_costs = [
            (1 + sum(int(loads[l]) for l in r)) * len(r) for r in valiant
        ]
        best_i = min(range(len(valiant)), key=val_costs.__getitem__)
        if val_costs[best_i] < min_cost:
            return valiant[best_i]
        return best_min


ROUTING_STRATEGIES: Dict[str, Type[RoutingStrategy]] = {
    MinimalRouting.name: MinimalRouting,
    ValiantRouting.name: ValiantRouting,
    AdaptiveRouting.name: AdaptiveRouting,
}


def register_routing(cls: Type[RoutingStrategy]) -> Type[RoutingStrategy]:
    """Register a strategy class under ``cls.name`` (usable as a decorator)."""
    ROUTING_STRATEGIES[cls.name] = cls
    return cls


def routing_names() -> Tuple[str, ...]:
    """Names of all registered routing strategies (sorted)."""
    return tuple(sorted(ROUTING_STRATEGIES))


def create_routing(name: str, topology: Topology, rng: np.random.Generator, **kwargs) -> RoutingStrategy:
    """Construct the registered strategy ``name`` bound to a topology."""
    try:
        cls = ROUTING_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing strategy {name!r} (registered: {', '.join(routing_names())})"
        ) from None
    return cls(topology, rng, **kwargs)

"""Simulation configuration objects.

A single :class:`SimulationConfig` carries every knob both backends
understand: LogGOPS parameters for the message-level backend, and link/queue/
congestion-control parameters for the packet-level backend, plus the topology
description shared by both.

Times are integer nanoseconds, sizes are bytes and bandwidths are expressed
in bytes per nanosecond (1 B/ns = 1 GB/s); ``G`` and ``O`` are ns per byte.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.faults import FaultSchedule


@dataclass(frozen=True)
class LogGOPSParams:
    """Parameters of the LogGOPS network model (all times in ns).

    Attributes
    ----------
    L:
        End-to-end wire latency.
    o:
        CPU overhead charged per message at the sender and at the receiver.
    g:
        Inter-message gap enforced at the NIC (minimum spacing between
        message injections).
    G:
        Gap per byte (inverse bandwidth) in ns/byte; 0.04 ns/B = 25 GB/s.
    O:
        CPU overhead per byte in ns/byte.
    S:
        Eager/rendezvous threshold in bytes: messages strictly larger than
        ``S`` use the rendezvous protocol (transfer cannot begin before the
        matching receive is posted).

    The default values are the AI-cluster parameters used in the paper's §5.2
    (Alps / GH200 with Slingshot); :meth:`hpc_cluster` returns the §5.3
    values measured with Netgauge on the CSCS test-bed.
    """

    L: int = 3700
    o: int = 200
    g: int = 5
    G: float = 0.04
    O: float = 0.0
    S: int = 0

    def __post_init__(self) -> None:
        if self.L < 0 or self.o < 0 or self.g < 0:
            raise ValueError("L, o and g must be non-negative")
        if self.G < 0 or self.O < 0:
            raise ValueError("G and O must be non-negative")
        if self.S < 0:
            raise ValueError("S must be non-negative")

    @classmethod
    def ai_cluster(cls) -> "LogGOPSParams":
        """Parameters estimated for the Alps GH200 nodes (paper §5.2)."""
        return cls(L=3700, o=200, g=5, G=0.04, O=0.0, S=0)

    @classmethod
    def hpc_cluster(cls) -> "LogGOPSParams":
        """Parameters measured with Netgauge on the CSCS test-bed (paper §5.3)."""
        return cls(L=3000, o=6000, g=0, G=0.18, O=0.0, S=256000)

    def bandwidth_bytes_per_ns(self) -> float:
        """Injection bandwidth implied by ``G`` (bytes per ns)."""
        return float("inf") if self.G == 0 else 1.0 / self.G


@dataclass
class SimulationConfig:
    """Complete configuration of a simulation run.

    Topology and routing
    --------------------
    topology:
        Name of a registered topology: ``"single_switch"``, ``"fat_tree"``
        (two-level, with ``oversubscription``), ``"dragonfly"``, ``"torus"``
        or ``"slimfly"`` (see
        :data:`repro.network.topology.TOPOLOGY_BUILDERS`).
    nodes_per_tor / oversubscription / dragonfly_* / torus_* / slimfly_* :
        Shape parameters of the chosen topology (ignored by the others).
    routing:
        Routing strategy selecting one route per message: ``"minimal"``
        (ECMP), ``"valiant"`` or ``"adaptive"`` (UGAL-style); see
        :data:`repro.network.routing.ROUTING_STRATEGIES`.
    loggops_use_topology:
        Whether the message-level backend derives per-message wire latency
        from the topology's routed path (hop-count model) instead of the
        flat LogGOPS ``L``.  ``None`` (the default) enables it exactly for
        the topologies whose point is path diversity (``torus``,
        ``slimfly``), preserving the calibrated flat-``L`` behaviour of the
        paper's fat-tree/dragonfly experiments.

    Packet-level parameters
    -----------------------
    link_bandwidth:
        Host and edge link bandwidth in bytes per nanosecond (default
        25 B/ns = 25 GB/s, the paper's per-direction Slingshot bandwidth;
        this is the reciprocal of LogGOPS ``G`` = 0.04 ns/B).
    link_latency:
        Per-hop propagation latency in ns.
    mtu:
        Packet payload size in bytes.
    buffer_size:
        Per-port output queue capacity in bytes (1 MiB in the paper).
    ecn_kmin_frac / ecn_kmax_frac:
        ECN marking thresholds as fractions of ``buffer_size`` (0.2 / 0.8 in
        the paper).
    cc_algorithm:
        One of ``"mprdma"``, ``"swift"``, ``"dctcp"``, ``"ndp"``,
        ``"fixed"``.
    host_overhead:
        Per-message host processing overhead (ns) charged by the packet
        backend before injection and after delivery (plays the role of
        LogGOPS ``o``).

    Shared
    ------
    loggops:
        LogGOPS parameters (used by the message-level backend).
    faults:
        A :class:`~repro.network.faults.FaultSchedule` describing a degraded
        fabric: statically failed/derated links and timed link-down/link-up/
        switch-drain events.  The packet backend masks failed links out of
        routing and reroutes in-flight traffic; the LogGOPS backend inflates
        per-byte serialisation by the lost capacity fraction.  The default
        (empty) schedule is bit-identical to the pre-fault behaviour.
    control_plane / cp_propagation_ns / cp_processing_ns:
        Route-convergence model (see :mod:`repro.network.control_plane`).
        ``"oracle"`` (the default) is the legacy instantaneous model —
        bit-identical to the pre-control-plane behaviour on both backends;
        ``"ls"`` (link-state flooding) and ``"dv"`` (distance-vector) make
        switches learn of fault events hop-by-hop, forwarding on stale
        tables meanwhile.  ``cp_propagation_ns`` is the per-hop
        advertisement wire delay and ``cp_processing_ns`` the per-switch
        update processing cost.
    seed:
        Seed for any stochastic choice (ECMP hashing, jitter).
    route_caching / packet_batching / loggops_batching:
        Performance-engine toggles (see ``docs/performance.md``).  All three
        default on and are *exact*: disabling one falls back to the slower
        legacy code path but must produce bit-identical simulated results
        for the same seed.  They exist for A/B determinism tests and for
        bisecting perf regressions, not as accuracy knobs.
    route_cache_entries / route_synthesis:
        Route-table memory model (see ``docs/scaling.md``).  Per-pair
        route/alive/view tables live in LRU caches bounded to
        ``route_cache_entries`` entries each (0 = unbounded);
        ``route_synthesis`` builds candidates structurally from coordinates
        instead of the enumeration reference.  Both are exact: any setting
        produces bit-identical simulated results for the same seed.
    shards:
        Conservative-window parallel packet engine (see ``docs/scaling.md``):
        partition the fabric into this many shards, one event loop each,
        exchanging boundary packets at lookahead barriers.  ``1`` (the
        default) is the single-process engine, bit-identical to previous
        releases; ``>1`` is deterministic and shard-count-invariant,
        including fault schedules and convergent control planes (exact vs.
        serial) and load-adaptive routing (barrier load snapshots — see
        ``load_snapshot_ns``).  Packet backend only.
    load_snapshot_ns:
        Cadence (ns) of the global link-load snapshots that sharded
        load-adaptive routing reads (``shards > 1`` only; ignored
        otherwise).  ``0`` (the default) auto-derives the cadence as the
        minimum link latency of the topology — a layout-independent value,
        so results stay shard-count-invariant.  Smaller cadences track
        serial's live loads more closely at the cost of more barriers.
    """

    # topology
    topology: str = "fat_tree"
    nodes_per_tor: int = 16
    oversubscription: float = 1.0
    fattree_planes: int = 2  # fat_tree_multiplane: drainable core planes
    fattree_rails: int = 4  # fat_tree_rail: GPUs (rails) per server
    dragonfly_groups: int = 4
    dragonfly_routers_per_group: int = 4
    dragonfly_nodes_per_router: int = 4
    torus_dims: Tuple[int, ...] = (4, 4)
    torus_hosts_per_node: int = 1
    slimfly_q: int = 5
    slimfly_hosts_per_router: int = 0  # 0 = ceil(network_radix / 2)

    # routing
    routing: str = "minimal"
    loggops_use_topology: Optional[bool] = None  # None = auto (torus/slimfly)

    # message-level backend
    loggops: LogGOPSParams = field(default_factory=LogGOPSParams)

    # packet-level backend
    link_bandwidth: float = 25.0  # bytes per ns (25 GB/s)
    link_latency: int = 500  # ns per hop
    mtu: int = 4096
    buffer_size: int = 1 << 20  # 1 MiB per port
    ecn_kmin_frac: float = 0.2
    ecn_kmax_frac: float = 0.8
    cc_algorithm: str = "mprdma"
    host_overhead: int = 200
    initial_window_packets: int = 16
    min_retransmit_timeout: int = 100_000  # ns
    ack_size: int = 64

    # performance engine toggles (all exact: flipping one must not change
    # simulated results — the determinism tests in
    # tests/test_perf_determinism.py run both settings and compare)
    route_caching: bool = True
    packet_batching: bool = True
    loggops_batching: bool = True

    # route-table memory model (see docs/scaling.md): per-pair route/alive/
    # view tables live in LRU caches bounded to this many entries per cache
    # (0 = unbounded, the pre-bounded memo behaviour).  Eviction is exact —
    # evicted tables are rebuilt bit-identically on the next lookup.
    # route_synthesis selects structural candidate synthesis (closed-form
    # link ids from coordinates) over the enumeration reference; both are
    # bit-identical by construction and A/B-tested.
    route_cache_entries: int = 16384
    route_synthesis: bool = True

    # conservative-window parallel packet engine (see docs/scaling.md):
    # shards > 1 partitions hosts/switches into that many shards, runs one
    # event loop per shard (in worker processes when spawnable, serially
    # in-process otherwise) and exchanges boundary-crossing packets at
    # lookahead barriers.  shards=1 (the default) is today's single-process
    # engine, bit-identical to previous releases — the same A/B-flag
    # contract as packet_batching/route_caching/route_synthesis.  Sharded
    # runs are deterministic and shard-count-invariant (stochastic choices
    # are keyed by flow / queue identity rather than drawn from one global
    # stream), and coincide with shards=1 exactly on configurations that
    # consume no randomness.  Fault schedules and convergent control planes
    # replay exactly under sharding (epochs and advertisement waves are
    # globally scheduled, locally applied); load-adaptive routing reads
    # barrier load snapshots at the load_snapshot_ns cadence — exact across
    # shard counts >= 2, an approximation of serial's live loads.  Packet
    # backend only.
    shards: int = 1
    load_snapshot_ns: int = 0

    # fault injection: static degraded-fabric state plus timed link/switch
    # failure events, honored by both backends (see repro.network.faults).
    # An empty schedule (the default) is guaranteed bit-identical to a run
    # without any fault machinery.
    faults: FaultSchedule = field(default_factory=FaultSchedule)

    # control-plane convergence model: "oracle" keeps the legacy
    # instantaneous fault visibility (bit-identical); "ls"/"dv" propagate
    # fault knowledge switch-by-switch with the delays below, black-holing
    # traffic that stale switches forward into the failed region (see
    # repro.network.control_plane and docs/control_plane.md).
    control_plane: str = "oracle"
    cp_propagation_ns: int = 500
    cp_processing_ns: int = 100

    # multi-job attribution: when > 0, every message's job id is derived as
    # ``tag // job_tag_stride`` (the co-tenancy merge assigns each job a
    # disjoint tag window of this stride) and both backends collect per-job
    # delivery counts plus per-link byte attribution.  0 disables collection
    # entirely (no hot-path cost).  Attribution is observational only: it
    # never changes simulated timing, drops, marks or message order.
    job_tag_stride: int = 0

    # misc
    seed: int = 0
    collect_message_records: bool = True

    def __post_init__(self) -> None:
        # imported here to keep repro.network.topology/routing import-light
        from repro.network.routing import ROUTING_STRATEGIES
        from repro.network.topology import TOPOLOGY_BUILDERS

        if self.topology not in TOPOLOGY_BUILDERS:
            raise ValueError(
                f"unknown topology {self.topology!r} "
                f"(registered: {', '.join(sorted(TOPOLOGY_BUILDERS))})"
            )
        if self.routing not in ROUTING_STRATEGIES:
            raise ValueError(
                f"unknown routing {self.routing!r} "
                f"(registered: {', '.join(sorted(ROUTING_STRATEGIES))})"
            )
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        if self.nodes_per_tor <= 0:
            raise ValueError("nodes_per_tor must be positive")
        if self.fattree_planes <= 0:
            raise ValueError("fattree_planes must be positive")
        if self.fattree_rails <= 0:
            raise ValueError("fattree_rails must be positive")
        if self.route_cache_entries < 0:
            raise ValueError(
                "route_cache_entries must be non-negative (0 = unbounded)"
            )
        if self.torus_hosts_per_node <= 0:
            raise ValueError("torus_hosts_per_node must be positive")
        if self.slimfly_hosts_per_router < 0:
            raise ValueError("slimfly_hosts_per_router must be non-negative")
        self.torus_dims = tuple(self.torus_dims)
        if len(self.torus_dims) not in (2, 3) or any(d < 2 for d in self.torus_dims):
            raise ValueError(
                f"torus_dims must be 2 or 3 ring lengths, each >= 2, got {self.torus_dims}"
            )
        from repro.network.topology.slimfly import _is_prime

        if not _is_prime(self.slimfly_q) or self.slimfly_q % 4 != 1:
            raise ValueError(
                f"slimfly_q must be a prime with q % 4 == 1 (5, 13, 17, ...), got {self.slimfly_q}"
            )
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")
        if self.buffer_size < self.mtu:
            raise ValueError("buffer_size must hold at least one MTU")
        if not (0.0 <= self.ecn_kmin_frac <= self.ecn_kmax_frac <= 1.0):
            raise ValueError("require 0 <= ecn_kmin_frac <= ecn_kmax_frac <= 1")
        if self.cc_algorithm not in ("mprdma", "swift", "dctcp", "ndp", "fixed"):
            raise ValueError(f"unknown cc_algorithm {self.cc_algorithm!r}")
        if self.host_overhead < 0 or self.link_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.initial_window_packets <= 0:
            raise ValueError("initial_window_packets must be positive")
        if self.job_tag_stride < 0:
            raise ValueError("job_tag_stride must be non-negative (0 disables attribution)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1 (1 = single-process engine)")
        if self.load_snapshot_ns < 0:
            raise ValueError(
                "load_snapshot_ns must be non-negative (0 = auto: min link latency)"
            )
        from repro.network.control_plane import CONTROL_PLANES

        if self.control_plane not in CONTROL_PLANES:
            raise ValueError(
                f"unknown control plane {self.control_plane!r} "
                f"(registered: {', '.join(sorted(CONTROL_PLANES))})"
            )
        if self.cp_propagation_ns < 0 or self.cp_processing_ns < 0:
            raise ValueError(
                "cp_propagation_ns and cp_processing_ns must be non-negative"
            )
        if self.faults is None:
            self.faults = FaultSchedule()
        elif not isinstance(self.faults, FaultSchedule):
            raise ValueError(
                f"faults must be a FaultSchedule (or None for a healthy fabric), "
                f"got {type(self.faults).__name__}"
            )

    def loggops_topology_enabled(self) -> bool:
        """Whether the LogGOPS backend should route through the topology.

        ``loggops_use_topology`` overrides when set; otherwise topology-aware
        latency is enabled exactly for the path-diverse topologies added on
        top of the paper's calibrated flat-``L`` setups.
        """
        if self.loggops_use_topology is not None:
            return self.loggops_use_topology
        return self.topology in ("torus", "slimfly")

    def replace(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Return a flat dictionary of the configuration (for reports)."""
        d = dataclasses.asdict(self)
        d["loggops"] = dataclasses.asdict(self.loggops)
        return d

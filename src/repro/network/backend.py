"""The unified network-backend API (the paper's ``ATLAHS_API``).

The GOAL scheduler drives any network simulator through five operations
(paper Fig. 7): ``simulationSetup``, ``send``, ``recv``, ``calc`` and the
completion callback ``eventOver``.  In this reproduction:

* :meth:`NetworkBackend.setup` is ``simulationSetup``,
* :meth:`NetworkBackend.issue_send` / :meth:`issue_recv` /
  :meth:`issue_calc` post work for a rank once its dependencies are met,
* the ``on_complete`` callback passed to :meth:`NetworkBackend.run` is
  ``eventOver``: the backend reports each finished operation together with
  the simulation time at which it finished, and the scheduler may issue new
  operations from inside the callback (at the current time or later).

Two backends implement this API: the message-level LogGOPS backend
(:class:`repro.network.loggops.LogGOPSBackend`) and the packet-level backend
(:class:`repro.network.packet.PacketBackend`).
"""
from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.network.config import SimulationConfig


class OpCompletion(NamedTuple):
    """A finished GOAL operation (``eventOver``) as a record.

    The completion callback itself takes the three fields positionally
    (``on_complete(time, rank, op_id)``) so the per-operation hot path
    allocates nothing; this record type remains for code that wants to
    store or pass completions around as one value.
    """

    time: int
    rank: int
    op_id: int


class MessageRecord(NamedTuple):
    """Per-message timing record used for MCT (message completion time) studies."""

    src: int
    dst: int
    size: int
    tag: int
    post_time: int
    completion_time: int

    @property
    def completion_latency(self) -> int:
        """Message completion time: delivery time minus the time the send was posted."""
        return self.completion_time - self.post_time


@dataclass
class NetworkStats:
    """Aggregate statistics collected during a simulation run.

    Message-level backends fill only the message counters; the packet-level
    backend additionally reports packet, drop, trim, ECN and retransmission
    counters — the "fine-grained details only packet-level simulators can
    provide" highlighted in the paper's §6.2.
    """

    messages_delivered: int = 0
    bytes_delivered: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_trimmed: int = 0
    packets_ecn_marked: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    max_queue_bytes: int = 0
    #: In-flight packets forced onto a surviving candidate route after a
    #: fault event (packet backend, fault injection only).
    packets_rerouted: int = 0
    #: In-flight packets stranded by a fault with no surviving candidate
    #: sharing their traversed prefix; recovered by loss timeout.
    packets_lost_to_faults: int = 0
    #: Packets a stale switch forwarded into a failed region during control-
    #: plane convergence (``control_plane="dv"|"ls"`` only); recovered by
    #: loss timeout once the source's first-hop switch reconverges.
    packets_blackholed: int = 0
    #: Worst per-event convergence window (last stale switch catch-up time
    #: minus fault event time); 0 under the oracle control plane.
    time_to_recover_ns: int = 0
    #: Route-table LRU cache counters (see docs/scaling.md): lookups served
    #: from / missing the bounded per-pair route caches, and entries evicted
    #: to stay within ``SimulationConfig.route_cache_entries``.
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    route_cache_evictions: int = 0
    queue_drop_events: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Return element-wise sum of two stats objects (max for max fields)."""
        merged = NetworkStats(
            messages_delivered=self.messages_delivered + other.messages_delivered,
            bytes_delivered=self.bytes_delivered + other.bytes_delivered,
            packets_sent=self.packets_sent + other.packets_sent,
            packets_delivered=self.packets_delivered + other.packets_delivered,
            packets_dropped=self.packets_dropped + other.packets_dropped,
            packets_trimmed=self.packets_trimmed + other.packets_trimmed,
            packets_ecn_marked=self.packets_ecn_marked + other.packets_ecn_marked,
            retransmissions=self.retransmissions + other.retransmissions,
            acks_sent=self.acks_sent + other.acks_sent,
            max_queue_bytes=max(self.max_queue_bytes, other.max_queue_bytes),
            packets_rerouted=self.packets_rerouted + other.packets_rerouted,
            packets_lost_to_faults=self.packets_lost_to_faults
            + other.packets_lost_to_faults,
            packets_blackholed=self.packets_blackholed + other.packets_blackholed,
            time_to_recover_ns=max(self.time_to_recover_ns, other.time_to_recover_ns),
            route_cache_hits=self.route_cache_hits + other.route_cache_hits,
            route_cache_misses=self.route_cache_misses + other.route_cache_misses,
            route_cache_evictions=self.route_cache_evictions
            + other.route_cache_evictions,
        )
        merged.queue_drop_events = dict(self.queue_drop_events)
        for k, v in other.queue_drop_events.items():
            merged.queue_drop_events[k] = merged.queue_drop_events.get(k, 0) + v
        return merged


@dataclass
class JobStats:
    """Per-job traffic attribution collected during a multi-job simulation.

    Populated only when :attr:`SimulationConfig.job_tag_stride` is non-zero:
    the job id of a message is its ``tag // job_tag_stride`` (the co-tenancy
    merge gives each job a disjoint tag window).  Attribution is purely
    observational — it never alters simulated timing.

    Attributes
    ----------
    job:
        Job index (tag window) this record belongs to.
    messages_delivered / bytes_delivered:
        Messages of this job fully delivered, and their payload bytes.
    link_bytes:
        Bytes of this job's traffic attributed per link name.  The packet
        backend charges every injected DATA packet (including
        retransmissions) to each link of its route; the message-level
        backend attributes routed bytes in topology-aware mode and is empty
        in flat-``L`` mode (there are no modelled links to attribute to).
    """

    job: int
    messages_delivered: int = 0
    bytes_delivered: int = 0
    link_bytes: Dict[str, int] = field(default_factory=dict)


def assemble_job_stats(
    job_msgs: Dict[int, List[int]],
    job_link_bytes: Dict[int, "object"],
    links,
) -> Dict[int, "JobStats"]:
    """Build the ``per_job_stats`` mapping from a backend's raw counters.

    ``job_msgs`` maps job id to ``[messages, bytes]``; ``job_link_bytes``
    maps job id to a per-link byte array indexed by link id (may be empty
    when the backend collects no link attribution); ``links`` is the
    topology's link list providing names.  Shared by both backends so their
    attribution output cannot diverge.
    """
    out: Dict[int, JobStats] = {}
    for job in sorted(set(job_msgs) | set(job_link_bytes)):
        msgs, byts = job_msgs.get(job, (0, 0))
        arr = job_link_bytes.get(job)
        link_bytes = (
            {}
            if arr is None
            else {links[i].name: int(b) for i, b in enumerate(arr) if b}
        )
        out[job] = JobStats(
            job=job,
            messages_delivered=msgs,
            bytes_delivered=byts,
            link_bytes=link_bytes,
        )
    return out


@dataclass
class SimulationResult:
    """Result of replaying a GOAL schedule on a backend.

    Attributes
    ----------
    finish_time_ns:
        Simulated makespan — the time at which the last operation of the last
        rank completed.
    rank_finish_times_ns:
        Per-rank completion time.
    stats:
        Aggregate :class:`NetworkStats`.
    message_records:
        Per-message records (only when
        :attr:`SimulationConfig.collect_message_records` is enabled).
    ops_completed:
        Total GOAL operations executed.
    backend:
        Name of the backend that produced the result.
    wall_clock_s:
        Host wall-clock seconds spent simulating (for the simulator
        runtime-comparison experiments).
    job_stats:
        Per-job :class:`JobStats` keyed by job id (empty unless
        :attr:`SimulationConfig.job_tag_stride` was set).
    group_finish_times_ns:
        Per-group completion times when the scheduler was given an op→group
        mapping (the co-tenancy engine maps groups to jobs); empty otherwise.
    convergence_records:
        Per-fault-event :class:`~repro.network.control_plane.ConvergenceRecord`
        list; empty under ``control_plane="oracle"`` or when the backend
        tracks no convergence.  Sharded runs carry the records through the
        merge (the wave is replayed identically on every shard, so one
        shard's copy is canonical).
    """

    finish_time_ns: int
    rank_finish_times_ns: List[int]
    stats: NetworkStats
    message_records: List[MessageRecord] = field(default_factory=list)
    ops_completed: int = 0
    backend: str = ""
    wall_clock_s: float = 0.0
    job_stats: Dict[int, JobStats] = field(default_factory=dict)
    group_finish_times_ns: Dict[int, int] = field(default_factory=dict)
    convergence_records: List = field(default_factory=list)

    @property
    def finish_time_s(self) -> float:
        """Simulated makespan in seconds."""
        return self.finish_time_ns / 1e9

    def mct_statistics(self) -> Dict[str, float]:
        """Return mean / p99 / max message completion times in ns.

        Raises ``ValueError`` when message records were not collected.
        """
        if not self.message_records:
            raise ValueError("no message records were collected")
        latencies = sorted(m.completion_latency for m in self.message_records)
        n = len(latencies)
        p99_index = min(n - 1, int(round(0.99 * (n - 1))))
        return {
            "mean": sum(latencies) / n,
            "p99": float(latencies[p99_index]),
            "max": float(latencies[-1]),
            "count": float(n),
        }


#: ``eventOver``: called as ``on_complete(time, rank, op_id)``.
CompletionCallback = Callable[[int, int, int], None]


class NetworkBackend(abc.ABC):
    """Abstract base class of all network simulation backends."""

    name: str = "abstract"

    @abc.abstractmethod
    def setup(self, num_ranks: int, config: SimulationConfig) -> None:
        """Configure the backend (``simulationSetup``): topology, parameters, state."""

    @abc.abstractmethod
    def issue_calc(self, rank: int, stream: int, duration_ns: int, op_id: int, ready_time: int) -> None:
        """Post a computation of ``duration_ns`` on ``(rank, stream)``, ready at ``ready_time``."""

    @abc.abstractmethod
    def issue_send(
        self, rank: int, dst: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        """Post a send of ``size`` bytes from ``rank`` to ``dst`` with ``tag``."""

    @abc.abstractmethod
    def issue_recv(
        self, rank: int, src: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        """Post a receive of ``size`` bytes at ``rank`` from ``src`` with ``tag``."""

    @abc.abstractmethod
    def run(self, on_complete: CompletionCallback) -> int:
        """Run the event loop to completion; call ``on_complete`` for every op.

        ``on_complete(time, rank, op_id)`` is invoked once per finished
        operation.  Returns the final simulation time in nanoseconds.
        """

    @abc.abstractmethod
    def now(self) -> int:
        """Current simulation time in nanoseconds."""

    @abc.abstractmethod
    def collect_stats(self) -> NetworkStats:
        """Return aggregate statistics for the run so far."""

    def collect_message_records(self) -> List[MessageRecord]:
        """Return per-message records (backends may return an empty list)."""
        return []

    def per_job_stats(self) -> Dict[int, JobStats]:
        """Per-job attribution keyed by job id.

        Empty unless the backend was configured with a non-zero
        ``job_tag_stride`` (see :class:`JobStats`).
        """
        return {}


def create_backend(name: str) -> NetworkBackend:
    """Instantiate a backend by name (``"lgs"`` / ``"loggops"`` or ``"htsim"`` / ``"packet"``).

    The import is local so that importing :mod:`repro.network` does not pull
    in both backends eagerly.
    """
    key = name.lower()
    if key in ("lgs", "loggops", "loggopsim", "message"):
        from repro.network.loggops import LogGOPSBackend

        return LogGOPSBackend()
    if key in ("htsim", "packet", "ns3"):
        from repro.network.packet import PacketBackend

        return PacketBackend()
    raise ValueError(f"unknown backend {name!r}; expected 'lgs' or 'htsim'")

"""Send/receive matching shared by the simulation backends.

Both backends must pair message arrivals with posted receives using MPI-like
semantics: messages on the same ``(source, destination, tag)`` channel match
in FIFO order; a receive posted before the message arrives waits for it, and
a message arriving before its receive is buffered as *unexpected*.

The matcher is deliberately ignorant of time — it only maintains the two
FIFO queues per channel and returns whatever the caller stored, so each
backend can attach its own bookkeeping (arrival times, op ids, CPU streams).
"""
from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

Channel = Tuple[int, int, int]  # (src_rank, dst_rank, tag)


class MessageMatcher:
    """FIFO matcher of message arrivals against posted receives."""

    __slots__ = ("_pending_recvs", "_pending_arrivals")

    def __init__(self) -> None:
        self._pending_recvs: Dict[Channel, Deque[Any]] = {}
        self._pending_arrivals: Dict[Channel, Deque[Any]] = {}

    def post_recv(self, src: int, dst: int, tag: int, info: Any) -> Optional[Any]:
        """Register a posted receive on channel ``(src, dst, tag)``.

        Returns the oldest buffered (unexpected) arrival for that channel if
        one exists — in which case the receive is satisfied immediately and
        *not* queued — otherwise queues ``info`` and returns ``None``.
        """
        channel = (src, dst, tag)
        arrivals = self._pending_arrivals.get(channel)
        if arrivals:
            arrival = arrivals.popleft()
            if not arrivals:
                del self._pending_arrivals[channel]
            return arrival
        self._pending_recvs.setdefault(channel, deque()).append(info)
        return None

    def post_arrival(self, src: int, dst: int, tag: int, info: Any) -> Optional[Any]:
        """Register a message arrival on channel ``(src, dst, tag)``.

        Returns the oldest posted receive waiting on that channel if one
        exists — the arrival is then consumed by it — otherwise buffers
        ``info`` as an unexpected message and returns ``None``.
        """
        channel = (src, dst, tag)
        recvs = self._pending_recvs.get(channel)
        if recvs:
            recv = recvs.popleft()
            if not recvs:
                del self._pending_recvs[channel]
            return recv
        self._pending_arrivals.setdefault(channel, deque()).append(info)
        return None

    def peek_recv(self, src: int, dst: int, tag: int) -> Optional[Any]:
        """Return (without consuming) the oldest posted receive on a channel."""
        recvs = self._pending_recvs.get((src, dst, tag))
        return recvs[0] if recvs else None

    def pending_recv_count(self) -> int:
        """Total receives still waiting for a message (used to detect deadlock)."""
        return sum(len(q) for q in self._pending_recvs.values())

    def pending_arrival_count(self) -> int:
        """Total buffered unexpected messages (used to detect unmatched sends)."""
        return sum(len(q) for q in self._pending_arrivals.values())
